//! Quickstart: multiply two fractions with online (MSD-first) arithmetic,
//! then overclock the multiplier and watch the errors stay in the least
//! significant digits.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ola::arith::online::{online_mult, Selection, StagedMultiplier};
use ola::core::timing;
use ola::redundant::{SdNumber, Q};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two 8-digit fixed-point fractions in (-1, 1).
    let n = 8;
    let x = SdNumber::from_value(Q::new(93, 8), n)?; //  93/256 ≈  0.3633
    let y = SdNumber::from_value(Q::new(-47, 8), n)?; // -47/256 ≈ -0.1836

    println!("x = {x}  (= {})", x.value());
    println!("y = {y}  (= {})", y.value());

    // The golden online multiplication (Algorithm 1 of the paper).
    let product = online_mult(&x, &y, Selection::default());
    println!("\nonline product digits (z_-3 .. z_7): ");
    for d in product.digits() {
        print!("{d} ");
    }
    println!();
    println!("online product value : {}", product.value());
    println!("exact product        : {}", x.value() * y.value());
    println!("representation error : {}", product.error());

    // Now the paper's question: what if we sample the unrolled multiplier
    // BEFORE its combinational logic settles? Each stage has delay μ; a
    // clock period of b·μ lets residual chains cross only b stages.
    let sm = StagedMultiplier::new(x.clone(), y.clone(), Selection::default());
    let correct = sm.settled().value();
    let structural = timing::structural_delay(n, 1);
    println!("\nstructural delay: {structural} μ;  overclocked sampling:");
    println!("{:>3} {:>14} {:>14}", "b", "sampled", "|error|");
    for b in 0..=(n + 3) {
        let v = sm.sample(b).value();
        println!("{b:>3} {:>14.8} {:>14.10}", v.to_f64(), (v - correct).abs().to_f64());
    }
    println!(
        "\nNote how the error, when present, is tiny: truncated chains only\n\
         corrupt least-significant digits. A conventional multiplier sampled\n\
         early is wrong in its MOST significant bits instead."
    );
    Ok(())
}
