//! Online arithmetic in its original digit-serial form: digits stream in
//! MSD-first and result digits stream out after the online delay δ — the
//! dataflow of Figure 1 of the paper.
//!
//! ```sh
//! cargo run --example digit_serial
//! ```

use ola::arith::online::{Selection, SerialMultiplier, DELTA};
use ola::redundant::{OnTheFlyConverter, SdNumber, Q};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10;
    let x = SdNumber::from_value(Q::new(333, 10), n)?; //  333/1024
    let y = SdNumber::from_value(Q::new(-719, 10), n)?; // -719/1024
    println!("x = {x} (= {})", x.value());
    println!("y = {y} (= {})", y.value());
    println!("\nstreaming digits MSD-first (online delay δ = {DELTA}):\n");
    println!("{:>5} {:>6} {:>6} {:>8} {:>16}", "cycle", "x_in", "y_in", "z_out", "Z so far");

    let mut mult = SerialMultiplier::new(n, Selection::default());
    let mut otfc = OnTheFlyConverter::new();
    for i in 1..=n {
        let z = mult.push(x.digit(i), y.digit(i));
        otfc.push(z);
        println!(
            "{i:>5} {:>6} {:>6} {:>8} {:>16.10}",
            x.digit(i).to_string(),
            y.digit(i).to_string(),
            z.to_string(),
            (otfc.value() << DELTA as u32).to_f64()
        );
    }
    let product = mult.finish();
    println!("\nafter the δ-cycle flush:");
    println!("online product: {}", product.value());
    println!("exact product : {}", x.value() * y.value());
    println!("|error|       : {} (≤ 3·2^-(N+2))", product.error().abs());

    // The same MSD-first stream feeds an on-the-fly converter, so a
    // non-redundant result is available with NO carry-propagate delay.
    Ok(())
}
