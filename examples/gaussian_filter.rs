//! The paper's case study: a Gaussian image filter built once with online
//! arithmetic and once with conventional two's-complement arithmetic, both
//! overclocked past their rated frequencies.
//!
//! Writes the output images as PGM files into `target/filter-demo/` and
//! prints the MRE / SNR comparison (the Figure 6–7 experiment in miniature).
//!
//! ```sh
//! cargo run --release --example gaussian_filter
//! ```

use ola::imaging::filter::{FilterConfig, OnlineFilter, OverclockedFilter, TraditionalFilter};
use ola::imaging::synthetic::Benchmark;
use std::fs::{self, File};
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let size = 48; // keep the demo quick; the bench harness uses larger images
    let image = Benchmark::LenaLike.generate(size, size, 1);
    println!(
        "input: {size}x{size} lena-like image (mean {:.1}, σ {:.1}, autocorr {:.2})",
        image.mean(),
        image.stddev(),
        image.autocorrelation()
    );

    let online = OnlineFilter::new(FilterConfig::paper_default());
    let trad = TraditionalFilter::new(FilterConfig::paper_default());

    let out_dir = Path::new("target/filter-demo");
    fs::create_dir_all(out_dir)?;

    // Overclock each design relative to its own rated period.
    let factors = [1.0f64, 1.11, 1.25, 1.43];
    println!(
        "\n{:<12} {:>8} {:>12} {:>12} {:>10}",
        "design", "f/f_rated", "MRE %", "SNR dB", "bad px"
    );
    for filter in [&online as &dyn OverclockedFilter, &trad] {
        let rated = filter.rated_period();
        let ts: Vec<u64> =
            factors.iter().map(|f| ((rated as f64 / f).round() as u64).max(1)).collect();
        let sweep = filter.apply_sweep(&image, &ts);
        for (f, run) in factors.iter().zip(&sweep.runs) {
            println!(
                "{:<12} {:>8.2} {:>12.4} {:>12.1} {:>10}",
                filter.name(),
                f,
                run.mre_percent,
                run.snr_db,
                run.wrong_pixels
            );
            let name = format!("{}_{:.0}pct.pgm", filter.name(), f * 100.0);
            run.image.write_pgm(File::create(out_dir.join(&name))?)?;
        }
        sweep
            .settled_image
            .write_pgm(File::create(out_dir.join(format!("{}_settled.pgm", filter.name())))?)?;
    }
    println!("\noutput images written to {}", out_dir.display());
    println!(
        "The traditional design shows salt-and-pepper noise (MSB errors) when\n\
         overclocked; the online design degrades only in the low-order bits."
    );
    Ok(())
}
