//! Latency-accuracy trade-off explorer: given an error budget, how much can
//! each arithmetic be overclocked? (The Table-3 question at operator level.)
//!
//! ```sh
//! cargo run --release --example error_budget
//! ```

use ola::arith::synth::{array_multiplier, online_multiplier};
use ola::core::empirical::{array_gate_level_curve, om_gate_level_curve};
use ola::core::{sweep, InputModel};
use ola::netlist::{analyze, JitteredDelay, UnitDelay};

fn main() {
    let n = 8;
    let samples = 150;
    let delay = JitteredDelay::new(UnitDelay, 20, 7);

    let om = online_multiplier(n, 3);
    let am = array_multiplier(n + 1); // equal representable range

    let om_rated = analyze(&om.netlist, &delay).critical_path();
    let am_rated = analyze(&am.netlist, &delay).critical_path();
    println!("rated periods:   online {om_rated}  traditional {am_rated} (time units)");

    // Dense period sweeps for both operators.
    let grid = |rated: u64| -> Vec<u64> { (1..=40).map(|k| rated * k / 40).collect() };
    let om_ts = grid(om_rated);
    let am_ts = grid(am_rated);
    let om_curve = om_gate_level_curve(&om, &delay, InputModel::UniformValue, &om_ts, samples, 1);
    let am_curve = array_gate_level_curve(&am, &delay, &am_ts, samples, 1);

    // Max error-free frequency for each design.
    let f0 = |ts: &[u64], err: &[f64]| -> u64 {
        ts.iter()
            .zip(err)
            .find(|(_, &e)| e == 0.0)
            .map_or(*ts.last().expect("the Ts grid is nonempty"), |(&t, _)| t)
    };
    let om_f0 = f0(&om_curve.ts, &om_curve.mean_abs_error);
    let am_f0 = f0(&am_curve.ts, &am_curve.mean_abs_error);
    println!("error-free periods: online {om_f0}  traditional {am_f0}");
    println!(
        "free headroom vs rated: online {:.1}%  traditional {:.1}%",
        sweep::frequency_speedup_percent(om_rated, om_f0),
        sweep::frequency_speedup_percent(am_rated, am_f0),
    );

    println!("\nmax frequency speedup (vs own error-free f0) within error budget:");
    println!("{:>10} {:>12} {:>12}", "budget", "online", "traditional");
    for budget in [1e-5, 1e-4, 1e-3, 1e-2] {
        let within = |ts: &[u64], err: &[f64], base: u64| -> String {
            ts.iter().zip(err).find(|(_, &e)| e <= budget).map_or_else(
                || "N/A".to_owned(),
                |(&t, _)| format!("{:+.2}%", sweep::frequency_speedup_percent(base, t)),
            )
        };
        println!(
            "{:>10.0e} {:>12} {:>12}",
            budget,
            within(&om_curve.ts, &om_curve.mean_abs_error, om_f0),
            within(&am_curve.ts, &am_curve.mean_abs_error, am_f0),
        );
    }
    println!(
        "\nThe online design sustains far deeper overclocking within every\n\
         budget because its timing-violation errors carry LSD weight."
    );
}
