//! A 1-D FIR low-pass filter running on the overclocked stage-wave
//! multiplier model — the kind of feedback-free DSP datapath the paper's
//! introduction motivates (strict latency budgets, no C-slow retiming).
//!
//! ```sh
//! cargo run --release --example fir_filter
//! ```

use ola::arith::online::{Selection, StagedMultiplier};
use ola::core::metrics;
use ola::redundant::{SdNumber, Q};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10; // digits per operand
                // 5-tap low-pass kernel (quantized Hamming-ish weights, sum ≈ 1).
    let taps: Vec<Q> = [60i128, 245, 414, 245, 60].iter().map(|&v| Q::new(v, n as u32)).collect();
    let coeffs: Vec<SdNumber> =
        taps.iter().map(|&t| SdNumber::from_value(t, n)).collect::<Result<_, _>>()?;

    // Input: a noisy two-tone signal, quantized to N digits.
    let len = 96;
    let signal: Vec<SdNumber> = (0..len)
        .map(|i| {
            let t = i as f64 / 12.0;
            let v = 0.45 * (t).sin() + 0.25 * (5.3 * t).sin();
            let raw = (v * f64::from(1u32 << n)).round() as i128;
            SdNumber::from_value(Q::new(raw, n as u32), n).expect("in range")
        })
        .collect();

    // Convolve with multipliers sampled at stage budget b; the adds are
    // exact (online adders have constant depth and never violate first).
    let convolve = |budget: Option<usize>| -> Vec<f64> {
        (0..len)
            .map(|i| {
                let mut acc = Q::ZERO;
                for (k, c) in coeffs.iter().enumerate() {
                    let j = (i + k).saturating_sub(2).min(len - 1);
                    let sm =
                        StagedMultiplier::new(signal[j].clone(), c.clone(), Selection::default());
                    let v = match budget {
                        Some(b) => sm.sample(b).value(),
                        None => sm.settled().value(),
                    };
                    acc += v;
                }
                acc.to_f64()
            })
            .collect()
    };

    let reference = convolve(None);
    println!("5-tap FIR over {len} samples, N = {n} digit operands\n");
    println!("{:>8} {:>14} {:>12} {:>10}", "budget b", "MRE %", "SNR dB", "speedup");
    let structural = n + 3;
    for b in (4..=structural).rev() {
        let out = convolve(Some(b));
        let mre = metrics::mre_percent(&reference, &out).expect("same convolution shape");
        let snr = metrics::snr_db(&reference, &out).expect("same convolution shape");
        println!(
            "{b:>8} {:>14.6} {:>12.1} {:>9.2}x",
            mre,
            snr.min(999.0),
            structural as f64 / b as f64
        );
    }
    println!(
        "\nEvery budget above the settling point is exact; below it the FIR\n\
         output degrades smoothly — a latency-accuracy dial, not a cliff."
    );
    Ok(())
}
