//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The ola build environment has no network access and no registry mirror,
//! so the workspace vendors the *small* part of `rand` it actually uses:
//! [`RngCore`], [`Rng::gen_range`]/[`Rng::gen_bool`], and [`SeedableRng`]
//! (including the SplitMix64-based [`SeedableRng::seed_from_u64`]).
//!
//! Semantics match `rand` 0.8 in shape (trait names, bounds, range
//! behaviour, panics on empty ranges); the exact output *streams* are not
//! guaranteed to be bit-identical to upstream `rand` — the workspace only
//! relies on *internal* reproducibility (same seed ⇒ same results).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: uniform raw output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from the full domain of `T` (the
    /// `Standard` distribution of real `rand`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types drawable uniformly from their full domain via [`Rng::gen`]
/// (floats draw from `[0, 1)` like real `rand`'s `Standard`).
pub trait StandardSample: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int_impl {
    ($($t:ty),+ $(,)?) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}

standard_int_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl StandardSample for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::sample_standard(rng) as i128
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        unit_f32(rng.next_u32())
    }
}

/// A deterministic RNG constructible from a fixed seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanding it with SplitMix64 exactly
    /// like `rand_core` 0.6 does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = sm.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

fn unit_f64(bits: u64) -> f64 {
    // 53 random mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// A range that can be sampled uniformly (the argument of
/// [`Rng::gen_range`]).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn sample_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    // 128 random bits mod span: modulo bias ≤ 2^-64 for the spans used in
    // this workspace — far below Monte-Carlo noise.
    debug_assert!(span > 0);
    let hi = u128::from(rng.next_u64());
    let lo = u128::from(rng.next_u64());
    ((hi << 64) | lo) % span
}

macro_rules! int_range_impl {
    ($($t:ty => $wide:ty),+ $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let off = sample_u128(rng, span);
                (self.start as $wide).wrapping_add(off as $wide) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u128;
                if span == u128::MAX {
                    // Full-domain inclusive range: raw bits are uniform.
                    return sample_u128(rng, u128::MAX) as $t;
                }
                let off = sample_u128(rng, span + 1);
                (lo as $wide).wrapping_add(off as $wide) as $t
            }
        }
    )+};
}

int_range_impl!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, u128 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128,
);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f32(rng.next_u32())
    }
}

impl SampleRange<f32> for RangeInclusive<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * unit_f32(rng.next_u32())
    }
}

/// Commonly used RNGs (subset).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic RNG (xoshiro256++ core).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // Avoid the all-zero state, which is a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i32..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
