//! Offline drop-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! ChaCha RNGs, implemented against the workspace's vendored `rand` traits.
//!
//! The generator is a genuine ChaCha permutation (RFC 8439 quarter-rounds,
//! 64-bit block counter, word-serial output), so its statistical quality
//! matches the real crate. Output streams are *not* guaranteed to be
//! bit-identical to upstream `rand_chacha` — the workspace only relies on
//! internal reproducibility (same seed ⇒ same stream).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with `R` double-rounds.
#[derive(Clone, Debug)]
pub struct ChaChaRng<const R: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

/// ChaCha with 8 rounds (4 double-rounds): the workspace's Monte-Carlo RNG.
pub type ChaCha8Rng = ChaChaRng<4>;
/// ChaCha with 12 rounds.
pub type ChaCha12Rng = ChaChaRng<6>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<10>;

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl<const R: usize> ChaChaRng<R> {
    fn refill(&mut self) {
        let mut x = [0u32; 16];
        x[..4].copy_from_slice(&SIGMA);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0;
        x[15] = 0;
        let input = x;
        for _ in 0..R {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (out, (a, b)) in self.buffer.iter_mut().zip(x.iter().zip(&input)) {
            *out = a.wrapping_add(*b);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl<const R: usize> RngCore for ChaChaRng<R> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buffer[self.index];
        self.index += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl<const R: usize> SeedableRng for ChaChaRng<R> {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(b);
        }
        ChaChaRng { key, counter: 0, buffer: [0; 16], index: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let mut c = ChaCha8Rng::seed_from_u64(10);
        let va: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..40).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn output_is_not_degenerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let draws: Vec<u32> = (0..64).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::BTreeSet<_> = draws.iter().collect();
        assert!(distinct.len() > 60, "ChaCha output must look random");
    }

    #[test]
    fn usable_through_rand_traits() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[rng.gen_range(0..3usize)] += 1;
        }
        assert!(counts.iter().all(|&c| c > 800), "roughly uniform: {counts:?}");
    }
}
