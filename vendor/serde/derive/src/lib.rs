//! Offline stand-in for the `serde_derive` proc-macro crate.
//!
//! The vendored [`serde`](../serde) crate defines `Serialize` /
//! `Deserialize` as empty marker traits, so the derives only need to emit
//! empty marker impls. The macro scans the item token stream for the type
//! name following `struct` / `enum` / `union` and emits
//! `impl serde::Serialize for Name {}` (resp. the `Deserialize` impl). If
//! the item shape is unexpected (e.g. generics, which the ola workspace
//! does not use on serialized types), the macro emits nothing — the traits
//! are unused markers, so a missing impl only surfaces if someone adds a
//! `T: Serialize` bound, at which point the real serde should be wired in.

use proc_macro::{TokenStream, TokenTree};

/// Finds the identifier naming the type in a `derive` input stream.
///
/// Returns `None` when the type is generic or the stream doesn't look like
/// a plain `struct`/`enum`/`union` item.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(tree) = tokens.next() {
        if let TokenTree::Ident(ident) = &tree {
            let word = ident.to_string();
            if word == "struct" || word == "enum" || word == "union" {
                if let Some(TokenTree::Ident(name)) = tokens.next() {
                    // Reject generic types: the next token would be `<`.
                    if let Some(TokenTree::Punct(p)) = tokens.next() {
                        if p.as_char() == '<' {
                            return None;
                        }
                    }
                    return Some(name.to_string());
                }
                return None;
            }
        }
    }
    None
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        None => TokenStream::new(),
    }
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => {
            format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
                .parse()
                .unwrap_or_else(|_| TokenStream::new())
        }
        None => TokenStream::new(),
    }
}
