//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The ola workspace annotates result structs with
//! `#[derive(serde::Serialize)]` so that downstream consumers with the real
//! serde can serialize them, but the build environment has no network
//! access, so no serialization backend (serde_json etc.) is available
//! anyway. This vendored crate therefore defines [`Serialize`] /
//! [`Deserialize`] as *marker traits* and the derive macros emit empty
//! marker impls — enough to type-check the annotations and to keep the
//! public API shaped like real serde, without pulling in the full data
//! model.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker for types that real serde could serialize.
pub trait Serialize {}

/// Marker for types that real serde could deserialize.
pub trait Deserialize<'de>: Sized {}
