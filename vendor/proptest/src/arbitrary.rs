//! The [`any`] entry point and [`Arbitrary`] implementations for the
//! primitive types the workspace generates.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one full-domain value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The full-domain strategy for `A`.
#[must_use]
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(PhantomData)
}

/// See [`any`].
#[derive(Clone, Copy, Debug)]
pub struct AnyStrategy<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty => $via:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.rng.next_u64() as $via as $t
            }
        }
    )+};
}

arbitrary_ints!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64,
    usize => u64, isize => u64,
);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u128 {
    fn arbitrary_value(rng: &mut TestRng) -> u128 {
        (u128::from(rng.rng.next_u64()) << 64) | u128::from(rng.rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary_value(rng: &mut TestRng) -> i128 {
        u128::arbitrary_value(rng) as i128
    }
}
