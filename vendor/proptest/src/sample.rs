//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// A strategy choosing uniformly from a fixed list of values.
///
/// # Panics
///
/// [`Strategy::generate`] panics if the list is empty.
pub fn select<T: Clone + Debug>(options: Vec<T>) -> Select<T> {
    Select { options }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.options.is_empty(), "select over an empty list");
        self.options[rng.rng.gen_range(0..self.options.len())].clone()
    }
}
