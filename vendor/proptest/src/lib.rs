//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! API.
//!
//! The ola build environment has no network access, so the workspace vendors
//! the slice of proptest it uses: the [`Strategy`] trait with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies, [`Just`],
//! `prop::collection::vec`, `prop::sample::select`, [`any`], the
//! [`proptest!`] / [`prop_oneof!`] / `prop_assert*` macros and a
//! deterministic [`test_runner::TestRunner`].
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   (every strategy value is `Debug`), which is usually enough at these
//!   input sizes.
//! * **Deterministic seeding.** Case `i` of test `name` derives its RNG
//!   from `(hash(name), i)`, so failures reproduce exactly; set
//!   `PROPTEST_CASES` to override the case count globally.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Rooted aliases mirroring `proptest::prelude::prop`.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current test case with a formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{:?}` == `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(a != b)` with better diagnostics.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Chooses uniformly between several strategies producing the same type.
///
/// Weighted arms (`weight => strategy`) are supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Declares property-based tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0i64..1000, b in 0i64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($config:expr)
      $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let cases = config.effective_cases();
                for case in 0..cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    let mut described: Vec<String> = Vec::new();
                    $(
                        let value =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                        described
                            .push(format!("{} = {:?}", stringify!($arg), &value));
                        let $arg = value;
                    )+
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {case}/{cases} failed: {e}\n  inputs:\n    {}",
                            described.join("\n    ")
                        );
                    }
                }
            }
        )*
    };
}
