//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is simply a
/// deterministic function of the test RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values for which `f` returns `false` (retrying a bounded
    /// number of times).
    fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
        self,
        whence: R,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence: whence.into(), f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)) }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    #[allow(clippy::type_complexity)]
    inner: Rc<dyn Fn(&mut TestRng) -> V>,
}

impl<V: Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.inner)(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;

    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 candidates in a row: {}", self.whence);
    }
}

/// Uniform (optionally weighted) choice between boxed strategies; built by
/// [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V: Debug> Union<V> {
    /// A union of weighted arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    #[must_use]
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one arm with weight > 0");
        Union { arms, total }
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.rng.gen_range(0..self.total);
        for (w, arm) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return arm.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

macro_rules! range_strategy {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )+};
}

range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
