//! Test configuration, errors, and the deterministic case RNG.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Unused compatibility field (no shrinking in the vendored runner).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256, max_shrink_iters: 0 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    #[must_use]
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// A failed test case (the `Err` of `prop_assert*`).
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError { message: message.into() }
    }

    /// Compatibility alias: real proptest distinguishes `reject`; here it
    /// reads the same as [`TestCaseError::fail`].
    #[must_use]
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::fail(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The RNG handed to strategies: a ChaCha8 stream derived deterministically
/// from the test name and case index.
#[derive(Clone, Debug)]
pub struct TestRng {
    pub(crate) rng: ChaCha8Rng,
}

impl TestRng {
    /// The RNG for case `case` of the test named `name`.
    #[must_use]
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { rng: ChaCha8Rng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case))) }
    }
}
