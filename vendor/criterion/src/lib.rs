//! Offline drop-in subset of the
//! [`criterion`](https://crates.io/crates/criterion) API.
//!
//! Provides just enough surface for the ola benches to compile and produce
//! useful wall-clock numbers without network access: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`], [`black_box`]
//! and the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is
//! a simple calibrated wall-clock loop — median-of-samples, no outlier
//! analysis, no HTML reports.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configuration.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per sample batch.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Compatibility no-op (the vendored runner takes no CLI arguments).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup { criterion: self, name }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_one(self, &id.to_string(), &mut f);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(2);
        self
    }

    /// Sets the measurement window for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut f);
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, &mut |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// The measurement handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(config: &Criterion, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: find an iteration count filling ~1/sample_size of the
    // measurement window.
    let mut iters = 1u64;
    let warm_up_end = Instant::now() + config.warm_up;
    let mut per_iter;
    loop {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        per_iter = b.elapsed.div_f64(iters as f64).max(Duration::from_nanos(1));
        if Instant::now() >= warm_up_end {
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 24);
    }
    let budget = config.measurement.div_f64(config.sample_size as f64);
    let per_sample =
        (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
    let mut samples: Vec<Duration> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher { iters: per_sample, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.div_f64(per_sample as f64));
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    eprintln!(
        "bench {label:<50} time: [{} {} {}]",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi)
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
