//! Umbrella crate for the `ola` workspace.
//!
//! Re-exports each workspace crate under a short module name so examples and
//! integration tests can `use ola::arith::...`.
pub use ola_arith as arith;
pub use ola_core as core;
pub use ola_imaging as imaging;
pub use ola_netlist as netlist;
pub use ola_redundant as redundant;
pub use ola_serve as serve;
pub use ola_synth as synth;
