//! The observability layer's determinism contract, end to end.
//!
//! The metrics registry may only record *simulation-domain* quantities
//! (event counts, settle times, lane counts, probe counts) — never
//! wall-clock time and never the worker-thread count. Sums of such values
//! are commutative, so the metric snapshot delta of a workload must be
//! bit-identical whether it runs on one thread or four. This test drives
//! the real instrumented stack (Monte-Carlo sweep, gate-level curve with
//! both engines, fault campaign) under `OLA_THREADS=1` and `=4` and
//! demands equality; any instrumentation site that sneaks a
//! non-deterministic value into the registry fails here.
//!
//! Env-var discipline: this binary's tests mutate `OLA_THREADS`, so they
//! share one lock and restore the variable when done.

use ola_arith::online::Selection;
use ola_arith::synth::online_multiplier;
use ola_core::campaign::{online_fault_campaign, CampaignConfig, FaultClass};
use ola_core::empirical::om_gate_level_curve_with;
use ola_core::obs::MetricSnapshot;
use ola_core::{montecarlo, obs, InputModel, SimBackend, StaGate};
use ola_netlist::FpgaDelay;
use std::sync::Mutex;

static ENV_LOCK: Mutex<()> = Mutex::new(());

/// The instrumented workload: MC sweep + gate-level curve (batch and
/// event) + a small fault campaign + a synthesis design-space sweep.
/// Deterministic by construction; the question is whether the
/// *instrumentation* stays deterministic too.
fn workload() {
    let _ = montecarlo::om_monte_carlo(6, Selection::default(), InputModel::UniformDigits, 600, 7);
    let circuit = online_multiplier(4, 3);
    // The synthesis compiler's `ola.synth.*` metrics (nodes folded,
    // variants explored, certification skips) are under the same
    // contract: simulation-domain quantities only.
    let dfg = ola_synth::parse_dfg(
        "y = a * 0.5 + b * 0.25 + 0.125",
        ola_synth::InputFmt { msd_pos: 1, digits: 4 },
    )
    .expect("program parses");
    let _ = ola_synth::explore(
        &dfg,
        &ola_synth::ExploreConfig {
            widths: vec![4],
            ts_points: 4,
            samples: 8,
            seed: 5,
            ..ola_synth::ExploreConfig::default()
        },
    );
    // The fused-MAC DSP subsystem (`ola.dsp.*`, `ola.synth.mac.*`): kernel
    // generation, both Mac lowerings, and the accumulation-length axis of
    // the explorer — all simulation-domain counts.
    let fir = ola_synth::fir_bank(
        2,
        ola_synth::MacFusion::Fused,
        ola_synth::InputFmt { msd_pos: 1, digits: 4 },
    );
    let _ = ola_synth::elaborate(&fir, &ola_synth::ElabOptions::new(ola_synth::Style::Online));
    let _ =
        ola_synth::elaborate(&fir, &ola_synth::ElabOptions::new(ola_synth::Style::Conventional));
    let _ = ola_synth::explore_mac(
        &ola_synth::ExploreConfig {
            widths: vec![3],
            ts_points: 3,
            samples: 4,
            seed: 5,
            ..ola_synth::ExploreConfig::default()
        },
        &[2],
    );
    for backend in [SimBackend::Batch, SimBackend::Event] {
        let _ = om_gate_level_curve_with(
            &circuit,
            &FpgaDelay::default(),
            InputModel::UniformDigits,
            &[200, 1000, 40_000],
            12,
            11,
            backend,
            StaGate::On,
        );
    }
    let cfg = CampaignConfig {
        samples_per_site: 3,
        max_sites: Some(6),
        seed: 99,
        ..CampaignConfig::default()
    };
    let _ = online_fault_campaign(
        &circuit,
        &FpgaDelay::default(),
        InputModel::UniformDigits,
        FaultClass::StuckAt1,
        &cfg,
    );
}

/// Runs the workload under a given `OLA_THREADS` and returns the metric
/// delta it produced.
fn delta_with_threads(threads: &str) -> MetricSnapshot {
    std::env::set_var("OLA_THREADS", threads);
    let before = obs::registry().snapshot();
    workload();
    obs::registry().snapshot().diff(&before)
}

#[test]
fn metric_snapshots_are_bit_identical_across_thread_counts() {
    let _guard = ENV_LOCK.lock().unwrap();
    let saved = std::env::var("OLA_THREADS").ok();

    let single = delta_with_threads("1");
    let quad = delta_with_threads("4");

    match saved {
        Some(v) => std::env::set_var("OLA_THREADS", v),
        None => std::env::remove_var("OLA_THREADS"),
    }

    // The workload actually exercised every subsystem...
    for key in [
        "ola.mc.samples",
        "ola.parallel.jobs",
        "ola.sim.event.runs",
        "ola.sim.event.events",
        "ola.batch.runs",
        "ola.batch.lanes",
        "ola.campaign.sites",
        "ola.backend.vectors",
        "ola.synth.nodes_folded",
        "ola.synth.elaborated",
        "ola.synth.variants_explored",
        "ola.synth.certified_points_skipped",
        "ola.synth.pareto_points",
        "ola.synth.mac.fused_lowered",
        "ola.synth.mac.conventional_lowered",
        "ola.synth.mac.terms",
        "ola.synth.mac.explored",
        "ola.dsp.fir_graphs",
        "ola.dsp.inner_products",
    ] {
        assert!(single.counters.contains_key(key), "workload never moved {key}: {single:?}");
    }
    // ...and the whole delta — every counter, histogram bucket, and gauge
    // — is independent of the worker-thread count.
    assert_eq!(single, quad, "metric delta must not depend on OLA_THREADS");
}

/// The `OLA_OBS` kill switch must make span recording close to free: with
/// recording off, the Monte-Carlo sweep may cost at most a few percent
/// more than with it on (the per-sweep span is constant work, so at this
/// sample count the difference should vanish into noise).
///
/// Wall-clock comparisons are inherently jittery, so this is an opt-in
/// smoke test (`--ignored`); CI runs it in the observability job where a
/// real regression (per-sample spans, lock contention on the hot path)
/// shows up as an order-of-magnitude blowout, not a few percent.
#[test]
#[ignore = "wall-clock smoke test; run with --ignored"]
fn span_recording_overhead_is_small() {
    let _guard = ENV_LOCK.lock().unwrap();
    let time_it = |recording: bool| {
        obs::set_recording(recording);
        // Warm up, then take the best of several runs to shed scheduler
        // noise.
        let run = || {
            let t = std::time::Instant::now();
            let _ = montecarlo::om_monte_carlo(
                8,
                Selection::default(),
                InputModel::UniformDigits,
                4_000,
                13,
            );
            t.elapsed()
        };
        run();
        (0..5).map(|_| run()).min().expect("non-empty")
    };
    let on = time_it(true);
    let off = time_it(false);
    obs::set_recording(true);
    let ratio = on.as_secs_f64() / off.as_secs_f64().max(1e-9);
    assert!(
        ratio < 1.05,
        "span recording costs {:.1}% (on {on:?}, off {off:?})",
        (ratio - 1.0) * 100.0
    );
}
