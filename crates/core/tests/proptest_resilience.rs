//! Property-based tests of the crash-safe checkpoint format: whatever a
//! crash (truncation at any byte) or bit-rot (any single flipped byte)
//! does to the file, recovery replays exactly the durable frame prefix,
//! quarantines the rest, and a healed file round-trips to the same frames
//! an uninterrupted writer would have produced.

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// `allow-unwrap-in-tests` doesn't reach them; a loud panic is still the
// right failure mode here.
#![allow(clippy::unwrap_used)]

use ola_core::obs::json::JsonValue;
use ola_core::resilience::checkpoint::{
    open_resumable, quarantine_path, read_frames, CheckpointWriter, HEADER_LEN,
};
use proptest::prelude::*;
use std::path::PathBuf;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ola_resilience_proptest");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{tag}_{}.ckpt", std::process::id()))
}

/// A deterministic, variable-length frame body (the vendored proptest has
/// no regex string strategies, so bodies derive from a `u64` seed).
fn body(seed: u64) -> String {
    let filler = "x".repeat((seed % 41) as usize);
    format!("{seed:x} {filler}")
}

fn frame(i: usize, body: &str) -> JsonValue {
    JsonValue::Object(vec![
        ("kind".into(), JsonValue::str("unit")),
        ("seq".into(), JsonValue::U64(i as u64)),
        ("body".into(), JsonValue::str(body)),
    ])
}

/// Writes `bodies` as frames, returns the rendered payload of each for
/// later comparison.
fn write_all(path: &std::path::Path, bodies: &[String]) -> Vec<String> {
    let mut w = CheckpointWriter::create(path).unwrap();
    for (i, b) in bodies.iter().enumerate() {
        w.append(&frame(i, b)).unwrap();
    }
    bodies.iter().enumerate().map(|(i, b)| frame(i, b).render()).collect()
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(quarantine_path(path));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncation at *any* byte preserves exactly the frames that were
    /// durably framed before the cut — never a partial frame, never a
    /// lost complete one — and resuming then appending yields the same
    /// file an uninterrupted writer would have produced.
    #[test]
    fn truncated_checkpoint_resumes_to_the_uninterrupted_file(
        seeds in prop::collection::vec(any::<u64>(), 1..6),
        cut_frac in 0.0f64..1.0,
    ) {
        let bodies: Vec<String> = seeds.iter().map(|s| body(*s)).collect();
        let path = scratch("truncate");
        let rendered = write_all(&path, &bodies);
        let full = std::fs::read(&path).unwrap();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        // The valid prefix is exactly the frames wholly inside the cut.
        let mut survivors = 0usize;
        let mut survivors_end = 0usize;
        let mut offset = 0usize;
        for payload in &rendered {
            offset += HEADER_LEN + payload.len();
            if offset <= cut {
                survivors += 1;
                survivors_end = offset;
            }
        }
        let outcome = read_frames(&path).unwrap();
        prop_assert_eq!(outcome.frames.len(), survivors);
        // Damage is reported iff the cut left trailing partial-frame bytes.
        prop_assert_eq!(outcome.damage.is_some(), cut > survivors_end);

        // Heal: reopen, append the missing tail, and demand bit-identity
        // with the uninterrupted run.
        let (outcome, mut w) = open_resumable(&path).unwrap();
        let replayed = outcome.frames.len();
        for (i, b) in bodies.iter().enumerate().skip(replayed) {
            w.append(&frame(i, b)).unwrap();
        }
        drop(w);
        prop_assert_eq!(std::fs::read(&path).unwrap(), full);
        cleanup(&path);
    }

    /// Flipping any single byte never produces bogus frames: every frame
    /// recovered before the damage point is byte-for-byte one of the
    /// originals, in order, and resuming quarantines the rest.
    #[test]
    fn any_single_flipped_byte_is_detected_and_quarantined(
        seeds in prop::collection::vec(any::<u64>(), 1..5),
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let bodies: Vec<String> = seeds.iter().map(|s| body(*s)).collect();
        let path = scratch("tamper");
        let rendered = write_all(&path, &bodies);
        let full = std::fs::read(&path).unwrap();
        let pos = (((full.len() - 1) as f64) * pos_frac) as usize;
        let mut bytes = full.clone();
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).unwrap();

        let outcome = read_frames(&path).unwrap();
        prop_assert!(outcome.damage.is_some(), "a flipped byte must be detected");
        // The survivors are a strict prefix of the original frames.
        for (got, payload) in outcome.frames.iter().zip(&rendered) {
            prop_assert_eq!(&got.render(), payload);
        }
        // Exactly the frames wholly before the flipped byte survive; the
        // frame containing it fails its digest (or framing) check.
        let mut before_damage = 0usize;
        let mut offset = 0usize;
        for payload in &rendered {
            offset += HEADER_LEN + payload.len();
            if offset <= pos {
                before_damage += 1;
            }
        }
        prop_assert_eq!(outcome.frames.len(), before_damage);

        // Resume quarantines the damaged suffix and truncates to the
        // valid prefix; the quarantine file holds the original bytes.
        let (resumed, w) = open_resumable(&path).unwrap();
        drop(w);
        prop_assert_eq!(resumed.frames.len(), outcome.frames.len());
        prop_assert_eq!(std::fs::read(quarantine_path(&path)).unwrap(), bytes);
        prop_assert_eq!(std::fs::metadata(&path).unwrap().len(), resumed.valid_len);
        cleanup(&path);
    }
}
