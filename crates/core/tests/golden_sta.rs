//! Golden test: the paper's closed-form timing model
//! ([`ola_core::timing`]) against full STA of the *synthesized* online
//! multiplier netlists, for N ∈ {8, 12, 16, 32} under [`UnitDelay`].
//!
//! What the comparison establishes (and pins, so a generator or STA change
//! that silently shifts the timing story fails loudly):
//!
//! 1. The netlist's rated period grows **affinely** in N —
//!    `cp(N) = 9800 + 3900·N` time units — i.e. the synthesized datapath
//!    has a constant per-digit stage depth of 39 gate levels, matching the
//!    model's "every stage costs μ" shape with `μ_netlist = 3900` and a
//!    constant pipeline-head offset.
//! 2. Structural STA reproduces `structural_delay` (up to that constant):
//!    `cp(N) = structural_delay(N, 3900) − 1900` exactly. STA is a
//!    *structural* analysis, so it lands on the structural bound — by
//!    design it cannot see chain annihilation, which is a data-dependent
//!    (dynamic) effect.
//! 3. `chain_worst_case_delay` — the paper's chain-analysis bound — is
//!    therefore strictly *below* the STA rating for every N, and the gap
//!    widens with N. That gap is exactly the "free" overclocking headroom
//!    the paper exploits: frequencies above `1/cp` that STA refuses to
//!    certify but that chain analysis (and the empirical sweeps) show are
//!    still error-free.

use ola_arith::synth::online_multiplier;
use ola_core::timing::{chain_worst_case_delay, structural_delay};
use ola_netlist::{analyze, UnitDelay};

/// `(N, STA critical path of the synthesized netlist under UnitDelay)` —
/// golden values, measured once and pinned.
const GOLDEN: [(usize, u64); 4] = [(8, 41_000), (12, 56_600), (16, 72_200), (32, 134_600)];

/// Effective per-digit stage delay of the synthesized netlist (39 gate
/// levels × `UnitDelay::UNIT`), from the golden affine fit.
const MU_NETLIST: u64 = 3_900;

#[test]
fn netlist_sta_matches_golden_and_is_affine_in_n() {
    for (n, golden) in GOLDEN {
        let om = online_multiplier(n, 3);
        let cp = analyze(&om.netlist, &UnitDelay).critical_path();
        assert_eq!(cp, golden, "N={n}: STA critical path drifted from golden value");
        assert_eq!(cp, 9_800 + MU_NETLIST * n as u64, "N={n}: affine stage model broke");
    }
}

#[test]
fn sta_reproduces_the_structural_bound_not_the_chain_bound() {
    for (n, golden) in GOLDEN {
        // Structural formula, evaluated at the netlist's per-stage delay,
        // predicts STA exactly (minus the constant head offset): STA *is*
        // structural analysis.
        assert_eq!(
            golden,
            structural_delay(n, MU_NETLIST) - 1_900,
            "N={n}: structural formula no longer predicts netlist STA"
        );
        // The chain-analysis bound is strictly tighter: the netlist can be
        // clocked below its STA rating without error, which no structural
        // pass can certify.
        let chain = chain_worst_case_delay(n, MU_NETLIST);
        assert!(chain < golden, "N={n}: chain bound {chain} must undercut the STA rating {golden}");
    }
}

#[test]
fn formula_vs_netlist_headroom_widens_with_n() {
    // The structural−chain gap (in netlist time units) grows with N: wider
    // multipliers give the overclocker more free headroom. Pin the
    // endpoints so the trend is part of the golden contract.
    let gap = |n: usize| {
        let om = online_multiplier(n, 3);
        let cp = analyze(&om.netlist, &UnitDelay).critical_path();
        cp - chain_worst_case_delay(n, MU_NETLIST)
    };
    let gaps: Vec<u64> = GOLDEN.iter().map(|&(n, _)| gap(n)).collect();
    assert!(gaps.windows(2).all(|w| w[0] < w[1]), "headroom must widen: {gaps:?}");
    assert_eq!(gaps[0], 41_000 - (3 + 4) * MU_NETLIST, "N=8 endpoint");
    assert_eq!(gaps[3], 134_600 - (15 + 4) * MU_NETLIST, "N=32 endpoint");
}
