//! Property-based tests of the overclocking analysis layer.

use ola_core::{baseline, metrics, model, sweep, timing};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stage_budget_is_tight_ceiling(ts in 1u64..100_000, mu in 1u64..1_000) {
        let b = timing::stage_budget(ts, mu) as u64;
        prop_assert!(b * mu >= ts);
        prop_assert!((b - 1) * mu < ts);
    }

    #[test]
    fn chain_worst_case_below_structural(n in 1usize..128, mu in 1u64..100) {
        prop_assert!(timing::chain_worst_case_delay(n, mu) <= timing::structural_delay(n, mu));
    }

    #[test]
    fn scenario_probability_mass_is_finite(n in 1usize..48) {
        // Expected number of chains per multiplication is bounded by the
        // per-stage generation probability (≤ 8/9 each).
        let total: f64 = model::chain_scenarios(n).iter().map(|s| s.probability).sum();
        prop_assert!(total <= (n as f64 + 3.0) * (8.0 / 9.0) + 1e-9);
        prop_assert!(total >= 0.0);
    }

    #[test]
    fn violation_probability_monotone_and_bounded(n in 2usize..32) {
        let mut last = f64::INFINITY;
        for b in 0..=(n + 4) {
            for p in [
                model::violation_probability_union(n, b),
                model::violation_probability_independent(n, b),
            ] {
                prop_assert!((0.0..=1.0).contains(&p), "n={n} b={b} p={p}");
            }
            let u = model::violation_probability_union(n, b);
            prop_assert!(u <= last + 1e-12);
            last = u;
        }
    }

    #[test]
    fn expected_error_monotone_in_budget(n in 2usize..32, gamma in 0.5f64..2.0) {
        let mut last = f64::INFINITY;
        for b in 0..=(n + 4) {
            let e = model::expected_error(n, b, gamma);
            prop_assert!(e >= 0.0 && e <= last + 1e-12);
            last = e;
        }
        prop_assert_eq!(model::expected_error(n, n + 4, gamma), 0.0);
    }

    #[test]
    fn carry_cdf_is_monotone_distribution(w in 1u32..64) {
        let mut last = 0.0f64;
        for l in 0..=w {
            let p = baseline::carry_chain_cdf(w, l);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
            prop_assert!(p >= last - 1e-12);
            last = p;
        }
        prop_assert!((baseline::carry_chain_cdf(w, w) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn carry_violation_decreases_in_budget(w in 4u32..48) {
        let mut last = 1.0f64 + 1e-12;
        for b in 0..=w {
            let p = baseline::rca_violation_probability(w, b);
            prop_assert!(p <= last + 1e-12);
            last = p;
        }
    }

    #[test]
    fn snr_and_mre_agree_on_perfection(vals in prop::collection::vec(-1.0f64..1.0, 1..50)) {
        prop_assert_eq!(metrics::mre_percent(&vals, &vals), Ok(0.0));
        prop_assert_eq!(metrics::snr_db(&vals, &vals), Ok(f64::INFINITY));
    }

    #[test]
    fn snr_decreases_with_noise(
        vals in prop::collection::vec(0.1f64..1.0, 4..40),
        noise in 0.001f64..0.1,
    ) {
        let small: Vec<f64> = vals.iter().map(|v| v + noise / 2.0).collect();
        let big: Vec<f64> = vals.iter().map(|v| v + noise).collect();
        prop_assert!(
            metrics::snr_db(&vals, &small).unwrap() > metrics::snr_db(&vals, &big).unwrap()
        );
    }

    #[test]
    fn mre_reduction_is_exact_arithmetic(t in 0.001f64..100.0, o in 0.0f64..100.0) {
        let r = metrics::mre_reduction_percent(t, o);
        prop_assert!((r - (t - o) / t * 100.0).abs() < 1e-9);
    }

    #[test]
    fn geometric_mean_between_min_and_max(vals in prop::collection::vec(0.01f64..100.0, 1..20)) {
        let g = metrics::geometric_mean(&vals);
        let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
        let max = vals.iter().copied().fold(0.0, f64::max);
        prop_assert!(g >= min - 1e-9 && g <= max + 1e-9);
    }

    #[test]
    fn budget_search_finds_the_frontier(threshold in 10u64..1000, budget in 0.0f64..50.0) {
        // Metric: max(0, threshold − ts), strictly decreasing until 0.
        let metric = |ts: u64| (threshold.saturating_sub(ts)) as f64;
        let got = sweep::min_period_within_budget(1, 2000, budget, metric);
        let expect = threshold.saturating_sub(budget as u64).max(1);
        prop_assert_eq!(got, Some(expect));
    }

    #[test]
    fn normalized_frequency_round_trip(t0 in 100u64..100_000, nf in 1.0f64..2.0) {
        let ts = timing::period_for_normalized_frequency(t0, nf);
        let back = timing::normalized_frequency(ts, t0);
        prop_assert!((back - nf).abs() / nf < 0.02);
    }

    #[test]
    fn certified_period_search_matches_unanchored(threshold in 1u64..500) {
        // Anywhere the Option-returning search succeeds, the STA-anchored
        // search gives the same frontier without probing the anchor.
        let metric = |ts: u64| (threshold.saturating_sub(ts)) as f64;
        let want = sweep::min_error_free_period(1, 1000, metric).unwrap();
        let got = sweep::min_error_free_period_certified(1, 1000, metric);
        prop_assert_eq!(got, want);
    }
}

/// The STA fast path must be invisible in results: for any delay model in
/// the workspace (batch-exact or not), any backend, and a Ts grid
/// straddling the critical path, gating produces bit-identical
/// [`GateLevelCurve`]s to judging every point — it may only be *faster*.
mod sta_gate_equivalence {
    use ola_arith::synth::online_multiplier;
    use ola_core::empirical::om_gate_level_curve_with;
    use ola_core::{InputModel, SimBackend, StaGate};
    use ola_netlist::{analyze, DelayModel, FpgaDelay, JitteredDelay, UnitDelay};
    use proptest::prelude::*;

    fn curves_match<M: DelayModel + Sync>(
        n: usize,
        delay: &M,
        backend: SimBackend,
        grid: &[u64],
        seed: u64,
    ) -> Result<(), TestCaseError> {
        let circuit = online_multiplier(n, 3);
        let cp = analyze(&circuit.netlist, delay).critical_path();
        // Scale the unit-interval grid onto [cp/4, 5·cp/4] so some points
        // are certified (≥ cp) and some are not; always include the top of
        // the interval so at least one point is provably settled.
        let ts: Vec<u64> = grid
            .iter()
            .chain(std::iter::once(&100))
            .map(|&g| (cp / 4 + cp * g / 100).max(1))
            .collect();
        let run = |gate| {
            om_gate_level_curve_with(
                &circuit,
                delay,
                InputModel::UniformDigits,
                &ts,
                24,
                seed,
                backend,
                gate,
            )
        };
        let (gated, gated_stats) = run(StaGate::On);
        let (full, full_stats) = run(StaGate::Off);
        prop_assert_eq!(gated, full, "STA gating changed the curve");
        prop_assert_eq!(full_stats.sta_skipped_points, 0);
        prop_assert_eq!(
            gated_stats.ts_points + gated_stats.sta_skipped_points,
            full_stats.ts_points,
            "skipped + judged must cover the full workload"
        );
        // The forced top-of-grid point (Ts = 5·cp/4 ≥ arrival) is provably
        // settled, so the gate must actually skip something.
        prop_assert!(gated_stats.sta_skipped_points > 0);
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn gated_curves_are_bit_identical(
            n in 4usize..7,
            grid in prop::collection::vec(0u64..=100, 3..7),
            model_sel in 0usize..3,
            backend_sel in 0usize..3,
            seed in 0u64..1000,
        ) {
            let backend = [SimBackend::Auto, SimBackend::Event, SimBackend::Batch][backend_sel];
            match model_sel {
                0 => curves_match(n, &UnitDelay, backend, &grid, seed)?,
                1 => curves_match(n, &FpgaDelay::default(), backend, &grid, seed)?,
                // Not batch-exact: exercises the event-path fallback under
                // gating, where soundness rests on the jitter being a
                // deterministic per-net function.
                _ => curves_match(n, &JitteredDelay::new(FpgaDelay::default(), 15, seed), backend, &grid, seed)?,
            }
        }
    }
}
