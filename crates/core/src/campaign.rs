//! Deterministic fault-injection campaigns over synthesized datapaths.
//!
//! A *campaign* enumerates single-fault sites of a gate-level netlist
//! ([`logic_fault_sites`]), injects one fault class per site
//! (stuck-at-0/1, transient SEU, or delay push — see
//! [`ola_netlist::FaultPlan`]), and measures the numeric damage at the
//! output registers when the circuit is clocked at its rated period.
//! A Razor-style shadow register (sampled one timing margin later, the
//! same detection semantics as [`crate::razor`]) classifies each erroneous
//! sample as *detected* (main ≠ shadow) or *silent*.
//!
//! The paper's resilience argument falls out of the numbers: in an online
//! (MSD-first) multiplier every output wire carries a bounded digit weight,
//! so the worst single-wire corruption is a fixed fraction of full scale —
//! whereas a conventional two's-complement multiplier exposes a sign bit
//! whose corruption is *all* of full scale. Errors are therefore reported
//! normalized to each architecture's representable output range so the two
//! encodings are comparable (raw worst-case values are also retained).
//!
//! Campaigns are seed-reproducible and independent of the worker-thread
//! count: sites fan out through [`parallel_map`](crate::parallel) and each
//! site's samples run through the same deterministic chunk seeding as every
//! other Monte-Carlo experiment in this crate
//! ([`parallel_accumulate`](crate::parallel)).
//!
//! Campaigns are also backend-pluggable ([`CampaignConfig::backend`]): on a
//! batch-exact delay model the bit-parallel engine evaluates up to 64
//! samples per pass — each lane carrying a *different* fault plan
//! ([`ola_netlist::batch::BatchFaultSet`]) — drawing the identical random
//! stream and folding samples in the identical order as the event-driven
//! path, so the two backends produce bit-identical [`CampaignReport`]s.

use crate::backend::{BackendStats, SimBackend};
use crate::montecarlo::InputModel;
use crate::parallel::{parallel_accumulate, parallel_accumulate_batched, parallel_map};
use ola_arith::online::digits_value;
use ola_arith::synth::{ArrayMultiplierCircuit, OnlineMultiplierCircuit};
use ola_netlist::batch::{BatchProgram, LaneBlock, LaneFaultSet, LaneInputs, LaneWord};
use ola_netlist::fault::logic_fault_sites;
use ola_netlist::{
    analyze, default_event_budget, simulate_from_zero, simulate_from_zero_with_faults, DelayModel,
    FaultPlan, NetId, Netlist,
};
use ola_redundant::Digit;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Which single-fault class a campaign injects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum FaultClass {
    /// Net permanently reads 0 (hard fault).
    StuckAt0,
    /// Net permanently reads 1 (hard fault).
    StuckAt1,
    /// Single-event upset: the net reads inverted for a bounded window at a
    /// random time inside the clock period.
    Transient,
    /// The driving gate slows down by a fixed amount (local variation),
    /// converting marginal paths into real timing violations.
    DelayPush,
}

impl FaultClass {
    /// All campaign classes, in reporting order.
    pub const ALL: [FaultClass; 4] =
        [FaultClass::StuckAt0, FaultClass::StuckAt1, FaultClass::Transient, FaultClass::DelayPush];

    /// Short machine-readable label (used in CSV rows).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::StuckAt0 => "stuck_at_0",
            FaultClass::StuckAt1 => "stuck_at_1",
            FaultClass::Transient => "transient",
            FaultClass::DelayPush => "delay_push",
        }
    }

    /// Builds the single-fault plan for one sample at `site`.
    fn plan(
        self,
        site: NetId,
        rng: &mut ChaCha8Rng,
        period: u64,
        cfg: &CampaignConfig,
    ) -> FaultPlan {
        match self {
            FaultClass::StuckAt0 => FaultPlan::new().stuck_at(site, false),
            FaultClass::StuckAt1 => FaultPlan::new().stuck_at(site, true),
            FaultClass::Transient => {
                let at = rng.gen_range(0..period.max(1));
                FaultPlan::new().transient(site, at, cfg.transient_duration)
            }
            FaultClass::DelayPush => FaultPlan::new().delay_push(site, cfg.delay_push),
        }
    }
}

/// Knobs of a fault campaign. [`Default`] gives a small, fast campaign
/// suitable for tests; the `repro` binary scales it up.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct CampaignConfig {
    /// Monte-Carlo operand draws per fault site.
    pub samples_per_site: usize,
    /// Evenly subsample the fault-site list down to at most this many sites
    /// (`None` = exhaustive).
    pub max_sites: Option<usize>,
    /// Master seed; `(seed, site, chunk)` fully determines every draw.
    pub seed: u64,
    /// Razor shadow-register margin as a fraction of the rated period.
    pub shadow_margin_frac: f64,
    /// Duration of transient upsets, in time units
    /// ([`Transient`](FaultClass::Transient) class only).
    pub transient_duration: u64,
    /// Extra gate delay, in time units ([`DelayPush`](FaultClass::DelayPush)
    /// class only).
    pub delay_push: u64,
    /// Which simulation engine evaluates the samples. Results are
    /// bit-identical across backends; [`SimBackend::Auto`] uses the batch
    /// engine whenever the delay model permits.
    pub backend: SimBackend,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            samples_per_site: 16,
            max_sites: Some(48),
            seed: 0xDA11_F417,
            shadow_margin_frac: 0.25,
            transient_duration: 150,
            delay_push: 200,
            backend: SimBackend::Auto,
        }
    }
}

/// Per-site summary of a campaign.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct SiteReport {
    /// Raw net index of the faulted site.
    pub site: usize,
    /// Fraction of samples whose main-register value was corrupted.
    pub error_rate: f64,
    /// Mean normalized error over all samples at this site.
    pub mean_error: f64,
    /// Worst normalized error at this site.
    pub worst_error: f64,
    /// Of the corrupted samples, the fraction the Razor shadow flagged.
    pub detected_rate: f64,
}

/// Aggregate result of one (architecture, fault class) campaign.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct CampaignReport {
    /// Architecture label (`"online"` / `"conventional"`).
    pub arch: String,
    /// The injected fault class.
    pub fault_class: FaultClass,
    /// Number of fault sites actually exercised.
    pub sites: usize,
    /// Samples per site.
    pub samples_per_site: usize,
    /// Master seed used.
    pub seed: u64,
    /// Rated (STA) clock period; the main register samples here.
    pub critical_path: u64,
    /// Fraction of evaluated samples with a corrupted main value.
    pub error_rate: f64,
    /// Mean normalized error over all evaluated samples.
    pub mean_error: f64,
    /// Worst normalized error (`|faulty − correct| / full_scale`).
    pub worst_error: f64,
    /// Worst raw (unnormalized) error on the architecture's native scale.
    pub worst_error_raw: f64,
    /// Of the corrupted samples, the fraction detected by the Razor shadow.
    pub detection_coverage: f64,
    /// Of the clean samples, the fraction the shadow falsely flagged.
    pub false_alarm_rate: f64,
    /// Fraction of corrupted samples whose most-significant corrupted
    /// output position lies in the top quarter of the output significance
    /// range.
    pub msb_vulnerability: f64,
    /// Per-significance-rank corruption frequency (rank 0 = most
    /// significant output position; fraction of evaluated samples).
    pub rank_profile: Vec<f64>,
    /// Samples whose faulty simulation exhausted its event budget
    /// (excluded from the statistics above).
    pub unsettled: usize,
    /// Per-site breakdowns, in site order.
    pub site_reports: Vec<SiteReport>,
}

/// Per-site accumulator folded by [`parallel_accumulate`].
#[derive(Clone)]
struct Acc {
    samples: usize,
    errors: usize,
    err_sum: f64,
    worst: f64,
    worst_raw: f64,
    detected: usize,
    false_alarms: usize,
    msb_hits: usize,
    rank_hits: Vec<u64>,
    unsettled: usize,
    stats: BackendStats,
}

impl Acc {
    fn new(n_ranks: usize) -> Acc {
        Acc {
            samples: 0,
            errors: 0,
            err_sum: 0.0,
            worst: 0.0,
            worst_raw: 0.0,
            detected: 0,
            false_alarms: 0,
            msb_hits: 0,
            rank_hits: vec![0; n_ranks],
            unsettled: 0,
            stats: BackendStats::default(),
        }
    }

    fn merge(mut a: Acc, b: &Acc) -> Acc {
        a.samples += b.samples;
        a.errors += b.errors;
        a.err_sum += b.err_sum;
        a.worst = a.worst.max(b.worst);
        a.worst_raw = a.worst_raw.max(b.worst_raw);
        a.detected += b.detected;
        a.false_alarms += b.false_alarms;
        a.msb_hits += b.msb_hits;
        for (x, y) in a.rank_hits.iter_mut().zip(&b.rank_hits) {
            *x += y;
        }
        a.unsettled += b.unsettled;
        a.stats.merge(&b.stats);
        a
    }
}

/// Evenly subsamples the canonical fault sites down to `cfg.max_sites`.
fn select_sites(netlist: &Netlist, cfg: &CampaignConfig) -> Vec<NetId> {
    let all = logic_fault_sites(netlist);
    match cfg.max_sites {
        Some(m) if m > 0 && all.len() > m => (0..m).map(|i| all[i * all.len() / m]).collect(),
        _ => all,
    }
}

/// The per-sample recorder a fault-site loop folds observations through:
/// `(acc, clean_bits, faulty_main_bits, faulty_shadow_bits)`.
type RecordFn<'a> = dyn Fn(&mut Acc, &[bool], &[bool], &[bool]) + Sync + 'a;

/// One fault site's batch sampling loop, generic over the lane word `B`.
///
/// Each group of up to `B::LANES` samples takes two engine passes: a clean
/// full pass, then a faulty pass derived from it *incrementally* — the
/// inputs are identical, so [`BatchProgram::run_incremental`] recomputes
/// only the levelized fanout cone of each lane's fault site and shares the
/// clean waveforms everywhere else. The result is bit-identical to a full
/// faulty recompute (the engine's equivalence tests pin that down), so the
/// campaign report cannot depend on which path produced it.
#[allow(clippy::too_many_arguments)] // internal: mirrors run_campaign's captures
fn batch_site_accumulate<B, D>(
    prog: &BatchProgram,
    wires: &[NetId],
    t_main: u64,
    t_shadow: u64,
    n_ranks: usize,
    site_seed: u64,
    site: NetId,
    period: u64,
    class: FaultClass,
    cfg: &CampaignConfig,
    draw: &D,
    record: &RecordFn<'_>,
) -> Acc
where
    B: LaneWord,
    D: Fn(&mut ChaCha8Rng) -> Vec<bool> + Sync,
{
    parallel_accumulate_batched(
        cfg.samples_per_site,
        site_seed,
        B::LANES as usize,
        || Acc::new(n_ranks),
        // Inputs before plan — the exact rng order of the event path.
        |rng| (draw(rng), class.plan(site, rng, period, cfg)),
        |group: &[(Vec<bool>, FaultPlan)], acc: &mut Acc| {
            crate::resilience::check_cancelled();
            let lanes = group.len() as u32;
            let vectors: Vec<Vec<bool>> = group.iter().map(|(v, _)| v.clone()).collect();
            let plans: Vec<FaultPlan> = group.iter().map(|(_, p)| p.clone()).collect();
            let prev = LaneInputs::<B>::zeros(prog.num_inputs(), lanes)
                .expect("group size bounded by B::LANES");
            let new = LaneInputs::<B>::pack(&vectors).expect("draw produces full vectors");
            let clean = prog.run(&prev, &new).expect("shapes validated above");
            let faults = LaneFaultSet::<B>::compile(&plans, prog.num_nets())
                .expect("plans target in-range nets");
            let faulty = prog
                .run_incremental(&clean, &prev, &new, Some(&faults))
                .expect("fault set compiled against this program");
            for lane in 0..lanes {
                // Batch programs are compiled from validated DAGs,
                // so no lane can oscillate: `unsettled` stays 0,
                // exactly as the event path finds on these netlists.
                record(
                    acc,
                    &clean.final_bus(wires, lane),
                    &faulty.sample_bus(wires, lane, t_main),
                    &faulty.sample_bus(wires, lane, t_shadow),
                );
            }
            acc.stats.backend = "batch";
            acc.stats.vectors += u64::from(lanes);
            acc.stats.ts_points += 2 * u64::from(lanes);
            acc.stats.batch_runs += 2;
            acc.stats.lanes_used += 2 * u64::from(lanes);
            acc.stats.lane_capacity = u64::from(B::LANES);
            acc.stats.word_steps += clean.word_steps() + faulty.word_steps();
            acc.stats.lane_transitions += clean.lane_transitions() + faulty.lane_transitions();
        },
        Acc::merge,
    )
}

/// The generic campaign engine. `draw` encodes one random operand pair as
/// the simulator input vector; `value` decodes an output-bus bit vector to
/// a *normalized* numeric value (full scale = 1.0); `raw_scale` converts a
/// normalized error back to the architecture's native scale for
/// `worst_error_raw`; `rank_of` maps an output-wire position to its
/// significance rank (0 = MSB).
///
/// Per [`CampaignConfig::backend`], samples run either one at a time on
/// the event-driven simulator or in groups of up to `B::LANES` (lane word
/// selected by `OLA_LANE_WORDS`, see [`crate::backend::lane_words`]) on
/// the batch engine: one clean pass, then one *incremental* pass carrying
/// a different fault plan per lane — the faulty pass shares every input
/// with the clean pass, so only each fault's fanout cone is recomputed
/// ([`BatchProgram::run_incremental`]). Both paths share the same random
/// stream (inputs drawn before the plan, sample for sample) and the same
/// per-sample judgement (`record`), folded in sample order — so the
/// reports are bit-identical.
#[allow(clippy::too_many_arguments)]
fn run_campaign<M, D, V>(
    arch: &str,
    netlist: &Netlist,
    wires: &[NetId],
    n_ranks: usize,
    rank_of: &(dyn Fn(usize) -> usize + Sync),
    raw_scale: f64,
    delay: &M,
    draw: D,
    value: V,
    class: FaultClass,
    cfg: &CampaignConfig,
) -> (CampaignReport, BackendStats)
where
    M: DelayModel + Sync,
    D: Fn(&mut ChaCha8Rng) -> Vec<bool> + Sync,
    V: Fn(&[bool]) -> f64 + Sync,
{
    assert!(cfg.samples_per_site > 0, "campaign needs at least one sample per site");
    let _span = crate::obs::span(format!("campaign.{arch}"));
    let sites = select_sites(netlist, cfg);
    crate::obs::registry().counter("ola.campaign.sites").add(sites.len() as u64);
    let period = analyze(netlist, delay).critical_path();
    let t_main = period;
    let margin = ((period as f64) * cfg.shadow_margin_frac).round() as u64;
    let t_shadow = period + margin.max(1);
    let budget = default_event_budget(netlist);
    let msb_cut = n_ranks.div_ceil(4);

    // The backend-independent per-sample judgement: compare the
    // main-register capture against the settled clean value, classify the
    // Razor shadow's verdict, and profile which significance ranks broke.
    let record = |acc: &mut Acc, correct_bits: &[bool], main: &[bool], shadow: &[bool]| {
        acc.samples += 1;
        let correct = value(correct_bits);
        let err = (value(main) - correct).abs();
        if main != correct_bits || err > 0.0 {
            acc.errors += 1;
            acc.err_sum += err;
            acc.worst = acc.worst.max(err);
            acc.worst_raw = acc.worst_raw.max(err * raw_scale);
            if main != shadow {
                acc.detected += 1;
            }
            let mut best_rank = usize::MAX;
            for (pos, (&m, &c)) in main.iter().zip(correct_bits).enumerate() {
                if m != c {
                    let r = rank_of(pos);
                    acc.rank_hits[r] += 1;
                    best_rank = best_rank.min(r);
                }
            }
            if best_rank < msb_cut {
                acc.msb_hits += 1;
            }
        } else if main != shadow {
            acc.false_alarms += 1;
        }
    };

    let prog = if cfg.backend.wants_batch(delay) {
        crate::resilience::compile_batch_or_degrade(&format!("campaign.{arch}"), netlist, delay)
    } else {
        None
    };
    let started = Instant::now();

    let per_site: Vec<Acc> = parallel_map(&sites, |site_idx, &site| {
        crate::resilience::check_cancelled();
        let site_seed = cfg.seed ^ (site_idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        match &prog {
            Some(prog) => match crate::backend::lane_words() {
                1 => batch_site_accumulate::<u64, _>(
                    prog, wires, t_main, t_shadow, n_ranks, site_seed, site, period, class, cfg,
                    &draw, &record,
                ),
                2 => batch_site_accumulate::<LaneBlock<2>, _>(
                    prog, wires, t_main, t_shadow, n_ranks, site_seed, site, period, class, cfg,
                    &draw, &record,
                ),
                8 => batch_site_accumulate::<LaneBlock<8>, _>(
                    prog, wires, t_main, t_shadow, n_ranks, site_seed, site, period, class, cfg,
                    &draw, &record,
                ),
                _ => batch_site_accumulate::<LaneBlock<4>, _>(
                    prog, wires, t_main, t_shadow, n_ranks, site_seed, site, period, class, cfg,
                    &draw, &record,
                ),
            },
            None => parallel_accumulate(
                cfg.samples_per_site,
                site_seed,
                || Acc::new(n_ranks),
                |rng, acc| {
                    crate::resilience::check_cancelled();
                    let inputs = draw(rng);
                    let plan = class.plan(site, rng, period, cfg);
                    let clean = simulate_from_zero(netlist, delay, &inputs);
                    let correct_bits = clean.final_bus(wires);
                    acc.stats.backend = "event";
                    acc.stats.vectors += 1;
                    acc.stats.event_runs += 2;
                    let Ok(faulty) =
                        simulate_from_zero_with_faults(netlist, delay, &inputs, &plan, budget)
                    else {
                        acc.unsettled += 1;
                        return;
                    };
                    acc.stats.ts_points += 2;
                    record(
                        acc,
                        &correct_bits,
                        &faulty.sample_bus(wires, t_main),
                        &faulty.sample_bus(wires, t_shadow),
                    );
                },
                Acc::merge,
            ),
        }
    });

    let mut total = per_site.iter().fold(Acc::new(n_ranks), Acc::merge);
    total.stats.wall = started.elapsed();
    total.stats.publish();
    crate::obs::registry().counter("ola.campaign.unsettled").add(total.unsettled as u64);
    let evaluated = total.samples.max(1) as f64;
    let clean_samples = (total.samples - total.errors).max(1) as f64;
    let site_reports = sites
        .iter()
        .zip(&per_site)
        .map(|(&site, a)| {
            let s = a.samples.max(1) as f64;
            SiteReport {
                site: site.index(),
                error_rate: a.errors as f64 / s,
                mean_error: a.err_sum / s,
                worst_error: a.worst,
                detected_rate: if a.errors > 0 { a.detected as f64 / a.errors as f64 } else { 1.0 },
            }
        })
        .collect();

    let report = CampaignReport {
        arch: arch.to_string(),
        fault_class: class,
        sites: sites.len(),
        samples_per_site: cfg.samples_per_site,
        seed: cfg.seed,
        critical_path: period,
        error_rate: total.errors as f64 / evaluated,
        mean_error: total.err_sum / evaluated,
        worst_error: total.worst,
        worst_error_raw: total.worst_raw,
        detection_coverage: if total.errors > 0 {
            total.detected as f64 / total.errors as f64
        } else {
            1.0
        },
        false_alarm_rate: total.false_alarms as f64 / clean_samples,
        msb_vulnerability: if total.errors > 0 {
            total.msb_hits as f64 / total.errors as f64
        } else {
            0.0
        },
        rank_profile: total.rank_hits.iter().map(|&h| h as f64 / evaluated).collect(),
        unsettled: total.unsettled,
        site_reports,
    };
    (report, total.stats)
}

/// Full-scale value of an online result bus: every digit at `+1`.
fn online_full_scale(digits: usize) -> f64 {
    digits_value(&vec![Digit::from_bits(true, false); digits]).to_f64()
}

/// Runs a single-fault campaign over a synthesized online (MSD-first)
/// multiplier.
///
/// Errors are normalized by the representable output range (all output
/// digits at `+1`), so the worst possible single-digit corruption —
/// flipping the most-significant digit `z_{−δ}` by two units — is about
/// half of full scale.
///
/// # Panics
///
/// Panics if `cfg.samples_per_site` is zero.
#[must_use]
pub fn online_fault_campaign<M: DelayModel + Sync>(
    circuit: &OnlineMultiplierCircuit,
    delay: &M,
    model: InputModel,
    class: FaultClass,
    cfg: &CampaignConfig,
) -> CampaignReport {
    online_fault_campaign_with_stats(circuit, delay, model, class, cfg).0
}

/// [`online_fault_campaign`] plus the backend's observability counters.
///
/// # Panics
///
/// Panics if `cfg.samples_per_site` is zero.
#[must_use]
pub fn online_fault_campaign_with_stats<M: DelayModel + Sync>(
    circuit: &OnlineMultiplierCircuit,
    delay: &M,
    model: InputModel,
    class: FaultClass,
    cfg: &CampaignConfig,
) -> (CampaignReport, BackendStats) {
    let zp = circuit.netlist.output("zp").to_vec();
    let zn = circuit.netlist.output("zn").to_vec();
    let digits = zp.len();
    let wires: Vec<NetId> = zp.iter().chain(&zn).copied().collect();
    let n = circuit.n;
    let full_scale = online_full_scale(digits);
    run_campaign(
        "online",
        &circuit.netlist,
        &wires,
        digits,
        &move |pos| pos % digits,
        full_scale,
        delay,
        |rng| {
            let x = model.draw(rng, n);
            let y = model.draw(rng, n);
            circuit.encode_inputs(&x, &y)
        },
        |bits| {
            let (p, q) = bits.split_at(digits);
            let ds: Vec<Digit> = p.iter().zip(q).map(|(&a, &b)| Digit::from_bits(a, b)).collect();
            digits_value(&ds).to_f64() / full_scale
        },
        class,
        cfg,
    )
}

/// Runs a single-fault campaign over a synthesized two's-complement array
/// multiplier.
///
/// Errors are normalized by the representable product range `2^(2w−1)`, so
/// a corrupted sign bit is exactly full scale — the conventional encoding's
/// catastrophic failure mode.
///
/// # Panics
///
/// Panics if `cfg.samples_per_site` is zero.
#[must_use]
pub fn array_fault_campaign<M: DelayModel + Sync>(
    circuit: &ArrayMultiplierCircuit,
    delay: &M,
    class: FaultClass,
    cfg: &CampaignConfig,
) -> CampaignReport {
    array_fault_campaign_with_stats(circuit, delay, class, cfg).0
}

/// [`array_fault_campaign`] plus the backend's observability counters.
///
/// # Panics
///
/// Panics if `cfg.samples_per_site` is zero.
#[must_use]
pub fn array_fault_campaign_with_stats<M: DelayModel + Sync>(
    circuit: &ArrayMultiplierCircuit,
    delay: &M,
    class: FaultClass,
    cfg: &CampaignConfig,
) -> (CampaignReport, BackendStats) {
    let wires = circuit.netlist.output("product").to_vec();
    let bits = wires.len();
    let w = circuit.width;
    let lim = 1i64 << (w - 1);
    let full_scale = ((2 * w - 1) as f64).exp2();
    run_campaign(
        "conventional",
        &circuit.netlist,
        &wires,
        bits,
        &move |pos| bits - 1 - pos,
        full_scale,
        delay,
        |rng| {
            let a = rng.gen_range(-lim..lim);
            let b = rng.gen_range(-lim..lim);
            circuit.encode_inputs(a, b)
        },
        |out| circuit.decode_product(out) as f64 / full_scale,
        class,
        cfg,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_arith::synth::{array_multiplier, online_multiplier};
    use ola_netlist::UnitDelay;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            samples_per_site: 4,
            max_sites: Some(10),
            seed: 11,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaigns_are_seed_reproducible() {
        let om = online_multiplier(4, 3);
        let run = || {
            online_fault_campaign(
                &om,
                &UnitDelay,
                InputModel::UniformDigits,
                FaultClass::StuckAt1,
                &quick_cfg(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let om = online_multiplier(4, 3);
        let run = || {
            online_fault_campaign(
                &om,
                &UnitDelay,
                InputModel::UniformDigits,
                FaultClass::Transient,
                &quick_cfg(),
            )
        };
        let _env =
            crate::parallel::ENV_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        std::env::set_var("OLA_THREADS", "1");
        let serial = run();
        std::env::set_var("OLA_THREADS", "4");
        let parallel = run();
        std::env::remove_var("OLA_THREADS");
        assert_eq!(serial, parallel);
    }

    #[test]
    fn stuck_at_faults_hurt_conventional_more_than_online() {
        // The resilience headline: worst normalized single-fault damage.
        let om = online_multiplier(5, 3);
        let am = array_multiplier(6);
        let cfg = CampaignConfig { samples_per_site: 6, max_sites: None, ..quick_cfg() };
        let mut worst_on: f64 = 0.0;
        let mut worst_conv: f64 = 0.0;
        for class in [FaultClass::StuckAt0, FaultClass::StuckAt1] {
            let on = online_fault_campaign(&om, &UnitDelay, InputModel::UniformDigits, class, &cfg);
            let conv = array_fault_campaign(&am, &UnitDelay, class, &cfg);
            assert!(on.error_rate > 0.0 && conv.error_rate > 0.0);
            worst_on = worst_on.max(on.worst_error);
            worst_conv = worst_conv.max(conv.worst_error);
        }
        assert!(
            worst_on < worst_conv,
            "online worst {worst_on} must beat conventional worst {worst_conv}"
        );
        // And the conventional sign bit really is reachable: full scale.
        assert!(worst_conv > 0.9, "conventional worst {worst_conv} should approach full scale");
    }

    #[test]
    fn report_shapes_are_consistent() {
        let om = online_multiplier(4, 3);
        let cfg = quick_cfg();
        let rep = online_fault_campaign(
            &om,
            &UnitDelay,
            InputModel::UniformDigits,
            FaultClass::Transient,
            &cfg,
        );
        assert_eq!(rep.sites, rep.site_reports.len());
        assert!(rep.sites <= 10);
        assert_eq!(rep.rank_profile.len(), om.n + 3);
        assert!(rep.error_rate >= 0.0 && rep.error_rate <= 1.0);
        assert!(rep.detection_coverage >= 0.0 && rep.detection_coverage <= 1.0);
        assert!(rep.worst_error_raw >= rep.worst_error, "raw scale is larger");
        assert_eq!(rep.unsettled, 0, "multiplier netlists are acyclic");
    }

    #[test]
    fn exhaustive_sites_and_subsampling_agree_on_shape() {
        let om = online_multiplier(3, 3);
        let n_all = logic_fault_sites(&om.netlist).len();
        let cfg = CampaignConfig { max_sites: None, samples_per_site: 2, ..quick_cfg() };
        let rep = online_fault_campaign(
            &om,
            &UnitDelay,
            InputModel::UniformDigits,
            FaultClass::StuckAt0,
            &cfg,
        );
        assert_eq!(rep.sites, n_all);
    }

    #[test]
    fn batch_and_event_campaigns_are_bit_identical() {
        // Transient plans consume rng *after* the operand draw, so this
        // also pins the shared random-stream ordering across backends.
        let om = online_multiplier(4, 3);
        let am = array_multiplier(5);
        for class in FaultClass::ALL {
            let cfg_ev = CampaignConfig { backend: SimBackend::Event, ..quick_cfg() };
            let cfg_ba = CampaignConfig { backend: SimBackend::Batch, ..quick_cfg() };
            let (ev, ev_stats) = online_fault_campaign_with_stats(
                &om,
                &UnitDelay,
                InputModel::UniformDigits,
                class,
                &cfg_ev,
            );
            let (ba, ba_stats) = online_fault_campaign_with_stats(
                &om,
                &UnitDelay,
                InputModel::UniformDigits,
                class,
                &cfg_ba,
            );
            assert_eq!(ev, ba, "online {class:?} reports must match");
            assert_eq!(ev_stats.backend, "event");
            assert_eq!(ba_stats.backend, "batch");
            assert_eq!(ev_stats.vectors, ba_stats.vectors);
            let ev = array_fault_campaign(&am, &UnitDelay, class, &cfg_ev);
            let ba = array_fault_campaign(&am, &UnitDelay, class, &cfg_ba);
            assert_eq!(ev, ba, "array {class:?} reports must match");
        }
    }

    #[test]
    fn campaign_batch_request_on_jitter_falls_back_to_event() {
        use ola_netlist::JitteredDelay;
        let om = online_multiplier(3, 3);
        let delay = JitteredDelay::new(UnitDelay, 15, 3);
        let cfg = CampaignConfig { backend: SimBackend::Batch, ..quick_cfg() };
        let (rep, stats) = online_fault_campaign_with_stats(
            &om,
            &delay,
            InputModel::UniformDigits,
            FaultClass::StuckAt0,
            &cfg,
        );
        assert_eq!(stats.backend, "event", "jitter is not batch-exact");
        assert_eq!(stats.batch_runs, 0);
        let cfg_auto = CampaignConfig { backend: SimBackend::Auto, ..cfg };
        let auto = online_fault_campaign(
            &om,
            &delay,
            InputModel::UniformDigits,
            FaultClass::StuckAt0,
            &cfg_auto,
        );
        assert_eq!(rep, auto, "backend choice must not leak into the report");
    }

    #[test]
    fn delay_push_on_rated_clock_is_mostly_harmless_online() {
        // A single slower gate rarely breaks the rated period of an online
        // multiplier — settling finishes well before the structural bound.
        let om = online_multiplier(5, 3);
        let cfg = quick_cfg();
        let rep = online_fault_campaign(
            &om,
            &UnitDelay,
            InputModel::UniformDigits,
            FaultClass::DelayPush,
            &cfg,
        );
        assert!(rep.error_rate <= 0.5, "delay pushes should be mostly absorbed");
    }
}
