//! Lightweight hierarchical tracing spans.
//!
//! [`span`] returns a guard; the enclosed work is timed from construction
//! to drop. Spans nest per thread (a thread-local depth counter), carry
//! both wall-clock and monotonic timestamps, and are recorded into a
//! bounded ring buffer that the `repro` binary drains into each
//! experiment's run manifest ([`drain_spans`]).
//!
//! Live emission is controlled by `OLA_TRACE`:
//!
//! * `off` (default) — record into the ring buffer only;
//! * `pretty` — additionally print one indented line per completed span to
//!   stderr;
//! * `json` — additionally print one JSON object per completed span to
//!   stderr (machine-tailable).
//!
//! Overhead discipline: spans are placed at *run* granularity (a sweep, a
//! campaign, a batch compile) — never per sample or per event — so the
//! cost with `OLA_TRACE=off` is two `Instant::now` calls and one short
//! mutex-guarded ring push per span. `OLA_OBS=off` (or
//! [`set_recording(false)`](set_recording)) turns even that off, leaving a
//! depth-counter-only guard; the CI overhead smoke holds the difference
//! under the documented budget.

use std::borrow::Cow;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Live span emission mode (`OLA_TRACE`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// Ring buffer only (the default).
    #[default]
    Off,
    /// Indented human-readable lines on stderr.
    Pretty,
    /// One JSON object per span on stderr.
    Json,
}

impl TraceMode {
    /// Parses an `OLA_TRACE` / `--trace` value.
    #[must_use]
    pub fn parse(s: &str) -> Option<TraceMode> {
        match s {
            "off" => Some(TraceMode::Off),
            "pretty" => Some(TraceMode::Pretty),
            "json" => Some(TraceMode::Json),
            _ => None,
        }
    }

    /// The flag spelling of this mode.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Pretty => "pretty",
            TraceMode::Json => "json",
        }
    }
}

const MODE_UNSET: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);
static RECORDING: AtomicBool = AtomicBool::new(true);
static RECORDING_INIT: std::sync::Once = std::sync::Once::new();

fn encode(mode: TraceMode) -> u8 {
    match mode {
        TraceMode::Off => 0,
        TraceMode::Pretty => 1,
        TraceMode::Json => 2,
    }
}

/// The active trace mode, reading `OLA_TRACE` on first use. An invalid
/// value warns once on stderr and falls back to `off`.
#[must_use]
pub fn mode() -> TraceMode {
    match MODE.load(Ordering::Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Pretty,
        2 => TraceMode::Json,
        _ => {
            let m = match std::env::var("OLA_TRACE") {
                Ok(v) => {
                    let v = v.trim();
                    TraceMode::parse(v).unwrap_or_else(|| {
                        if !v.is_empty() {
                            eprintln!(
                                "[ola] warning: OLA_TRACE={v:?} is not one of off|pretty|json; \
                                 tracing stays off"
                            );
                        }
                        TraceMode::Off
                    })
                }
                Err(_) => TraceMode::Off,
            };
            MODE.store(encode(m), Ordering::Relaxed);
            m
        }
    }
}

/// Overrides the trace mode (e.g. from `repro --trace`).
pub fn set_mode(mode: TraceMode) {
    MODE.store(encode(mode), Ordering::Relaxed);
}

/// Whether spans are recorded at all; reads `OLA_OBS` once (`off`/`0`
/// disables recording).
fn recording() -> bool {
    RECORDING_INIT.call_once(|| {
        if let Ok(v) = std::env::var("OLA_OBS") {
            let v = v.trim();
            if v == "off" || v == "0" {
                RECORDING.store(false, Ordering::Relaxed);
            }
        }
    });
    RECORDING.load(Ordering::Relaxed)
}

/// Enables or disables span recording entirely (the `OLA_OBS` switch).
pub fn set_recording(on: bool) {
    RECORDING_INIT.call_once(|| {});
    RECORDING.store(on, Ordering::Relaxed);
}

/// One completed span, as stored in the ring buffer and in run manifests.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (static at most call sites; `experiment.*` names are
    /// built dynamically by the `repro` binary).
    pub name: Cow<'static, str>,
    /// Small per-process thread ordinal (main thread observes 1-ish;
    /// ordinals are assigned in first-span order).
    pub thread: u64,
    /// Nesting depth on its thread (0 = root).
    pub depth: u32,
    /// Wall-clock start, milliseconds since the Unix epoch.
    pub start_unix_ms: u64,
    /// Monotonic start, microseconds since the process's first span.
    pub start_us: u64,
    /// Duration, microseconds (monotonic).
    pub dur_us: u64,
}

const RING_CAP: usize = 4096;

static RING: Mutex<VecDeque<SpanRecord>> = Mutex::new(VecDeque::new());
static THREAD_SEQ: AtomicU64 = AtomicU64::new(1);

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

thread_local! {
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    static THREAD_ORDINAL: Cell<u64> = const { Cell::new(0) };
}

fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|c| {
        let mut v = c.get();
        if v == 0 {
            v = THREAD_SEQ.fetch_add(1, Ordering::Relaxed);
            c.set(v);
        }
        v
    })
}

/// An in-flight span; the timed region ends when the guard drops.
#[must_use = "a span measures the region until the guard drops"]
pub struct Span {
    name: Cow<'static, str>,
    depth: u32,
    start: Instant,
    start_unix_ms: u64,
    recorded: bool,
}

/// Opens a span. The guard must be held for the duration of the timed
/// region (bind it to `_span`, not `_`).
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    let recorded = recording();
    let depth = DEPTH.with(|d| {
        let v = d.get();
        d.set(v + 1);
        v
    });
    let (start, start_unix_ms) = if recorded {
        let now = Instant::now();
        let _ = epoch(); // pin the process epoch no later than the first span
        let unix =
            SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or(Duration::ZERO).as_millis();
        (now, u64::try_from(unix).unwrap_or(u64::MAX))
    } else {
        (epoch(), 0)
    };
    Span { name: name.into(), depth, start, start_unix_ms, recorded }
}

impl Drop for Span {
    fn drop(&mut self) {
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        if !self.recorded {
            return;
        }
        let dur = self.start.elapsed();
        let record = SpanRecord {
            name: std::mem::replace(&mut self.name, Cow::Borrowed("")),
            thread: thread_ordinal(),
            depth: self.depth,
            start_unix_ms: self.start_unix_ms,
            start_us: u64::try_from(self.start.saturating_duration_since(epoch()).as_micros())
                .unwrap_or(u64::MAX),
            dur_us: u64::try_from(dur.as_micros()).unwrap_or(u64::MAX),
        };
        match mode() {
            TraceMode::Off => {}
            TraceMode::Pretty => {
                let indent = "  ".repeat(record.depth as usize);
                eprintln!(
                    "[trace] {indent}{} {:.3}ms (t{})",
                    record.name,
                    record.dur_us as f64 / 1000.0,
                    record.thread
                );
            }
            TraceMode::Json => {
                eprintln!(
                    "{{\"type\":\"span\",\"name\":\"{}\",\"thread\":{},\"depth\":{},\
                     \"start_unix_ms\":{},\"start_us\":{},\"dur_us\":{}}}",
                    crate::obs::json::escape(&record.name),
                    record.thread,
                    record.depth,
                    record.start_unix_ms,
                    record.start_us,
                    record.dur_us
                );
            }
        }
        let mut ring = RING.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() == RING_CAP {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

/// Drains every recorded span (oldest first), emptying the ring buffer.
/// The `repro` binary calls this per experiment so each manifest carries
/// only its own spans.
#[must_use]
pub fn drain_spans() -> Vec<SpanRecord> {
    let mut ring = RING.lock().unwrap_or_else(PoisonError::into_inner);
    ring.drain(..).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module share the global ring; serialize them.
    static LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_record() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_recording(true);
        let _ = drain_spans();
        {
            let _outer = span("outer");
            std::thread::sleep(Duration::from_millis(2));
            {
                let _inner = span("inner");
            }
        }
        let spans = drain_spans();
        assert_eq!(spans.len(), 2, "inner closes first, then outer");
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert!(spans[1].dur_us >= spans[0].dur_us, "outer contains inner");
        assert!(spans[1].dur_us >= 2_000, "slept 2ms inside outer");
        assert_eq!(spans[0].thread, spans[1].thread);
    }

    #[test]
    fn disabled_recording_skips_the_ring() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_recording(true);
        let _ = drain_spans();
        set_recording(false);
        {
            let _s = span("ghost");
        }
        set_recording(true);
        assert!(drain_spans().is_empty(), "disabled spans leave no trace");
    }

    #[test]
    fn ring_is_bounded() {
        let _guard = LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        set_recording(true);
        let _ = drain_spans();
        for i in 0..(RING_CAP + 10) {
            let _s = span(format!("s{i}"));
        }
        let spans = drain_spans();
        assert_eq!(spans.len(), RING_CAP);
        assert_eq!(spans.last().unwrap().name, format!("s{}", RING_CAP + 9));
    }

    #[test]
    fn mode_parses_and_roundtrips() {
        for m in [TraceMode::Off, TraceMode::Pretty, TraceMode::Json] {
            assert_eq!(TraceMode::parse(m.label()), Some(m));
        }
        assert_eq!(TraceMode::parse("verbose"), None);
        set_mode(TraceMode::Json);
        assert_eq!(mode(), TraceMode::Json);
        set_mode(TraceMode::Off);
        assert_eq!(mode(), TraceMode::Off);
    }
}
