//! Per-experiment run manifests.
//!
//! A [`RunManifest`] certifies one `repro` experiment run: what was run
//! (experiment name, backend, scale, seeds), in what environment (git
//! describe, `OLA_THREADS` resolution, trace mode), what happened (span
//! timings, metric snapshot deltas, free-form annotations), and exactly
//! which bytes were produced ([`OutputRecord`] with size and SHA-256 per
//! emitted file). The schema is versioned ([`SCHEMA`]) and covered by a
//! golden test in `ola-bench`; the CI `manifest_check` binary re-parses
//! every manifest and re-hashes every listed output.

use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::obs::json::JsonValue;
use crate::obs::registry::MetricSnapshot;
use crate::obs::sha256;
use crate::obs::trace::SpanRecord;

/// The manifest schema identifier. Bump the suffix on breaking changes.
pub const SCHEMA: &str = "ola.run-manifest/v1";

/// One emitted results file: where it is, how big, and its SHA-256.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputRecord {
    /// Path as recorded (relative to the repo root in `repro` runs).
    pub path: String,
    /// File size in bytes at hashing time.
    pub bytes: u64,
    /// Lowercase hex SHA-256 of the file contents.
    pub sha256: String,
}

impl OutputRecord {
    /// Hashes the file at `path`, recording it under `label`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (missing file, permissions).
    pub fn capture(label: &str, path: &Path) -> io::Result<OutputRecord> {
        let bytes = std::fs::metadata(path)?.len();
        let sha256 = sha256::file_digest(path)?;
        Ok(OutputRecord { path: label.to_owned(), bytes, sha256 })
    }
}

/// How `OLA_THREADS` resolved for this run.
///
/// Kept in the manifest — never in the metrics registry — so metric
/// snapshots stay bit-identical across thread counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadsRecord {
    /// The raw environment value, if set.
    pub raw: Option<String>,
    /// The worker count actually used.
    pub resolved: u64,
    /// True when `raw` was present but unusable and the hardware default
    /// was substituted.
    pub fallback: bool,
}

/// A complete run manifest for one experiment.
#[derive(Clone, Debug, PartialEq)]
pub struct RunManifest {
    /// Experiment name (e.g. `fig4`).
    pub experiment: String,
    /// Wall-clock creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
    /// `git describe --always --dirty` of the working tree, or `unknown`.
    pub git: String,
    /// Backend label (`auto`, `event`, `batch`).
    pub backend: String,
    /// The `--scale` factor the run used.
    pub scale: f64,
    /// Named master seeds, in registration order.
    pub seeds: Vec<(String, u64)>,
    /// `OLA_THREADS` resolution.
    pub ola_threads: ThreadsRecord,
    /// Trace mode label (`off` / `pretty` / `json`).
    pub trace: String,
    /// Free-form `key = value` annotations (Ts grids, sweep shapes, …).
    pub annotations: Vec<(String, String)>,
    /// Spans recorded during the experiment (drained from the ring).
    pub spans: Vec<SpanRecord>,
    /// Metric snapshot delta attributable to this experiment.
    pub metrics: MetricSnapshot,
    /// Every results file the experiment emitted, hashed.
    pub outputs: Vec<OutputRecord>,
}

impl RunManifest {
    /// Creation timestamp helper: now, in Unix milliseconds.
    #[must_use]
    pub fn now_unix_ms() -> u64 {
        let ms = SystemTime::now().duration_since(UNIX_EPOCH).unwrap_or_default().as_millis();
        u64::try_from(ms).unwrap_or(u64::MAX)
    }

    /// The manifest as a JSON document (stable field order).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let seeds = JsonValue::Object(
            self.seeds.iter().map(|(k, v)| (k.clone(), JsonValue::U64(*v))).collect(),
        );
        let threads = JsonValue::Object(vec![
            ("raw".into(), self.ola_threads.raw.clone().map_or(JsonValue::Null, JsonValue::Str)),
            ("resolved".into(), JsonValue::U64(self.ola_threads.resolved)),
            ("fallback".into(), JsonValue::Bool(self.ola_threads.fallback)),
        ]);
        let annotations = JsonValue::Object(
            self.annotations.iter().map(|(k, v)| (k.clone(), JsonValue::str(v.clone()))).collect(),
        );
        let spans = JsonValue::Array(
            self.spans
                .iter()
                .map(|s| {
                    JsonValue::Object(vec![
                        ("name".into(), JsonValue::str(s.name.to_string())),
                        ("thread".into(), JsonValue::U64(s.thread)),
                        ("depth".into(), JsonValue::U64(u64::from(s.depth))),
                        ("start_unix_ms".into(), JsonValue::U64(s.start_unix_ms)),
                        ("start_us".into(), JsonValue::U64(s.start_us)),
                        ("dur_us".into(), JsonValue::U64(s.dur_us)),
                    ])
                })
                .collect(),
        );
        let metrics = JsonValue::Object(vec![
            (
                "counters".into(),
                JsonValue::Object(
                    self.metrics
                        .counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::U64(v)))
                        .collect(),
                ),
            ),
            (
                "gauges".into(),
                JsonValue::Object(
                    self.metrics
                        .gauges
                        .iter()
                        .map(|(k, &v)| (k.clone(), JsonValue::int(v)))
                        .collect(),
                ),
            ),
        ]);
        let outputs = JsonValue::Array(
            self.outputs
                .iter()
                .map(|o| {
                    JsonValue::Object(vec![
                        ("path".into(), JsonValue::str(o.path.clone())),
                        ("bytes".into(), JsonValue::U64(o.bytes)),
                        ("sha256".into(), JsonValue::str(o.sha256.clone())),
                    ])
                })
                .collect(),
        );
        JsonValue::Object(vec![
            ("schema".into(), JsonValue::str(SCHEMA)),
            ("experiment".into(), JsonValue::str(self.experiment.clone())),
            ("created_unix_ms".into(), JsonValue::U64(self.created_unix_ms)),
            ("git".into(), JsonValue::str(self.git.clone())),
            ("backend".into(), JsonValue::str(self.backend.clone())),
            ("scale".into(), JsonValue::F64(self.scale)),
            ("seeds".into(), seeds),
            ("ola_threads".into(), threads),
            ("trace".into(), JsonValue::str(self.trace.clone())),
            ("annotations".into(), annotations),
            ("spans".into(), spans),
            ("metrics".into(), metrics),
            ("outputs".into(), outputs),
        ])
    }

    /// Writes `<dir>/<experiment>.json` (pretty-printed, trailing newline),
    /// creating `dir` first. Returns the path written.
    ///
    /// The write is atomic (tmp file + rename), so a crash mid-write never
    /// leaves a truncated manifest for `manifest_check` to choke on.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        let mut text = self.to_json().render_pretty();
        text.push('\n');
        crate::resilience::atomic_write(&path, text.as_bytes())?;
        Ok(path)
    }
}

/// `git describe --always --dirty` of the current working tree, or
/// `"unknown"` when git is unavailable (e.g. a source tarball).
#[must_use]
pub fn git_describe() -> String {
    let out = std::process::Command::new("git").args(["describe", "--always", "--dirty"]).output();
    match out {
        Ok(o) if o.status.success() => {
            let s = String::from_utf8_lossy(&o.stdout).trim().to_owned();
            if s.is_empty() {
                "unknown".to_owned()
            } else {
                s
            }
        }
        _ => "unknown".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::json;
    use std::borrow::Cow;

    fn sample() -> RunManifest {
        RunManifest {
            experiment: "unit".into(),
            created_unix_ms: 1_700_000_000_000,
            git: "abc1234-dirty".into(),
            backend: "batch".into(),
            scale: 0.25,
            seeds: vec![("mc".into(), 2014)],
            ola_threads: ThreadsRecord { raw: Some("4".into()), resolved: 4, fallback: false },
            trace: "off".into(),
            annotations: vec![("ts_grid".into(), "10..200 step 10".into())],
            spans: vec![SpanRecord {
                name: Cow::Borrowed("experiment.unit"),
                thread: 1,
                depth: 0,
                start_unix_ms: 1_700_000_000_000,
                start_us: 12,
                dur_us: 3_456,
            }],
            metrics: {
                let mut m = MetricSnapshot::default();
                m.counters.insert("ola.sim.event.runs".into(), 7);
                m.gauges.insert("ola.batch.depth".into(), 19);
                m
            },
            outputs: vec![OutputRecord {
                path: "results/unit.csv".into(),
                bytes: 10,
                sha256: "0".repeat(64),
            }],
        }
    }

    #[test]
    fn manifest_json_has_the_full_schema_field_set() {
        let v = sample().to_json();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            [
                "schema",
                "experiment",
                "created_unix_ms",
                "git",
                "backend",
                "scale",
                "seeds",
                "ola_threads",
                "trace",
                "annotations",
                "spans",
                "metrics",
                "outputs"
            ]
        );
        assert_eq!(v.get("schema").unwrap().as_str(), Some(SCHEMA));
        assert_eq!(v.get("seeds").unwrap().get("mc").unwrap().as_u64(), Some(2014));
        let threads = v.get("ola_threads").unwrap();
        assert_eq!(threads.get("resolved").unwrap().as_u64(), Some(4));
        assert_eq!(threads.get("fallback"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn write_then_parse_roundtrips() {
        let dir = std::env::temp_dir().join(format!("ola_manifest_{}", std::process::id()));
        let m = sample();
        let path = m.write(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = json::parse(&text).unwrap();
        assert_eq!(parsed, m.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn output_record_hashes_real_bytes() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ola_manifest_out_{}.bin", std::process::id()));
        std::fs::write(&path, b"hello manifest").unwrap();
        let rec = OutputRecord::capture("results/x.bin", &path).unwrap();
        assert_eq!(rec.path, "results/x.bin");
        assert_eq!(rec.bytes, 14);
        assert_eq!(rec.sha256, sha256::hex_digest(b"hello manifest"));
        let _ = std::fs::remove_file(&path);
        assert!(OutputRecord::capture("gone", &path).is_err());
    }

    #[test]
    fn git_describe_never_panics() {
        let s = git_describe();
        assert!(!s.is_empty());
    }
}
