//! Typed metrics registry: counters, gauges, and log₂ histograms.
//!
//! The registry is the cross-experiment store behind the observability
//! layer. Instrumentation sites resolve a handle once
//! ([`Registry::counter`] / [`Registry::gauge`] / [`Registry::histogram`])
//! and then update it with relaxed atomics — wait-free on the hot path.
//!
//! **Determinism contract.** Every value recorded into the registry must
//! be *simulation-domain* (event counts, settle times in simulated time
//! units, lane counts, probe counts) — never wall-clock time. Sums of such
//! values are commutative, so [`Registry::snapshot`] totals are
//! bit-identical regardless of worker-thread count or interleaving; the
//! `OLA_THREADS=1` vs `=4` proptest holds the whole instrumentation set to
//! that standard. Wall-clock timing lives in spans
//! ([`trace`](crate::obs::trace)), which are deliberately excluded from
//! snapshot equality.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// A monotonically increasing sum.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A last-write-wins instantaneous value.
///
/// Only record *deterministic* quantities (e.g. the depth of the last
/// compiled batch program) — see the module docs.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of log₂ buckets: bucket `k < 64` counts values `v` with
/// `bit_length(v) == k` (i.e. `v == 0` → bucket 0, `1` → 1, `2..3` → 2,
/// `4..7` → 3, …); the top bucket catches the rest.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram over `u64` samples, with exact count and sum.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Bucket index of a sample: its bit length.
    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Exact sum of recorded samples (wrapping on overflow).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// `(bucket_index, count)` for every non-empty bucket, ascending.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((i, n))
            })
            .collect()
    }
}

/// A point-in-time copy of every metric, keyed by metric name.
///
/// Counters appear under their name; gauges under their name (as `i64`
/// values); histograms expand to `name/count`, `name/sum` and one
/// `name/bl<k>` entry per non-empty bit-length bucket. All values are
/// integers, so snapshot equality and [`MetricSnapshot::diff`] are exact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricSnapshot {
    /// Counter and histogram totals (monotone, diffable).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values (instantaneous, not diffed — the later value wins).
    pub gauges: BTreeMap<String, i64>,
}

impl MetricSnapshot {
    /// The change since `earlier`: counters subtract (saturating, dropping
    /// zero entries); gauges keep this snapshot's values.
    #[must_use]
    pub fn diff(&self, earlier: &MetricSnapshot) -> MetricSnapshot {
        let counters = self
            .counters
            .iter()
            .filter_map(|(k, &v)| {
                let delta = v.saturating_sub(earlier.counters.get(k).copied().unwrap_or(0));
                (delta > 0).then(|| (k.clone(), delta))
            })
            .collect();
        MetricSnapshot { counters, gauges: self.gauges.clone() }
    }

    /// True when no counter moved and no gauge is set.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named family of metrics.
///
/// `ola-core` keeps one process-global registry
/// ([`crate::obs::registry`]); independent registries can be created for
/// tests.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// The histogram named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        match map
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// A point-in-time copy of every registered metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricSnapshot {
        let map = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let mut snap = MetricSnapshot::default();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name.clone(), g.get());
                }
                Metric::Histogram(h) => {
                    snap.counters.insert(format!("{name}/count"), h.count());
                    snap.counters.insert(format!("{name}/sum"), h.sum());
                    for (bucket, n) in h.nonzero_buckets() {
                        snap.counters.insert(format!("{name}/bl{bucket}"), n);
                    }
                }
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("x");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("x").get(), 5, "same handle behind the name");
        let g = r.gauge("g");
        g.set(-7);
        g.add(3);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 0u64.wrapping_add(1 + 2 + 3 + 4 + 1000).wrapping_add(u64::MAX));
        let buckets: BTreeMap<usize, u64> = h.nonzero_buckets().into_iter().collect();
        assert_eq!(buckets[&0], 1, "0");
        assert_eq!(buckets[&1], 1, "1");
        assert_eq!(buckets[&2], 2, "2..3");
        assert_eq!(buckets[&3], 1, "4..7");
        assert_eq!(buckets[&10], 1, "512..1023");
        assert_eq!(buckets[&64], 1, "top");
    }

    #[test]
    fn snapshot_diff_subtracts_counters() {
        let r = Registry::new();
        r.counter("a").add(10);
        let before = r.snapshot();
        r.counter("a").add(5);
        r.counter("b").add(2);
        r.histogram("h").observe(3);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counters["a"], 5);
        assert_eq!(d.counters["b"], 2);
        assert_eq!(d.counters["h/count"], 1);
        assert_eq!(d.counters["h/sum"], 3);
        assert_eq!(d.counters["h/bl2"], 1);
        assert!(after.diff(&after).is_empty() || !after.gauges.is_empty());
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_is_rejected() {
        let r = Registry::new();
        let _ = r.gauge("m");
        let _ = r.counter("m");
    }

    #[test]
    fn concurrent_adds_sum_exactly() {
        let r = Registry::new();
        let c = r.counter("n");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}
