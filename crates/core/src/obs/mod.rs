//! # Observability: tracing spans, metrics registry, run manifests.
//!
//! Three cooperating pieces, all zero-dependency:
//!
//! * [`trace`] — hierarchical span guards ([`span`]) with a bounded ring
//!   buffer and optional live emission (`OLA_TRACE=pretty|json`);
//! * [`registry`] — the process-global typed metrics [`Registry`]
//!   ([`registry()`]): counters, gauges, and log₂ histograms updated with
//!   relaxed atomics. Only *deterministic, simulation-domain* values are
//!   recorded, so snapshots are bit-identical across `OLA_THREADS`
//!   settings;
//! * [`manifest`] — per-experiment [`RunManifest`]s binding spans, metric
//!   deltas, seeds, environment, and the SHA-256 ([`sha256`]) of every
//!   emitted file into one versioned JSON document ([`json`]).
//!
//! Calling [`registry()`] (or [`init`]) once also installs the
//! [`ola_netlist::obs::SimObserver`] bridge, so the netlist engines feed
//! `ola.sim.*` / `ola.batch.*` metrics without `ola-netlist` depending on
//! this crate.
//!
//! ## Metric naming
//!
//! Dotted, lowercase, subsystem-first: `ola.<subsystem>.<what>` (e.g.
//! `ola.sim.event.runs`, `ola.batch.lane_transitions`,
//! `ola.sweep.probes`). Histograms expand in snapshots to
//! `name/count`, `name/sum`, `name/bl<k>`.

pub mod json;
pub mod manifest;
pub mod registry;
pub mod sha256;
pub mod trace;

pub use manifest::{git_describe, OutputRecord, RunManifest, ThreadsRecord, SCHEMA};
pub use registry::{Counter, Gauge, Histogram, MetricSnapshot, Registry};
pub use trace::{drain_spans, mode, set_mode, set_recording, span, Span, SpanRecord, TraceMode};

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// The bridge from `ola-netlist`'s engine hooks into the global registry.
/// Handles are resolved once at install time so each hook call is a couple
/// of relaxed atomic adds.
struct NetlistHook {
    event_runs: Arc<Counter>,
    event_events: Arc<Counter>,
    event_settle: Arc<Histogram>,
    event_unsettled: Arc<Counter>,
    batch_compiles: Arc<Counter>,
    batch_depth: Arc<Gauge>,
    batch_runs: Arc<Counter>,
    batch_lanes: Arc<Counter>,
    batch_word_steps: Arc<Counter>,
    batch_lane_transitions: Arc<Counter>,
}

impl ola_netlist::obs::SimObserver for NetlistHook {
    fn event_run(&self, events: u64, settle_time: u64) {
        self.event_runs.inc();
        self.event_events.add(events);
        self.event_settle.observe(settle_time);
    }

    fn event_unsettled(&self, _processed: u64, _budget: u64) {
        self.event_unsettled.inc();
    }

    fn batch_compile(&self, nets: u64, depth: u64) {
        let _ = nets;
        self.batch_compiles.inc();
        self.batch_depth.set(i64::try_from(depth).unwrap_or(i64::MAX));
    }

    fn batch_run(&self, lanes: u64, word_steps: u64, lane_transitions: u64) {
        self.batch_runs.inc();
        self.batch_lanes.add(lanes);
        self.batch_word_steps.add(word_steps);
        self.batch_lane_transitions.add(lane_transitions);
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static HOOK: OnceLock<NetlistHook> = OnceLock::new();

/// The process-global metrics registry.
///
/// First access installs the netlist [`SimObserver`] bridge, so any code
/// that records or snapshots metrics automatically sees engine activity.
///
/// [`SimObserver`]: ola_netlist::obs::SimObserver
#[must_use]
pub fn registry() -> &'static Registry {
    let reg = REGISTRY.get_or_init(Registry::new);
    let hook = HOOK.get_or_init(|| NetlistHook {
        event_runs: reg.counter("ola.sim.event.runs"),
        event_events: reg.counter("ola.sim.event.events"),
        event_settle: reg.histogram("ola.sim.event.settle_time"),
        event_unsettled: reg.counter("ola.sim.event.unsettled"),
        batch_compiles: reg.counter("ola.batch.compiles"),
        batch_depth: reg.gauge("ola.batch.depth"),
        batch_runs: reg.counter("ola.batch.runs"),
        batch_lanes: reg.counter("ola.batch.lanes"),
        batch_word_steps: reg.counter("ola.batch.word_steps"),
        batch_lane_transitions: reg.counter("ola.batch.lane_transitions"),
    });
    // Write-once: losing the race (e.g. to a test observer) is fine.
    let _ = ola_netlist::obs::install_observer(hook);
    reg
}

/// Eagerly initializes the observability layer (registry + engine bridge).
/// Idempotent; `repro` calls this at startup so even experiments that never
/// touch a metric still get engine counters.
pub fn init() {
    let _ = registry();
}

static ANNOTATIONS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
static NOTED_OUTPUTS: Mutex<Vec<(String, PathBuf)>> = Mutex::new(Vec::new());

/// Records a free-form `key = value` annotation for the current
/// experiment's manifest (Ts grids, sweep shapes, input models, …).
/// Annotations accumulate until [`take_annotations`] drains them.
pub fn annotate(key: impl Into<String>, value: impl std::fmt::Display) {
    let mut slot = ANNOTATIONS.lock().unwrap_or_else(PoisonError::into_inner);
    slot.push((key.into(), value.to_string()));
}

/// Drains every pending annotation (insertion order).
#[must_use]
pub fn take_annotations() -> Vec<(String, String)> {
    let mut slot = ANNOTATIONS.lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *slot)
}

/// Registers a results file the current experiment emitted (e.g. a PGM
/// written deep inside an experiment), so the manifest writer can hash it.
/// `label` is the path as it should appear in the manifest.
pub fn note_output(label: impl Into<String>, path: impl AsRef<Path>) {
    let mut slot = NOTED_OUTPUTS.lock().unwrap_or_else(PoisonError::into_inner);
    slot.push((label.into(), path.as_ref().to_path_buf()));
}

/// Drains every pending noted output (insertion order).
#[must_use]
pub fn take_noted_outputs() -> Vec<(String, PathBuf)> {
    let mut slot = NOTED_OUTPUTS.lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *slot)
}

/// Serializes tests that drain the process-global annotation and
/// noted-output queues: drains are destructive and global, so two such
/// tests racing would steal each other's entries.
#[cfg(test)]
pub(crate) static ANNOTATIONS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_a_singleton_and_bridges_the_engines() {
        let before = registry().snapshot();
        assert!(std::ptr::eq(registry(), registry()));

        // Unless another observer won the install race in this test binary
        // (there is none in ola-core's unit tests), a simulation run must
        // move the event counters.
        let mut nl = ola_netlist::Netlist::new();
        let a = nl.input("a");
        let b = nl.not(a);
        nl.set_output("z", vec![b]);
        let _ = ola_netlist::simulate_from_zero(&nl, &ola_netlist::UnitDelay, &[true]);

        let d = registry().snapshot().diff(&before);
        assert_eq!(d.counters.get("ola.sim.event.runs"), Some(&1));
        assert!(d.counters["ola.sim.event.events"] >= 1);
        assert_eq!(d.counters.get("ola.sim.event.settle_time/count"), Some(&1));
    }

    #[test]
    fn batch_activity_is_bridged() {
        let before = registry().snapshot();
        let mut nl = ola_netlist::Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and(a, b);
        nl.set_output("z", vec![x]);
        let program =
            ola_netlist::batch::BatchProgram::compile(&nl, &ola_netlist::UnitDelay).unwrap();
        let prev = ola_netlist::batch::BatchInputs::zeros(2, 1).unwrap();
        let new = ola_netlist::batch::BatchInputs::pack(&[vec![true, true]]).unwrap();
        let _ = program.run(&prev, &new).unwrap();

        let snap = registry().snapshot();
        let d = snap.diff(&before);
        assert_eq!(d.counters.get("ola.batch.compiles"), Some(&1));
        assert_eq!(d.counters.get("ola.batch.runs"), Some(&1));
        assert_eq!(d.counters.get("ola.batch.lanes"), Some(&1));
        assert_eq!(snap.gauges.get("ola.batch.depth"), Some(&2), "1 logic level + inputs");
    }

    #[test]
    fn annotations_and_noted_outputs_drain_in_order() {
        let _lock = ANNOTATIONS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        // Drain anything left over from other tests first.
        let _ = take_annotations();
        let _ = take_noted_outputs();
        annotate("ts_grid", "10..=200");
        annotate("lanes", 64);
        assert_eq!(
            take_annotations(),
            vec![("ts_grid".into(), "10..=200".into()), ("lanes".into(), "64".into())]
        );
        assert!(take_annotations().is_empty());

        note_output("results/a.pgm", "/tmp/a.pgm");
        let noted = take_noted_outputs();
        assert_eq!(noted.len(), 1);
        assert_eq!(noted[0].0, "results/a.pgm");
        assert!(take_noted_outputs().is_empty());
    }
}
