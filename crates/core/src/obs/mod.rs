//! # Observability: tracing spans, metrics registry, run manifests.
//!
//! Three cooperating pieces, all zero-dependency:
//!
//! * [`trace`] — hierarchical span guards ([`span`]) with a bounded ring
//!   buffer and optional live emission (`OLA_TRACE=pretty|json`);
//! * [`registry`] — the process-global typed metrics [`Registry`]
//!   ([`registry()`]): counters, gauges, and log₂ histograms updated with
//!   relaxed atomics. Only *deterministic, simulation-domain* values are
//!   recorded, so snapshots are bit-identical across `OLA_THREADS`
//!   settings;
//! * [`manifest`] — per-experiment [`RunManifest`]s binding spans, metric
//!   deltas, seeds, environment, and the SHA-256 ([`sha256`]) of every
//!   emitted file into one versioned JSON document ([`json`]).
//!
//! Calling [`registry()`] (or [`init`]) once also installs the
//! [`ola_netlist::obs::SimObserver`] bridge, so the netlist engines feed
//! `ola.sim.*` / `ola.batch.*` metrics without `ola-netlist` depending on
//! this crate.
//!
//! ## Metric naming
//!
//! Dotted, lowercase, subsystem-first: `ola.<subsystem>.<what>` (e.g.
//! `ola.sim.event.runs`, `ola.batch.lane_transitions`,
//! `ola.sweep.probes`). Histograms expand in snapshots to
//! `name/count`, `name/sum`, `name/bl<k>`.

pub mod json;
pub mod manifest;
pub mod registry;
pub mod sha256;
pub mod trace;

pub use manifest::{git_describe, OutputRecord, RunManifest, ThreadsRecord, SCHEMA};
pub use registry::{Counter, Gauge, Histogram, MetricSnapshot, Registry};
pub use trace::{drain_spans, mode, set_mode, set_recording, span, Span, SpanRecord, TraceMode};

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// The bridge from `ola-netlist`'s engine hooks into the global registry.
/// Handles are resolved once at install time so each hook call is a couple
/// of relaxed atomic adds.
struct NetlistHook {
    event_runs: Arc<Counter>,
    event_events: Arc<Counter>,
    event_settle: Arc<Histogram>,
    event_unsettled: Arc<Counter>,
    batch_compiles: Arc<Counter>,
    batch_depth: Arc<Gauge>,
    batch_runs: Arc<Counter>,
    batch_lanes: Arc<Counter>,
    batch_word_steps: Arc<Counter>,
    batch_lane_transitions: Arc<Counter>,
}

impl ola_netlist::obs::SimObserver for NetlistHook {
    fn event_run(&self, events: u64, settle_time: u64) {
        self.event_runs.inc();
        self.event_events.add(events);
        self.event_settle.observe(settle_time);
    }

    fn event_unsettled(&self, _processed: u64, _budget: u64) {
        self.event_unsettled.inc();
    }

    fn batch_compile(&self, nets: u64, depth: u64) {
        let _ = nets;
        self.batch_compiles.inc();
        self.batch_depth.set(i64::try_from(depth).unwrap_or(i64::MAX));
    }

    fn batch_run(&self, lanes: u64, word_steps: u64, lane_transitions: u64) {
        self.batch_runs.inc();
        self.batch_lanes.add(lanes);
        self.batch_word_steps.add(word_steps);
        self.batch_lane_transitions.add(lane_transitions);
    }
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();
static HOOK: OnceLock<NetlistHook> = OnceLock::new();

/// The process-global metrics registry.
///
/// First access installs the netlist [`SimObserver`] bridge, so any code
/// that records or snapshots metrics automatically sees engine activity.
///
/// [`SimObserver`]: ola_netlist::obs::SimObserver
#[must_use]
pub fn registry() -> &'static Registry {
    let reg = REGISTRY.get_or_init(Registry::new);
    let hook = HOOK.get_or_init(|| NetlistHook {
        event_runs: reg.counter("ola.sim.event.runs"),
        event_events: reg.counter("ola.sim.event.events"),
        event_settle: reg.histogram("ola.sim.event.settle_time"),
        event_unsettled: reg.counter("ola.sim.event.unsettled"),
        batch_compiles: reg.counter("ola.batch.compiles"),
        batch_depth: reg.gauge("ola.batch.depth"),
        batch_runs: reg.counter("ola.batch.runs"),
        batch_lanes: reg.counter("ola.batch.lanes"),
        batch_word_steps: reg.counter("ola.batch.word_steps"),
        batch_lane_transitions: reg.counter("ola.batch.lane_transitions"),
    });
    // Write-once: losing the race (e.g. to a test observer) is fine.
    let _ = ola_netlist::obs::install_observer(hook);
    reg
}

/// Eagerly initializes the observability layer (registry + engine bridge).
/// Idempotent; `repro` calls this at startup so even experiments that never
/// touch a metric still get engine counters.
pub fn init() {
    let _ = registry();
}

static ANNOTATIONS: Mutex<Vec<(String, String)>> = Mutex::new(Vec::new());
static NOTED_OUTPUTS: Mutex<Vec<(String, PathBuf)>> = Mutex::new(Vec::new());

thread_local! {
    /// Stack of installed annotation scopes; the innermost wins. Mirrors
    /// the ambient-cancellation stack in [`crate::resilience`]: a stack so
    /// nested scopes restore the outer one on drop, a thread-local so
    /// concurrent requests cannot capture each other's annotations.
    static SCOPES: std::cell::RefCell<Vec<AnnotationScope>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A private annotation sink for one logical unit of work (one `ola-serve`
/// request, say). While installed on a thread ([`AnnotationScope::install`])
/// — and on any [`crate::parallel`] workers spawned from it — every
/// [`annotate`] call lands here instead of in the process-global queue, so
/// concurrent requests build independent manifests. Clones share the sink.
#[derive(Clone, Default)]
pub struct AnnotationScope {
    sink: std::sync::Arc<Mutex<Vec<(String, String)>>>,
}

/// RAII guard returned by [`AnnotationScope::install`]; uninstalls on drop.
#[must_use = "dropping the guard uninstalls the annotation scope"]
pub struct ScopeGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPES.with(|s| s.borrow_mut().pop());
    }
}

impl AnnotationScope {
    /// A fresh, empty scope.
    #[must_use]
    pub fn new() -> AnnotationScope {
        AnnotationScope::default()
    }

    /// Installs this scope as the thread's annotation sink until the
    /// returned guard drops.
    pub fn install(&self) -> ScopeGuard {
        SCOPES.with(|s| s.borrow_mut().push(self.clone()));
        ScopeGuard { _not_send: std::marker::PhantomData }
    }

    /// Drains every annotation captured so far (insertion order).
    #[must_use]
    pub fn drain(&self) -> Vec<(String, String)> {
        let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        std::mem::take(&mut *sink)
    }

    fn push(&self, key: String, value: String) {
        let mut sink = self.sink.lock().unwrap_or_else(PoisonError::into_inner);
        sink.push((key, value));
    }
}

/// This thread's innermost annotation scope, if one is installed. The
/// [`crate::parallel`] pool captures it and re-installs it in each worker,
/// exactly as it does the ambient cancellation token.
#[must_use]
pub fn current_scope() -> Option<AnnotationScope> {
    SCOPES.with(|s| s.borrow().last().cloned())
}

/// Records a free-form `key = value` annotation for the current
/// experiment's manifest (Ts grids, sweep shapes, input models, …).
/// Lands in the thread's installed [`AnnotationScope`] when one exists,
/// else in the process-global queue that [`take_annotations`] drains.
pub fn annotate(key: impl Into<String>, value: impl std::fmt::Display) {
    if let Some(scope) = current_scope() {
        scope.push(key.into(), value.to_string());
        return;
    }
    let mut slot = ANNOTATIONS.lock().unwrap_or_else(PoisonError::into_inner);
    slot.push((key.into(), value.to_string()));
}

/// Drains every pending annotation (insertion order).
#[must_use]
pub fn take_annotations() -> Vec<(String, String)> {
    let mut slot = ANNOTATIONS.lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *slot)
}

/// Registers a results file the current experiment emitted (e.g. a PGM
/// written deep inside an experiment), so the manifest writer can hash it.
/// `label` is the path as it should appear in the manifest.
pub fn note_output(label: impl Into<String>, path: impl AsRef<Path>) {
    let mut slot = NOTED_OUTPUTS.lock().unwrap_or_else(PoisonError::into_inner);
    slot.push((label.into(), path.as_ref().to_path_buf()));
}

/// Drains every pending noted output (insertion order).
#[must_use]
pub fn take_noted_outputs() -> Vec<(String, PathBuf)> {
    let mut slot = NOTED_OUTPUTS.lock().unwrap_or_else(PoisonError::into_inner);
    std::mem::take(&mut *slot)
}

/// Serializes tests that drain the process-global annotation and
/// noted-output queues: drains are destructive and global, so two such
/// tests racing would steal each other's entries.
#[cfg(test)]
pub(crate) static ANNOTATIONS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_a_singleton_and_bridges_the_engines() {
        let before = registry().snapshot();
        assert!(std::ptr::eq(registry(), registry()));

        // Unless another observer won the install race in this test binary
        // (there is none in ola-core's unit tests), a simulation run must
        // move the event counters.
        let mut nl = ola_netlist::Netlist::new();
        let a = nl.input("a");
        let b = nl.not(a);
        nl.set_output("z", vec![b]);
        let _ = ola_netlist::simulate_from_zero(&nl, &ola_netlist::UnitDelay, &[true]);

        let d = registry().snapshot().diff(&before);
        assert_eq!(d.counters.get("ola.sim.event.runs"), Some(&1));
        assert!(d.counters["ola.sim.event.events"] >= 1);
        assert_eq!(d.counters.get("ola.sim.event.settle_time/count"), Some(&1));
    }

    #[test]
    fn batch_activity_is_bridged() {
        let before = registry().snapshot();
        let mut nl = ola_netlist::Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.and(a, b);
        nl.set_output("z", vec![x]);
        let program =
            ola_netlist::batch::BatchProgram::compile(&nl, &ola_netlist::UnitDelay).unwrap();
        let prev = ola_netlist::batch::BatchInputs::zeros(2, 1).unwrap();
        let new = ola_netlist::batch::BatchInputs::pack(&[vec![true, true]]).unwrap();
        let _ = program.run(&prev, &new).unwrap();

        let snap = registry().snapshot();
        let d = snap.diff(&before);
        assert_eq!(d.counters.get("ola.batch.compiles"), Some(&1));
        assert_eq!(d.counters.get("ola.batch.runs"), Some(&1));
        assert_eq!(d.counters.get("ola.batch.lanes"), Some(&1));
        assert_eq!(snap.gauges.get("ola.batch.depth"), Some(&2), "1 logic level + inputs");
    }

    #[test]
    fn annotations_and_noted_outputs_drain_in_order() {
        let _lock = ANNOTATIONS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        // Drain anything left over from other tests first.
        let _ = take_annotations();
        let _ = take_noted_outputs();
        annotate("ts_grid", "10..=200");
        annotate("lanes", 64);
        assert_eq!(
            take_annotations(),
            vec![("ts_grid".into(), "10..=200".into()), ("lanes".into(), "64".into())]
        );
        assert!(take_annotations().is_empty());

        note_output("results/a.pgm", "/tmp/a.pgm");
        let noted = take_noted_outputs();
        assert_eq!(noted.len(), 1);
        assert_eq!(noted[0].0, "results/a.pgm");
        assert!(take_noted_outputs().is_empty());
    }

    #[test]
    fn annotation_scopes_capture_instead_of_the_global_queue() {
        let _lock = ANNOTATIONS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = take_annotations();

        let scope = AnnotationScope::new();
        assert!(current_scope().is_none());
        {
            let _g = scope.install();
            assert!(current_scope().is_some());
            annotate("req.width", 8);
            {
                // Nested scope wins while installed.
                let inner = AnnotationScope::new();
                let _g2 = inner.install();
                annotate("inner.only", "x");
                assert_eq!(inner.drain(), vec![("inner.only".into(), "x".into())]);
            }
            annotate("req.style", "online");
        }
        assert!(current_scope().is_none());
        assert_eq!(
            scope.drain(),
            vec![("req.width".into(), "8".into()), ("req.style".into(), "online".into())]
        );
        assert!(scope.drain().is_empty(), "drain is destructive");
        assert!(take_annotations().is_empty(), "nothing leaked to the global queue");

        // Without a scope, annotate falls back to the global queue.
        annotate("global.key", 1);
        assert_eq!(take_annotations(), vec![("global.key".into(), "1".into())]);
    }

    #[test]
    fn scopes_propagate_into_parallel_workers() {
        let scope = AnnotationScope::new();
        let _g = scope.install();
        let n = crate::parallel::parallel_map(&[1u64, 2, 3, 4], |_, &x| {
            annotate(format!("worker.{x}"), x);
            x
        })
        .len();
        assert_eq!(n, 4);
        let mut notes = scope.drain();
        notes.sort();
        assert_eq!(notes.len(), 4);
        assert_eq!(notes[0], ("worker.1".into(), "1".into()));
        assert_eq!(notes[3], ("worker.4".into(), "4".into()));
    }
}
