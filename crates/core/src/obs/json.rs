//! Minimal JSON writer and reader, no dependencies.
//!
//! The workspace deliberately vendors a stub `serde` (marker traits only),
//! so run manifests are built and checked with this hand-rolled tree model:
//! [`JsonValue`] renders with stable key order (callers supply ordered
//! pairs) and [`parse`] reads the subset of JSON the manifests use. Numbers
//! round-trip exactly for `u64`/`i64`; floats render with enough precision
//! to re-parse to the same `f64`.

use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON document node.
///
/// Objects are ordered vectors of `(key, value)` pairs, not maps: manifest
/// writers control field order so the emitted files diff cleanly, and
/// [`parse`] preserves the order it reads.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (renders without sign or fraction).
    U64(u64),
    /// A negative integer (only produced for values below zero).
    I64(i64),
    /// A finite float; non-finite values render as `null`.
    F64(f64),
    /// A string (stored unescaped).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with explicit field order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor: a string node.
    #[must_use]
    pub fn str(s: impl Into<String>) -> JsonValue {
        JsonValue::Str(s.into())
    }

    /// An integer node choosing `U64` for non-negative values.
    #[must_use]
    pub fn int(v: i64) -> JsonValue {
        if v >= 0 {
            JsonValue::U64(v as u64)
        } else {
            JsonValue::I64(v)
        }
    }

    /// The object's field `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(fields) => fields.iter().find_map(|(k, v)| (k == key).then_some(v)),
            _ => None,
        }
    }

    /// The string payload, if this is a string node.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::U64(v) => Some(*v),
            JsonValue::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::I64(v) => Some(*v),
            JsonValue::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders compact single-line JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders indented JSON (two spaces per level, trailing newline-free).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::F64(v) => {
                if v.is_finite() {
                    if *v == v.trunc() && v.abs() < 1e15 {
                        // Keep integral floats readable and re-parseable.
                        let _ = write!(out, "{v:.1}");
                    } else if *v != v.trunc() && (1e-4..1e17).contains(&v.abs()) {
                        // Rust's float Display is the shortest decimal that
                        // re-parses to the same f64 — canonical and humane
                        // ("0.22062625", not "2.20626249999999996e-1").
                        let _ = write!(out, "{v}");
                    } else {
                        // Extreme magnitudes: shortest mantissa, explicit
                        // exponent, so tiny/huge values stay compact.
                        let _ = write!(out, "{v:e}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            JsonValue::Array(items) => {
                Self::write_seq(out, indent, level, items.len(), '[', ']', |out, i| {
                    items[i].write(out, indent, level + 1);
                });
            }
            JsonValue::Object(fields) => {
                Self::write_seq(out, indent, level, fields.len(), '{', '}', |out, i| {
                    let (k, v) = &fields[i];
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                });
            }
        }
    }

    fn write_seq(
        out: &mut String,
        indent: Option<usize>,
        level: usize,
        len: usize,
        open: char,
        close: char,
        mut item: impl FnMut(&mut String, usize),
    ) {
        out.push(open);
        if len == 0 {
            out.push(close);
            return;
        }
        for i in 0..len {
            if i > 0 {
                out.push(',');
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * (level + 1)));
            }
            item(out, i);
        }
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
        out.push(close);
    }
}

/// A JSON parse failure, with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a complete JSON document. Trailing whitespace is permitted;
/// trailing non-whitespace is an error.
///
/// # Errors
///
/// Returns [`JsonParseError`] on malformed input, including numbers
/// outside `u64`/`i64` range (floats are accepted up to `f64`).
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit}")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect \uXXXX low half.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x1_0000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => return Err(self.err("control byte in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.peek().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = match b {
                b'0'..=b'9' => u32::from(b - b'0'),
                b'a'..=b'f' => u32::from(b - b'a') + 10,
                b'A'..=b'F' => u32::from(b - b'A') + 10,
                _ => return Err(self.err("non-hex digit in \\u escape")),
            };
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(JsonValue::F64).map_err(|_| self.err("invalid float"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(JsonValue::I64).map_err(|_| self.err("integer out of range"))
        } else {
            text.parse::<u64>().map(JsonValue::U64).map_err(|_| self.err("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("héllo"), "héllo");
    }

    #[test]
    fn render_roundtrips_through_parse() {
        let doc = JsonValue::Object(vec![
            ("schema".into(), JsonValue::str("ola.run-manifest/v1")),
            ("n".into(), JsonValue::U64(42)),
            ("neg".into(), JsonValue::I64(-7)),
            ("pi".into(), JsonValue::F64(std::f64::consts::PI)),
            ("flag".into(), JsonValue::Bool(true)),
            ("none".into(), JsonValue::Null),
            (
                "items".into(),
                JsonValue::Array(vec![JsonValue::U64(1), JsonValue::str("two\n\"x\"")]),
            ),
            ("empty".into(), JsonValue::Array(vec![])),
        ]);
        for rendered in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&rendered).unwrap(), doc, "{rendered}");
        }
    }

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for v in [0.0, -0.5, 1.0, 1e-12, 123_456.789, f64::MAX, f64::MIN_POSITIVE] {
            let rendered = JsonValue::F64(v).render();
            match parse(&rendered).unwrap() {
                JsonValue::F64(back) => assert_eq!(back.to_bits(), v.to_bits(), "{rendered}"),
                // Integral floats may re-parse as such via the ".1" form.
                other => panic!("expected float back, got {other:?} from {rendered}"),
            }
        }
        assert_eq!(JsonValue::F64(f64::NAN).render(), "null");
    }

    /// Regression: the old writer rendered every non-integral float as
    /// 17-significant-digit scientific notation, so BENCH files carried
    /// `"elapsed_secs":2.20626249999999996e-1` instead of `0.22062625`.
    /// Non-extreme floats must render as the shortest plain decimal that
    /// re-parses to the identical bits.
    #[test]
    fn floats_render_shortest_plain_decimal() {
        assert_eq!(JsonValue::F64(0.220_626_25).render(), "0.22062625");
        assert_eq!(JsonValue::F64(36_260.417_788_001_2).render(), "36260.4177880012");
        assert_eq!(JsonValue::F64(0.017_146_524).render(), "0.017146524");
        assert_eq!(JsonValue::F64(-1.5).render(), "-1.5");
        assert_eq!(JsonValue::F64(2.0).render(), "2.0", "integral floats keep the .0 marker");
        // Extreme magnitudes keep exponent form, shortest mantissa.
        assert_eq!(JsonValue::F64(f64::MAX).render(), "1.7976931348623157e308");
        assert_eq!(JsonValue::F64(1e-300).render(), "1e-300");
        // Every form still round-trips bit-exactly.
        for v in [0.220_626_25, 1e18, -1e18, 1e-300, f64::MIN_POSITIVE, 9.99e16, 1.01e-4] {
            match parse(&JsonValue::F64(v).render()).unwrap() {
                JsonValue::F64(back) => assert_eq!(back.to_bits(), v.to_bits(), "{v}"),
                other => panic!("expected float back, got {other:?}"),
            }
        }
    }

    #[test]
    fn parse_handles_escapes_and_unicode() {
        let v = parse(r#""aA\n\té 😀""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "aA\n\té 😀");
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "01x", "{\"a\":}", "1 2", "nul", "-"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = parse("[1, @]").unwrap_err();
        assert!(err.offset >= 4, "{err}");
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn accessors_navigate_objects() {
        let v = parse(r#"{"a": {"b": [1, -2, "s"]}, "t": true}"#).unwrap();
        let arr = v.get("a").unwrap().get("b").unwrap().as_array().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_str(), Some("s"));
        assert_eq!(v.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::int(-3), JsonValue::I64(-3));
        assert_eq!(JsonValue::int(3), JsonValue::U64(3));
        assert_eq!(v.as_object().unwrap().len(), 2);
    }
}
