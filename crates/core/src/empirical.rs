//! Gate-level ("FPGA") overclocking curves.
//!
//! The counterpart of the paper's post-place-and-route results (Figure 4,
//! bottom row): instead of the stage-wave abstraction, run the synthesized
//! netlists through the event-driven timing simulator under a (jittered)
//! delay model and sample the output registers at a sweep of clock periods.

use crate::montecarlo::InputModel;
use crate::parallel::parallel_accumulate;
use ola_arith::online::digits_value;
use ola_arith::synth::{ArrayMultiplierCircuit, OnlineMultiplierCircuit};
use ola_netlist::{analyze, simulate_from_zero, DelayModel};
use ola_redundant::Digit;
use rand::Rng;

/// Mean error per sampled clock period for one synthesized operator.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct GateLevelCurve {
    /// The clock periods swept (time units).
    pub ts: Vec<u64>,
    /// Mean `|sampled − correct|` per period, on the operand value scale.
    pub mean_abs_error: Vec<f64>,
    /// Fraction of samples with any output error, per period.
    pub violation_rate: Vec<f64>,
    /// Structural critical path (rated period) from STA.
    pub critical_path: u64,
    /// Largest settling time observed across the samples.
    pub max_settle: u64,
    /// Sample count.
    pub samples: usize,
}

impl GateLevelCurve {
    /// `(ts, ts/critical_path, mean_error, violation_rate)` tuples.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64, f64, f64)> + '_ {
        self.ts
            .iter()
            .zip(self.mean_abs_error.iter().zip(&self.violation_rate))
            .map(|(&t, (&e, &v))| (t, t as f64 / self.critical_path as f64, e, v))
    }
}

#[derive(Clone)]
struct Acc {
    err: Vec<f64>,
    viol: Vec<u64>,
    max_settle: u64,
    samples: usize,
}

fn merge(mut a: Acc, b: &Acc) -> Acc {
    for i in 0..a.err.len() {
        a.err[i] += b.err[i];
        a.viol[i] += b.viol[i];
    }
    a.max_settle = a.max_settle.max(b.max_settle);
    a.samples += b.samples;
    a
}

/// Sweeps a synthesized online multiplier at the given clock periods.
///
/// # Panics
///
/// Panics if `ts_points` or `samples` is empty/zero.
#[must_use]
pub fn om_gate_level_curve<M: DelayModel + Sync>(
    circuit: &OnlineMultiplierCircuit,
    delay: &M,
    model: InputModel,
    ts_points: &[u64],
    samples: usize,
    seed: u64,
) -> GateLevelCurve {
    assert!(!ts_points.is_empty() && samples > 0);
    let zp = circuit.netlist.output("zp").to_vec();
    let zn = circuit.netlist.output("zn").to_vec();
    let n = circuit.n;
    let acc = parallel_accumulate(
        samples,
        seed,
        || Acc {
            err: vec![0.0; ts_points.len()],
            viol: vec![0; ts_points.len()],
            max_settle: 0,
            samples: 0,
        },
        |rng, acc| {
            let x = model.draw(rng, n);
            let y = model.draw(rng, n);
            let inputs = circuit.encode_inputs(&x, &y);
            let res = simulate_from_zero(&circuit.netlist, delay, &inputs);
            acc.max_settle = acc.max_settle.max(res.settle_time());
            let correct = digits_value(&decode(&res.final_bus(&zp), &res.final_bus(&zn)));
            for (i, &t) in ts_points.iter().enumerate() {
                let digits = decode(&res.sample_bus(&zp, t), &res.sample_bus(&zn, t));
                let v = digits_value(&digits);
                if v != correct {
                    acc.viol[i] += 1;
                }
                acc.err[i] += (v - correct).abs().to_f64();
            }
            acc.samples += 1;
        },
        merge,
    );
    finish(acc, ts_points, analyze(&circuit.netlist, delay).critical_path())
}

/// Sweeps a synthesized two's-complement array multiplier at the given
/// clock periods. Operands are drawn uniformly over the full raw range;
/// errors are reported on the fraction scale (`raw / 2^(width−1)` operands,
/// products in `(−1, 1)`).
///
/// # Panics
///
/// Panics if `ts_points` or `samples` is empty/zero.
#[must_use]
pub fn array_gate_level_curve<M: DelayModel + Sync>(
    circuit: &ArrayMultiplierCircuit,
    delay: &M,
    ts_points: &[u64],
    samples: usize,
    seed: u64,
) -> GateLevelCurve {
    assert!(!ts_points.is_empty() && samples > 0);
    let out = circuit.netlist.output("product").to_vec();
    let w = circuit.width;
    let lim = 1i64 << (w - 1);
    let scale = ((2 * (w - 1)) as f64).exp2();
    let acc = parallel_accumulate(
        samples,
        seed,
        || Acc {
            err: vec![0.0; ts_points.len()],
            viol: vec![0; ts_points.len()],
            max_settle: 0,
            samples: 0,
        },
        |rng, acc| {
            let a = rng.gen_range(-lim..lim);
            let b = rng.gen_range(-lim..lim);
            let inputs = circuit.encode_inputs(a, b);
            let res = simulate_from_zero(&circuit.netlist, delay, &inputs);
            acc.max_settle = acc.max_settle.max(res.settle_time());
            let correct = circuit.decode_product(&res.final_bus(&out));
            debug_assert_eq!(correct, a * b);
            for (i, &t) in ts_points.iter().enumerate() {
                let v = circuit.decode_product(&res.sample_bus(&out, t));
                if v != correct {
                    acc.viol[i] += 1;
                }
                acc.err[i] += (v - correct).abs() as f64 / scale;
            }
            acc.samples += 1;
        },
        merge,
    );
    finish(acc, ts_points, analyze(&circuit.netlist, delay).critical_path())
}

fn decode(zp: &[bool], zn: &[bool]) -> Vec<Digit> {
    zp.iter().zip(zn).map(|(&p, &n)| Digit::from_bits(p, n)).collect()
}

fn finish(acc: Acc, ts_points: &[u64], critical_path: u64) -> GateLevelCurve {
    let s = acc.samples as f64;
    GateLevelCurve {
        ts: ts_points.to_vec(),
        mean_abs_error: acc.err.iter().map(|&e| e / s).collect(),
        violation_rate: acc.viol.iter().map(|&v| v as f64 / s).collect(),
        critical_path,
        max_settle: acc.max_settle,
        samples: acc.samples,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_arith::synth::{array_multiplier, online_multiplier};
    use ola_netlist::{JitteredDelay, UnitDelay};

    #[test]
    fn om_curve_settles_at_critical_path() {
        let circuit = online_multiplier(6, 3);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let ts = vec![rep.critical_path() / 4, rep.critical_path() / 2, rep.critical_path()];
        let curve =
            om_gate_level_curve(&circuit, &UnitDelay, InputModel::UniformDigits, &ts, 40, 1);
        assert_eq!(*curve.mean_abs_error.last().unwrap(), 0.0);
        assert_eq!(*curve.violation_rate.last().unwrap(), 0.0);
        assert!(curve.mean_abs_error[0] > 0.0, "hard undersampling must err");
        assert!(curve.max_settle <= rep.critical_path());
    }

    #[test]
    fn om_actual_settling_beats_structural_bound() {
        // The headroom claim at gate level: observed settling is well below
        // the structural critical path for wide operands.
        let circuit = online_multiplier(12, 3);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let curve = om_gate_level_curve(
            &circuit,
            &UnitDelay,
            InputModel::UniformDigits,
            &[rep.critical_path()],
            60,
            2,
        );
        assert!(
            (curve.max_settle as f64) < 0.9 * rep.critical_path() as f64,
            "settle {} vs critical {}",
            curve.max_settle,
            rep.critical_path()
        );
    }

    #[test]
    fn array_curve_behaves() {
        let circuit = array_multiplier(6);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let ts = vec![rep.critical_path() / 3, rep.critical_path()];
        let curve = array_gate_level_curve(&circuit, &UnitDelay, &ts, 60, 3);
        assert_eq!(*curve.mean_abs_error.last().unwrap(), 0.0);
        assert!(curve.mean_abs_error[0] > 0.0);
    }

    #[test]
    fn online_errors_smaller_than_traditional_at_matched_underclock() {
        // The paper's core comparison at operator level: sample both
        // multipliers at 70% of their own rated period; online errors are
        // orders of magnitude smaller.
        let om = online_multiplier(8, 3);
        let am = array_multiplier(9); // equal range: N+1 bits traditional
        let delay = JitteredDelay::new(UnitDelay, 20, 99);
        let om_rated = analyze(&om.netlist, &delay).critical_path();
        let am_rated = analyze(&am.netlist, &delay).critical_path();
        let om_curve =
            om_gate_level_curve(&om, &delay, InputModel::UniformValue, &[om_rated * 7 / 10], 80, 4);
        let am_curve = array_gate_level_curve(&am, &delay, &[am_rated * 7 / 10], 80, 4);
        let e_om = om_curve.mean_abs_error[0];
        let e_am = am_curve.mean_abs_error[0];
        assert!(
            e_om < e_am / 5.0 || (e_om == 0.0 && e_am > 0.0),
            "online {e_om} vs traditional {e_am}"
        );
    }

    #[test]
    fn jitter_changes_the_curve_but_not_correctness() {
        let circuit = online_multiplier(6, 3);
        let delay = JitteredDelay::new(UnitDelay, 30, 7);
        let rep = analyze(&circuit.netlist, &delay);
        let curve = om_gate_level_curve(
            &circuit,
            &delay,
            InputModel::UniformDigits,
            &[rep.critical_path()],
            30,
            5,
        );
        assert_eq!(*curve.mean_abs_error.last().unwrap(), 0.0);
    }
}
