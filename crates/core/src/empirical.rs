//! Gate-level ("FPGA") overclocking curves.
//!
//! The counterpart of the paper's post-place-and-route results (Figure 4,
//! bottom row): instead of the stage-wave abstraction, run the synthesized
//! netlists through a timing simulator under a (jittered) delay model and
//! sample the output registers at a sweep of clock periods.
//!
//! Both public curves funnel into one shared sampling engine ([`curve_with`])
//! that is parameterized over a [`SimBackend`]: the event-driven simulator
//! (one vector per run) or the bit-parallel batch engine (64 vectors per
//! lane word, up to 512 per pass — see `OLA_LANE_WORDS` below,
//! [`ola_netlist::batch`]). The two backends draw the *same* random
//! stream (see [`crate::parallel::parallel_accumulate_batched`]) and judge
//! samples in the same per-sample / per-`Ts` order with the same
//! native-typed comparisons, so the produced [`GateLevelCurve`]s are
//! bit-identical — batch is purely an accelerator. Delay models that are
//! not batch-exact (e.g. [`JitteredDelay`](ola_netlist::JitteredDelay))
//! transparently fall back to the event engine, and batch *compilation
//! failures* degrade the same way through
//! [`crate::resilience::compile_batch_or_degrade`] (retry once, then run
//! the event engine and annotate the manifest) — sound precisely because
//! the backends are bit-identical. An ambient
//! [`CancelToken`](crate::CancelToken) (see
//! [`crate::resilience::install_ambient`]) is honored per sample and
//! inside both engines' inner loops.

use crate::backend::{BackendStats, SimBackend, StaGate};
use crate::montecarlo::InputModel;
use crate::parallel::{parallel_accumulate, parallel_accumulate_batched};
use crate::resilience::{ambient_token, check_cancelled, compile_batch_or_degrade};
use ola_arith::online::digits_value;
use ola_arith::synth::{ArrayMultiplierCircuit, OnlineMultiplierCircuit};
use ola_netlist::batch::{BatchProgram, LaneBlock, LaneInputs, LaneWord};
use ola_netlist::{
    analyze, default_event_budget, simulate_budgeted_cancellable, simulate_from_zero, CancelToken,
    Cancelled, DelayModel, NetId, Netlist, SimError,
};
use ola_redundant::Digit;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Mean error per sampled clock period for one synthesized operator.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct GateLevelCurve {
    /// The clock periods swept (time units).
    pub ts: Vec<u64>,
    /// Mean `|sampled − correct|` per period, on the operand value scale.
    pub mean_abs_error: Vec<f64>,
    /// Fraction of samples with any output error, per period.
    pub violation_rate: Vec<f64>,
    /// Structural critical path (rated period) from STA.
    pub critical_path: u64,
    /// Largest settling time observed across the samples.
    pub max_settle: u64,
    /// Sample count.
    pub samples: usize,
}

impl GateLevelCurve {
    /// `(ts, ts/critical_path, mean_error, violation_rate)` tuples.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64, f64, f64)> + '_ {
        self.ts
            .iter()
            .zip(self.mean_abs_error.iter().zip(&self.violation_rate))
            .map(|(&t, (&e, &v))| (t, t as f64 / self.critical_path as f64, e, v))
    }
}

#[derive(Clone)]
struct Acc {
    err: Vec<f64>,
    viol: Vec<u64>,
    max_settle: u64,
    samples: usize,
    stats: BackendStats,
}

impl Acc {
    fn new(ts_len: usize) -> Acc {
        Acc {
            err: vec![0.0; ts_len],
            viol: vec![0; ts_len],
            max_settle: 0,
            samples: 0,
            stats: BackendStats::default(),
        }
    }

    /// Folds one `(sampled, settled)` judgement into slot `i`.
    fn record(&mut self, i: usize, violation: bool, abs_error: f64) {
        if violation {
            self.viol[i] += 1;
        }
        self.err[i] += abs_error;
    }
}

fn merge(mut a: Acc, b: &Acc) -> Acc {
    for i in 0..a.err.len() {
        a.err[i] += b.err[i];
        a.viol[i] += b.viol[i];
    }
    a.max_settle = a.max_settle.max(b.max_settle);
    a.samples += b.samples;
    a.stats.merge(&b.stats);
    a
}

use crate::backend::lane_words;

/// The batch sampling loop, generic over the lane word `B` (64 lanes per
/// word). One engine pass simulates up to `B::LANES` drawn vectors and
/// sweeps the whole judged `Ts` grid over them.
#[allow(clippy::too_many_arguments)] // internal: mirrors curve_with's captures
fn batch_accumulate<B, D, J>(
    prog: &BatchProgram,
    wires: &[NetId],
    judged: &[(usize, u64)],
    skipped: u64,
    ts_len: usize,
    samples: usize,
    seed: u64,
    cancel: &Option<CancelToken>,
    draw: &D,
    judge: &J,
) -> Acc
where
    B: LaneWord,
    D: Fn(&mut ChaCha8Rng) -> Vec<bool> + Sync,
    J: Fn(&[bool], &[bool]) -> (bool, f64) + Sync,
{
    let active_ts: Vec<u64> = judged.iter().map(|&(_, t)| t).collect();
    parallel_accumulate_batched(
        samples,
        seed,
        B::LANES as usize,
        || Acc::new(ts_len),
        |rng| draw(rng),
        |group: &[Vec<bool>], acc: &mut Acc| {
            check_cancelled();
            let lanes = group.len() as u32;
            let prev = LaneInputs::<B>::zeros(prog.num_inputs(), lanes)
                .expect("group size bounded by B::LANES");
            let new = LaneInputs::<B>::pack(group).expect("draw produces full input vectors");
            let res = match cancel {
                Some(tok) => prog.run_cancellable(&prev, &new, tok).unwrap_or_else(|e| {
                    if matches!(e, ola_netlist::BatchError::Cancelled) {
                        std::panic::panic_any(Cancelled)
                    }
                    panic!("shapes validated above: {e}")
                }),
                None => prog.run(&prev, &new).expect("shapes validated above"),
            };
            let bus = res.bus_waves(wires).expect("output bus nets exist");
            let sweep = bus.sweep(&active_ts);
            for lane in 0..lanes {
                acc.max_settle = acc.max_settle.max(res.settle_time(lane));
                let settled = bus.settled_lane(lane);
                for (si, &(i, _)) in judged.iter().enumerate() {
                    let (violation, abs_error) = judge(&sweep.lane_bits(si, lane), &settled);
                    acc.record(i, violation, abs_error);
                }
            }
            acc.samples += group.len();
            acc.stats.backend = "batch";
            acc.stats.vectors += u64::from(lanes);
            acc.stats.ts_points += u64::from(lanes) * judged.len() as u64;
            acc.stats.sta_skipped_points += u64::from(lanes) * skipped;
            acc.stats.batch_runs += 1;
            acc.stats.lanes_used += u64::from(lanes);
            acc.stats.lane_capacity = u64::from(B::LANES);
            acc.stats.word_steps += res.word_steps();
            acc.stats.lane_transitions += res.lane_transitions();
        },
        merge,
    )
}

/// The shared per-`Ts` sampling engine behind every gate-level curve.
///
/// `draw` produces one already-encoded primary-input vector per sample;
/// `judge` compares a sampled output-bus bit pattern against the settled
/// one and returns `(any_violation, abs_error)` — crucially it judges *bit
/// patterns* in the caller's native number system (redundant digit values,
/// exact `i64` products), never pre-flattened `f64`s, so both backends run
/// the identical comparison.
///
/// The event path simulates one vector per run; the batch path compiles
/// the netlist once (memoized by content digest, see [`crate::memo`]) and
/// runs up to `B::LANES` vectors per pass — the lane word `B` is selected
/// by `OLA_LANE_WORDS` (see [`lane_words`]) — sampling the whole `Ts` grid
/// with one sweep per pass. Lane order is sample order
/// and the per-chunk accumulation order (sample-outer, `Ts`-inner) matches
/// the event path exactly, so `f64` additions happen in the same order and
/// the curves are bit-identical. If batch compilation declines (non
/// batch-exact delay model, broken topology), the event path runs instead.
///
/// With [`StaGate::On`], `Ts` points at or above the bus's worst-case STA
/// arrival are never judged: every sample at such a point is provably
/// settled, so the judge would return exactly `(false, 0.0)` (the judge
/// contract requires `judge(x, x) == (false, 0.0)`), and folding `+0.0`
/// into the non-negative accumulators is a bitwise no-op. The produced
/// curve is therefore bit-identical to [`StaGate::Off`] — the equivalence
/// proptests in `tests/proptest_core.rs` pin that down.
#[allow(clippy::too_many_arguments)] // internal engine behind the two public wrappers
fn curve_with<M, D, J>(
    netlist: &Netlist,
    wires: &[NetId],
    delay: &M,
    ts_points: &[u64],
    samples: usize,
    seed: u64,
    backend: SimBackend,
    sta_gate: StaGate,
    draw: D,
    judge: J,
) -> (GateLevelCurve, BackendStats)
where
    M: DelayModel + Sync,
    D: Fn(&mut ChaCha8Rng) -> Vec<bool> + Sync,
    J: Fn(&[bool], &[bool]) -> (bool, f64) + Sync,
{
    assert!(!ts_points.is_empty() && samples > 0);
    let _span = crate::obs::span("empirical.curve");
    let report = {
        let _s = crate::obs::span("empirical.sta_analyze");
        analyze(netlist, delay)
    };
    let bus_arrival = report.arrival_of(wires);
    // `(slot, Ts)` pairs that still need dynamic judging; certified slots
    // keep their implicit (no violation, zero error) zeros.
    let judged: Vec<(usize, u64)> = ts_points
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, t)| !(sta_gate.is_on() && t >= bus_arrival))
        .collect();
    let skipped = (ts_points.len() - judged.len()) as u64;
    let prog = if backend.wants_batch(delay) {
        let _s = crate::obs::span("empirical.batch_compile");
        compile_batch_or_degrade("empirical.curve", netlist, delay)
    } else {
        None
    };
    // Captured once here and used by the sampling closures on worker
    // threads: in-run cancellation polls must not depend on each worker's
    // own thread-local stack being populated yet.
    let cancel = ambient_token();
    let started = Instant::now();
    let _sample_span = crate::obs::span("empirical.sample");
    let ts_len = ts_points.len();
    let mut acc = match &prog {
        Some(prog) => match lane_words() {
            1 => batch_accumulate::<u64, _, _>(
                prog, wires, &judged, skipped, ts_len, samples, seed, &cancel, &draw, &judge,
            ),
            2 => batch_accumulate::<LaneBlock<2>, _, _>(
                prog, wires, &judged, skipped, ts_len, samples, seed, &cancel, &draw, &judge,
            ),
            8 => batch_accumulate::<LaneBlock<8>, _, _>(
                prog, wires, &judged, skipped, ts_len, samples, seed, &cancel, &draw, &judge,
            ),
            _ => batch_accumulate::<LaneBlock<4>, _, _>(
                prog, wires, &judged, skipped, ts_len, samples, seed, &cancel, &draw, &judge,
            ),
        },
        None => parallel_accumulate(
            samples,
            seed,
            || Acc::new(ts_points.len()),
            |rng, acc| {
                check_cancelled();
                let inputs = draw(rng);
                let res = match &cancel {
                    Some(tok) => {
                        let zeros = vec![false; netlist.inputs().len()];
                        let budget = default_event_budget(netlist);
                        simulate_budgeted_cancellable(netlist, delay, &zeros, &inputs, budget, tok)
                            .unwrap_or_else(|e| {
                                if matches!(e, SimError::Cancelled) {
                                    std::panic::panic_any(Cancelled)
                                }
                                panic!("{e}")
                            })
                    }
                    None => simulate_from_zero(netlist, delay, &inputs),
                };
                acc.max_settle = acc.max_settle.max(res.settle_time());
                let settled = res.final_bus(wires);
                for &(i, t) in &judged {
                    let (violation, abs_error) = judge(&res.sample_bus(wires, t), &settled);
                    acc.record(i, violation, abs_error);
                }
                acc.samples += 1;
                acc.stats.backend = "event";
                acc.stats.vectors += 1;
                acc.stats.ts_points += judged.len() as u64;
                acc.stats.sta_skipped_points += skipped;
                acc.stats.event_runs += 1;
            },
            merge,
        ),
    };
    acc.stats.wall = started.elapsed();
    drop(_sample_span);
    acc.stats.publish();
    let critical_path = report.critical_path();
    let s = acc.samples as f64;
    let curve = GateLevelCurve {
        ts: ts_points.to_vec(),
        mean_abs_error: acc.err.iter().map(|&e| e / s).collect(),
        violation_rate: acc.viol.iter().map(|&v| v as f64 / s).collect(),
        critical_path,
        max_settle: acc.max_settle,
        samples: acc.samples,
    };
    (curve, acc.stats)
}

/// Sweeps an *arbitrary* synthesized datapath at the given clock periods —
/// the public entry to the shared sampling engine for compilers sitting on
/// top of the operator generators (notably `ola-synth`).
///
/// `wires` is the output bus to sample (typically every output-port net,
/// concatenated); `draw` produces one already-encoded primary-input vector
/// per sample, and `judge` compares a sampled output-bus bit pattern
/// against the settled one, returning `(any_violation, abs_error)`. The
/// judge contract is `judge(x, x) == (false, 0.0)` — required for the
/// [`StaGate::On`] fast path to stay bit-identical. Backend selection,
/// batching, STA gating, and determinism guarantees are exactly those of
/// [`om_gate_level_curve_with`].
///
/// # Panics
///
/// Panics if `ts_points` or `samples` is empty/zero.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the engine's knobs one-for-one
pub fn datapath_gate_level_curve_with<M, D, J>(
    netlist: &Netlist,
    wires: &[NetId],
    delay: &M,
    ts_points: &[u64],
    samples: usize,
    seed: u64,
    backend: SimBackend,
    sta_gate: StaGate,
    draw: D,
    judge: J,
) -> (GateLevelCurve, BackendStats)
where
    M: DelayModel + Sync,
    D: Fn(&mut ChaCha8Rng) -> Vec<bool> + Sync,
    J: Fn(&[bool], &[bool]) -> (bool, f64) + Sync,
{
    curve_with(netlist, wires, delay, ts_points, samples, seed, backend, sta_gate, draw, judge)
}

/// Sweeps a synthesized online multiplier at the given clock periods on a
/// chosen [`SimBackend`], returning the curve and the backend's
/// observability counters.
///
/// # Panics
///
/// Panics if `ts_points` or `samples` is empty/zero.
#[must_use]
#[allow(clippy::too_many_arguments)] // mirrors the engine's knobs one-for-one
pub fn om_gate_level_curve_with<M: DelayModel + Sync>(
    circuit: &OnlineMultiplierCircuit,
    delay: &M,
    model: InputModel,
    ts_points: &[u64],
    samples: usize,
    seed: u64,
    backend: SimBackend,
    sta_gate: StaGate,
) -> (GateLevelCurve, BackendStats) {
    let mut wires = circuit.netlist.output("zp").to_vec();
    let zp_len = wires.len();
    wires.extend_from_slice(circuit.netlist.output("zn"));
    let n = circuit.n;
    curve_with(
        &circuit.netlist,
        &wires,
        delay,
        ts_points,
        samples,
        seed,
        backend,
        sta_gate,
        |rng| {
            let x = model.draw(rng, n);
            let y = model.draw(rng, n);
            circuit.encode_inputs(&x, &y)
        },
        |sampled, settled| {
            // Compare on the redundant-digit *value* scale: distinct digit
            // vectors can represent the same number, and the paper counts
            // those as correct.
            let v = digits_value(&decode(&sampled[..zp_len], &sampled[zp_len..]));
            let correct = digits_value(&decode(&settled[..zp_len], &settled[zp_len..]));
            (v != correct, (v - correct).abs().to_f64())
        },
    )
}

/// Sweeps a synthesized online multiplier at the given clock periods.
///
/// Equivalent to [`om_gate_level_curve_with`] on [`SimBackend::Auto`],
/// discarding the stats.
///
/// # Panics
///
/// Panics if `ts_points` or `samples` is empty/zero.
#[must_use]
pub fn om_gate_level_curve<M: DelayModel + Sync>(
    circuit: &OnlineMultiplierCircuit,
    delay: &M,
    model: InputModel,
    ts_points: &[u64],
    samples: usize,
    seed: u64,
) -> GateLevelCurve {
    om_gate_level_curve_with(
        circuit,
        delay,
        model,
        ts_points,
        samples,
        seed,
        SimBackend::Auto,
        StaGate::On,
    )
    .0
}

/// Sweeps a synthesized two's-complement array multiplier at the given
/// clock periods on a chosen [`SimBackend`], returning the curve and the
/// backend's observability counters. Operands are drawn uniformly over the
/// full raw range; errors are reported on the fraction scale
/// (`raw / 2^(width−1)` operands, products in `(−1, 1)`).
///
/// # Panics
///
/// Panics if `ts_points` or `samples` is empty/zero.
#[must_use]
pub fn array_gate_level_curve_with<M: DelayModel + Sync>(
    circuit: &ArrayMultiplierCircuit,
    delay: &M,
    ts_points: &[u64],
    samples: usize,
    seed: u64,
    backend: SimBackend,
    sta_gate: StaGate,
) -> (GateLevelCurve, BackendStats) {
    let wires = circuit.netlist.output("product").to_vec();
    let w = circuit.width;
    let lim = 1i64 << (w - 1);
    let scale = ((2 * (w - 1)) as f64).exp2();
    curve_with(
        &circuit.netlist,
        &wires,
        delay,
        ts_points,
        samples,
        seed,
        backend,
        sta_gate,
        |rng| {
            let a = rng.gen_range(-lim..lim);
            let b = rng.gen_range(-lim..lim);
            circuit.encode_inputs(a, b)
        },
        |sampled, settled| {
            // Exact i64 comparison before any float: 2(w−1)-bit products
            // exceed f64's integer range at w = 32.
            let v = circuit.decode_product(sampled);
            let correct = circuit.decode_product(settled);
            (v != correct, (v - correct).abs() as f64 / scale)
        },
    )
}

/// Sweeps a synthesized two's-complement array multiplier at the given
/// clock periods.
///
/// Equivalent to [`array_gate_level_curve_with`] on [`SimBackend::Auto`],
/// discarding the stats.
///
/// # Panics
///
/// Panics if `ts_points` or `samples` is empty/zero.
#[must_use]
pub fn array_gate_level_curve<M: DelayModel + Sync>(
    circuit: &ArrayMultiplierCircuit,
    delay: &M,
    ts_points: &[u64],
    samples: usize,
    seed: u64,
) -> GateLevelCurve {
    array_gate_level_curve_with(
        circuit,
        delay,
        ts_points,
        samples,
        seed,
        SimBackend::Auto,
        StaGate::On,
    )
    .0
}

fn decode(zp: &[bool], zn: &[bool]) -> Vec<Digit> {
    zp.iter().zip(zn).map(|(&p, &n)| Digit::from_bits(p, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_arith::synth::{array_multiplier, online_multiplier};
    use ola_netlist::{FpgaDelay, JitteredDelay, UnitDelay};

    #[test]
    fn om_curve_settles_at_critical_path() {
        let circuit = online_multiplier(6, 3);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let ts = vec![rep.critical_path() / 4, rep.critical_path() / 2, rep.critical_path()];
        let curve =
            om_gate_level_curve(&circuit, &UnitDelay, InputModel::UniformDigits, &ts, 40, 1);
        assert_eq!(*curve.mean_abs_error.last().unwrap(), 0.0);
        assert_eq!(*curve.violation_rate.last().unwrap(), 0.0);
        assert!(curve.mean_abs_error[0] > 0.0, "hard undersampling must err");
        assert!(curve.max_settle <= rep.critical_path());
    }

    #[test]
    fn om_actual_settling_beats_structural_bound() {
        // The headroom claim at gate level: observed settling is well below
        // the structural critical path for wide operands.
        let circuit = online_multiplier(12, 3);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let curve = om_gate_level_curve(
            &circuit,
            &UnitDelay,
            InputModel::UniformDigits,
            &[rep.critical_path()],
            60,
            2,
        );
        assert!(
            (curve.max_settle as f64) < 0.9 * rep.critical_path() as f64,
            "settle {} vs critical {}",
            curve.max_settle,
            rep.critical_path()
        );
    }

    #[test]
    fn array_curve_behaves() {
        let circuit = array_multiplier(6);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let ts = vec![rep.critical_path() / 3, rep.critical_path()];
        let curve = array_gate_level_curve(&circuit, &UnitDelay, &ts, 60, 3);
        assert_eq!(*curve.mean_abs_error.last().unwrap(), 0.0);
        assert!(curve.mean_abs_error[0] > 0.0);
    }

    #[test]
    fn online_errors_smaller_than_traditional_at_matched_underclock() {
        // The paper's core comparison at operator level: sample both
        // multipliers at 70% of their own rated period; online errors are
        // orders of magnitude smaller.
        let om = online_multiplier(8, 3);
        let am = array_multiplier(9); // equal range: N+1 bits traditional
        let delay = JitteredDelay::new(UnitDelay, 20, 99);
        let om_rated = analyze(&om.netlist, &delay).critical_path();
        let am_rated = analyze(&am.netlist, &delay).critical_path();
        let om_curve =
            om_gate_level_curve(&om, &delay, InputModel::UniformValue, &[om_rated * 7 / 10], 80, 4);
        let am_curve = array_gate_level_curve(&am, &delay, &[am_rated * 7 / 10], 80, 4);
        let e_om = om_curve.mean_abs_error[0];
        let e_am = am_curve.mean_abs_error[0];
        assert!(
            e_om < e_am / 5.0 || (e_om == 0.0 && e_am > 0.0),
            "online {e_om} vs traditional {e_am}"
        );
    }

    #[test]
    fn jitter_changes_the_curve_but_not_correctness() {
        let circuit = online_multiplier(6, 3);
        let delay = JitteredDelay::new(UnitDelay, 30, 7);
        let rep = analyze(&circuit.netlist, &delay);
        let curve = om_gate_level_curve(
            &circuit,
            &delay,
            InputModel::UniformDigits,
            &[rep.critical_path()],
            30,
            5,
        );
        assert_eq!(*curve.mean_abs_error.last().unwrap(), 0.0);
    }

    #[test]
    fn om_batch_and_event_curves_are_bit_identical() {
        let circuit = online_multiplier(6, 3);
        for delay in [FpgaDelay::default(), FpgaDelay { not: 10, two_input: 70, mux: 90 }] {
            let rep = analyze(&circuit.netlist, &delay);
            let ts: Vec<u64> = (1..=5).map(|k| rep.critical_path() * k / 5).collect();
            let (ev, ev_stats) = om_gate_level_curve_with(
                &circuit,
                &delay,
                InputModel::UniformDigits,
                &ts,
                100,
                9,
                SimBackend::Event,
                StaGate::Off,
            );
            let (ba, ba_stats) = om_gate_level_curve_with(
                &circuit,
                &delay,
                InputModel::UniformDigits,
                &ts,
                100,
                9,
                SimBackend::Batch,
                StaGate::Off,
            );
            assert_eq!(ev, ba, "curves must be bit-identical");
            assert_eq!(ev_stats.backend, "event");
            assert_eq!(ba_stats.backend, "batch");
            let cap = ba_stats.lane_capacity.max(64);
            assert_eq!(ba_stats.batch_runs, 100u64.div_ceil(cap), "one pass per {cap} lanes");
            assert_eq!(ba_stats.vectors, 100);
            assert_eq!(ev_stats.ts_points, 500);
            assert_eq!(ba_stats.ts_points, 500);
        }
    }

    #[test]
    fn sta_gate_skips_certified_points_bit_identically() {
        let circuit = online_multiplier(6, 3);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        // Two certified points (≥ critical path) and two at-risk points.
        let cp = rep.critical_path();
        let ts = vec![cp / 2, cp * 3 / 4, cp, cp + 50];
        for backend in [SimBackend::Event, SimBackend::Batch] {
            let (gated, gated_stats) = om_gate_level_curve_with(
                &circuit,
                &UnitDelay,
                InputModel::UniformDigits,
                &ts,
                70,
                12,
                backend,
                StaGate::On,
            );
            let (full, full_stats) = om_gate_level_curve_with(
                &circuit,
                &UnitDelay,
                InputModel::UniformDigits,
                &ts,
                70,
                12,
                backend,
                StaGate::Off,
            );
            assert_eq!(gated, full, "fast path must be bit-identical ({backend})");
            assert_eq!(gated_stats.sta_skipped_points, 2 * 70, "2 certified Ts × 70 samples");
            assert_eq!(full_stats.sta_skipped_points, 0);
            assert_eq!(
                gated_stats.ts_points + gated_stats.sta_skipped_points,
                full_stats.ts_points,
                "skipped + judged covers the whole grid"
            );
            assert_eq!(*gated.mean_abs_error.last().unwrap(), 0.0);
            assert_eq!(*gated.violation_rate.last().unwrap(), 0.0);
        }
    }

    #[test]
    fn array_batch_and_event_curves_are_bit_identical() {
        let circuit = array_multiplier(7);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let ts = vec![rep.critical_path() / 3, rep.critical_path() * 7 / 10, rep.critical_path()];
        let (ev, _) = array_gate_level_curve_with(
            &circuit,
            &UnitDelay,
            &ts,
            90,
            11,
            SimBackend::Event,
            StaGate::On,
        );
        let (ba, stats) = array_gate_level_curve_with(
            &circuit,
            &UnitDelay,
            &ts,
            90,
            11,
            SimBackend::Batch,
            StaGate::On,
        );
        assert_eq!(ev, ba);
        assert_eq!(stats.lanes_used, 90, "every sample occupies one lane");
        assert_eq!(stats.batch_runs, 90u64.div_ceil(stats.lane_capacity.max(64)));
        let expected = 90.0 / (stats.lane_capacity.max(64) * stats.batch_runs) as f64;
        assert!((stats.lane_utilization() - expected).abs() < 1e-12);
    }

    /// Regression guard for tail-lane handling: 65 samples is one lane past
    /// the legacy 64-lane word and far short of a full multi-word block, so
    /// whichever lane width runs, the final batch pass carries unused high
    /// lanes. Those lanes hold engine-internal values that must be masked
    /// out of every reduction (violation counts, error sums, settle times)
    /// — any leak breaks bit-identity with the event path.
    #[test]
    fn tail_lanes_stay_out_of_reductions_at_population_65() {
        let circuit = online_multiplier(6, 3);
        let rep = analyze(&circuit.netlist, &UnitDelay);
        let cp = rep.critical_path();
        let ts: Vec<u64> = vec![cp / 3, cp / 2, cp * 3 / 4, cp];
        let (ev, ev_stats) = om_gate_level_curve_with(
            &circuit,
            &UnitDelay,
            InputModel::UniformDigits,
            &ts,
            65,
            21,
            SimBackend::Event,
            StaGate::Off,
        );
        let (ba, ba_stats) = om_gate_level_curve_with(
            &circuit,
            &UnitDelay,
            InputModel::UniformDigits,
            &ts,
            65,
            21,
            SimBackend::Batch,
            StaGate::Off,
        );
        assert_eq!(ev, ba, "tail lanes leaked into a reduction");
        assert_eq!(ev_stats.vectors, 65);
        assert_eq!(ba_stats.vectors, 65, "exactly the requested population, no phantom lanes");
        assert_eq!(ba_stats.lanes_used, 65);
        assert_eq!(ba_stats.batch_runs, 65u64.div_ceil(ba_stats.lane_capacity.max(64)));
    }

    #[test]
    fn batch_request_on_jitter_falls_back_to_event() {
        let circuit = online_multiplier(5, 3);
        let delay = JitteredDelay::new(UnitDelay, 25, 13);
        let ts = vec![analyze(&circuit.netlist, &delay).critical_path()];
        let (curve, stats) = om_gate_level_curve_with(
            &circuit,
            &delay,
            InputModel::UniformDigits,
            &ts,
            20,
            6,
            SimBackend::Batch,
            StaGate::On,
        );
        assert_eq!(stats.backend, "event", "jitter is not batch-exact");
        assert_eq!(stats.batch_runs, 0);
        let reference =
            om_gate_level_curve(&circuit, &delay, InputModel::UniformDigits, &ts, 20, 6);
        assert_eq!(curve, reference);
    }

    #[test]
    fn auto_backend_picks_batch_for_deterministic_delays() {
        let circuit = online_multiplier(5, 3);
        let ts = vec![analyze(&circuit.netlist, &UnitDelay).critical_path() / 2];
        let (_, stats) = om_gate_level_curve_with(
            &circuit,
            &UnitDelay,
            InputModel::UniformDigits,
            &ts,
            30,
            8,
            SimBackend::Auto,
            StaGate::On,
        );
        assert_eq!(stats.backend, "batch");
        assert!(stats.word_steps > 0);
        assert!(stats.lane_transitions >= stats.word_steps);
    }
}
