//! Clock-period bookkeeping for overclocked datapaths.
//!
//! The paper's timing model: every multiplier stage has delay `μ`; a clock
//! period `Ts` lets residual chains propagate through `b = ⌈Ts/μ⌉` stages
//! (Eq. (4)). Frequencies are always reported *normalized* — to the
//! structural (rated) period or to the maximum error-free period — because
//! absolute time units are uncalibrated in both the paper's FPGA and our
//! simulator.

use ola_arith::online::DELTA;

/// The stage budget `b = ⌈Ts/μ⌉` (Eq. (4)).
///
/// # Examples
///
/// ```
/// use ola_core::timing::stage_budget;
/// assert_eq!(stage_budget(500, 100), 5);
/// assert_eq!(stage_budget(501, 100), 6);
/// assert_eq!(stage_budget(99, 100), 1);
/// ```
///
/// # Panics
///
/// Panics if `mu == 0`.
#[must_use]
pub fn stage_budget(ts: u64, mu: u64) -> usize {
    assert!(mu > 0, "stage delay must be positive");
    (ts.div_ceil(mu)) as usize
}

/// The structural (worst-case-by-construction) delay of an `n`-digit online
/// multiplier: `(N + δ)·μ` — what naive structural timing analysis reports.
#[must_use]
pub fn structural_delay(n: usize, mu: u64) -> u64 {
    (n + DELTA) as u64 * mu
}

/// The *actual* worst-case delay of an `n`-digit online multiplier from the
/// paper's chain analysis: chains annihilate, so
/// `μ_OM = (⌊(N−1)/2⌋ + 4)·μ` — strictly less than the structural bound for
/// `N > 7`. This gap is "free" overclocking headroom.
///
/// Static timing analysis of the *synthesized* netlists
/// ([`ola_netlist::sta::analyze`]) lands on [`structural_delay`], not on
/// this bound: chain annihilation is a data-dependent effect no structural
/// pass can certify. The golden test `golden_sta.rs` pins the
/// correspondence — under [`UnitDelay`](ola_netlist::UnitDelay) the
/// netlists rate at `structural_delay(n, 3900) − 1900` (a constant 39
/// gate-levels per digit stage plus a pipeline-head offset), so the
/// formula-vs-netlist gap *is* the structural-vs-chain gap, and it widens
/// linearly with `N`.
#[must_use]
pub fn chain_worst_case_delay(n: usize, mu: u64) -> u64 {
    assert!(n >= 1);
    let stages = (n - 1) / 2 + 4;
    (stages as u64 * mu).min(structural_delay(n, mu))
}

/// Normalized frequency `f/f0 = T0/Ts`.
#[must_use]
pub fn normalized_frequency(ts: u64, t0: u64) -> f64 {
    t0 as f64 / ts as f64
}

/// The period achieving a given normalized frequency: `Ts = T0 / nf`
/// (rounded to the nearest time unit).
#[must_use]
pub fn period_for_normalized_frequency(t0: u64, nf: f64) -> u64 {
    assert!(nf > 0.0, "normalized frequency must be positive");
    ((t0 as f64 / nf).round() as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_budget_is_ceiling() {
        assert_eq!(stage_budget(100, 100), 1);
        assert_eq!(stage_budget(101, 100), 2);
        assert_eq!(stage_budget(1, 100), 1);
        assert_eq!(stage_budget(0, 100), 0);
    }

    #[test]
    fn structural_delay_counts_all_stages() {
        assert_eq!(structural_delay(8, 100), 1100);
        assert_eq!(structural_delay(12, 1), 15);
    }

    #[test]
    fn chain_bound_matches_paper_formula() {
        // Paper: μ_OM = (N−1)/2 + 4 for odd N, (N−2)/2 + 4 for even N
        // (both equal ⌊(N−1)/2⌋ + 4).
        assert_eq!(chain_worst_case_delay(9, 1), 8); // (9−1)/2 + 4
        assert_eq!(chain_worst_case_delay(8, 1), 7); // (8−2)/2 + 4
        assert_eq!(chain_worst_case_delay(32, 1), 19);
        // For very small N the structural bound is the binding one.
        assert!(chain_worst_case_delay(2, 1) <= structural_delay(2, 1));
    }

    #[test]
    fn headroom_grows_with_width() {
        for n in [8usize, 12, 16, 32] {
            let gap = structural_delay(n, 100) - chain_worst_case_delay(n, 100);
            assert!(gap > 0, "n={n}");
        }
        let gap8 = structural_delay(8, 100) - chain_worst_case_delay(8, 100);
        let gap32 = structural_delay(32, 100) - chain_worst_case_delay(32, 100);
        assert!(gap32 > gap8);
    }

    #[test]
    fn normalized_frequency_round_trips() {
        let t0 = 1100;
        for nf in [1.0, 1.05, 1.10, 1.25] {
            let ts = period_for_normalized_frequency(t0, nf);
            let back = normalized_frequency(ts, t0);
            assert!((back - nf).abs() < 0.01, "nf={nf} back={back}");
        }
    }
}
