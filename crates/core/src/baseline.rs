//! Overclocking behaviour of conventional (LSB-first) arithmetic — the
//! comparison baseline.
//!
//! Two results back the paper's argument: the *probability* of a long carry
//! chain in a ripple-carry adder decays geometrically with length (so
//! conventional designs also violate rarely), but the *magnitude* of the
//! resulting error grows geometrically with the chain length (errors land
//! in the MSBs) — the two effects cancel and the error expectation stays
//! roughly flat, unlike online arithmetic where the expectation collapses.

use crate::parallel::parallel_accumulate;
use ola_arith::conventional::StagedRippleAdder;
use rand::Rng;

/// Exact probability that the longest carry chain of a `width`-bit addition
/// of two independent uniform operands is at most `l`.
///
/// Computed by dynamic programming over the classic
/// generate (1/4) / propagate (1/2) / annihilate (1/4) position model.
#[must_use]
pub fn carry_chain_cdf(width: u32, l: u32) -> f64 {
    if l >= width {
        return 1.0;
    }
    // dp[c] = probability the chain ending at the current position has
    // length exactly c (and the max so far is ≤ l).
    let mut dp = vec![0.0f64; l as usize + 1];
    dp[0] = 1.0;
    for _ in 0..width {
        let mut next = vec![0.0f64; l as usize + 1];
        let total: f64 = dp.iter().sum();
        // Generate: any state → chain of length 1 (if 1 ≤ l, else lost).
        if 1 <= l {
            next[1] += 0.25 * total;
        }
        // Annihilate: any state → 0.
        next[0] += 0.25 * total;
        // Propagate: extends active chains, keeps empty state empty.
        next[0] += 0.5 * dp[0];
        for c in 1..=l as usize {
            if c < l as usize {
                next[c + 1] += 0.5 * dp[c];
            }
            // c + 1 > l → violation → probability mass drops out.
        }
        // Special case l = 0: generating at all is a violation.
        if l == 0 {
            // handled implicitly: the `1 <= l` guard dropped the mass.
        }
        dp = next;
    }
    dp.iter().sum()
}

/// Probability that a `width`-bit ripple-carry addition of uniform operands
/// still has unfinished carries after `b` full-adder delays.
#[must_use]
pub fn rca_violation_probability(width: u32, b: u32) -> f64 {
    // A carry chain of length c has fully arrived after c carry-wave steps,
    // so a budget of b waves tolerates chains up to length b.
    1.0 - carry_chain_cdf(width, b)
}

/// Monte-Carlo overclocking curve of a ripple-carry adder: mean |error| per
/// full-adder budget, as a fraction of full scale (`2^width`).
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct RcaCurve {
    /// Operand width in bits.
    pub width: u32,
    /// `mean_abs_error[b]` — mean wrapped |sampled − correct| / 2^width.
    pub mean_abs_error: Vec<f64>,
    /// `violation_rate[b]`.
    pub violation_rate: Vec<f64>,
    /// Sample count.
    pub samples: usize,
}

/// Runs the ripple-adder Monte-Carlo.
///
/// # Panics
///
/// Panics if `samples == 0` or the width is unsupported.
#[must_use]
pub fn rca_monte_carlo(width: u32, samples: usize, seed: u64) -> RcaCurve {
    assert!(samples > 0);
    assert!((1..=62).contains(&width));
    let budgets = width as usize + 2;
    let (err, viol, count) = parallel_accumulate(
        samples,
        seed,
        || (vec![0.0f64; budgets], vec![0u64; budgets], 0usize),
        |rng, (err, viol, count)| {
            let a: u64 = rng.gen_range(0..1u64 << width);
            let b: u64 = rng.gen_range(0..1u64 << width);
            let adder = StagedRippleAdder::new(a, b, width);
            let correct = adder.settled();
            for (t, (e_slot, v_slot)) in err.iter_mut().zip(viol.iter_mut()).enumerate() {
                let sampled = adder.sample(t as u32);
                if sampled != correct {
                    *v_slot += 1;
                }
                *e_slot += wrapped_error(sampled, correct, width);
            }
            *count += 1;
        },
        |(mut e1, mut v1, c1), (e2, v2, c2)| {
            for i in 0..e1.len() {
                e1[i] += e2[i];
                v1[i] += v2[i];
            }
            (e1, v1, c1 + c2)
        },
    );
    let s = count as f64;
    RcaCurve {
        width,
        mean_abs_error: err.iter().map(|&e| e / s).collect(),
        violation_rate: viol.iter().map(|&v| v as f64 / s).collect(),
        samples: count,
    }
}

/// |sampled − correct| as a fraction of full scale, in wrapped (two's
/// complement) distance.
fn wrapped_error(sampled: u64, correct: u64, width: u32) -> f64 {
    let m = 1u64 << width;
    let d = (sampled.wrapping_sub(correct)) & (m - 1);
    let signed = if d >= m / 2 { d as i64 - m as i64 } else { d as i64 };
    signed.unsigned_abs() as f64 / m as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_a_distribution() {
        for w in [4u32, 8, 16] {
            let mut last = 0.0;
            for l in 0..=w {
                let p = carry_chain_cdf(w, l);
                assert!((0.0..=1.0 + 1e-12).contains(&p), "w={w} l={l} p={p}");
                assert!(p >= last - 1e-12, "CDF must be monotone");
                last = p;
            }
            assert!((carry_chain_cdf(w, w) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cdf_matches_exhaustive_enumeration() {
        // Brute-force all 4-bit operand pairs.
        let w = 4u32;
        for l in 0..=w {
            let mut ok = 0u32;
            for a in 0..16u64 {
                for b in 0..16u64 {
                    if StagedRippleAdder::new(a, b, w).longest_carry_chain() <= l {
                        ok += 1;
                    }
                }
            }
            let expect = f64::from(ok) / 256.0;
            let got = carry_chain_cdf(w, l);
            assert!((got - expect).abs() < 1e-12, "l={l}: {got} vs {expect}");
        }
    }

    #[test]
    fn violation_probability_decays_geometrically() {
        let p4 = rca_violation_probability(32, 4);
        let p8 = rca_violation_probability(32, 8);
        let p16 = rca_violation_probability(32, 16);
        assert!(p4 > p8 && p8 > p16);
        assert!(p8 / p4 < 0.2, "roughly 2^-b decay: {p4} {p8}");
        assert!(p16 > 0.0);
        // Budget 0 violates whenever any carry is generated at all.
        let p0 = rca_violation_probability(8, 0);
        assert!(p0 > 0.8 && p0 <= 1.0, "p0 = {p0}");
    }

    #[test]
    fn mc_curve_settles_and_matches_model_roughly() {
        let mc = rca_monte_carlo(16, 4000, 11);
        assert_eq!(*mc.mean_abs_error.last().unwrap(), 0.0);
        assert_eq!(*mc.violation_rate.last().unwrap(), 0.0);
        // MC violation rate tracks the analytic model within MC noise.
        for b in [2usize, 4, 6] {
            let model = rca_violation_probability(16, b as u32);
            let mc_rate = mc.violation_rate[b];
            assert!((model - mc_rate).abs() < 0.05, "b={b}: model {model} vs mc {mc_rate}");
        }
    }

    #[test]
    fn rca_error_expectation_is_flat_over_budgets() {
        // The paper's contrast: for conventional arithmetic the error
        // expectation stays roughly constant as the budget shrinks (until
        // fully settled), because magnitude growth offsets probability
        // decay. Check: between small budgets it varies by < 100× while the
        // online multiplier's collapses by orders of magnitude.
        let mc = rca_monte_carlo(16, 4000, 13);
        let e2 = mc.mean_abs_error[2];
        let e8 = mc.mean_abs_error[8];
        assert!(e2 > 0.0 && e8 > 0.0);
        assert!(e2 / e8 < 100.0, "flat-ish expectation: {e2} vs {e8}");
    }

    #[test]
    fn wrapped_error_measures_distance() {
        assert_eq!(wrapped_error(0, 0, 8), 0.0);
        assert_eq!(wrapped_error(255, 0, 8), 1.0 / 256.0); // −1 vs 0
        assert_eq!(wrapped_error(128, 0, 8), 0.5);
    }
}
