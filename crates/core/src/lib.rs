//! # ola-core — overclocking analysis for online-arithmetic datapaths
//!
//! The primary contribution of the reproduced paper (*"Datapath Synthesis
//! for Overclocking: Online Arithmetic for Latency-Accuracy Trade-offs"*,
//! DAC 2014): quantifying what happens when a datapath built from online
//! (MSD-first) operators is clocked faster than its critical path, and why
//! that degrades so much more gracefully than conventional arithmetic.
//!
//! * [`timing`] — stage budgets `b = ⌈Ts/μ⌉`, structural vs chain-analysis
//!   worst-case delay (the overclocking headroom);
//! * [`model`] — the paper's probabilistic model: chain scenarios,
//!   violation probability (Algorithm 2), per-delay profile (Figure 5) and
//!   expected overclocking error (Eq. 12);
//! * [`montecarlo`] — stage-wave Monte-Carlo verification (Figure 4 top);
//! * [`empirical`] — gate-level netlist sweeps under jittered delays
//!   (Figure 4 bottom, the "FPGA" results);
//! * [`backend`] — pluggable simulation engine selection ([`SimBackend`]:
//!   event-driven vs bit-parallel batch) plus the observability counters
//!   ([`BackendStats`]) the `repro` binary reports;
//! * [`baseline`] — conventional ripple-carry behaviour: exact carry-chain
//!   distribution and Monte-Carlo, showing the flat error expectation that
//!   makes conventional overclocking catastrophic;
//! * [`razor`] — Razor-style shadow-register error detection on top of the
//!   stage-wave model (the related work the paper builds on);
//! * [`sweep`] — max error-free frequency and error-budget solvers
//!   (Tables 1–3);
//! * [`metrics`] — MRE (Eq. 13), SNR, PSNR, geometric means;
//! * [`obs`] — the observability layer: tracing spans ([`obs::span`]), the
//!   process-global metrics registry ([`obs::registry()`]) fed by the
//!   simulation engines, and per-experiment run manifests
//!   ([`obs::RunManifest`]) with SHA-256-certified outputs;
//! * [`cache`] — the content-addressed result cache ([`ContentCache`]):
//!   SHA-256-keyed, single-flight, LRU-bounded, integrity-verified on
//!   every read, with an optional on-disk tier — the dedupe substrate for
//!   `ola-serve` and warm `repro synth` re-runs;
//! * [`parallel`] — deterministic parallel Monte-Carlo accumulation and
//!   the `OLA_THREADS` resolution ([`parallel::thread_config`]) recorded
//!   in manifests;
//! * [`resilience`] — crash-safe execution: SHA-256-framed checkpoint
//!   files with resume ([`resilience::open_resumable`]), cooperative
//!   cancellation ([`resilience::install_ambient`] /
//!   [`CancelToken`]), typed error taxonomy
//!   ([`resilience::ResilienceError`]), batch→event degradation policy
//!   ([`resilience::compile_batch_or_degrade`]), atomic artifact writes
//!   ([`resilience::atomic_write`]), and the chaos-injection env hooks
//!   ([`resilience::chaos`]) the `chaos_check` harness drives.
//!
//! # Example: model vs Monte-Carlo (the Figure-4 experiment in miniature)
//!
//! ```
//! use ola_arith::online::Selection;
//! use ola_core::{model, montecarlo};
//!
//! let n = 8;
//! let mc = montecarlo::om_monte_carlo(
//!     n,
//!     Selection::default(),
//!     montecarlo::InputModel::UniformDigits,
//!     300,
//!     7,
//! );
//! // Both model and simulation agree: sampling after all chains settle is
//! // error-free, and the error expectation decays as the budget grows.
//! assert_eq!(*mc.curve.mean_abs_error.last().unwrap(), 0.0);
//! assert_eq!(model::expected_error(n, n + 3, 1.0), 0.0);
//! assert!(model::expected_error(n, 4, 1.0) > model::expected_error(n, 8, 1.0));
//! ```

pub mod backend;
pub mod baseline;
pub mod cache;
pub mod campaign;
pub mod empirical;
pub mod memo;
pub mod metrics;
pub mod model;
pub mod montecarlo;
pub mod obs;
pub mod parallel;
pub mod razor;
pub mod resilience;
pub mod sweep;
pub mod timing;

pub use backend::{BackendStats, SimBackend, StaGate};
pub use cache::{CacheConfig, CacheKey, ContentCache, Lookup};
pub use montecarlo::InputModel;
pub use resilience::{CancelToken, Cancelled, ResilienceError};
