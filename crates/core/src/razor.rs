//! Razor-style timing-error detection over the stage-wave model.
//!
//! The paper's introduction cites Razor (Ernst et al., 2004): run the main
//! register at an aggressive clock, add a *shadow register* clocked a
//! margin later, and flag a timing violation whenever the two disagree.
//! Combined with online arithmetic this yields a useful middle ground —
//! detected-but-tolerated errors — so this module quantifies how well the
//! shadow-margin detector covers the online multiplier's overclocking
//! errors and what residual (undetected) error remains.

use crate::parallel::parallel_accumulate;
use crate::InputModel;
use ola_arith::online::{Selection, StagedMultiplier};

/// Detection statistics for a shadow-register scheme sampling at stage
/// budget `b` with a shadow margin of `margin` extra stage delays.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct RazorReport {
    /// Main-clock stage budget.
    pub budget: usize,
    /// Shadow margin in stage delays.
    pub margin: usize,
    /// Fraction of samples with a wrong main-register value.
    pub error_rate: f64,
    /// Fraction of erroneous samples the shadow comparison flagged.
    pub detection_rate: f64,
    /// Fraction of all samples flagged although the main value was correct
    /// (false alarms: the shadow caught a *later* settling transition).
    pub false_alarm_rate: f64,
    /// Mean |error| of the errors the detector missed.
    pub undetected_mean_error: f64,
}

/// Measures shadow-register detection on an `n`-digit online multiplier.
///
/// The main register samples after `budget` waves, the shadow after
/// `budget + margin`; a mismatch raises the error flag. An error is
/// *undetected* when the main value is wrong but main and shadow agree
/// (the violating chain was still in flight past the shadow, too).
///
/// # Panics
///
/// Panics if `n == 0` or `samples == 0`.
#[must_use]
pub fn razor_report(
    n: usize,
    budget: usize,
    margin: usize,
    policy: Selection,
    model: InputModel,
    samples: usize,
    seed: u64,
) -> RazorReport {
    assert!(n > 0 && samples > 0);
    let (errors, detected, false_alarms, undetected_err, count) = parallel_accumulate(
        samples,
        seed,
        || (0u64, 0u64, 0u64, 0.0f64, 0usize),
        |rng, acc| {
            let x = model.draw(rng, n);
            let y = model.draw(rng, n);
            let sm = StagedMultiplier::new(x, y, policy);
            let vals = sm.sampled_values();
            let correct = *vals.last().expect("non-empty");
            let main = vals.get(budget).copied().unwrap_or(correct);
            let shadow = vals.get(budget + margin).copied().unwrap_or(correct);
            let wrong = main != correct;
            let flagged = main != shadow;
            if wrong {
                acc.0 += 1;
                if flagged {
                    acc.1 += 1;
                } else {
                    acc.3 += (main - correct).abs().to_f64();
                }
            } else if flagged {
                acc.2 += 1;
            }
            acc.4 += 1;
        },
        |a, b| (a.0 + b.0, a.1 + b.1, a.2 + b.2, a.3 + b.3, a.4 + b.4),
    );
    let s = count as f64;
    RazorReport {
        budget,
        margin,
        error_rate: errors as f64 / s,
        detection_rate: if errors > 0 { detected as f64 / errors as f64 } else { 1.0 },
        false_alarm_rate: false_alarms as f64 / s,
        undetected_mean_error: if errors > detected {
            undetected_err / (errors - detected) as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_margin_detects_everything() {
        // A shadow at the structural depth always sees the settled value, so
        // every main-register error is caught.
        let n = 8;
        let r = razor_report(n, 5, n + 3, Selection::default(), InputModel::UniformDigits, 600, 1);
        assert!(r.error_rate > 0.0, "budget 5 must err sometimes");
        assert_eq!(r.detection_rate, 1.0);
        assert_eq!(r.undetected_mean_error, 0.0);
    }

    #[test]
    fn zero_margin_detects_nothing() {
        let r = razor_report(8, 5, 0, Selection::default(), InputModel::UniformDigits, 300, 2);
        assert_eq!(r.false_alarm_rate, 0.0);
        if r.error_rate > 0.0 {
            assert_eq!(r.detection_rate, 0.0);
        }
    }

    #[test]
    fn wider_margins_detect_more() {
        let run = |margin| {
            razor_report(8, 5, margin, Selection::default(), InputModel::UniformDigits, 800, 3)
        };
        let narrow = run(1);
        let wide = run(4);
        assert!(
            wide.detection_rate >= narrow.detection_rate,
            "wider shadow margin cannot detect less: {narrow:?} vs {wide:?}"
        );
    }

    #[test]
    fn undetected_errors_are_small() {
        // The LSD-first property helps Razor too: whatever slips past the
        // shadow is a *deep* chain, i.e. a tiny-magnitude error.
        let r = razor_report(12, 7, 2, Selection::default(), InputModel::UniformDigits, 800, 4);
        assert!(r.undetected_mean_error < 0.01, "missed errors must be low-weight: {r:?}");
    }
}
