//! Error metrics used by the paper's evaluation.
//!
//! All comparison metrics return `Result` instead of panicking on
//! degenerate input (empty sample sets, mismatched lengths, non-positive
//! peaks): experiment drivers feed these functions with data of run-time
//! provenance (CSV rows, image buffers), so shape errors are *conditions
//! to report*, not programmer bugs. [`MetricsError`] carries enough
//! context to point at the offending input.

use std::fmt;

/// A degenerate input to one of the comparison metrics.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricsError {
    /// The sample sets are empty — no metric is defined.
    Empty,
    /// The reference and test sets differ in length.
    LengthMismatch {
        /// Length of the reference (correct) set.
        reference: usize,
        /// Length of the test (actual) set.
        test: usize,
    },
    /// [`psnr_db`] was given a peak amplitude that is zero, negative, or
    /// non-finite.
    NonPositivePeak {
        /// The offending peak value.
        peak: f64,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::Empty => write!(f, "empty sample set"),
            MetricsError::LengthMismatch { reference, test } => {
                write!(f, "length mismatch: {reference} reference vs {test} test samples")
            }
            MetricsError::NonPositivePeak { peak } => {
                write!(f, "peak must be positive and finite, got {peak}")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// Validates that two sample sets are non-empty and of equal length.
fn check_pair(reference: &[f64], test: &[f64]) -> Result<(), MetricsError> {
    if reference.len() != test.len() {
        return Err(MetricsError::LengthMismatch { reference: reference.len(), test: test.len() });
    }
    if reference.is_empty() {
        return Err(MetricsError::Empty);
    }
    Ok(())
}

/// Mean relative error in percent (Eq. (13)):
/// `MRE = |E_error / E_out| × 100`, with `E_error` the mean error magnitude
/// and `E_out` the mean magnitude of the correct outputs.
///
/// A zero-magnitude reference with a non-zero error yields
/// `f64::INFINITY` (the relative error is unbounded); an all-zero match
/// yields `0.0`.
///
/// # Examples
///
/// ```
/// use ola_core::metrics::mre_percent;
/// let correct = [1.0, 2.0, 3.0];
/// let actual = [1.0, 2.2, 2.9];
/// let mre = mre_percent(&correct, &actual).unwrap();
/// assert!((mre - 5.0).abs() < 1e-9); // mean |err| 0.1, mean |out| 2.0
/// ```
///
/// # Errors
///
/// [`MetricsError::LengthMismatch`] / [`MetricsError::Empty`] on
/// degenerate input.
pub fn mre_percent(correct: &[f64], actual: &[f64]) -> Result<f64, MetricsError> {
    check_pair(correct, actual)?;
    let mean_err: f64 = correct.iter().zip(actual).map(|(&c, &a)| (a - c).abs()).sum::<f64>()
        / correct.len() as f64;
    let mean_out: f64 = correct.iter().map(|&c| c.abs()).sum::<f64>() / correct.len() as f64;
    Ok(if mean_out == 0.0 {
        if mean_err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        mean_err / mean_out * 100.0
    })
}

/// Signal-to-noise ratio in dB: `10·log10(Σ ref² / Σ (ref − test)²)`.
///
/// **Zero-noise policy:** identical signals have no noise power, so the
/// ratio is unbounded and this function returns `f64::INFINITY` — by
/// design, not by accident. Callers that need a finite number (e.g. for a
/// CSV column) should clamp explicitly.
///
/// # Errors
///
/// [`MetricsError::LengthMismatch`] / [`MetricsError::Empty`] on
/// degenerate input.
pub fn snr_db(reference: &[f64], test: &[f64]) -> Result<f64, MetricsError> {
    check_pair(reference, test)?;
    let signal: f64 = reference.iter().map(|&r| r * r).sum();
    let noise: f64 = reference.iter().zip(test).map(|(&r, &t)| (r - t) * (r - t)).sum();
    Ok(if noise == 0.0 { f64::INFINITY } else { 10.0 * (signal / noise).log10() })
}

/// Peak signal-to-noise ratio in dB for a given peak amplitude.
///
/// Follows the same zero-noise policy as [`snr_db`]: identical signals
/// return `f64::INFINITY`.
///
/// # Errors
///
/// [`MetricsError::LengthMismatch`] / [`MetricsError::Empty`] on
/// degenerate input; [`MetricsError::NonPositivePeak`] when `peak` is not
/// a positive finite number.
pub fn psnr_db(reference: &[f64], test: &[f64], peak: f64) -> Result<f64, MetricsError> {
    check_pair(reference, test)?;
    if !(peak > 0.0 && peak.is_finite()) {
        return Err(MetricsError::NonPositivePeak { peak });
    }
    let mse: f64 = reference.iter().zip(test).map(|(&r, &t)| (r - t) * (r - t)).sum::<f64>()
        / reference.len() as f64;
    Ok(if mse == 0.0 { f64::INFINITY } else { 10.0 * (peak * peak / mse).log10() })
}

/// Eq. (14): the relative reduction of MRE achieved by online arithmetic,
/// `(MRE_trad − MRE_ol) / MRE_trad × 100`.
#[must_use]
pub fn mre_reduction_percent(mre_trad: f64, mre_ol: f64) -> f64 {
    if mre_trad == 0.0 {
        0.0
    } else {
        (mre_trad - mre_ol) / mre_trad * 100.0
    }
}

/// Geometric mean of strictly positive values (used for the tables' summary
/// columns). Non-positive entries are skipped, matching the paper's
/// treatment of `N/A` cells.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mre_handles_exact_outputs() {
        assert_eq!(mre_percent(&[1.0, 2.0], &[1.0, 2.0]), Ok(0.0));
    }

    #[test]
    fn mre_is_scale_invariant() {
        let c = [1.0, 2.0, 4.0];
        let a = [1.1, 2.1, 4.1];
        let c2: Vec<f64> = c.iter().map(|v| v * 7.0).collect();
        let a2: Vec<f64> = a.iter().map(|v| v * 7.0).collect();
        assert!((mre_percent(&c, &a).unwrap() - mre_percent(&c2, &a2).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn mre_zero_signal_edge_cases() {
        assert_eq!(mre_percent(&[0.0], &[0.0]), Ok(0.0));
        assert_eq!(mre_percent(&[0.0], &[1.0]), Ok(f64::INFINITY));
    }

    /// Regression (observability PR): degenerate inputs used to `assert!`
    /// and tear the whole experiment down; they are now typed errors.
    #[test]
    fn degenerate_inputs_are_errors_not_panics() {
        assert_eq!(mre_percent(&[], &[]), Err(MetricsError::Empty));
        assert_eq!(snr_db(&[], &[]), Err(MetricsError::Empty));
        assert_eq!(psnr_db(&[], &[], 1.0), Err(MetricsError::Empty));
        assert_eq!(
            mre_percent(&[1.0, 2.0], &[1.0]),
            Err(MetricsError::LengthMismatch { reference: 2, test: 1 })
        );
        assert_eq!(
            snr_db(&[1.0], &[1.0, 2.0]),
            Err(MetricsError::LengthMismatch { reference: 1, test: 2 })
        );
        assert_eq!(psnr_db(&[1.0], &[2.0], 0.0), Err(MetricsError::NonPositivePeak { peak: 0.0 }));
        assert!(matches!(
            psnr_db(&[1.0], &[2.0], f64::NAN),
            Err(MetricsError::NonPositivePeak { peak }) if peak.is_nan()
        ));
        assert_eq!(
            psnr_db(&[1.0], &[2.0], f64::INFINITY),
            Err(MetricsError::NonPositivePeak { peak: f64::INFINITY })
        );
        // Errors render with context.
        let msg = MetricsError::LengthMismatch { reference: 2, test: 1 }.to_string();
        assert!(msg.contains('2') && msg.contains('1'), "{msg}");
    }

    #[test]
    fn snr_increases_as_noise_decreases() {
        let r = [1.0, -1.0, 0.5, -0.5];
        let noisy = [1.1, -0.9, 0.6, -0.4];
        let cleaner = [1.01, -0.99, 0.51, -0.49];
        assert!(snr_db(&r, &cleaner).unwrap() > snr_db(&r, &noisy).unwrap());
        assert_eq!(snr_db(&r, &r), Ok(f64::INFINITY), "documented zero-noise policy");
    }

    #[test]
    fn snr_known_value() {
        // Signal power 1, noise power 0.01 → 20 dB.
        let r = [1.0];
        let t = [0.9];
        assert!((snr_db(&r, &t).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn psnr_uses_peak() {
        let r = [0.0, 0.0];
        let t = [0.1, -0.1];
        let p255 = psnr_db(&r, &t, 255.0).unwrap();
        let p1 = psnr_db(&r, &t, 1.0).unwrap();
        assert!(p255 > p1);
        assert_eq!(psnr_db(&r, &r, 1.0), Ok(f64::INFINITY));
    }

    #[test]
    fn reduction_percent_matches_paper_shape() {
        assert!((mre_reduction_percent(10.0, 1.0) - 90.0).abs() < 1e-12);
        assert_eq!(mre_reduction_percent(0.0, 0.0), 0.0);
        assert!(mre_reduction_percent(1.0, 2.0) < 0.0, "online worse → negative");
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12); // skips 0
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
