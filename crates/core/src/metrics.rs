//! Error metrics used by the paper's evaluation.

/// Mean relative error in percent (Eq. (13)):
/// `MRE = |E_error / E_out| × 100`, with `E_error` the mean error magnitude
/// and `E_out` the mean magnitude of the correct outputs.
///
/// # Examples
///
/// ```
/// use ola_core::metrics::mre_percent;
/// let correct = [1.0, 2.0, 3.0];
/// let actual = [1.0, 2.2, 2.9];
/// let mre = mre_percent(&correct, &actual);
/// assert!((mre - 5.0).abs() < 1e-9); // mean |err| 0.1, mean |out| 2.0
/// ```
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn mre_percent(correct: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(correct.len(), actual.len(), "length mismatch");
    assert!(!correct.is_empty(), "empty sample set");
    let mean_err: f64 = correct.iter().zip(actual).map(|(&c, &a)| (a - c).abs()).sum::<f64>()
        / correct.len() as f64;
    let mean_out: f64 = correct.iter().map(|&c| c.abs()).sum::<f64>() / correct.len() as f64;
    if mean_out == 0.0 {
        if mean_err == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        mean_err / mean_out * 100.0
    }
}

/// Signal-to-noise ratio in dB: `10·log10(Σ ref² / Σ (ref − test)²)`.
/// Returns `f64::INFINITY` when the signals are identical.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn snr_db(reference: &[f64], test: &[f64]) -> f64 {
    assert_eq!(reference.len(), test.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty sample set");
    let signal: f64 = reference.iter().map(|&r| r * r).sum();
    let noise: f64 = reference.iter().zip(test).map(|(&r, &t)| (r - t) * (r - t)).sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

/// Peak signal-to-noise ratio in dB for a given peak amplitude.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty, or `peak ≤ 0`.
#[must_use]
pub fn psnr_db(reference: &[f64], test: &[f64], peak: f64) -> f64 {
    assert_eq!(reference.len(), test.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty sample set");
    assert!(peak > 0.0, "peak must be positive");
    let mse: f64 = reference.iter().zip(test).map(|(&r, &t)| (r - t) * (r - t)).sum::<f64>()
        / reference.len() as f64;
    if mse == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / mse).log10()
    }
}

/// Eq. (14): the relative reduction of MRE achieved by online arithmetic,
/// `(MRE_trad − MRE_ol) / MRE_trad × 100`.
#[must_use]
pub fn mre_reduction_percent(mre_trad: f64, mre_ol: f64) -> f64 {
    if mre_trad == 0.0 {
        0.0
    } else {
        (mre_trad - mre_ol) / mre_trad * 100.0
    }
}

/// Geometric mean of strictly positive values (used for the tables' summary
/// columns). Non-positive entries are skipped, matching the paper's
/// treatment of `N/A` cells.
#[must_use]
pub fn geometric_mean(values: &[f64]) -> f64 {
    let positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.is_empty() {
        return 0.0;
    }
    (positive.iter().map(|v| v.ln()).sum::<f64>() / positive.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mre_handles_exact_outputs() {
        assert_eq!(mre_percent(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn mre_is_scale_invariant() {
        let c = [1.0, 2.0, 4.0];
        let a = [1.1, 2.1, 4.1];
        let c2: Vec<f64> = c.iter().map(|v| v * 7.0).collect();
        let a2: Vec<f64> = a.iter().map(|v| v * 7.0).collect();
        assert!((mre_percent(&c, &a) - mre_percent(&c2, &a2)).abs() < 1e-12);
    }

    #[test]
    fn mre_zero_signal_edge_cases() {
        assert_eq!(mre_percent(&[0.0], &[0.0]), 0.0);
        assert_eq!(mre_percent(&[0.0], &[1.0]), f64::INFINITY);
    }

    #[test]
    fn snr_increases_as_noise_decreases() {
        let r = [1.0, -1.0, 0.5, -0.5];
        let noisy = [1.1, -0.9, 0.6, -0.4];
        let cleaner = [1.01, -0.99, 0.51, -0.49];
        assert!(snr_db(&r, &cleaner) > snr_db(&r, &noisy));
        assert_eq!(snr_db(&r, &r), f64::INFINITY);
    }

    #[test]
    fn snr_known_value() {
        // Signal power 1, noise power 0.01 → 20 dB.
        let r = [1.0];
        let t = [0.9];
        assert!((snr_db(&r, &t) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn psnr_uses_peak() {
        let r = [0.0, 0.0];
        let t = [0.1, -0.1];
        let p255 = psnr_db(&r, &t, 255.0);
        let p1 = psnr_db(&r, &t, 1.0);
        assert!(p255 > p1);
        assert_eq!(psnr_db(&r, &r, 1.0), f64::INFINITY);
    }

    #[test]
    fn reduction_percent_matches_paper_shape() {
        assert!((mre_reduction_percent(10.0, 1.0) - 90.0).abs() < 1e-12);
        assert_eq!(mre_reduction_percent(0.0, 0.0), 0.0);
        assert!(mre_reduction_percent(1.0, 2.0) < 0.0, "online worse → negative");
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 0.0, 8.0]) - 4.0).abs() < 1e-12); // skips 0
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
