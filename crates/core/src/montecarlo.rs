//! Monte-Carlo engines over the stage-wave timing model.
//!
//! These produce the empirical curves the paper verifies its model against
//! (Figure 4 top row, Figure 5's simulated counterparts): sample random
//! operands, run the staged multiplier's settling wave, and record what a
//! register would capture at every stage budget `b`.

use crate::parallel::parallel_accumulate;
use ola_arith::online::{Selection, StagedMultiplier, DELTA};
use ola_redundant::{random, SdNumber, Q};
use rand::Rng;

/// Operand distribution for Monte-Carlo runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum InputModel {
    /// Digits i.i.d. uniform over {−1, 0, 1} — the model's assumption.
    #[default]
    UniformDigits,
    /// Values uniform over the representable range, canonically encoded —
    /// the paper's "Uniform Independent (UI) inputs".
    UniformValue,
    /// Non-negative uniform values (normalized image pixels).
    NonNegValue,
}

impl InputModel {
    /// Draws one operand.
    pub fn draw<R: Rng + ?Sized>(self, rng: &mut R, n: usize) -> SdNumber {
        match self {
            InputModel::UniformDigits => random::uniform_digits(rng, n),
            InputModel::UniformValue => random::uniform_value(rng, n),
            InputModel::NonNegValue => random::uniform_nonneg_value(rng, n),
        }
    }
}

/// Mean overclocking error and violation rate per stage budget.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct OverclockingCurve {
    /// Operand digit count.
    pub n: usize,
    /// `mean_abs_error[b]` — mean `|sampled − correct|` at stage budget `b`.
    pub mean_abs_error: Vec<f64>,
    /// `violation_rate[b]` — fraction of samples whose output was wrong.
    pub violation_rate: Vec<f64>,
    /// Number of samples.
    pub samples: usize,
}

impl OverclockingCurve {
    /// Number of stage budgets covered (0 ..= N+δ).
    #[must_use]
    pub fn budgets(&self) -> usize {
        self.mean_abs_error.len()
    }

    /// Iterator of `(b, normalized_ts, mean_error, violation_rate)` where
    /// `normalized_ts = b / (N + δ)` (periods normalized to structural).
    pub fn points(&self) -> impl Iterator<Item = (usize, f64, f64, f64)> + '_ {
        let total = (self.n + DELTA) as f64;
        self.mean_abs_error
            .iter()
            .zip(&self.violation_rate)
            .enumerate()
            .map(move |(b, (&e, &v))| (b, b as f64 / total, e, v))
    }
}

#[derive(Clone)]
struct CurveAcc {
    err: Vec<f64>,
    viol: Vec<u64>,
    settle_count: Vec<u64>,
    settle_err: Vec<f64>,
    samples: usize,
}

impl CurveAcc {
    fn new(budgets: usize) -> Self {
        CurveAcc {
            err: vec![0.0; budgets],
            viol: vec![0; budgets],
            settle_count: vec![0; budgets],
            settle_err: vec![0.0; budgets],
            samples: 0,
        }
    }

    fn merge(mut self, other: &CurveAcc) -> CurveAcc {
        for i in 0..self.err.len() {
            self.err[i] += other.err[i];
            self.viol[i] += other.viol[i];
            self.settle_count[i] += other.settle_count[i];
            self.settle_err[i] += other.settle_err[i];
        }
        self.samples += other.samples;
        self
    }
}

/// Full Monte-Carlo sweep of an `n`-digit online multiplier: overclocking
/// curve plus the empirical settling/per-delay profile, in one pass.
#[derive(Clone, Debug, PartialEq, serde::Serialize)]
pub struct OmMonteCarlo {
    /// Error and violation rate per stage budget.
    pub curve: OverclockingCurve,
    /// Empirical per-delay profile (Figure 5's simulated counterpart).
    pub profile: Vec<EmpiricalDelayPoint>,
}

/// Empirical statistics of samples whose output settled after exactly
/// `delay` waves.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct EmpiricalDelayPoint {
    /// Settling delay in units of μ.
    pub delay: usize,
    /// Fraction of samples settling at exactly this delay.
    pub probability: f64,
    /// Mean `|error|` when sampled one wave early (`b = delay − 1`).
    pub error_magnitude: f64,
}

impl EmpiricalDelayPoint {
    /// Probability × magnitude — the per-delay error expectation.
    #[must_use]
    pub fn expectation(&self) -> f64 {
        self.probability * self.error_magnitude
    }
}

/// Runs the Monte-Carlo sweep.
///
/// # Panics
///
/// Panics if `n == 0` or `samples == 0`.
#[must_use]
pub fn om_monte_carlo(
    n: usize,
    policy: Selection,
    model: InputModel,
    samples: usize,
    seed: u64,
) -> OmMonteCarlo {
    assert!(n > 0 && samples > 0);
    let _span = crate::obs::span("mc.sweep");
    crate::obs::registry().counter("ola.mc.samples").add(samples as u64);
    let budgets = n + DELTA + 1;
    let acc = parallel_accumulate(
        samples,
        seed,
        || CurveAcc::new(budgets),
        |rng, acc| {
            crate::resilience::check_cancelled();
            let x = model.draw(rng, n);
            let y = model.draw(rng, n);
            let sm = StagedMultiplier::new(x, y, policy);
            let vals: Vec<Q> = sm.sampled_values();
            let correct = *vals.last().expect("history non-empty");
            let mut settle = 0usize;
            for b in 0..budgets {
                let v = vals.get(b).copied().unwrap_or(correct);
                let e = (v - correct).abs().to_f64();
                acc.err[b] += e;
                if v != correct {
                    acc.viol[b] += 1;
                    settle = b + 1;
                }
            }
            acc.settle_count[settle.min(budgets - 1)] += 1;
            if settle > 0 {
                let v = vals.get(settle - 1).copied().unwrap_or(correct);
                acc.settle_err[settle.min(budgets - 1)] += (v - correct).abs().to_f64();
            }
            acc.samples += 1;
        },
        CurveAcc::merge,
    );

    let s = acc.samples as f64;
    let curve = OverclockingCurve {
        n,
        mean_abs_error: acc.err.iter().map(|&e| e / s).collect(),
        violation_rate: acc.viol.iter().map(|&v| v as f64 / s).collect(),
        samples: acc.samples,
    };
    let profile = (1..budgets)
        .filter(|&d| acc.settle_count[d] > 0)
        .map(|d| EmpiricalDelayPoint {
            delay: d,
            probability: acc.settle_count[d] as f64 / s,
            error_magnitude: acc.settle_err[d] / acc.settle_count[d] as f64,
        })
        .collect();
    OmMonteCarlo { curve, profile }
}

/// The maximum settling delay observed over `samples` random draws — an
/// empirical check of the chain-analysis worst case
/// ([`chain_worst_case_delay`](crate::timing::chain_worst_case_delay)).
#[must_use]
pub fn max_observed_settling(
    n: usize,
    policy: Selection,
    model: InputModel,
    samples: usize,
    seed: u64,
) -> usize {
    parallel_accumulate(
        samples,
        seed,
        || 0usize,
        |rng, acc| {
            crate::resilience::check_cancelled();
            let x = model.draw(rng, n);
            let y = model.draw(rng, n);
            let sm = StagedMultiplier::new(x, y, policy);
            *acc = (*acc).max(sm.settling_ticks());
        },
        |a, b| a.max(*b),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timing;

    #[test]
    fn error_curve_is_monotone_and_vanishes() {
        let mc = om_monte_carlo(8, Selection::default(), InputModel::UniformDigits, 400, 1);
        let e = &mc.curve.mean_abs_error;
        // Vanishes at the structural budget.
        assert_eq!(*e.last().unwrap(), 0.0);
        assert_eq!(*mc.curve.violation_rate.last().unwrap(), 0.0);
        // Large when sampled immediately, decaying overall.
        assert!(e[0] > 0.0);
        assert!(e[e.len() - 2] <= e[1]);
    }

    #[test]
    fn violation_rate_bounds() {
        let mc = om_monte_carlo(8, Selection::default(), InputModel::UniformValue, 300, 2);
        for &v in &mc.curve.violation_rate {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn profile_probabilities_sum_to_at_most_one() {
        let mc = om_monte_carlo(8, Selection::default(), InputModel::UniformDigits, 500, 3);
        let total: f64 = mc.profile.iter().map(|p| p.probability).sum();
        assert!(total <= 1.0 + 1e-9);
        assert!(total > 0.5, "most samples need at least one wave");
    }

    #[test]
    fn deeper_settling_has_smaller_cutoff_error() {
        // Figure 5's mechanism, observed empirically: late-settling samples
        // have their last error in low-weight digits.
        let mc = om_monte_carlo(12, Selection::default(), InputModel::UniformDigits, 1500, 4);
        let first = mc.profile.iter().find(|p| p.probability > 0.01).unwrap();
        let last = mc.profile.iter().rev().find(|p| p.probability > 0.001).unwrap();
        assert!(
            last.error_magnitude < first.error_magnitude,
            "late chains must hurt less: {:?} vs {:?}",
            first,
            last
        );
    }

    #[test]
    fn observed_settling_respects_chain_worst_case() {
        for n in [8usize, 9, 12] {
            let max =
                max_observed_settling(n, Selection::default(), InputModel::UniformDigits, 800, 5);
            let bound = timing::chain_worst_case_delay(n, 1) as usize;
            // The paper's bound is on residual-chain delay; selection adds
            // at most one extra wave of latency in our stage-wave model.
            assert!(max <= bound + 1, "n={n}: observed {max} exceeds chain bound {bound} + 1");
            // And the structural bound is never exceeded.
            assert!(max <= n + DELTA);
        }
    }

    #[test]
    fn reproducible_given_seed() {
        let a = om_monte_carlo(6, Selection::default(), InputModel::UniformDigits, 100, 7);
        let b = om_monte_carlo(6, Selection::default(), InputModel::UniformDigits, 100, 7);
        assert_eq!(a, b);
    }
}
