//! Content-addressed memoization of batch compiles and STA certification.
//!
//! Levelizing a netlist into a [`BatchProgram`] and walking its structural
//! arrivals for a [`CertificationReport`] are both pure functions of
//! `(netlist, delay model)` — yet `repro`, the synthesis explorer, and
//! `ola-serve` each re-derive them for every sweep over the *same* design.
//! This module gives them a process-global memo backed by
//! [`ContentCache`]: results are keyed by the SHA-256 of
//! [`Netlist::canonical_bytes`] combined with [`DelayModel::cache_key`],
//! so a hit is sound by construction (equal key ⇒ equal inputs ⇒ equal
//! result). Models whose `cache_key()` is `None` (e.g. jittered delays)
//! opt out and are always computed fresh.
//!
//! # Determinism contract
//!
//! The memo must not make metric snapshots depend on cache temperature or
//! thread interleaving (`obs_determinism` enforces this). Three rules keep
//! it honest:
//!
//! 1. the backing [`ContentCache`] runs with [`CacheConfig::quiet`], so no
//!    `ola.cache.*` counters move;
//! 2. the only registry counters this module touches
//!    (`ola.memo.program_requests`, `ola.memo.cert_requests`) count *calls*,
//!    which are workload-determined;
//! 3. a program-memo hit *replays* the `ola.batch.compiles` /
//!    `ola.batch.depth` observer effect the skipped compile would have had,
//!    so downstream counters are identical whether the cache was warm or
//!    cold.
//!
//! Hit/miss tallies still exist for benchmarks and tests — in process-local
//! atomics surfaced via [`stats`], outside the metrics registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use ola_netlist::batch::BatchProgram;
use ola_netlist::sta::{certify, CertificationReport};
use ola_netlist::{BatchError, DelayModel, NetId, Netlist, StaError};

use crate::cache::{CacheConfig, CacheKey, ContentCache};

/// Entries kept in the in-memory bytes tier of the backing cache.
const BYTES_CAPACITY: usize = 256;

/// Decoded [`BatchProgram`]s kept in the typed front map before it is
/// cleared. Programs are shared via [`Arc`], so clearing only drops the
/// map's own references; callers keep theirs.
const FRONT_CAPACITY: usize = 256;

struct Memo {
    /// Serialized results (program bytes, arrival tables), content-keyed.
    bytes: ContentCache,
    /// Decoded programs, so repeat hits skip [`BatchProgram::from_bytes`].
    programs: Mutex<HashMap<String, Arc<BatchProgram>>>,
    program_hits: AtomicU64,
    program_misses: AtomicU64,
    program_uncached: AtomicU64,
    cert_hits: AtomicU64,
    cert_misses: AtomicU64,
    cert_uncached: AtomicU64,
}

static MEMO: OnceLock<Memo> = OnceLock::new();

fn memo() -> &'static Memo {
    MEMO.get_or_init(|| Memo {
        bytes: ContentCache::new(CacheConfig {
            capacity: BYTES_CAPACITY,
            quiet: true,
            ..CacheConfig::default()
        }),
        programs: Mutex::new(HashMap::new()),
        program_hits: AtomicU64::new(0),
        program_misses: AtomicU64::new(0),
        program_uncached: AtomicU64::new(0),
        cert_hits: AtomicU64::new(0),
        cert_misses: AtomicU64::new(0),
        cert_uncached: AtomicU64::new(0),
    })
}

/// Process-lifetime tallies of memo traffic, for benchmarks and tests.
///
/// These live outside the metrics registry: hit/miss splits depend on cache
/// temperature, which the observability determinism contract excludes from
/// snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoStats {
    /// Program requests answered from the memo.
    pub program_hits: u64,
    /// Program requests that compiled and populated the memo.
    pub program_misses: u64,
    /// Program requests for models with no [`DelayModel::cache_key`],
    /// compiled fresh and never cached.
    pub program_uncached: u64,
    /// Certification requests answered from the memo.
    pub cert_hits: u64,
    /// Certification requests that analyzed and populated the memo.
    pub cert_misses: u64,
    /// Certification requests for models with no cache key.
    pub cert_uncached: u64,
}

impl MemoStats {
    /// Total program requests seen.
    #[must_use]
    pub fn program_requests(&self) -> u64 {
        self.program_hits + self.program_misses + self.program_uncached
    }

    /// Total certification requests seen.
    #[must_use]
    pub fn cert_requests(&self) -> u64 {
        self.cert_hits + self.cert_misses + self.cert_uncached
    }
}

/// Snapshot of the memo's hit/miss tallies since process start.
#[must_use]
pub fn stats() -> MemoStats {
    let m = memo();
    MemoStats {
        program_hits: m.program_hits.load(Ordering::Relaxed),
        program_misses: m.program_misses.load(Ordering::Relaxed),
        program_uncached: m.program_uncached.load(Ordering::Relaxed),
        cert_hits: m.cert_hits.load(Ordering::Relaxed),
        cert_misses: m.cert_misses.load(Ordering::Relaxed),
        cert_uncached: m.cert_uncached.load(Ordering::Relaxed),
    }
}

/// Content digest of a netlist — SHA-256 over [`Netlist::canonical_bytes`].
///
/// Two netlists share a digest iff they have identical structure (gates,
/// wiring, constants, output buses), which is exactly the compile- and
/// certification-relevant content.
#[must_use]
pub fn netlist_digest(netlist: &Netlist) -> CacheKey {
    CacheKey::of(&netlist.canonical_bytes())
}

fn program_key(netlist: &Netlist, delay_key: &str) -> CacheKey {
    let mut buf = netlist.canonical_bytes();
    buf.extend_from_slice(b"\nprogram/");
    buf.extend_from_slice(delay_key.as_bytes());
    CacheKey::of(&buf)
}

fn cert_key(netlist: &Netlist, delay_key: &str, digits: &[Vec<NetId>]) -> CacheKey {
    let mut buf = netlist.canonical_bytes();
    buf.extend_from_slice(b"\ncert/");
    buf.extend_from_slice(delay_key.as_bytes());
    for group in digits {
        // Group boundaries must be part of the key: [[a],[b]] and [[a,b]]
        // have different per-digit arrivals.
        buf.push(b'/');
        buf.extend_from_slice(&u32::try_from(group.len()).unwrap_or(u32::MAX).to_le_bytes());
        for net in group {
            buf.extend_from_slice(&u32::try_from(net.index()).unwrap_or(u32::MAX).to_le_bytes());
        }
    }
    CacheKey::of(&buf)
}

/// Replays the observer effect of the compile a memo hit skipped, so
/// `ola.batch.compiles` / `ola.batch.depth` do not depend on cache
/// temperature (see the module docs' determinism contract).
fn replay_compile_observation(program: &BatchProgram) {
    let reg = crate::obs::registry();
    reg.counter("ola.batch.compiles").inc();
    let depth = u64::from(program.depth()) + 1;
    reg.gauge("ola.batch.depth").set(i64::try_from(depth).unwrap_or(i64::MAX));
}

/// Compiles `netlist` under `delay`, memoized by content digest.
///
/// Models without a [`DelayModel::cache_key`] compile fresh on every call
/// (memoizing them would be unsound). A memo hit returns a shared program
/// that is byte-identical — and therefore waveform-identical — to a fresh
/// compile, and replays the compile's observer effect so metric snapshots
/// cannot distinguish warm from cold caches.
///
/// # Errors
///
/// Propagates [`BatchProgram::compile`] errors (e.g.
/// [`BatchError::DelayNotBatchExact`]); failed compiles are never cached.
pub fn batch_program<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
) -> Result<Arc<BatchProgram>, BatchError> {
    crate::obs::registry().counter("ola.memo.program_requests").inc();
    let m = memo();
    let Some(delay_key) = delay.cache_key() else {
        m.program_uncached.fetch_add(1, Ordering::Relaxed);
        return Ok(Arc::new(BatchProgram::compile(netlist, delay)?));
    };
    let key = program_key(netlist, &delay_key);

    if let Some(program) = m.programs.lock().expect("memo front map poisoned").get(key.hex()) {
        m.program_hits.fetch_add(1, Ordering::Relaxed);
        replay_compile_observation(program);
        return Ok(Arc::clone(program));
    }

    // The fill closure stashes the compiled program so the thread that
    // populates the cache does not round-trip through serialization.
    let mut compiled: Option<Arc<BatchProgram>> = None;
    let (bytes, _lookup) = m.bytes.get_or_compute(&key, || {
        let program = BatchProgram::compile(netlist, delay)?;
        let encoded = program.to_bytes();
        compiled = Some(Arc::new(program));
        Ok::<_, BatchError>(encoded)
    })?;

    let program = match compiled {
        Some(program) => {
            m.program_misses.fetch_add(1, Ordering::Relaxed);
            program
        }
        None => {
            m.program_hits.fetch_add(1, Ordering::Relaxed);
            match BatchProgram::from_bytes(&bytes) {
                Ok(program) => {
                    replay_compile_observation(&program);
                    Arc::new(program)
                }
                // Integrity hashing makes this unreachable short of a
                // format-version skew; recompiling is always correct.
                Err(_) => Arc::new(BatchProgram::compile(netlist, delay)?),
            }
        }
    };

    let mut front = m.programs.lock().expect("memo front map poisoned");
    if front.len() >= FRONT_CAPACITY {
        front.clear();
    }
    front.insert(key.hex().to_owned(), Arc::clone(&program));
    Ok(program)
}

/// Certifies `digits` against `ts_grid`, memoizing the per-digit arrival
/// table (the only netlist-dependent content of a [`CertificationReport`]).
///
/// The `Ts` grid is *not* part of the key: a report is rebuilt from the
/// cached arrivals via [`CertificationReport::from_parts`], so sweeping new
/// grids over an already-analyzed design costs no STA work at all.
///
/// # Errors
///
/// Propagates [`certify`] errors (e.g. [`StaError::NotTopological`]);
/// failures are never cached.
pub fn certification<M: DelayModel + ?Sized>(
    netlist: &Netlist,
    delay: &M,
    digits: &[Vec<NetId>],
    ts_grid: &[u64],
) -> Result<CertificationReport, StaError> {
    crate::obs::registry().counter("ola.memo.cert_requests").inc();
    let m = memo();
    let Some(delay_key) = delay.cache_key() else {
        m.cert_uncached.fetch_add(1, Ordering::Relaxed);
        return certify(netlist, delay, digits, ts_grid);
    };
    let key = cert_key(netlist, &delay_key, digits);

    let mut analyzed: Option<Vec<u64>> = None;
    let (bytes, _lookup) = m.bytes.get_or_compute(&key, || {
        let report = certify(netlist, delay, digits, ts_grid)?;
        let arrivals = report.arrivals().to_vec();
        let mut encoded = Vec::with_capacity(arrivals.len() * 8);
        for &a in &arrivals {
            encoded.extend_from_slice(&a.to_le_bytes());
        }
        analyzed = Some(arrivals);
        Ok::<_, StaError>(encoded)
    })?;

    let arrivals = match analyzed {
        Some(arrivals) => {
            m.cert_misses.fetch_add(1, Ordering::Relaxed);
            arrivals
        }
        None => {
            if bytes.len() != digits.len() * 8 {
                // Unreachable short of a format-version skew; re-analyze.
                return certify(netlist, delay, digits, ts_grid);
            }
            m.cert_hits.fetch_add(1, Ordering::Relaxed);
            bytes.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().expect("8"))).collect()
        }
    };
    Ok(CertificationReport::from_parts(ts_grid.to_vec(), arrivals))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_netlist::batch::BatchInputs;
    use ola_netlist::{FpgaDelay, JitteredDelay, UnitDelay};

    fn sample_netlist(tag: u32) -> (Netlist, Vec<NetId>) {
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.input("b");
        let x = nl.xor(a, b);
        let y = nl.and(a, b);
        // `tag` perturbs structure so tests get distinct digests.
        let mut z = x;
        for _ in 0..tag {
            z = nl.not(z);
        }
        nl.set_output("s", vec![z, y]);
        (nl, vec![z, y])
    }

    #[test]
    fn memo_hit_is_byte_identical_to_fresh_compile() {
        let (nl, _outs) = sample_netlist(11);
        let fresh = BatchProgram::compile(&nl, &UnitDelay).unwrap();
        let first = batch_program(&nl, &UnitDelay).unwrap();
        let second = batch_program(&nl, &UnitDelay).unwrap();
        assert_eq!(first.to_bytes(), fresh.to_bytes());
        assert_eq!(second.to_bytes(), fresh.to_bytes());

        // And waveform-identical on a real run.
        let prev = BatchInputs::pack(&[vec![false, false], vec![true, false]]).unwrap();
        let new = BatchInputs::pack(&[vec![true, true], vec![false, true]]).unwrap();
        let a = fresh.run(&prev, &new).unwrap();
        let b = second.run(&prev, &new).unwrap();
        for i in 0..nl.len() {
            assert_eq!(a.wave(nl.net(i)), b.wave(nl.net(i)));
        }
    }

    #[test]
    fn distinct_netlists_and_models_get_distinct_entries() {
        let (nl1, _o1) = sample_netlist(12);
        let (nl2, _o2) = sample_netlist(13);
        assert_ne!(netlist_digest(&nl1).hex(), netlist_digest(&nl2).hex());
        let unit = batch_program(&nl1, &UnitDelay).unwrap();
        let fpga = batch_program(&nl1, &FpgaDelay::default()).unwrap();
        assert_ne!(unit.to_bytes(), fpga.to_bytes(), "delay key must split the memo");
    }

    #[test]
    fn jittered_models_bypass_the_memo() {
        let (nl, _outs) = sample_netlist(14);
        let before = stats();
        // Jitter is not batch-exact: compile must fail, and nothing caches.
        assert!(batch_program(&nl, &JitteredDelay::new(UnitDelay, 5, 7)).is_err());
        let after = stats();
        assert_eq!(after.program_uncached, before.program_uncached + 1);
        assert_eq!(after.program_hits, before.program_hits);
        assert_eq!(after.program_misses, before.program_misses);
    }

    #[test]
    fn certification_memoizes_arrivals_across_grids() {
        let (nl, outs) = sample_netlist(15);
        let digits: Vec<Vec<NetId>> = outs.iter().map(|&n| vec![n]).collect();
        let grid1 = [0, 100, 300, 1000, 2000];
        let grid2 = [50, 150, 250];
        let before = stats();
        let rep1 = certification(&nl, &UnitDelay, &digits, &grid1).unwrap();
        let rep2 = certification(&nl, &UnitDelay, &digits, &grid2).unwrap();
        let after = stats();
        assert_eq!(after.cert_misses, before.cert_misses + 1);
        assert_eq!(after.cert_hits, before.cert_hits + 1, "new grid, same arrival table");
        let fresh = certify(&nl, &UnitDelay, &digits, &grid2).unwrap();
        assert_eq!(rep2.arrivals(), fresh.arrivals());
        assert_eq!(rep1.arrivals(), fresh.arrivals());
        assert_eq!(rep2.ts_grid(), &grid2);
        for ts_index in 0..grid2.len() {
            assert_eq!(rep2.certified_count(ts_index), fresh.certified_count(ts_index));
        }
    }

    #[test]
    fn digit_grouping_is_part_of_the_cert_key() {
        let (nl, nets) = sample_netlist(16);
        let split: Vec<Vec<NetId>> = nets.iter().map(|&n| vec![n]).collect();
        let merged = vec![nets.clone()];
        let grid = [100];
        let a = certification(&nl, &UnitDelay, &split, &grid).unwrap();
        let b = certification(&nl, &UnitDelay, &merged, &grid).unwrap();
        assert_eq!(a.digits(), 2);
        assert_eq!(b.digits(), 1);
        assert_eq!(b.digit_arrival(0), a.arrivals().iter().copied().max().unwrap());
    }
}
