//! Pluggable simulation backends and their observability counters.
//!
//! Every gate-level experiment in this crate boils down to *simulate many
//! vectors, sample at many clock periods `Ts`*. Two engines can answer
//! that question with bit-identical results:
//!
//! * **event** — the event-driven simulator
//!   ([`ola_netlist::simulate`]), one vector per run, any delay model;
//! * **batch** — the bit-parallel engine ([`ola_netlist::batch`]), 64
//!   vectors per pass, only for
//!   [batch-exact](ola_netlist::DelayModel::batch_exact) delay models.
//!
//! [`SimBackend`] selects between them per workload; [`SimBackend::Auto`]
//! (and an explicit `Batch` request on a non-batch-exact model, e.g. a
//! [`JitteredDelay`](ola_netlist::JitteredDelay) emulating per-run
//! place-and-route variation) transparently falls back to the event
//! engine, so callers never have to special-case the delay model.
//! [`BackendStats`] carries the cheap counters each experiment accumulates
//! — vectors simulated, `(vector × Ts)` sample points, word-level steps,
//! lane utilization — which the `repro` binary surfaces in its summary.

use ola_netlist::DelayModel;
use std::fmt;
use std::time::Duration;

/// Which simulation engine an experiment should use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub enum SimBackend {
    /// Batch when the delay model permits it, event-driven otherwise.
    #[default]
    Auto,
    /// Always the event-driven simulator.
    Event,
    /// The bit-parallel batch engine; falls back to event-driven when the
    /// delay model is not batch-exact.
    Batch,
}

impl SimBackend {
    /// Parses a CLI flag value (`auto` / `event` / `batch`).
    #[must_use]
    pub fn parse(s: &str) -> Option<SimBackend> {
        match s {
            "auto" => Some(SimBackend::Auto),
            "event" => Some(SimBackend::Event),
            "batch" => Some(SimBackend::Batch),
            _ => None,
        }
    }

    /// The flag spelling of this selection.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SimBackend::Auto => "auto",
            SimBackend::Event => "event",
            SimBackend::Batch => "batch",
        }
    }

    /// True if this selection should *try* batch compilation under `delay`
    /// (the compile itself may still decline, e.g. on a broken topology —
    /// callers then fall back to the event engine).
    pub fn wants_batch<M: DelayModel + ?Sized>(self, delay: &M) -> bool {
        match self {
            SimBackend::Event => false,
            SimBackend::Auto | SimBackend::Batch => delay.batch_exact(),
        }
    }
}

impl fmt::Display for SimBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether sweeps may take the static-timing fast path.
///
/// Every delay model in this workspace is a deterministic per-gate
/// function, so the forward STA pass ([`ola_netlist::analyze`]) is a sound
/// upper bound on event-driven settling: a `(bus, Ts)` sample point with
/// worst-case bus arrival `≤ Ts` provably samples the settled value for
/// *every* input vector. With the gate [`StaGate::On`], such points skip
/// the decode/judge work entirely — recording "no violation, zero error"
/// implicitly — which is bit-identical to judging them (the equivalence
/// proptest suite holds the two paths to that standard). [`StaGate::Off`]
/// judges every point dynamically; it exists for that suite and for
/// measuring the fast path's effect.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub enum StaGate {
    /// Skip `(bus, Ts)` points whose settlement STA certifies.
    #[default]
    On,
    /// Judge every sample point dynamically.
    Off,
}

impl StaGate {
    /// Parses a CLI flag value (`on` / `off`).
    #[must_use]
    pub fn parse(s: &str) -> Option<StaGate> {
        match s {
            "on" => Some(StaGate::On),
            "off" => Some(StaGate::Off),
            _ => None,
        }
    }

    /// The flag spelling of this selection.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StaGate::On => "on",
            StaGate::Off => "off",
        }
    }

    /// True when the fast path is enabled.
    #[must_use]
    pub fn is_on(self) -> bool {
        matches!(self, StaGate::On)
    }
}

impl fmt::Display for StaGate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Lane words per batch pass, resolved once from `OLA_LANE_WORDS`.
///
/// `1` selects the legacy 64-lane single-word engine, `2`/`8` the narrower
/// and wider multi-word blocks; anything else (including unset) selects the
/// default 4-word / 256-lane engine. Lane width never changes *results* —
/// samples fold in sample order inside fixed 256-sample chunks regardless
/// of how many lanes one engine pass carries — only throughput.
pub(crate) fn lane_words() -> usize {
    static WORDS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *WORDS.get_or_init(|| match std::env::var("OLA_LANE_WORDS").as_deref() {
        Ok("1") => 1,
        Ok("2") => 2,
        Ok("8") => 8,
        _ => 4,
    })
}

/// Cheap observability counters for one experiment's simulation work.
///
/// Deliberately *not* part of any result struct compared for
/// reproducibility: wall time varies run to run, results must not.
#[derive(Clone, Debug, Default)]
pub struct BackendStats {
    /// The engine that actually ran (`"event"`, `"batch"`, or
    /// `"batch+event"` when an experiment mixed both).
    pub backend: &'static str,
    /// Input vectors simulated.
    pub vectors: u64,
    /// `(vector × Ts)` sample points extracted.
    pub ts_points: u64,
    /// Batch engine passes executed.
    pub batch_runs: u64,
    /// Event-driven simulations executed.
    pub event_runs: u64,
    /// Sum of active lanes over all batch passes.
    pub lanes_used: u64,
    /// Lanes one batch pass can carry (64 per lane word; 0 when no batch
    /// pass ran — [`BackendStats::lane_utilization`] then assumes the
    /// legacy single-word width).
    pub lane_capacity: u64,
    /// Word-level waveform steps stored by the batch engine.
    pub word_steps: u64,
    /// Per-lane transitions the batch engine represented (the equivalent
    /// event-driven work).
    pub lane_transitions: u64,
    /// `(vector × Ts)` points whose judging the STA fast path skipped
    /// because the whole bus was statically certified settled at that
    /// period (see [`StaGate`]). Not counted in
    /// [`BackendStats::ts_points`].
    pub sta_skipped_points: u64,
    /// Wall-clock time of the simulation phase.
    pub wall: Duration,
}

impl BackendStats {
    /// Folds another stats block into this one (wall times add).
    pub fn merge(&mut self, other: &BackendStats) {
        self.backend = match (self.backend, other.backend) {
            (a, b) if a == b || b.is_empty() => a,
            ("", b) => b,
            _ => "batch+event",
        };
        self.vectors += other.vectors;
        self.ts_points += other.ts_points;
        self.batch_runs += other.batch_runs;
        self.event_runs += other.event_runs;
        self.lanes_used += other.lanes_used;
        self.lane_capacity = self.lane_capacity.max(other.lane_capacity);
        self.word_steps += other.word_steps;
        self.lane_transitions += other.lane_transitions;
        self.sta_skipped_points += other.sta_skipped_points;
        self.wall += other.wall;
    }

    /// Mean fraction of the available lanes occupied per batch pass (1.0
    /// when every pass was full). Uses [`BackendStats::lane_capacity`];
    /// stats merged from sources that never set it fall back to the legacy
    /// 64-lane width.
    #[must_use]
    pub fn lane_utilization(&self) -> f64 {
        if self.batch_runs == 0 {
            0.0
        } else {
            let cap = if self.lane_capacity == 0 { 64 } else { self.lane_capacity };
            self.lanes_used as f64 / (cap as f64 * self.batch_runs as f64)
        }
    }

    /// Simulated vectors per second of wall time.
    #[must_use]
    pub fn vectors_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.vectors as f64 / s
        } else {
            0.0
        }
    }

    /// `(vector × Ts)` sample points per second of wall time — the
    /// throughput figure the paper-reproduction workloads care about.
    #[must_use]
    pub fn ts_points_per_sec(&self) -> f64 {
        let s = self.wall.as_secs_f64();
        if s > 0.0 {
            self.ts_points as f64 / s
        } else {
            0.0
        }
    }

    /// Publishes these counters into the global metrics registry
    /// ([`crate::obs::registry`]) under `ola.backend.*`.
    ///
    /// This is the compatibility shim between the per-experiment
    /// `BackendStats` blocks (still returned by value and printed by
    /// `repro`) and the process-wide observability layer: every field is a
    /// deterministic simulation-domain count, so publishing keeps metric
    /// snapshots thread-count independent. [`BackendStats::wall`] is
    /// deliberately *not* published — wall time belongs to tracing spans.
    pub fn publish(&self) {
        let reg = crate::obs::registry();
        if !self.backend.is_empty() {
            reg.counter(&format!("ola.backend.selected.{}", self.backend)).inc();
        }
        reg.counter("ola.backend.vectors").add(self.vectors);
        reg.counter("ola.backend.ts_points").add(self.ts_points);
        reg.counter("ola.backend.batch_runs").add(self.batch_runs);
        reg.counter("ola.backend.event_runs").add(self.event_runs);
        reg.counter("ola.backend.lanes_used").add(self.lanes_used);
        reg.counter("ola.backend.word_steps").add(self.word_steps);
        reg.counter("ola.backend.lane_transitions").add(self.lane_transitions);
        reg.counter("ola.backend.sta_skipped_points").add(self.sta_skipped_points);
    }

    /// One-line human summary for the `repro` report.
    #[must_use]
    pub fn summary(&self) -> String {
        let mut line = format!(
            "backend={} vectors={} ts_points={} ({:.0} vec/s, {:.0} pts/s)",
            if self.backend.is_empty() { "event" } else { self.backend },
            self.vectors,
            self.ts_points,
            self.vectors_per_sec(),
            self.ts_points_per_sec(),
        );
        if self.batch_runs > 0 {
            line.push_str(&format!(
                " batch_runs={} lane_util={:.0}% word_steps={} lane_transitions={}",
                self.batch_runs,
                100.0 * self.lane_utilization(),
                self.word_steps,
                self.lane_transitions,
            ));
        }
        if self.event_runs > 0 {
            line.push_str(&format!(" event_runs={}", self.event_runs));
        }
        if self.sta_skipped_points > 0 {
            line.push_str(&format!(" sta_skipped={}", self.sta_skipped_points));
        }
        line
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_netlist::{JitteredDelay, UnitDelay};

    #[test]
    fn parse_roundtrips_labels() {
        for b in [SimBackend::Auto, SimBackend::Event, SimBackend::Batch] {
            assert_eq!(SimBackend::parse(b.label()), Some(b));
            assert_eq!(format!("{b}"), b.label());
        }
        assert_eq!(SimBackend::parse("nope"), None);
        assert_eq!(SimBackend::default(), SimBackend::Auto);
    }

    #[test]
    fn auto_and_batch_respect_batch_exactness() {
        let jitter = JitteredDelay::new(UnitDelay, 10, 1);
        assert!(SimBackend::Auto.wants_batch(&UnitDelay));
        assert!(SimBackend::Batch.wants_batch(&UnitDelay));
        assert!(!SimBackend::Event.wants_batch(&UnitDelay));
        assert!(!SimBackend::Auto.wants_batch(&jitter), "jitter falls back to event");
        assert!(!SimBackend::Batch.wants_batch(&jitter));
    }

    #[test]
    fn stats_merge_and_rates() {
        let mut a = BackendStats {
            backend: "batch",
            vectors: 64,
            ts_points: 640,
            batch_runs: 1,
            lanes_used: 64,
            wall: Duration::from_secs(1),
            ..BackendStats::default()
        };
        let b = BackendStats {
            backend: "batch",
            vectors: 32,
            ts_points: 320,
            batch_runs: 1,
            lanes_used: 32,
            ..BackendStats::default()
        };
        a.merge(&b);
        assert_eq!(a.vectors, 96);
        assert_eq!(a.backend, "batch");
        assert!((a.lane_utilization() - 0.75).abs() < 1e-12);
        assert!((a.vectors_per_sec() - 96.0).abs() < 1e-9);
        let ev = BackendStats { backend: "event", event_runs: 5, ..BackendStats::default() };
        a.merge(&ev);
        assert_eq!(a.backend, "batch+event");
        assert!(a.summary().contains("batch_runs=2"));
        assert!(a.summary().contains("event_runs=5"));
    }

    #[test]
    fn publish_feeds_the_registry_without_wall_time() {
        let before = crate::obs::registry().snapshot();
        let stats = BackendStats {
            backend: "batch",
            vectors: 10,
            ts_points: 20,
            batch_runs: 2,
            lanes_used: 12,
            wall: Duration::from_secs(3600),
            ..BackendStats::default()
        };
        stats.publish();
        let d = crate::obs::registry().snapshot().diff(&before);
        assert_eq!(d.counters.get("ola.backend.vectors"), Some(&10));
        assert_eq!(d.counters.get("ola.backend.ts_points"), Some(&20));
        assert_eq!(d.counters.get("ola.backend.batch_runs"), Some(&2));
        assert_eq!(d.counters.get("ola.backend.selected.batch"), Some(&1));
        assert!(
            !d.counters.keys().any(|k| k.contains("wall")),
            "wall time must stay out of the registry"
        );
    }

    #[test]
    fn sta_gate_parses_and_defaults_on() {
        assert_eq!(StaGate::default(), StaGate::On);
        for g in [StaGate::On, StaGate::Off] {
            assert_eq!(StaGate::parse(g.label()), Some(g));
            assert_eq!(format!("{g}"), g.label());
        }
        assert_eq!(StaGate::parse("maybe"), None);
        assert!(StaGate::On.is_on());
        assert!(!StaGate::Off.is_on());
    }

    #[test]
    fn skipped_points_merge_and_render() {
        let mut a = BackendStats { sta_skipped_points: 3, ..BackendStats::default() };
        let b = BackendStats { sta_skipped_points: 4, ..BackendStats::default() };
        a.merge(&b);
        assert_eq!(a.sta_skipped_points, 7);
        assert!(a.summary().contains("sta_skipped=7"));
        let clean = BackendStats::default();
        assert!(!clean.summary().contains("sta_skipped"));
    }
}
