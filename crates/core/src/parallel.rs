//! Deterministic parallel Monte-Carlo accumulation.
//!
//! Samples are split into fixed-size chunks, each chunk seeded purely by
//! `(seed, chunk_index)` and folded in chunk order — so results are
//! bit-identical regardless of how many worker threads run.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

const CHUNK: usize = 256;

/// Runs `step` for `samples` independent draws, accumulating into per-chunk
/// states created by `init` and folding them (in deterministic chunk order)
/// with `merge`.
pub fn parallel_accumulate<A, I, F, M>(samples: usize, seed: u64, init: I, step: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut ChaCha8Rng, &mut A) + Sync,
    M: Fn(A, &A) -> A,
{
    let chunks = samples.div_ceil(CHUNK).max(1);
    let results: Vec<Mutex<Option<A>>> = (0..chunks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get()).min(chunks);

    let work = |_: usize| loop {
        let c = next.fetch_add(1, Ordering::Relaxed);
        if c >= chunks {
            break;
        }
        let count = if c == chunks - 1 { samples - c * CHUNK } else { CHUNK };
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut acc = init();
        for _ in 0..count {
            step(&mut rng, &mut acc);
        }
        *results[c].lock().expect("no poisoning") = Some(acc);
    };

    if threads <= 1 {
        work(0);
    } else {
        crossbeam::scope(|s| {
            for t in 0..threads {
                s.spawn(move |_| work(t));
            }
        })
        .expect("worker threads do not panic");
    }

    let mut iter = results.into_iter().map(|m| {
        m.into_inner()
            .expect("no poisoning")
            .expect("every chunk was processed")
    });
    let first = iter.next().expect("at least one chunk");
    iter.fold(first, |acc, chunk| merge(acc, &chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_regardless_of_chunking() {
        // Sum of fixed-seed uniform draws must be stable across runs.
        let run = || {
            parallel_accumulate(
                1000,
                42,
                || 0u64,
                |rng, acc| *acc += u64::from(rng.gen_range(0..100u32)),
                |a, b| a + b,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn processes_exactly_the_requested_samples() {
        let count = parallel_accumulate(777, 1, || 0usize, |_, acc| *acc += 1, |a, b| a + b);
        assert_eq!(count, 777);
        let count = parallel_accumulate(3, 1, || 0usize, |_, acc| *acc += 1, |a, b| a + b);
        assert_eq!(count, 3);
        let count = parallel_accumulate(256, 1, || 0usize, |_, acc| *acc += 1, |a, b| a + b);
        assert_eq!(count, 256);
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            parallel_accumulate(
                500,
                seed,
                || 0u64,
                |rng, acc| *acc += u64::from(rng.gen_range(0..1000u32)),
                |a, b| a + b,
            )
        };
        assert_ne!(run(1), run(2));
    }
}
