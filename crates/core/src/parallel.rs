//! Deterministic parallel Monte-Carlo accumulation.
//!
//! Samples are split into fixed-size chunks, each chunk seeded purely by
//! `(seed, chunk_index)` and folded in chunk order — so results are
//! bit-identical regardless of how many worker threads run.
//!
//! Worker panics are caught per work item and re-raised on the caller
//! thread with the chunk (or item) index and the original panic message
//! attached, so a poisoned experiment points at the exact unit of work
//! that failed instead of aborting with a bare join error. Mutex poisoning
//! while draining results is tolerated: the poisoned chunk is the one that
//! panicked and its slot is simply absent.
//!
//! ## Cancellation
//!
//! The caller's ambient [`CancelToken`] (see
//! [`crate::resilience::install_ambient`]) is captured before workers
//! spawn and re-installed inside each worker thread, so per-sample
//! [`crate::resilience::check_cancelled`] probes fire on worker threads
//! too. Workers stop pulling jobs once the token trips; a typed
//! [`Cancelled`] unwind is re-raised on the caller thread as-is (not
//! stringified into a worker-panic message), so it surfaces to
//! `run_guarded` as cancellation rather than a crash.

use crate::resilience::{ambient_token, install_ambient, is_cancel_payload};
use ola_netlist::{CancelToken, Cancelled};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

const CHUNK: usize = 256;

/// Serializes tests that mutate the process environment (`OLA_THREADS`):
/// env vars are process-global, so readers racing a mutating test would be
/// flaky without this.
#[cfg(test)]
pub(crate) static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `work(index)` for every index in `0..jobs` across up to `threads`
/// worker threads (work-stealing via an atomic cursor). Panics inside
/// `work` are collected and re-raised on the caller thread with the index
/// of the failing job and its panic message.
fn run_jobs<W>(jobs: usize, threads: usize, work: W)
where
    W: Fn(usize) + Sync,
{
    // Job counts depend only on the workload (chunk math), never on the
    // worker-thread count, so this counter is snapshot-deterministic.
    crate::obs::registry().counter("ola.parallel.jobs").add(jobs as u64);
    let next = AtomicUsize::new(0);
    let failures: Mutex<Vec<(usize, String)>> = Mutex::new(Vec::new());
    let cancelled = AtomicBool::new(false);
    // Capture the caller's ambient token so worker threads (which have
    // their own empty thread-local stack) see the same cancellation scope.
    let ambient: Option<CancelToken> = ambient_token();
    // Same for the caller's annotation scope: annotations recorded inside
    // worker threads must land in the caller's per-request sink.
    let scope = crate::obs::current_scope();

    let worker = || {
        let _guard = ambient.clone().map(install_ambient);
        let _scope_guard = scope.as_ref().map(crate::obs::AnnotationScope::install);
        loop {
            if ambient.as_ref().is_some_and(CancelToken::is_cancelled) {
                cancelled.store(true, Ordering::Relaxed);
                break;
            }
            let j = next.fetch_add(1, Ordering::Relaxed);
            if j >= jobs {
                break;
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| work(j))) {
                if is_cancel_payload(payload.as_ref()) {
                    cancelled.store(true, Ordering::Relaxed);
                    break;
                }
                let mut log = failures.lock().unwrap_or_else(PoisonError::into_inner);
                log.push((j, panic_message(payload.as_ref())));
            }
        }
    };

    if threads <= 1 {
        worker();
    } else {
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(worker);
            }
        });
    }

    let mut failures = failures.into_inner().unwrap_or_else(PoisonError::into_inner);
    if !failures.is_empty() {
        failures.sort_by_key(|(j, _)| *j);
        let (j, msg) = &failures[0];
        panic!(
            "parallel worker panicked in chunk {j} of {jobs} ({} failing chunk(s) total): {msg}",
            failures.len()
        );
    }
    if cancelled.load(Ordering::Relaxed) {
        // Re-raise the typed payload so callers (`run_guarded`) can tell
        // cancellation from a genuine worker crash.
        std::panic::panic_any(Cancelled);
    }
}

/// How the `OLA_THREADS` environment variable resolved to a worker count.
///
/// Produced by [`thread_config`]; the `repro` binary records it verbatim
/// in each run manifest's `ola_threads` field. The thread count is kept
/// *out* of the metrics registry on purpose — metric snapshots must be
/// bit-identical across thread counts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadConfig {
    /// The raw environment value, if `OLA_THREADS` was set.
    pub raw: Option<String>,
    /// The worker count actually used (always ≥ 1).
    pub resolved: usize,
    /// True when `raw` was present but unusable (`0`, garbage, overflow)
    /// and the hardware default was substituted.
    pub fallback: bool,
}

impl ThreadConfig {
    /// This configuration as a manifest [`ThreadsRecord`].
    ///
    /// [`ThreadsRecord`]: crate::obs::ThreadsRecord
    #[must_use]
    pub fn record(&self) -> crate::obs::ThreadsRecord {
        crate::obs::ThreadsRecord {
            raw: self.raw.clone(),
            resolved: self.resolved as u64,
            fallback: self.fallback,
        }
    }
}

/// Resolves `OLA_THREADS` into a worker count.
///
/// * unset → the machine's available parallelism;
/// * a positive integer → that count;
/// * `0`, garbage, or an unparseable value → the hardware default, with a
///   single warning on stderr (the first time only) and
///   [`fallback`](ThreadConfig::fallback) set so run manifests record that
///   the request was ignored.
#[must_use]
pub fn thread_config() -> ThreadConfig {
    let hw = || std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let raw = std::env::var("OLA_THREADS").ok();
    match raw.as_deref().map(str::trim) {
        None => ThreadConfig { raw, resolved: hw(), fallback: false },
        Some(t) => match t.parse::<usize>() {
            Ok(n) if n > 0 => ThreadConfig { raw, resolved: n, fallback: false },
            _ => {
                static WARNED: std::sync::Once = std::sync::Once::new();
                let resolved = hw();
                WARNED.call_once(|| {
                    eprintln!(
                        "[ola] warning: OLA_THREADS={t:?} is not a positive integer; \
                         using the hardware default ({resolved})"
                    );
                });
                ThreadConfig { raw, resolved, fallback: true }
            }
        },
    }
}

/// Number of worker threads to use for `jobs` independent jobs.
///
/// Honors `OLA_THREADS` via [`thread_config`] (useful for verifying that
/// results are thread-count independent, and for pinning CI runs);
/// otherwise uses the machine's available parallelism.
fn thread_count(jobs: usize) -> usize {
    thread_config().resolved.min(jobs.max(1))
}

/// Runs `step` for `samples` independent draws, accumulating into per-chunk
/// states created by `init` and folding them (in deterministic chunk order)
/// with `merge`.
///
/// # Panics
///
/// If `step` panics for some draw, the panic is re-raised on the calling
/// thread annotated with the chunk index that failed.
pub fn parallel_accumulate<A, I, F, M>(samples: usize, seed: u64, init: I, step: F, merge: M) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut ChaCha8Rng, &mut A) + Sync,
    M: Fn(A, &A) -> A,
{
    let chunks = samples.div_ceil(CHUNK).max(1);
    let results: Vec<Mutex<Option<A>>> = (0..chunks).map(|_| Mutex::new(None)).collect();

    run_jobs(chunks, thread_count(chunks), |c| {
        let count = if c == chunks - 1 { samples - c * CHUNK } else { CHUNK };
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut acc = init();
        for _ in 0..count {
            step(&mut rng, &mut acc);
        }
        *results[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(acc);
    });

    let mut iter = results.into_iter().map(|m| {
        m.into_inner().unwrap_or_else(PoisonError::into_inner).expect("every chunk was processed")
    });
    let first = iter.next().expect("at least one chunk");
    iter.fold(first, |acc, chunk| merge(acc, &chunk))
}

/// Like [`parallel_accumulate`], but hands the payloads to `step` in
/// groups of up to `batch` at a time — the shape batch (bit-parallel)
/// simulation wants, where one engine pass serves up to 64 draws.
///
/// Crucially the random stream is *identical* to the unbatched variant:
/// each chunk is seeded purely by `(seed, chunk_index)` and `draw` is
/// called once per sample in order, consuming the rng exactly as a
/// `parallel_accumulate` step that begins by drawing the same payload
/// would. A backend that draws via `draw` and judges via `step` therefore
/// sees the same samples whether it batches or not — the property the
/// event/batch CSV-equality guarantee rests on.
///
/// # Panics
///
/// If `draw` or `step` panics, the panic is re-raised on the calling
/// thread annotated with the chunk index that failed.
pub fn parallel_accumulate_batched<A, T, I, G, F, M>(
    samples: usize,
    seed: u64,
    batch: usize,
    init: I,
    draw: G,
    step: F,
    merge: M,
) -> A
where
    A: Send,
    I: Fn() -> A + Sync,
    G: Fn(&mut ChaCha8Rng) -> T + Sync,
    F: Fn(&[T], &mut A) + Sync,
    M: Fn(A, &A) -> A,
{
    let batch = batch.max(1);
    let chunks = samples.div_ceil(CHUNK).max(1);
    let results: Vec<Mutex<Option<A>>> = (0..chunks).map(|_| Mutex::new(None)).collect();

    run_jobs(chunks, thread_count(chunks), |c| {
        let count = if c == chunks - 1 { samples - c * CHUNK } else { CHUNK };
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Draw every payload of the chunk first, in sample order, so the
        // rng stream matches the unbatched accumulator sample for sample.
        let items: Vec<T> = (0..count).map(|_| draw(&mut rng)).collect();
        let mut acc = init();
        for group in items.chunks(batch) {
            step(group, &mut acc);
        }
        *results[c].lock().unwrap_or_else(PoisonError::into_inner) = Some(acc);
    });

    let mut iter = results.into_iter().map(|m| {
        m.into_inner().unwrap_or_else(PoisonError::into_inner).expect("every chunk was processed")
    });
    let first = iter.next().expect("at least one chunk");
    iter.fold(first, |acc, chunk| merge(acc, &chunk))
}

/// Maps `f` over `items` in parallel, returning the results in the same
/// order as the input. Each call receives the item index, so callers can
/// derive deterministic per-item seeds; results are independent of the
/// worker-thread count.
///
/// # Panics
///
/// If `f` panics for some item, the panic is re-raised on the calling
/// thread annotated with the item index that failed.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let results: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    run_jobs(items.len(), thread_count(items.len()), |i| {
        let value = f(i, &items[i]);
        *results[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(value);
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(PoisonError::into_inner)
                .expect("every item was processed")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_regardless_of_chunking() {
        // Sum of fixed-seed uniform draws must be stable across runs.
        let run = || {
            parallel_accumulate(
                1000,
                42,
                || 0u64,
                |rng, acc| *acc += u64::from(rng.gen_range(0..100u32)),
                |a, b| a + b,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn processes_exactly_the_requested_samples() {
        let count = parallel_accumulate(777, 1, || 0usize, |_, acc| *acc += 1, |a, b| a + b);
        assert_eq!(count, 777);
        let count = parallel_accumulate(3, 1, || 0usize, |_, acc| *acc += 1, |a, b| a + b);
        assert_eq!(count, 3);
        let count = parallel_accumulate(256, 1, || 0usize, |_, acc| *acc += 1, |a, b| a + b);
        assert_eq!(count, 256);
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            parallel_accumulate(
                500,
                seed,
                || 0u64,
                |rng, acc| *acc += u64::from(rng.gen_range(0..1000u32)),
                |a, b| a + b,
            )
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn batched_accumulation_matches_unbatched_stream() {
        // A draw-only workload must see the identical sample sequence
        // whether it is stepped one at a time or in groups — the property
        // the event/batch backend CSV-equality guarantee rests on.
        let unbatched = parallel_accumulate(
            777,
            42,
            Vec::new,
            |rng, acc: &mut Vec<u32>| acc.push(rng.gen_range(0..1_000_000u32)),
            |mut a, b| {
                a.extend_from_slice(b);
                a
            },
        );
        for batch in [1usize, 7, 64, 300] {
            let batched = parallel_accumulate_batched(
                777,
                42,
                batch,
                Vec::new,
                |rng| rng.gen_range(0..1_000_000u32),
                |group, acc: &mut Vec<u32>| acc.extend_from_slice(group),
                |mut a, b| {
                    a.extend_from_slice(b);
                    a
                },
            );
            assert_eq!(batched, unbatched, "batch = {batch}");
        }
    }

    #[test]
    fn map_preserves_order() {
        let items: Vec<u32> = (0..1000).collect();
        let doubled = parallel_map(&items, |i, x| (i, x * 2));
        for (i, (j, y)) in doubled.into_iter().enumerate() {
            assert_eq!(i, j);
            assert_eq!(y, items[i] * 2);
        }
        assert!(parallel_map::<u32, u32, _>(&[], |_, x| *x).is_empty());
    }

    /// Regression (observability PR): `OLA_THREADS=0` or garbage used to be
    /// silently ignored with no record of the fallback; now the resolution
    /// is explicit and reportable. Env mutation is process-global, so this
    /// single test covers every case sequentially.
    #[test]
    fn thread_config_resolves_and_flags_fallback() {
        let _env = ENV_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let original = std::env::var("OLA_THREADS").ok();

        std::env::set_var("OLA_THREADS", "3");
        let cfg = thread_config();
        assert_eq!(cfg, ThreadConfig { raw: Some("3".into()), resolved: 3, fallback: false });
        let rec = cfg.record();
        assert_eq!(rec.resolved, 3);
        assert!(!rec.fallback);

        for bad in ["0", "lots", "-2", "", " 4x "] {
            std::env::set_var("OLA_THREADS", bad);
            let cfg = thread_config();
            assert_eq!(cfg.raw.as_deref(), Some(bad));
            assert!(cfg.fallback, "OLA_THREADS={bad:?} must fall back");
            assert!(cfg.resolved >= 1, "fallback still yields a usable count");
        }

        // Whitespace around a valid number is tolerated.
        std::env::set_var("OLA_THREADS", " 2 ");
        let cfg = thread_config();
        assert_eq!(cfg.resolved, 2);
        assert!(!cfg.fallback);

        std::env::remove_var("OLA_THREADS");
        let cfg = thread_config();
        assert_eq!(cfg.raw, None);
        assert!(!cfg.fallback);
        assert!(cfg.resolved >= 1);

        match original {
            Some(v) => std::env::set_var("OLA_THREADS", v),
            None => std::env::remove_var("OLA_THREADS"),
        }
    }

    #[test]
    fn cancellation_stops_workers_and_reraises_the_typed_payload() {
        let token = CancelToken::new();
        let processed = AtomicUsize::new(0);
        let _guard = install_ambient(token.clone());
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_accumulate(
                10_000,
                7,
                || 0usize,
                |_, acc| {
                    *acc += 1;
                    if processed.fetch_add(1, Ordering::Relaxed) == 300 {
                        token.cancel();
                    }
                    crate::resilience::check_cancelled();
                },
                |a, b| a + b,
            )
        }));
        let payload = result.expect_err("cancellation must unwind");
        assert!(is_cancel_payload(payload.as_ref()), "payload must stay typed, not a string");
        // Far fewer samples than requested ran: workers stopped pulling jobs.
        assert!(processed.load(Ordering::Relaxed) < 10_000);
    }

    #[test]
    fn ambient_token_reaches_worker_threads() {
        // Workers have fresh thread-local stacks; run_jobs must re-install
        // the caller's ambient token inside each one.
        let token = CancelToken::new();
        let _guard = install_ambient(token.clone());
        let seen = parallel_map(&[0u8; 64], |_, _| ambient_token().is_some());
        assert!(seen.into_iter().all(|s| s), "every worker saw the ambient token");
    }

    #[test]
    fn worker_panic_is_annotated_with_chunk_index() {
        let result = std::panic::catch_unwind(|| {
            parallel_accumulate(
                600,
                7,
                || 0usize,
                |_, acc| {
                    *acc += 1;
                    // Poison a chunk deterministically: the second chunk
                    // panics mid-way through its samples.
                    assert!(*acc < 100, "synthetic fault in step");
                },
                |a, b| a + b,
            )
        });
        let payload = result.expect_err("panic must propagate");
        let msg = panic_message(payload.as_ref());
        assert!(msg.contains("parallel worker panicked in chunk"), "got: {msg}");
        assert!(msg.contains("synthetic fault in step"), "got: {msg}");
    }
}
