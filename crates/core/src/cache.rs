//! Content-addressed result cache with single-flight fills.
//!
//! The dedupe substrate for the `ola-serve` analysis service and the
//! `repro synth` CLI sweeps: analysis results are pure functions of their
//! query, so a result can be stored and served under the SHA-256 of the
//! query's canonical serialization ([`sha256`]). Three properties matter
//! and are all enforced here:
//!
//! * **Single-flight** — N identical in-flight queries cost exactly one
//!   computation. The first caller becomes the *leader* and runs the fill;
//!   the rest block on a condvar and receive the leader's bytes
//!   ([`Lookup::Coalesced`]). A failed fill wakes the waiters and the next
//!   one retries as leader, so an error never wedges a key.
//! * **Integrity** — every entry stores the SHA-256 of its payload,
//!   computed at fill time. Each hit (memory or disk) re-hashes the bytes
//!   before serving them; a mismatch is counted
//!   (`ola.cache.tamper_rejected`), the entry is dropped, and the value is
//!   recomputed — rotten bytes are never served. The chaos hook
//!   [`crate::resilience::chaos::CACHE_TAMPER`] flips a payload byte right
//!   after each fill so the `chaos_check` harness can prove this end to
//!   end.
//! * **Bounded memory** — the in-memory tier evicts least-recently-used
//!   entries past a configured capacity (`ola.cache.evictions`). The
//!   optional disk tier (used by `repro synth` so repeated CLI sweeps
//!   warm-hit across processes) is append-only and content-addressed:
//!   `<dir>/<key>.entry` holds the payload digest on its first line and
//!   the payload after it, written atomically.
//!
//! Metrics (process-global [`crate::obs::registry`], `ola.cache.*`):
//! `hits`, `misses`, `fills`, `coalesced`, `evictions`, `disk_hits`,
//! `tamper_rejected`. These are *operational* counters — unlike the
//! simulation-domain metrics they depend on request interleaving, so they
//! are exempt from the cross-thread-count bit-identity contract (they
//! never appear in experiment manifest deltas asserted by the determinism
//! suite; `ola.cache.hits` from the single-threaded `repro synth` warm
//! path *is* deterministic and is asserted by its test).

use crate::obs::sha256;
use crate::resilience::atomic_write;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// A content-address: the lowercase-hex SHA-256 of a canonical query
/// serialization.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(String);

impl CacheKey {
    /// The key for `bytes` (their SHA-256, lowercase hex).
    #[must_use]
    pub fn of(bytes: &[u8]) -> CacheKey {
        CacheKey(sha256::hex_digest(bytes))
    }

    /// Wraps an existing 64-hex-char digest. Returns `None` when `hex` is
    /// not a lowercase-hex SHA-256.
    #[must_use]
    pub fn from_hex(hex: &str) -> Option<CacheKey> {
        (hex.len() == 64 && hex.bytes().all(|b| matches!(b, b'0'..=b'9' | b'a'..=b'f')))
            .then(|| CacheKey(hex.to_owned()))
    }

    /// The hex digest.
    #[must_use]
    pub fn hex(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// How a [`ContentCache::get_or_compute`] call was satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lookup {
    /// Served from the in-memory tier (integrity re-verified).
    Hit,
    /// Served from the disk tier (integrity verified, promoted to memory).
    DiskHit,
    /// This caller ran the fill computation.
    Miss,
    /// Another in-flight caller ran the fill; this caller waited for it.
    Coalesced,
}

impl Lookup {
    /// Stable wire label (`hit` / `disk-hit` / `miss` / `coalesced`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Lookup::Hit => "hit",
            Lookup::DiskHit => "disk-hit",
            Lookup::Miss => "miss",
            Lookup::Coalesced => "coalesced",
        }
    }

    /// True for every outcome that did not run the fill computation.
    #[must_use]
    pub fn is_hit(self) -> bool {
        !matches!(self, Lookup::Miss)
    }
}

struct Entry {
    bytes: Arc<Vec<u8>>,
    /// SHA-256 of `bytes` at insertion time; re-checked on every hit.
    digest: String,
    /// Monotonic recency stamp for LRU eviction.
    stamp: u64,
}

#[derive(Default)]
struct Store {
    entries: HashMap<String, Entry>,
    clock: u64,
}

enum FlightState {
    Pending,
    Done(Arc<Vec<u8>>),
    Failed,
}

struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

/// Configuration for a [`ContentCache`].
#[derive(Clone, Debug)]
pub struct CacheConfig {
    /// Maximum entries held in memory before LRU eviction (≥ 1).
    pub capacity: usize,
    /// Optional persistent tier: entries are mirrored to
    /// `<dir>/<key>.entry` and consulted on memory misses.
    pub disk_dir: Option<PathBuf>,
    /// Suppress the `ola.cache.*` registry counters for this cache.
    ///
    /// Used by caches whose hit/miss pattern depends on cross-run state
    /// (e.g. the compile-memoization tier, warm after the first workload):
    /// their counters would differ between otherwise identical runs and
    /// break the determinism contract asserted over full metric-snapshot
    /// deltas. Quiet caches expose their traffic through caller-owned
    /// stats instead.
    pub quiet: bool,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig { capacity: 1024, disk_dir: None, quiet: false }
    }
}

/// A content-addressed byte cache with single-flight fills, LRU memory
/// eviction, integrity re-verification on every hit, and an optional disk
/// tier. See the module docs for the guarantees.
pub struct ContentCache {
    config: CacheConfig,
    store: Mutex<Store>,
    inflight: Mutex<HashMap<String, Arc<Flight>>>,
}

impl ContentCache {
    /// A cache with the given configuration (capacity is clamped to ≥ 1).
    #[must_use]
    pub fn new(mut config: CacheConfig) -> ContentCache {
        config.capacity = config.capacity.max(1);
        ContentCache {
            config,
            store: Mutex::new(Store::default()),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Number of entries currently in the memory tier.
    ///
    /// # Panics
    ///
    /// Never: lock poisoning is absorbed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.lock().unwrap_or_else(PoisonError::into_inner).entries.len()
    }

    /// True when the memory tier is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn counter(&self, name: &str) {
        if !self.config.quiet {
            crate::obs::registry().counter(name).inc();
        }
    }

    /// Looks `key` up in memory (verifying integrity), then on disk, and
    /// otherwise computes it with `fill` — guaranteeing at most one
    /// concurrent fill per key. Returns the payload bytes and how they
    /// were obtained.
    ///
    /// `fill` runs on the calling thread (so ambient cancellation and
    /// annotation scopes apply) and its payload is hashed, inserted into
    /// every configured tier, and handed to any coalesced waiters.
    ///
    /// # Errors
    ///
    /// Propagates `fill`'s error to the leader that ran it. Waiters never
    /// see another caller's error: on a failed fill the next waiter
    /// retries as leader.
    pub fn get_or_compute<E>(
        &self,
        key: &CacheKey,
        fill: impl FnOnce() -> Result<Vec<u8>, E>,
    ) -> Result<(Arc<Vec<u8>>, Lookup), E> {
        let mut fill = Some(fill);
        loop {
            // Tier 1: memory, with integrity re-verification.
            if let Some(bytes) = self.memory_get(key) {
                self.counter("ola.cache.hits");
                return Ok((bytes, Lookup::Hit));
            }
            // Tier 2: disk.
            if let Some(bytes) = self.disk_get(key) {
                self.counter("ola.cache.hits");
                self.counter("ola.cache.disk_hits");
                return Ok((bytes, Lookup::DiskHit));
            }
            // Single flight: first caller leads, the rest wait.
            let (flight, leader) = self.join_flight(key);
            if leader {
                self.counter("ola.cache.misses");
                // Panic safety: if `fill` unwinds (worker panic, chaos
                // injection, cooperative cancellation), the flight must
                // still settle as Failed — otherwise every coalesced
                // waiter blocks on the condvar forever.
                let unwind_guard = SettleOnUnwind { cache: self, key, flight: &flight };
                let result = fill.take().expect("leader fills at most once")();
                std::mem::forget(unwind_guard);
                return match result {
                    Ok(bytes) => {
                        let bytes = self.insert(key, bytes);
                        self.counter("ola.cache.fills");
                        self.settle_flight(key, &flight, FlightState::Done(Arc::clone(&bytes)));
                        Ok((bytes, Lookup::Miss))
                    }
                    Err(e) => {
                        self.settle_flight(key, &flight, FlightState::Failed);
                        Err(e)
                    }
                };
            }
            let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                match &*state {
                    FlightState::Pending => {
                        state = flight.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
                    }
                    FlightState::Done(bytes) => {
                        self.counter("ola.cache.hits");
                        self.counter("ola.cache.coalesced");
                        return Ok((Arc::clone(bytes), Lookup::Coalesced));
                    }
                    // The leader failed; retry from the top (this caller
                    // may become the new leader and run its own fill).
                    FlightState::Failed => break,
                }
            }
        }
    }

    /// Memory lookup with integrity verification; a tampered entry is
    /// dropped and reported as a miss.
    fn memory_get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let mut store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        store.clock += 1;
        let stamp = store.clock;
        let entry = store.entries.get_mut(key.hex())?;
        if sha256::hex_digest(&entry.bytes) == entry.digest {
            entry.stamp = stamp;
            return Some(Arc::clone(&entry.bytes));
        }
        store.entries.remove(key.hex());
        drop(store);
        self.counter("ola.cache.tamper_rejected");
        // The disk mirror of a tampered memory entry is suspect too: it
        // was written from the same fill. Let the disk tier re-verify it
        // independently (it may still be sound).
        None
    }

    fn entry_path(&self, key: &CacheKey) -> Option<PathBuf> {
        self.config.disk_dir.as_ref().map(|d| d.join(format!("{}.entry", key.hex())))
    }

    /// Disk lookup: `<digest hex>\n<payload>`. Any structural or digest
    /// mismatch rejects (and removes) the file.
    fn disk_get(&self, key: &CacheKey) -> Option<Arc<Vec<u8>>> {
        let path = self.entry_path(key)?;
        let raw = std::fs::read(&path).ok()?;
        match parse_disk_entry(&raw) {
            Some((digest, payload)) if sha256::hex_digest(payload) == digest => {
                let bytes = Arc::new(payload.to_vec());
                self.insert_memory(key, Arc::clone(&bytes), digest);
                Some(bytes)
            }
            _ => {
                self.counter("ola.cache.tamper_rejected");
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Inserts freshly computed bytes into every tier, applying the chaos
    /// tamper hook, and returns the (untampered) payload handed to the
    /// caller — tampering corrupts what is *stored*, never what the fill
    /// returns.
    fn insert(&self, key: &CacheKey, bytes: Vec<u8>) -> Arc<Vec<u8>> {
        let bytes = Arc::new(bytes);
        // The digest of record is always of the *clean* payload, computed
        // before any storage — so a tampered store cannot be
        // self-consistent and is caught on the next read.
        let digest = sha256::hex_digest(&bytes);
        let mut stored = Arc::clone(&bytes);
        if crate::resilience::chaos::cache_tamper_forced() && !stored.is_empty() {
            let mut rotten = (*stored).clone();
            let mid = rotten.len() / 2;
            rotten[mid] ^= 0x40;
            stored = Arc::new(rotten);
        }
        if let Some(path) = self.entry_path(key) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let mut file = digest.clone().into_bytes();
            file.push(b'\n');
            file.extend_from_slice(&stored);
            let _ = atomic_write(&path, &file);
        }
        self.insert_memory(key, stored, digest);
        bytes
    }

    fn insert_memory(&self, key: &CacheKey, bytes: Arc<Vec<u8>>, digest: String) {
        let mut store = self.store.lock().unwrap_or_else(PoisonError::into_inner);
        store.clock += 1;
        let stamp = store.clock;
        store.entries.insert(key.hex().to_owned(), Entry { bytes, digest, stamp });
        let mut evicted = 0u64;
        while store.entries.len() > self.config.capacity {
            let Some(oldest) =
                store.entries.iter().min_by_key(|(_, e)| e.stamp).map(|(k, _)| k.clone())
            else {
                break;
            };
            store.entries.remove(&oldest);
            evicted += 1;
        }
        drop(store);
        if evicted > 0 && !self.config.quiet {
            crate::obs::registry().counter("ola.cache.evictions").add(evicted);
        }
    }

    /// Joins (or starts) the flight for `key`; `true` means this caller is
    /// the leader and must run the fill.
    fn join_flight(&self, key: &CacheKey) -> (Arc<Flight>, bool) {
        let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(f) = inflight.get(key.hex()) {
            (Arc::clone(f), false)
        } else {
            let f =
                Arc::new(Flight { state: Mutex::new(FlightState::Pending), cv: Condvar::new() });
            inflight.insert(key.hex().to_owned(), Arc::clone(&f));
            (f, true)
        }
    }

    fn settle_flight(&self, key: &CacheKey, flight: &Arc<Flight>, outcome: FlightState) {
        {
            let mut state = flight.state.lock().unwrap_or_else(PoisonError::into_inner);
            *state = outcome;
        }
        flight.cv.notify_all();
        let mut inflight = self.inflight.lock().unwrap_or_else(PoisonError::into_inner);
        inflight.remove(key.hex());
    }
}

/// Settles a flight as Failed when the leader's fill unwinds instead of
/// returning; defused with `mem::forget` on the normal path.
struct SettleOnUnwind<'a> {
    cache: &'a ContentCache,
    key: &'a CacheKey,
    flight: &'a Arc<Flight>,
}

impl Drop for SettleOnUnwind<'_> {
    fn drop(&mut self) {
        self.cache.settle_flight(self.key, self.flight, FlightState::Failed);
    }
}

/// Splits a disk entry into `(digest, payload)`.
fn parse_disk_entry(raw: &[u8]) -> Option<(String, &[u8])> {
    let nl = raw.iter().position(|&b| b == b'\n')?;
    let digest = std::str::from_utf8(&raw[..nl]).ok()?;
    CacheKey::from_hex(digest)?;
    Some((digest.to_owned(), &raw[nl + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn fill_ok(bytes: &[u8]) -> impl FnOnce() -> Result<Vec<u8>, Infallible> + '_ {
        move || Ok(bytes.to_vec())
    }

    #[test]
    fn miss_then_hit_roundtrips_bytes() {
        let cache = ContentCache::new(CacheConfig::default());
        let key = CacheKey::of(b"query-1");
        let (bytes, how) = cache.get_or_compute(&key, fill_ok(b"payload")).unwrap();
        assert_eq!(how, Lookup::Miss);
        assert_eq!(&**bytes, b"payload");
        let (bytes, how) = cache.get_or_compute(&key, fill_ok(b"IGNORED")).unwrap();
        assert_eq!(how, Lookup::Hit);
        assert!(how.is_hit());
        assert_eq!(&**bytes, b"payload", "hit serves the original fill");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn keys_are_hex_shas_and_labels_are_stable() {
        let key = CacheKey::of(b"abc");
        assert_eq!(key.hex().len(), 64);
        assert_eq!(CacheKey::from_hex(key.hex()), Some(key.clone()));
        assert_eq!(CacheKey::from_hex("xyz"), None);
        assert_eq!(CacheKey::from_hex(&"A".repeat(64)), None, "uppercase rejected");
        assert_eq!(format!("{key}"), key.hex());
        assert_eq!(Lookup::Miss.label(), "miss");
        assert_eq!(Lookup::Hit.label(), "hit");
        assert_eq!(Lookup::DiskHit.label(), "disk-hit");
        assert_eq!(Lookup::Coalesced.label(), "coalesced");
        assert!(!Lookup::Miss.is_hit());
        assert!(Lookup::DiskHit.is_hit());
        assert!(Lookup::Coalesced.is_hit());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let cache = ContentCache::new(CacheConfig { capacity: 2, ..CacheConfig::default() });
        let (a, b, c) = (CacheKey::of(b"a"), CacheKey::of(b"b"), CacheKey::of(b"c"));
        cache.get_or_compute(&a, fill_ok(b"A")).unwrap();
        cache.get_or_compute(&b, fill_ok(b"B")).unwrap();
        // Touch `a` so `b` is the LRU entry when `c` arrives.
        assert_eq!(cache.get_or_compute(&a, fill_ok(b"!")).unwrap().1, Lookup::Hit);
        cache.get_or_compute(&c, fill_ok(b"C")).unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get_or_compute(&a, fill_ok(b"!")).unwrap().1, Lookup::Hit);
        assert_eq!(cache.get_or_compute(&b, fill_ok(b"B2")).unwrap().1, Lookup::Miss, "b evicted");
    }

    #[test]
    fn single_flight_coalesces_concurrent_fills() {
        let cache = Arc::new(ContentCache::new(CacheConfig::default()));
        let key = CacheKey::of(b"expensive");
        let fills = AtomicUsize::new(0);
        let k = 8;
        let barrier = Barrier::new(k);
        let outcomes: Vec<Lookup> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..k)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        let (bytes, how) = cache
                            .get_or_compute(&key, || {
                                fills.fetch_add(1, Ordering::SeqCst);
                                std::thread::sleep(std::time::Duration::from_millis(50));
                                Ok::<_, Infallible>(b"answer".to_vec())
                            })
                            .unwrap();
                        assert_eq!(&**bytes, b"answer");
                        how
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(fills.load(Ordering::SeqCst), 1, "exactly one fill ran");
        assert_eq!(outcomes.iter().filter(|o| **o == Lookup::Miss).count(), 1);
        assert!(outcomes.iter().all(|o| *o == Lookup::Miss || o.is_hit()));
    }

    #[test]
    fn failed_fill_releases_waiters_to_retry() {
        let cache = Arc::new(ContentCache::new(CacheConfig::default()));
        let key = CacheKey::of(b"flaky");
        let attempts = AtomicUsize::new(0);
        let barrier = Barrier::new(4);
        let ok = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        cache.get_or_compute(&key, || {
                            // First fill attempt fails; a retry succeeds.
                            if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                                std::thread::sleep(std::time::Duration::from_millis(20));
                                Err("boom")
                            } else {
                                Ok(b"recovered".to_vec())
                            }
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        let successes = ok.iter().filter(|r| r.is_ok()).count();
        assert!(successes >= 3, "only the failing leader errors; waiters recover");
        assert!(ok.iter().flatten().all(|(b, _)| &***b == b"recovered"));
    }

    #[test]
    fn disk_tier_survives_a_fresh_cache_and_rejects_rot() {
        let dir = std::env::temp_dir().join(format!("ola_cache_disk_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg =
            CacheConfig { capacity: 8, disk_dir: Some(dir.clone()), ..CacheConfig::default() };
        let key = CacheKey::of(b"persisted");

        let warm = ContentCache::new(cfg.clone());
        warm.get_or_compute(&key, fill_ok(b"on disk")).unwrap();

        // A brand-new cache (fresh process, conceptually) warm-hits disk.
        let cold = ContentCache::new(cfg.clone());
        let (bytes, how) = cold.get_or_compute(&key, fill_ok(b"SHOULD NOT RUN")).unwrap();
        assert_eq!(how, Lookup::DiskHit);
        assert_eq!(&**bytes, b"on disk");
        // And the disk hit was promoted to memory.
        assert_eq!(cold.get_or_compute(&key, fill_ok(b"!")).unwrap().1, Lookup::Hit);

        // Flip a payload byte on disk: the digest check must reject it and
        // recompute instead of serving rot.
        let path = dir.join(format!("{}.entry", key.hex()));
        let mut raw = std::fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x01;
        std::fs::write(&path, &raw).unwrap();
        let rotten = ContentCache::new(cfg);
        let (bytes, how) = rotten.get_or_compute(&key, fill_ok(b"recomputed")).unwrap();
        assert_eq!(how, Lookup::Miss, "tampered disk entry is a miss");
        assert_eq!(&**bytes, b"recomputed");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tampered_memory_entry_is_recomputed_not_served() {
        let cache = ContentCache::new(CacheConfig::default());
        let key = CacheKey::of(b"tamper-mem");
        cache.get_or_compute(&key, fill_ok(b"clean")).unwrap();
        // Corrupt the stored bytes behind the cache's back.
        {
            let mut store = cache.store.lock().unwrap();
            let entry = store.entries.get_mut(key.hex()).unwrap();
            entry.bytes = Arc::new(b"ROTTEN".to_vec());
        }
        let (bytes, how) = cache.get_or_compute(&key, fill_ok(b"clean")).unwrap();
        assert_eq!(how, Lookup::Miss, "integrity failure forces a recompute");
        assert_eq!(&**bytes, b"clean");
    }

    #[test]
    fn chaos_tamper_hook_corrupts_the_store_but_never_the_caller() {
        // Env mutation is process-global; the chaos var is unique to this
        // test within the ola-core test binary.
        std::env::set_var(crate::resilience::chaos::CACHE_TAMPER, "1");
        let cache = ContentCache::new(CacheConfig::default());
        let key = CacheKey::of(b"chaos");
        let (bytes, how) = cache.get_or_compute(&key, fill_ok(b"fresh")).unwrap();
        assert_eq!(how, Lookup::Miss);
        assert_eq!(&**bytes, b"fresh", "the fill's caller always gets clean bytes");
        std::env::remove_var(crate::resilience::chaos::CACHE_TAMPER);
        // The stored copy was tampered: the next lookup must detect the
        // digest mismatch and recompute rather than serve rot.
        let (bytes, how) = cache.get_or_compute(&key, fill_ok(b"fresh")).unwrap();
        assert_eq!(how, Lookup::Miss);
        assert_eq!(&**bytes, b"fresh");
        // With the hook off, the recomputed entry now hits cleanly.
        assert_eq!(cache.get_or_compute(&key, fill_ok(b"!")).unwrap().1, Lookup::Hit);
    }

    #[test]
    fn panicking_leader_releases_waiters() {
        let cache = Arc::new(ContentCache::new(CacheConfig::default()));
        let key = CacheKey::of(b"leader-panics");
        let attempts = AtomicUsize::new(0);
        let barrier = Barrier::new(4);
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            cache.get_or_compute(&key, || {
                                if attempts.fetch_add(1, Ordering::SeqCst) == 0 {
                                    std::thread::sleep(std::time::Duration::from_millis(20));
                                    panic!("synthetic worker crash");
                                }
                                Ok::<_, Infallible>(b"after crash".to_vec())
                            })
                        }))
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        // Exactly one caller observed the panic; everyone else completed
        // (as retry-leader or coalesced) instead of hanging forever.
        let panicked = results.iter().filter(|r| r.is_err()).count();
        assert_eq!(panicked, 1, "only the crashing leader unwinds");
        for r in results.iter().flatten() {
            let (bytes, _) = r.as_ref().unwrap();
            assert_eq!(&***bytes, b"after crash");
        }
    }

    #[test]
    fn disk_entry_parser_rejects_malformed_files() {
        assert!(parse_disk_entry(b"").is_none());
        assert!(parse_disk_entry(b"no-newline").is_none());
        assert!(parse_disk_entry(b"shorthex\npayload").is_none());
        let good = format!("{}\npayload", sha256::hex_digest(b"payload"));
        let (digest, payload) = parse_disk_entry(good.as_bytes()).unwrap();
        assert_eq!(digest, sha256::hex_digest(b"payload"));
        assert_eq!(payload, b"payload");
    }
}
