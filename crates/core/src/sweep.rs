//! Frequency-sweep utilities: max error-free frequency and error-budget
//! solving (the machinery behind Tables 1–3).
//!
//! Each binary-search probe is typically a full Monte-Carlo sweep, so the
//! solvers poll the ambient [`CancelToken`](crate::CancelToken) before
//! every probe: a budget-exceeded experiment stops between probes instead
//! of finishing the whole search.

/// The largest frequency (smallest period) whose error metric stays within
/// `budget`: returns the smallest `ts ∈ [lo, hi]` with `metric(ts) ≤ budget`,
/// assuming `metric` is non-increasing in `ts` (slower clocks never hurt).
///
/// Returns `None` if even `hi` exceeds the budget.
///
/// # Panics
///
/// Panics if `lo > hi`.
pub fn min_period_within_budget<F: FnMut(u64) -> f64>(
    lo: u64,
    hi: u64,
    budget: f64,
    mut metric: F,
) -> Option<u64> {
    assert!(lo <= hi, "empty search interval");
    let _span = crate::obs::span("sweep.solve");
    let probes = crate::obs::registry().counter("ola.sweep.probes");
    crate::obs::registry().counter("ola.sweep.solves").inc();
    crate::resilience::check_cancelled();
    probes.inc();
    if metric(hi) > budget {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        crate::resilience::check_cancelled();
        probes.inc();
        if metric(mid) <= budget {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// The maximum error-free period bound: smallest `ts` with zero error.
pub fn min_error_free_period<F: FnMut(u64) -> f64>(lo: u64, hi: u64, metric: F) -> Option<u64> {
    min_period_within_budget(lo, hi, 0.0, metric)
}

/// [`min_error_free_period`] anchored by a *statically certified* period —
/// e.g. the output bus's worst-case STA arrival
/// ([`ola_netlist::sta::analyze`] /
/// [`CertificationReport::digit_arrival`](ola_netlist::sta::CertificationReport::digit_arrival)).
///
/// Because STA proves `metric(certified) == 0` without running anything,
/// the search needs no feasibility probe at the top of the interval (the
/// simulation [`min_error_free_period`] spends on `metric(hi)` is skipped)
/// and the result is total rather than `Option`: the answer always exists
/// in `[lo, certified]`.
///
/// # Panics
///
/// Panics if `lo > certified`.
pub fn min_error_free_period_certified<F: FnMut(u64) -> f64>(
    lo: u64,
    certified: u64,
    mut metric: F,
) -> u64 {
    assert!(lo <= certified, "certified period below the search floor");
    let _span = crate::obs::span("sweep.solve_certified");
    let probes = crate::obs::registry().counter("ola.sweep.probes");
    crate::obs::registry().counter("ola.sweep.solves").inc();
    let (mut lo, mut hi) = (lo, certified);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        crate::resilience::check_cancelled();
        probes.inc();
        if metric(mid) <= 0.0 {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    lo
}

/// Relative frequency improvement in percent when the period shrinks from
/// `t_base` to `t_fast`: `(t_base/t_fast − 1) × 100`.
///
/// # Panics
///
/// Panics if `t_fast == 0`.
#[must_use]
pub fn frequency_speedup_percent(t_base: u64, t_fast: u64) -> f64 {
    assert!(t_fast > 0, "period must be positive");
    (t_base as f64 / t_fast as f64 - 1.0) * 100.0
}

/// Evenly spaced normalized frequencies, e.g. `1.05, 1.10 … 1.25` for the
/// tables' column headers.
#[must_use]
pub fn normalized_frequency_grid(start: f64, stop: f64, step: f64) -> Vec<f64> {
    assert!(step > 0.0 && stop >= start);
    let mut out = Vec::new();
    let mut f = start;
    while f <= stop + 1e-9 {
        out.push((f * 1e9).round() / 1e9);
        f += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_metric(threshold: u64) -> impl FnMut(u64) -> f64 {
        move |ts| if ts >= threshold { 0.0 } else { (threshold - ts) as f64 }
    }

    #[test]
    fn finds_exact_threshold() {
        let got = min_error_free_period(1, 1000, step_metric(437));
        assert_eq!(got, Some(437));
    }

    #[test]
    fn respects_budget() {
        // metric = threshold − ts when below; budget 5 admits ts ≥ 432.
        let got = min_period_within_budget(1, 1000, 5.0, step_metric(437));
        assert_eq!(got, Some(432));
    }

    #[test]
    fn certified_search_matches_unanchored_and_skips_the_top_probe() {
        // Same answer as the Option-returning search …
        let want = min_error_free_period(1, 1000, step_metric(437)).unwrap();
        let mut probes = Vec::new();
        let got = min_error_free_period_certified(1, 1000, |ts| {
            probes.push(ts);
            step_metric(437)(ts)
        });
        assert_eq!(got, want);
        // … without ever probing the certified anchor itself.
        assert!(!probes.contains(&1000), "anchor is proven, not simulated");
        // A tight certificate needs no probes at all.
        let mut n = 0;
        assert_eq!(
            min_error_free_period_certified(7, 7, |_| {
                n += 1;
                1.0
            }),
            7
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn returns_none_when_unreachable() {
        let got = min_period_within_budget(1, 10, 0.5, |_| 1.0);
        assert_eq!(got, None);
    }

    #[test]
    fn boundary_interval() {
        assert_eq!(min_error_free_period(5, 5, |_| 0.0), Some(5));
        assert_eq!(min_error_free_period(5, 5, |_| 1.0), None);
    }

    #[test]
    fn speedup_percent() {
        assert!((frequency_speedup_percent(110, 100) - 10.0).abs() < 1e-9);
        assert_eq!(frequency_speedup_percent(100, 100), 0.0);
        assert!(frequency_speedup_percent(90, 100) < 0.0);
    }

    #[test]
    fn grid_matches_table_headers() {
        let g = normalized_frequency_grid(1.05, 1.25, 0.05);
        assert_eq!(g, vec![1.05, 1.10, 1.15, 1.20, 1.25]);
    }
}
