//! The paper's probabilistic model of overclocking error (Section 3).
//!
//! A residual chain generated at stage `τ` with length `d(τ)` causes a
//! timing violation when sampled with stage budget `b < d(τ)` (Eqs. (5–7)).
//! Chain generation depends on the digit pair appended at `τ`
//! (cases `C1..C4`, Eq. (8), probabilities 1/9, 4/9, 2/9, 2/9 under
//! digit-uniform inputs); the chain's length equals the word length of the
//! residual it creates (Eqs. (9–10)), shrinking by one per stage until it
//! annihilates. A violated chain that would annihilate at stage
//! `λ = τ + d − 1` corrupts output digits `λ..N−1`, an error of magnitude
//! `≈ 2^-(λ+1)` (Eq. (11)); Algorithm 2 accumulates the scenario
//! probabilities and Eq. (12) combines them into the expected overclocking
//! error.
//!
//! Where the paper is ambiguous we chose the reading that matches the
//! stage-wave Monte-Carlo (see `DESIGN.md` §4 and the `model_verification`
//! experiment):
//!
//! * the `C3`/`C4` recursion is folded into a geometric distribution over
//!   the distance `k` to the most recent nonzero appended digit
//!   (`P(k) = (2/3)·(1/3)^{k-1}`), truncated at stage `−δ`;
//! * at `τ = −δ` only the both-digits-nonzero case generates a chain (we
//!   read the paper's "C(−δ) = C_1" as a typo for `C_2`);
//! * overlapping chains are treated independently; the violation
//!   probability offers both the union-bound and the independent-stage
//!   composition.

use ola_arith::online::DELTA;

/// One chain-generation scenario enumerated by the model.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct ChainScenario {
    /// Stage at which the chain is generated.
    pub tau: i32,
    /// Chain length in stages (= delay in units of μ).
    pub length: usize,
    /// Scenario probability under digit-uniform inputs.
    pub probability: f64,
}

impl ChainScenario {
    /// The stage at which this chain annihilates, `λ = τ + d − 1`.
    #[must_use]
    pub fn annihilation_stage(&self) -> i32 {
        self.tau + self.length as i32 - 1
    }

    /// The modelled error magnitude if this chain is cut off: digits
    /// `λ..N−1` may be wrong, dominated by digit `λ` of weight `2^-(λ+1)`
    /// (Eq. (11)).
    #[must_use]
    pub fn error_magnitude(&self) -> f64 {
        (-(self.annihilation_stage() as f64 + 1.0)).exp2()
    }
}

/// Enumerates every chain-generation scenario of an `n`-digit online
/// multiplier under digit-uniform inputs.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn chain_scenarios(n: usize) -> Vec<ChainScenario> {
    assert!(n > 0);
    let delta = DELTA as i32;
    let n_i = n as i32;
    let mut out = Vec::new();
    for tau in -delta..n_i {
        let cap = (n_i - 1 - tau).max(0) as usize; // Eq. (7): cannot pass stage N−1
        let word = (tau + 2 * delta + 1).max(0) as usize; // Eq. (9): D = τ+2δ+1
        if tau == -delta {
            // First stage: P[−δ+1] = 2^{−δ+1}·x₁·Y[−δ+1]; a chain needs both
            // first digits nonzero (probability 4/9).
            let d = word.min(cap);
            if d > 0 {
                out.push(ChainScenario { tau, length: d, probability: 4.0 / 9.0 });
            }
            continue;
        }
        // C2: both appended digits nonzero — maximum word length.
        let d = word.min(cap);
        if d > 0 {
            out.push(ChainScenario { tau, length: d, probability: 4.0 / 9.0 });
        }
        // C3/C4 (combined probability 4/9): one appended digit zero; the
        // live operand prefix is shorter by k, the distance to the most
        // recent nonzero digit of the zero side (geometric, truncated at the
        // operand MSD).
        let max_k = (tau + delta) as usize; // digits τ+δ … 1 can be zero
        for k in 1..=max_k {
            let p_k = (4.0 / 9.0) * (2.0 / 3.0) * (1.0f64 / 3.0).powi(k as i32 - 1);
            let d = word.saturating_sub(k).min(cap);
            if d > 0 {
                out.push(ChainScenario { tau, length: d, probability: p_k });
            }
        }
        // All previous digits zero → the prefix is zero → no chain.
    }
    out
}

/// Probability that *some* chain exceeds the stage budget `b` — Algorithm 2
/// with the union-bound composition (clamped at 1).
#[must_use]
pub fn violation_probability_union(n: usize, b: usize) -> f64 {
    let p: f64 = chain_scenarios(n).iter().filter(|s| s.length > b).map(|s| s.probability).sum();
    p.min(1.0)
}

/// Probability of a timing violation treating the per-stage chain events as
/// independent: `1 − Π (1 − p_τ(d > b))`.
#[must_use]
pub fn violation_probability_independent(n: usize, b: usize) -> f64 {
    let delta = DELTA as i32;
    let mut survive = 1.0f64;
    for tau in -delta..n as i32 {
        let p_tau: f64 = chain_scenarios(n)
            .iter()
            .filter(|s| s.tau == tau && s.length > b)
            .map(|s| s.probability)
            .sum();
        survive *= 1.0 - p_tau.min(1.0);
    }
    1.0 - survive
}

/// Eq. (12): the expected overclocking error at stage budget `b`,
/// `E_ovc = Σ_{d > b} P_d · ε_d`. `gamma` scales the per-digit error
/// magnitude (`E|z − z'|`, between 1 and 2; 1.0 by default — calibrated
/// against Monte-Carlo in the `model_verification` experiment).
#[must_use]
pub fn expected_error(n: usize, b: usize, gamma: f64) -> f64 {
    chain_scenarios(n)
        .iter()
        .filter(|s| s.length > b)
        .map(|s| s.probability * gamma * s.error_magnitude())
        .sum()
}

/// One point of the Figure-5 profile: chains of one specific delay.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize)]
pub struct ChainDelayPoint {
    /// Chain delay `d` in units of μ.
    pub delay: usize,
    /// Probability that a chain of exactly this delay is generated.
    pub probability: f64,
    /// Mean error magnitude of those chains when cut off.
    pub error_magnitude: f64,
}

impl ChainDelayPoint {
    /// The delay's contribution to the error expectation (probability ×
    /// magnitude) — the third curve of Figure 5.
    #[must_use]
    pub fn expectation(&self) -> f64 {
        self.probability * self.error_magnitude
    }
}

/// The per-delay profile of Figure 5: `P_d`, `ε_d` and their product for
/// every chain delay occurring in an `n`-digit multiplier.
#[must_use]
pub fn chain_delay_profile(n: usize) -> Vec<ChainDelayPoint> {
    let scenarios = chain_scenarios(n);
    let max_d = scenarios.iter().map(|s| s.length).max().unwrap_or(0);
    (1..=max_d)
        .map(|d| {
            let of_d: Vec<&ChainScenario> = scenarios.iter().filter(|s| s.length == d).collect();
            let probability: f64 = of_d.iter().map(|s| s.probability).sum();
            let error_magnitude = if probability > 0.0 {
                of_d.iter().map(|s| s.probability * s.error_magnitude()).sum::<f64>() / probability
            } else {
                0.0
            };
            ChainDelayPoint { delay: d, probability, error_magnitude }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_probabilities_are_plausible() {
        for s in chain_scenarios(8) {
            assert!(s.probability > 0.0 && s.probability <= 4.0 / 9.0);
            assert!(s.length >= 1);
            assert!(s.tau >= -(DELTA as i32) && s.tau < 8);
        }
    }

    #[test]
    fn chain_lengths_respect_both_bounds() {
        let delta = DELTA as i32;
        for s in chain_scenarios(12) {
            assert!(s.length as i32 <= s.tau + 2 * delta + 1, "word-length bound");
            assert!(s.length as i32 <= 12 - 1 - s.tau, "stage bound");
        }
    }

    #[test]
    fn longest_chain_matches_paper_worst_case() {
        // max_τ min(τ+2δ+1, N−1−τ) — the annihilation-aware critical path.
        for n in [8usize, 9, 12, 16, 32] {
            let max_len = chain_scenarios(n).iter().map(|s| s.length).max().unwrap();
            let expected = (-(DELTA as i32)..n as i32)
                .map(|t| ((t + 7).min(n as i32 - 1 - t)).max(0))
                .max()
                .unwrap() as usize;
            assert_eq!(max_len, expected, "n={n}");
        }
    }

    #[test]
    fn violation_probability_is_monotone_in_budget() {
        for n in [8usize, 12] {
            let mut last = f64::INFINITY;
            for b in 0..(n + DELTA) {
                let p = violation_probability_union(n, b);
                assert!(p <= last + 1e-12, "n={n} b={b}");
                assert!((0.0..=1.0).contains(&p));
                last = p;
            }
            // Sampling after the longest chain: no violations.
            assert_eq!(violation_probability_union(n, n + DELTA), 0.0);
        }
    }

    #[test]
    fn independent_composition_is_below_union() {
        for b in 0..10 {
            let u = violation_probability_union(12, b);
            let i = violation_probability_independent(12, b);
            assert!(i <= u + 1e-12, "b={b}: {i} > {u}");
            assert!((0.0..=1.0).contains(&i));
        }
    }

    #[test]
    fn expected_error_decreases_with_budget() {
        let mut last = f64::INFINITY;
        for b in 0..16 {
            let e = expected_error(12, b, 1.0);
            assert!(e <= last + 1e-15, "b={b}");
            assert!(e >= 0.0);
            last = e;
        }
    }

    #[test]
    fn error_magnitude_decays_exponentially_with_delay() {
        // Figure 5, middle curve: past its peak (short delays only arise
        // from late, low-weight stages), ε_d shrinks geometrically with d.
        let profile = chain_delay_profile(16);
        let eps: Vec<f64> = profile.iter().map(|p| p.error_magnitude).collect();
        let peak =
            eps.iter().enumerate().max_by(|a, b| a.1.total_cmp(b.1)).map(|(i, _)| i).unwrap();
        for w in eps[peak..].windows(2) {
            assert!(w[1] < w[0], "ε_d must decay past the peak: {eps:?}");
        }
        // And by a large overall factor.
        assert!(eps[peak] / *eps.last().unwrap() > 100.0);
    }

    #[test]
    fn per_delay_expectation_declines_for_long_chains() {
        // Figure 5's key observation: probability grows slower than the
        // magnitude shrinks, so the expectation falls for long chains.
        let profile = chain_delay_profile(16);
        let last = profile.last().unwrap();
        let mid = &profile[profile.len() / 2];
        assert!(last.expectation() < mid.expectation());
    }

    #[test]
    fn gamma_scales_linearly() {
        let e1 = expected_error(8, 4, 1.0);
        let e2 = expected_error(8, 4, 2.0);
        assert!((e2 - 2.0 * e1).abs() < 1e-15);
    }
}
