//! # Resilience: cancellation, degradation, and crash-safe artifacts.
//!
//! The paper's thesis is graceful degradation at the circuit level — an
//! overclocked online datapath loses accuracy smoothly instead of failing
//! catastrophically. This module applies the same principle at the system
//! level, for the multi-hour reproduction sweeps:
//!
//! * **Cooperative cancellation** — an *ambient* (thread-local)
//!   [`CancelToken`] that the sampling engines ([`crate::empirical`],
//!   [`crate::campaign`], [`crate::montecarlo`], [`crate::sweep`]) and the
//!   [`crate::parallel`] work-stealing pool poll between work units.
//!   Because most of those APIs are infallible by design, cancellation
//!   propagates as an unwind carrying the typed [`Cancelled`] payload
//!   ([`check_cancelled`]); the guard thread that owns the token catches
//!   the unwind and downcasts it back ([`is_cancel_payload`]) to tell an
//!   orderly stop from a genuine panic.
//! * **Graceful backend degradation** — [`compile_batch_or_degrade`]
//!   implements the policy *retry once, then fall back to the event
//!   engine*: a batch-compile failure is recorded (counter
//!   `ola.resilience.batch_degraded`, annotation
//!   `resilience.degraded.<context>`) instead of failing the experiment,
//!   which is sound because both backends are bit-identical.
//! * **Crash-safe artifacts** — [`atomic_write`] (write `<path>.tmp`,
//!   then rename) so no crash point leaves a truncated CSV/PGM/manifest,
//!   [`retry_io`] with bounded backoff for transient io errors, and the
//!   append-only SHA-256-framed [`checkpoint`] log that `repro --resume`
//!   replays.
//! * **Chaos hooks** — the [`chaos`] submodule reads `OLA_CHAOS_*`
//!   environment variables so the `chaos_check` harness can inject
//!   deterministic failures (forced degradation, torn frames, aborts,
//!   panics) into an otherwise-unmodified binary.

pub mod checkpoint;

pub use checkpoint::{open_resumable, read_frames, CheckpointWriter, ReadOutcome, CHAOS_EXIT};
pub use ola_netlist::{CancelToken, Cancelled};

use ola_netlist::batch::BatchProgram;
use ola_netlist::{BatchError, DelayModel, Netlist, SimError};
use std::cell::RefCell;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Error taxonomy

/// The crate-spanning resilience error: everything a guarded experiment
/// run can fail (or stop) with, in one typed enum.
#[derive(Debug)]
#[non_exhaustive]
pub enum ResilienceError {
    /// The run's [`CancelToken`] fired (wall-clock budget, user abort).
    Cancelled,
    /// A batch-engine failure that was *not* recoverable by degradation.
    Batch(BatchError),
    /// An event-simulation failure (oscillation past its budget, arity).
    Sim(SimError),
    /// An io failure that survived [`retry_io`]'s bounded retries.
    Io {
        /// What was being attempted (for the operator, not for matching).
        context: String,
        /// The final underlying error.
        source: io::Error,
    },
    /// A checkpoint frame failed validation (bad magic, digest mismatch,
    /// truncation, unparseable payload).
    CorruptFrame {
        /// The checkpoint file.
        path: PathBuf,
        /// Zero-based index of the first bad frame.
        frame: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for ResilienceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResilienceError::Cancelled => write!(f, "run cancelled"),
            ResilienceError::Batch(e) => write!(f, "batch backend failed: {e}"),
            ResilienceError::Sim(e) => write!(f, "event simulation failed: {e}"),
            ResilienceError::Io { context, source } => write!(f, "{context}: {source}"),
            ResilienceError::CorruptFrame { path, frame, reason } => {
                write!(f, "corrupt checkpoint frame {frame} in {}: {reason}", path.display())
            }
        }
    }
}

impl std::error::Error for ResilienceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResilienceError::Batch(e) => Some(e),
            ResilienceError::Sim(e) => Some(e),
            ResilienceError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<BatchError> for ResilienceError {
    fn from(e: BatchError) -> Self {
        match e {
            BatchError::Cancelled => ResilienceError::Cancelled,
            e => ResilienceError::Batch(e),
        }
    }
}

impl From<SimError> for ResilienceError {
    fn from(e: SimError) -> Self {
        match e {
            SimError::Cancelled => ResilienceError::Cancelled,
            e => ResilienceError::Sim(e),
        }
    }
}

impl From<Cancelled> for ResilienceError {
    fn from(_: Cancelled) -> Self {
        ResilienceError::Cancelled
    }
}

// ---------------------------------------------------------------------------
// Ambient cancellation

thread_local! {
    /// Stack of installed tokens; the innermost wins. A stack (not a slot)
    /// so nested guarded scopes restore their outer token on drop, and a
    /// thread-local (not a process global) so concurrently running tests
    /// cannot cancel each other.
    static AMBIENT: RefCell<Vec<CancelToken>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`install_ambient`]; uninstalls on drop.
#[must_use = "dropping the guard uninstalls the ambient token"]
pub struct AmbientGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for AmbientGuard {
    fn drop(&mut self) {
        AMBIENT.with(|a| a.borrow_mut().pop());
    }
}

/// Installs `token` as this thread's ambient cancellation token until the
/// returned guard drops. The [`crate::parallel`] pool re-installs the
/// spawning thread's ambient token inside each worker, so cancellation
/// reaches every fold of a parallel accumulation.
pub fn install_ambient(token: CancelToken) -> AmbientGuard {
    AMBIENT.with(|a| a.borrow_mut().push(token));
    AmbientGuard { _not_send: std::marker::PhantomData }
}

/// This thread's innermost ambient token, if one is installed.
#[must_use]
pub fn ambient_token() -> Option<CancelToken> {
    AMBIENT.with(|a| a.borrow().last().cloned())
}

/// True once the ambient token (if any) is cancelled.
#[must_use]
pub fn is_cancelled() -> bool {
    ambient_token().is_some_and(|t| t.is_cancelled())
}

/// Unwinds with the typed [`Cancelled`] payload if the ambient token is
/// cancelled — the cancellation point for infallible APIs. The guard that
/// installed the token catches the unwind and recognizes the payload via
/// [`is_cancel_payload`]; no other code observes it.
pub fn check_cancelled() {
    if is_cancelled() {
        std::panic::panic_any(Cancelled);
    }
}

/// True if a caught panic payload is the [`Cancelled`] signal (an orderly
/// cooperative stop), as opposed to a genuine panic.
#[must_use]
pub fn is_cancel_payload(payload: &(dyn std::any::Any + Send)) -> bool {
    payload.is::<Cancelled>()
}

// ---------------------------------------------------------------------------
// Graceful backend degradation

/// Compiles a [`BatchProgram`], applying the degradation policy on
/// failure: retry once, then return `None` — the caller's event-engine
/// fallback path runs instead, which is *correct* (backends are
/// bit-identical) just slower. A degradation is recorded in the metrics
/// registry (`ola.resilience.batch_degraded`) and as the manifest
/// annotation `resilience.degraded.<context>`, so the lineage of every
/// artifact produced on the fallback engine is visible.
///
/// Returns `None` without compiling when the delay model is not
/// batch-exact — choosing the event engine for a jittered model is
/// selection, not degradation, and is not recorded as one. The chaos hook
/// [`chaos::batch_fail_forced`] forces the degradation path for the chaos
/// harness.
pub fn compile_batch_or_degrade<M: DelayModel + ?Sized>(
    context: &str,
    netlist: &Netlist,
    delay: &M,
) -> Option<Arc<BatchProgram>> {
    if !delay.batch_exact() {
        return None;
    }
    if chaos::batch_fail_forced() {
        note_degraded(context, "forced by OLA_CHAOS_BATCH_FAIL");
        return None;
    }
    // Compiles go through the content-addressed memo: sweeps over the same
    // netlist + delay model levelize once and share the program. Failed
    // compiles are never cached, so the retry below really recompiles.
    match crate::memo::batch_program(netlist, delay) {
        Ok(p) => Some(p),
        Err(first) => {
            // Retry once before degrading. Compilation is deterministic
            // today, so the retry will fail identically — but the policy
            // (retry, then degrade, never abort) is uniform across every
            // batch failure mode, including future nondeterministic ones.
            crate::obs::registry().counter("ola.resilience.batch_retries").inc();
            match crate::memo::batch_program(netlist, delay) {
                Ok(p) => Some(p),
                Err(_) => {
                    note_degraded(context, &first.to_string());
                    None
                }
            }
        }
    }
}

/// Annotation-key prefix shared by every degradation record; the `repro`
/// driver scans experiment annotations for it to report the "completed
/// with degradation" outcome (exit code 4).
pub const DEGRADED_PREFIX: &str = "resilience.degraded.";

fn note_degraded(context: &str, reason: &str) {
    crate::obs::registry().counter("ola.resilience.batch_degraded").inc();
    crate::obs::annotate(format!("{DEGRADED_PREFIX}{context}"), reason);
}

// ---------------------------------------------------------------------------
// Crash-safe io

/// Attempts per [`retry_io`] call (1 initial + 2 retries).
pub const IO_ATTEMPTS: usize = 3;

fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `f`, retrying transient io errors (interrupted / would-block /
/// timed-out) up to [`IO_ATTEMPTS`] times with doubling backoff starting
/// at 10 ms. Non-transient errors fail immediately.
///
/// # Errors
///
/// [`ResilienceError::Io`] wrapping the last underlying error.
pub fn retry_io<T>(
    context: &str,
    mut f: impl FnMut() -> io::Result<T>,
) -> Result<T, ResilienceError> {
    let mut backoff = Duration::from_millis(10);
    for attempt in 1.. {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < IO_ATTEMPTS && is_transient(&e) => {
                crate::obs::registry().counter("ola.resilience.io_retries").inc();
                std::thread::sleep(backoff);
                backoff *= 2;
            }
            Err(e) => return Err(ResilienceError::Io { context: context.to_string(), source: e }),
        }
    }
    unreachable!("loop exits via return")
}

/// Writes `bytes` to `path` atomically: the content lands in a sibling
/// `<name>.tmp` first (created, written, fsynced), then renames over the
/// destination. A crash at any point leaves either the old file or the
/// new one — never a truncated hybrid for `manifest_check` to trip over.
///
/// # Errors
///
/// Propagates filesystem errors from the write or the rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut name = path.file_name().map(std::ffi::OsString::from).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "atomic_write needs a file name")
    })?;
    name.push(".tmp");
    let tmp = path.with_file_name(name);
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------------
// Chaos hooks

/// Deterministic failure injection for the chaos harness, driven by
/// `OLA_CHAOS_*` environment variables. All hooks default off; production
/// runs never set them. Reading the environment at each call keeps the
/// hooks honest about process-wide state (the variables are set before
/// spawn and never mutated mid-run).
pub mod chaos {
    /// Forces [`compile_batch_or_degrade`](super::compile_batch_or_degrade)
    /// down its degradation path (set to any non-empty value ≠ `0`).
    pub const BATCH_FAIL: &str = "OLA_CHAOS_BATCH_FAIL";
    /// Aborts the process (exit [`CHAOS_EXIT`](super::CHAOS_EXIT)) after
    /// this many checkpoint frames have been durably appended — a
    /// SIGKILL at a clean frame boundary.
    pub const ABORT_AFTER_FRAMES: &str = "OLA_CHAOS_ABORT_AFTER_FRAMES";
    /// Aborts the process mid-append of this (1-based) checkpoint frame,
    /// leaving half a frame on disk — a SIGKILL mid-write.
    pub const TORN_FRAME: &str = "OLA_CHAOS_TORN_FRAME";
    /// Names an experiment that must panic at its start — a synthetic
    /// crash inside experiment code.
    pub const PANIC: &str = "OLA_CHAOS_PANIC";
    /// Makes every `ola-serve` worker panic mid-request (set non-empty,
    /// ≠ `0`) — the request must become a 500 and the server must stay
    /// up.
    pub const SERVE_PANIC: &str = "OLA_CHAOS_SERVE_PANIC";
    /// Makes the content-addressed cache flip one byte of every payload
    /// it *stores* (set non-empty, ≠ `0`) — reads must detect the digest
    /// mismatch and recompute, never serve rot.
    pub const CACHE_TAMPER: &str = "OLA_CHAOS_CACHE_TAMPER";

    fn flag(var: &str) -> bool {
        std::env::var(var).is_ok_and(|v| !v.is_empty() && v != "0")
    }

    fn num(var: &str) -> Option<u64> {
        std::env::var(var).ok()?.trim().parse().ok()
    }

    /// True when [`BATCH_FAIL`] is set.
    #[must_use]
    pub fn batch_fail_forced() -> bool {
        flag(BATCH_FAIL)
    }

    /// The [`ABORT_AFTER_FRAMES`] threshold, if set.
    #[must_use]
    pub fn abort_after_frames() -> Option<u64> {
        num(ABORT_AFTER_FRAMES)
    }

    /// The [`TORN_FRAME`] index, if set.
    #[must_use]
    pub fn torn_frame() -> Option<u64> {
        num(TORN_FRAME)
    }

    /// The experiment named by [`PANIC`], if set.
    #[must_use]
    pub fn panic_target() -> Option<String> {
        std::env::var(PANIC).ok().filter(|v| !v.is_empty())
    }

    /// True when [`SERVE_PANIC`] is set.
    #[must_use]
    pub fn serve_panic_forced() -> bool {
        flag(SERVE_PANIC)
    }

    /// True when [`CACHE_TAMPER`] is set.
    #[must_use]
    pub fn cache_tamper_forced() -> bool {
        flag(CACHE_TAMPER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_tokens_nest_and_uninstall() {
        assert!(ambient_token().is_none());
        let outer = CancelToken::new();
        let g1 = install_ambient(outer.clone());
        assert!(!is_cancelled());
        {
            let inner = CancelToken::new();
            let _g2 = install_ambient(inner.clone());
            inner.cancel();
            assert!(is_cancelled(), "innermost token wins");
        }
        assert!(!is_cancelled(), "outer token restored after inner guard drops");
        outer.cancel();
        assert!(is_cancelled());
        drop(g1);
        assert!(ambient_token().is_none());
    }

    #[test]
    fn check_cancelled_unwinds_with_the_typed_payload() {
        let tok = CancelToken::new();
        let _g = install_ambient(tok.clone());
        check_cancelled(); // live token: no-op
        tok.cancel();
        let payload =
            std::panic::catch_unwind(check_cancelled).expect_err("must unwind once cancelled");
        assert!(is_cancel_payload(payload.as_ref()));
        assert!(!is_cancel_payload(Box::new("plain panic").as_ref()));
    }

    #[test]
    fn error_taxonomy_wraps_and_displays() {
        let e: ResilienceError = BatchError::Cancelled.into();
        assert!(matches!(e, ResilienceError::Cancelled));
        let e: ResilienceError = SimError::Cancelled.into();
        assert!(matches!(e, ResilienceError::Cancelled));
        let e: ResilienceError = BatchError::TooManyLanes { got: 99, cap: 64 }.into();
        assert!(e.to_string().contains("batch backend failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e: ResilienceError = SimError::Unsettled { events: 9, budget: 5 }.into();
        assert!(e.to_string().contains("event simulation failed"));
        let e =
            ResilienceError::Io { context: "writing x".into(), source: io::Error::other("boom") };
        assert!(e.to_string().contains("writing x"));
    }

    #[test]
    fn retry_io_retries_transient_and_fails_fast_on_hard_errors() {
        // Transient errors are retried up to the attempt budget.
        let mut calls = 0;
        let out: Result<u32, _> = retry_io("flaky", || {
            calls += 1;
            if calls < IO_ATTEMPTS {
                Err(io::Error::new(io::ErrorKind::Interrupted, "blip"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls, IO_ATTEMPTS);

        // Hard errors fail on the first attempt.
        let mut calls = 0;
        let out: Result<(), _> = retry_io("denied", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "nope"))
        });
        assert!(matches!(out, Err(ResilienceError::Io { .. })));
        assert_eq!(calls, 1);

        // Persistent transient errors exhaust the budget.
        let mut calls = 0;
        let out: Result<(), _> = retry_io("stuck", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::TimedOut, "still stuck"))
        });
        assert!(out.is_err());
        assert_eq!(calls, IO_ATTEMPTS);
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("ola_resilience_atomic_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second");
        assert!(!path.with_file_name("out.csv.tmp").exists(), "tmp renamed away");
        assert!(atomic_write(Path::new("/"), b"x").is_err(), "no file name");
    }

    #[test]
    fn degradation_policy_falls_back_and_annotates() {
        use ola_netlist::{Netlist, UnitDelay};
        let _lock =
            crate::obs::ANNOTATIONS_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut nl = Netlist::new();
        let a = nl.input("a");
        let b = nl.not(a);
        nl.set_output("z", vec![b]);

        // Healthy compile: no degradation recorded.
        let _ = crate::obs::take_annotations();
        assert!(compile_batch_or_degrade("test.ok", &nl, &UnitDelay).is_some());

        // Broken topology: retries once, then degrades with an annotation.
        let n1 = nl.and(a, b);
        nl.rewire_input(b, 0, n1).unwrap(); // cycle: batch compile must fail
        let before = crate::obs::registry().snapshot();
        assert!(compile_batch_or_degrade("test.broken", &nl, &UnitDelay).is_none());
        let notes = crate::obs::take_annotations();
        assert!(
            notes.iter().any(|(k, _)| k == "resilience.degraded.test.broken"),
            "degradation annotated: {notes:?}"
        );
        let delta = crate::obs::registry().snapshot().diff(&before);
        let get = |name: &str| delta.counters.get(name).copied().unwrap_or(0);
        assert_eq!(get("ola.resilience.batch_degraded"), 1);
        assert_eq!(get("ola.resilience.batch_retries"), 1);

        // Non-batch-exact delay models choose the event engine without
        // recording a degradation.
        use ola_netlist::JitteredDelay;
        let mut plain = Netlist::new();
        let x = plain.input("x");
        let y = plain.not(x);
        plain.set_output("z", vec![y]);
        assert!(compile_batch_or_degrade(
            "test.jitter",
            &plain,
            &JitteredDelay::new(ola_netlist::UnitDelay, 20, 1)
        )
        .is_none());
        // Annotations are process-global, so only assert our key is absent
        // (other tests may annotate concurrently).
        let notes = crate::obs::take_annotations();
        assert!(
            !notes.iter().any(|(k, _)| k.contains("test.jitter")),
            "selection is not degradation: {notes:?}"
        );
    }
}
