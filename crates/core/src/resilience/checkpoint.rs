//! Append-only, SHA-256-framed checkpoint files.
//!
//! An experiment run appends one frame per completed work unit; after a
//! crash (panic, `kill -9`, power loss) `repro --resume` replays the
//! valid frames and recomputes only the remainder. Because seeds and fold
//! order are deterministic, a resumed run's artifacts are bit-identical
//! to an uninterrupted run's — the property the chaos harness pins down.
//!
//! ## Frame layout (little-endian)
//!
//! ```text
//! magic    b"OLAC"      4 bytes
//! len      u32 LE       payload byte length
//! digest   32 bytes     SHA-256 of the payload
//! payload  len bytes    one compact JSON document (UTF-8)
//! ```
//!
//! Every [`CheckpointWriter::append`] writes the complete frame and
//! fsyncs before returning, so a frame is either durably whole or not
//! counted. Readers validate magic, length, digest, and JSON of each
//! frame in order; the first failure ends the *valid prefix*. Recovery
//! ([`open_resumable`]) copies a damaged file aside to
//! `<path>.quarantined` for post-mortems, truncates the original to the
//! valid prefix, and appends from there — tampered or torn frames are
//! never replayed.

use super::{chaos, retry_io, ResilienceError};
use crate::obs::json::{self, JsonValue};
use crate::obs::sha256::Sha256;
use std::fs;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Frame magic: "OLA Checkpoint".
pub const MAGIC: [u8; 4] = *b"OLAC";
/// Bytes before the payload: magic + length + digest.
pub const HEADER_LEN: usize = 4 + 4 + 32;

/// Exit code used by the chaos hooks when they abort the process
/// mid-run ([`chaos::ABORT_AFTER_FRAMES`], [`chaos::TORN_FRAME`]) —
/// distinct from every regular `repro` exit code so the harness can tell
/// an injected crash from a real failure.
pub const CHAOS_EXIT: i32 = 86;

/// The result of scanning a checkpoint file.
#[derive(Debug)]
pub struct ReadOutcome {
    /// Payloads of the valid frame prefix, in append order.
    pub frames: Vec<JsonValue>,
    /// Byte length of the valid prefix (a safe truncation point).
    pub valid_len: u64,
    /// Why the scan stopped before the end of the file, if it did.
    pub damage: Option<String>,
}

/// Scans `path`, validating frames in order. A missing file reads as
/// empty and undamaged; any malformed frame ends the valid prefix and is
/// reported in [`ReadOutcome::damage`] (it is *not* an error — recovery
/// from damage is the expected path after a crash).
///
/// # Errors
///
/// [`ResilienceError::Io`] if the file exists but cannot be read.
pub fn read_frames(path: &Path) -> Result<ReadOutcome, ResilienceError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(ReadOutcome { frames: Vec::new(), valid_len: 0, damage: None })
        }
        Err(e) => {
            return Err(ResilienceError::Io {
                context: format!("reading checkpoint {}", path.display()),
                source: e,
            })
        }
    };

    let mut frames = Vec::new();
    let mut off = 0usize;
    let damage = loop {
        if off == bytes.len() {
            break None;
        }
        let frame_no = frames.len();
        if bytes.len() - off < HEADER_LEN {
            break Some(format!("frame {frame_no}: truncated header"));
        }
        if bytes[off..off + 4] != MAGIC {
            break Some(format!("frame {frame_no}: bad magic"));
        }
        let len = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().expect("4 bytes")) as usize;
        if bytes.len() - off - HEADER_LEN < len {
            break Some(format!("frame {frame_no}: truncated payload"));
        }
        let payload = &bytes[off + HEADER_LEN..off + HEADER_LEN + len];
        let mut h = Sha256::new();
        h.update(payload);
        if h.finalize() != bytes[off + 8..off + 40] {
            break Some(format!("frame {frame_no}: digest mismatch"));
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break Some(format!("frame {frame_no}: payload is not UTF-8"));
        };
        let Ok(value) = json::parse(text) else {
            break Some(format!("frame {frame_no}: payload is not valid JSON"));
        };
        frames.push(value);
        off += HEADER_LEN + len;
    };
    Ok(ReadOutcome { frames, valid_len: off as u64, damage })
}

/// An append handle positioned at the end of a checkpoint file's valid
/// prefix. Every append is durable (fsync) before it returns.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: fs::File,
    path: PathBuf,
    frames: u64,
}

impl CheckpointWriter {
    /// Creates (or truncates) the checkpoint at `path`, creating parent
    /// directories as needed.
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] on filesystem failure.
    pub fn create(path: &Path) -> Result<CheckpointWriter, ResilienceError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                retry_io("creating checkpoint directory", || fs::create_dir_all(parent))?;
            }
        }
        let file = retry_io("creating checkpoint", || fs::File::create(path))?;
        Ok(CheckpointWriter { file, path: path.to_path_buf(), frames: 0 })
    }

    /// Number of frames this writer has durably appended (including the
    /// replayed prefix when opened via [`open_resumable`]).
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// The file this writer appends to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one frame and fsyncs. Honors the chaos hooks: a torn-frame
    /// injection writes half the frame and aborts the process; an
    /// abort-after-frames injection aborts after the fsync — both with
    /// exit code [`CHAOS_EXIT`].
    ///
    /// # Errors
    ///
    /// [`ResilienceError::Io`] if the write or fsync fails after retries.
    pub fn append(&mut self, payload: &JsonValue) -> Result<(), ResilienceError> {
        let body = payload.render().into_bytes();
        let mut frame = Vec::with_capacity(HEADER_LEN + body.len());
        frame.extend_from_slice(&MAGIC);
        frame.extend_from_slice(
            &u32::try_from(body.len()).expect("payloads are small").to_le_bytes(),
        );
        let mut h = Sha256::new();
        h.update(&body);
        frame.extend_from_slice(&h.finalize());
        frame.extend_from_slice(&body);

        let torn = chaos::torn_frame() == Some(self.frames + 1);
        if torn {
            frame.truncate(frame.len() / 2);
        }
        retry_io("appending checkpoint frame", || {
            self.file.write_all(&frame)?;
            self.file.sync_data()
        })?;
        if torn {
            eprintln!("[chaos] torn frame {} injected; aborting", self.frames + 1);
            std::process::exit(CHAOS_EXIT);
        }
        self.frames += 1;
        crate::obs::registry().counter("ola.resilience.frames_written").inc();
        if chaos::abort_after_frames() == Some(self.frames) {
            eprintln!("[chaos] aborting after {} durable frame(s)", self.frames);
            std::process::exit(CHAOS_EXIT);
        }
        Ok(())
    }
}

/// The quarantine destination for a damaged checkpoint.
#[must_use]
pub fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(std::ffi::OsString::from).unwrap_or_default();
    name.push(".quarantined");
    path.with_file_name(name)
}

/// Opens `path` for resumption: scans the valid frame prefix, and — if
/// the tail is damaged — copies the whole file to `<path>.quarantined`,
/// truncates the original back to the valid prefix, and records the
/// recovery (counter `ola.resilience.checkpoints_quarantined`, annotation
/// `resilience.quarantined`). The returned writer appends after the valid
/// prefix; the returned outcome carries the replayable frames.
///
/// # Errors
///
/// [`ResilienceError::Io`] on filesystem failure.
pub fn open_resumable(path: &Path) -> Result<(ReadOutcome, CheckpointWriter), ResilienceError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            retry_io("creating checkpoint directory", || fs::create_dir_all(parent))?;
        }
    }
    let outcome = read_frames(path)?;
    if let Some(reason) = &outcome.damage {
        let q = quarantine_path(path);
        retry_io("quarantining damaged checkpoint", || fs::copy(path, &q).map(|_| ()))?;
        crate::obs::registry().counter("ola.resilience.checkpoints_quarantined").inc();
        crate::obs::annotate("resilience.quarantined", format!("{} ({reason})", q.display()));
        eprintln!(
            "[resume] damaged checkpoint tail quarantined to {} ({reason}); \
             recomputing from frame {}",
            q.display(),
            outcome.frames.len()
        );
    }
    let mut file = retry_io("opening checkpoint for append", || {
        // No `truncate(true)`: the valid prefix must survive the open;
        // `set_len` below trims exactly the damaged tail.
        fs::OpenOptions::new().read(true).write(true).create(true).truncate(false).open(path)
    })?;
    retry_io("truncating checkpoint to its valid prefix", || file.set_len(outcome.valid_len))?;
    retry_io("seeking checkpoint end", || file.seek(SeekFrom::End(0)).map(|_| ()))?;
    let frames = outcome.frames.len() as u64;
    Ok((outcome, CheckpointWriter { file, path: path.to_path_buf(), frames }))
}

/// Reads the raw bytes of `path` (test/tooling helper for tamper
/// scenarios).
///
/// # Errors
///
/// [`ResilienceError::Io`] if the file cannot be read.
pub fn raw_bytes(path: &Path) -> Result<Vec<u8>, ResilienceError> {
    let mut buf = Vec::new();
    let mut f = retry_io("opening checkpoint", || fs::File::open(path))?;
    retry_io("reading checkpoint", || f.read_to_end(&mut buf).map(|_| ()))?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ola_checkpoint_tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.ckpt", std::process::id()))
    }

    fn frame(i: u64) -> JsonValue {
        JsonValue::Object(vec![
            ("kind".into(), JsonValue::str("table")),
            ("unit".into(), JsonValue::str(format!("unit-{i}"))),
            ("value".into(), JsonValue::U64(i * 37)),
        ])
    }

    #[test]
    fn round_trip_preserves_frames_in_order() {
        let path = tmp("round_trip");
        let mut w = CheckpointWriter::create(&path).unwrap();
        for i in 0..5 {
            w.append(&frame(i)).unwrap();
        }
        assert_eq!(w.frames(), 5);
        let out = read_frames(&path).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames, (0..5).map(frame).collect::<Vec<_>>());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_reads_as_empty() {
        let out = read_frames(Path::new("/nonexistent/ola.ckpt")).unwrap();
        assert!(out.frames.is_empty() && out.damage.is_none() && out.valid_len == 0);
    }

    #[test]
    fn truncation_at_every_byte_keeps_the_valid_prefix() {
        let path = tmp("truncate_all");
        let mut w = CheckpointWriter::create(&path).unwrap();
        for i in 0..3 {
            w.append(&frame(i)).unwrap();
        }
        drop(w);
        let full = fs::read(&path).unwrap();
        // Frame boundaries: prefix sums of frame byte lengths.
        let mut bounds = vec![0usize];
        {
            let mut off = 0usize;
            while off < full.len() {
                let len = u32::from_le_bytes(full[off + 4..off + 8].try_into().unwrap()) as usize;
                off += HEADER_LEN + len;
                bounds.push(off);
            }
        }
        for cut in 0..full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let out = read_frames(&path).unwrap();
            let whole = bounds.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(out.frames.len(), whole, "cut at {cut}");
            assert_eq!(out.valid_len as usize, bounds[whole], "cut at {cut}");
            assert_eq!(out.damage.is_some(), cut != bounds[whole], "cut at {cut}");
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn tampering_any_byte_is_detected_not_replayed() {
        let path = tmp("tamper");
        let mut w = CheckpointWriter::create(&path).unwrap();
        for i in 0..3 {
            w.append(&frame(i)).unwrap();
        }
        drop(w);
        let clean = fs::read(&path).unwrap();
        // Flip one byte in the middle frame's payload region.
        let len0 = u32::from_le_bytes(clean[4..8].try_into().unwrap()) as usize;
        let f1 = HEADER_LEN + len0;
        let mut dirty = clean.clone();
        dirty[f1 + HEADER_LEN + 2] ^= 0x40;
        fs::write(&path, &dirty).unwrap();
        let out = read_frames(&path).unwrap();
        assert_eq!(out.frames.len(), 1, "only the untampered prefix survives");
        assert!(out.damage.as_deref().unwrap().contains("digest mismatch"));
        // Recovery quarantines and truncates; appending then resumes cleanly.
        let (resumed, mut w2) = open_resumable(&path).unwrap();
        assert_eq!(resumed.frames.len(), 1);
        assert!(quarantine_path(&path).exists());
        w2.append(&frame(1)).unwrap();
        w2.append(&frame(2)).unwrap();
        drop(w2);
        let healed = read_frames(&path).unwrap();
        assert!(healed.damage.is_none());
        assert_eq!(healed.frames, (0..3).map(frame).collect::<Vec<_>>());
        assert_eq!(fs::read(&path).unwrap(), clean, "healed file is bit-identical");
        fs::remove_file(&path).unwrap();
        fs::remove_file(quarantine_path(&path)).unwrap();
    }

    #[test]
    fn resume_append_after_clean_shutdown_continues_the_log() {
        let path = tmp("resume_clean");
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.append(&frame(0)).unwrap();
        drop(w);
        let (out, mut w2) = open_resumable(&path).unwrap();
        assert!(out.damage.is_none());
        assert_eq!(out.frames.len(), 1);
        assert_eq!(w2.frames(), 1);
        w2.append(&frame(1)).unwrap();
        drop(w2);
        let all = read_frames(&path).unwrap();
        assert_eq!(all.frames, vec![frame(0), frame(1)]);
        assert!(!quarantine_path(&path).exists(), "clean logs are not quarantined");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bad_magic_ends_the_prefix() {
        let path = tmp("bad_magic");
        let mut w = CheckpointWriter::create(&path).unwrap();
        w.append(&frame(0)).unwrap();
        drop(w);
        let mut bytes = fs::read(&path).unwrap();
        let end = bytes.len();
        bytes.extend_from_slice(b"GARBAGEGARBAGEGARBAGEGARBAGEGARBAGEGARBAGE");
        fs::write(&path, &bytes).unwrap();
        let out = read_frames(&path).unwrap();
        assert_eq!(out.frames.len(), 1);
        assert_eq!(out.valid_len as usize, end);
        assert!(out.damage.as_deref().unwrap().contains("bad magic"));
        fs::remove_file(&path).unwrap();
    }
}
