//! Property-based tests for the signed-digit number system.

use ola_redundant::{BsVector, Digit, OnTheFlyConverter, SdNumber, Q};
use proptest::prelude::*;

fn digit_strategy() -> impl Strategy<Value = Digit> {
    prop_oneof![Just(Digit::NegOne), Just(Digit::Zero), Just(Digit::One),]
}

fn sd_strategy(max_len: usize) -> impl Strategy<Value = SdNumber> {
    prop::collection::vec(digit_strategy(), 1..=max_len).prop_map(SdNumber::new)
}

fn q_strategy() -> impl Strategy<Value = Q> {
    (-(1i128 << 40)..(1i128 << 40), 0u32..40).prop_map(|(n, s)| Q::new(n, s))
}

proptest! {
    #[test]
    fn q_addition_is_commutative_and_associative(a in q_strategy(), b in q_strategy(), c in q_strategy()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn q_multiplication_distributes(a in q_strategy(), b in q_strategy(), c in q_strategy()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn q_sub_is_add_neg(a in q_strategy(), b in q_strategy()) {
        prop_assert_eq!(a - b, a + (-b));
        prop_assert_eq!(a - a, Q::ZERO);
    }

    #[test]
    fn q_shifts_invert(a in q_strategy(), k in 0u32..30) {
        prop_assert_eq!((a >> k) << k, a);
    }

    #[test]
    fn q_ordering_matches_f64(a in q_strategy(), b in q_strategy()) {
        // f64 is exact for these magnitudes (< 2^40 over ≤ 40 bits scale is
        // not exact in general, so only check when values differ clearly).
        if (a.to_f64() - b.to_f64()).abs() > 1e-6 {
            prop_assert_eq!(a < b, a.to_f64() < b.to_f64());
        }
    }

    #[test]
    fn sd_value_round_trips_via_canonical(x in sd_strategy(24)) {
        let c = x.to_canonical();
        prop_assert_eq!(c.value(), x.value());
        prop_assert_eq!(c.len(), x.len());
        // Canonicalizing twice is idempotent.
        prop_assert_eq!(c.to_canonical(), c);
    }

    #[test]
    fn sd_from_value_is_exact(v in -1000i128..=1000, n in 10usize..=20) {
        let q = Q::new(v, n as u32);
        let x = SdNumber::from_value(q, n).expect("in range");
        prop_assert_eq!(x.value(), q);
    }

    #[test]
    fn sd_negation_is_involutive(x in sd_strategy(24)) {
        prop_assert_eq!(x.negated().negated(), x.clone());
        prop_assert_eq!(x.negated().value(), -x.value());
    }

    #[test]
    fn sd_prefix_values_are_monotone_refinements(x in sd_strategy(16)) {
        // |X - X_[k]| ≤ 2^-k: prefixes converge geometrically.
        let full = x.value();
        for k in 0..=x.len() {
            let err = (full - x.prefix_value(k)).abs();
            prop_assert!(err <= Q::pow2_neg(k as u32));
        }
    }

    #[test]
    fn bs_round_trip_preserves_value(x in sd_strategy(20)) {
        let b = BsVector::from_sd(&x);
        prop_assert_eq!(b.value(), x.value());
        prop_assert_eq!(b.negated().value(), -x.value());
        prop_assert_eq!(b.shifted(3).value(), x.value() << 3);
        prop_assert_eq!(b.shifted(-2).value(), x.value() >> 2);
    }

    #[test]
    fn bs_rewindow_is_lossless_when_it_fits(x in sd_strategy(12), pad in 0i32..4) {
        let b = BsVector::from_sd(&x);
        let msd = b.msd_pos() - pad;
        let len = b.len() + 2 * pad as usize;
        prop_assert!(b.fits_window(msd, len));
        prop_assert_eq!(b.rewindowed(msd, len).value(), b.value());
    }

    #[test]
    fn otfc_matches_direct_value(x in sd_strategy(30)) {
        let v = OnTheFlyConverter::convert(x.iter());
        prop_assert_eq!(v, x.value());
    }

    #[test]
    fn digit_encoding_round_trips(d in digit_strategy()) {
        let (p, n) = d.to_bits();
        prop_assert_eq!(Digit::from_bits(p, n), d);
        prop_assert!(!(p && n), "canonical encoding never sets both bits");
    }
}
