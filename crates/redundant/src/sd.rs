//! Fractional signed-digit numbers.

use crate::{Digit, Q};
use std::fmt;
use std::ops::Neg;

/// A fixed-point radix-2 signed-digit number with `N` fractional digits.
///
/// Digit `i` (1-indexed, as in Eq. (1) of the paper) has weight `2^-i`, so an
/// `N`-digit number represents any multiple of `2^-N` in
/// `[-(1 - 2^-N), 1 - 2^-N]`. The representation is *redundant*: most values
/// have several encodings (e.g. `0.111`, `0.101̄1` and `0.101̄1̄`… all differ
/// only in encoding). [`SdNumber::value`] is always exact.
///
/// # Examples
///
/// ```
/// use ola_redundant::{Digit, Q, SdNumber};
///
/// // 0.1 0 1̄ = 1/2 - 1/8 = 3/8
/// let x = SdNumber::new(vec![Digit::One, Digit::Zero, Digit::NegOne]);
/// assert_eq!(x.value(), Q::new(3, 3));
///
/// // Same value, different encoding.
/// let y = SdNumber::from_value(Q::new(3, 3), 3)?;
/// assert_eq!(x.value(), y.value());
/// # Ok::<(), ola_redundant::RangeError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct SdNumber {
    digits: Vec<Digit>,
}

/// Error returned when a value does not fit the representable range or
/// granularity of an `N`-digit signed-digit number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RangeError {
    /// The value that failed to convert.
    pub value: Q,
    /// The number of digits that were available.
    pub digits: usize,
}

impl fmt::Display for RangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not representable with {} signed digits", self.value, self.digits)
    }
}

impl std::error::Error for RangeError {}

impl SdNumber {
    /// Creates a number from its digit vector (`digits[0]` is the MSD, weight
    /// `2^-1`).
    #[must_use]
    pub fn new(digits: Vec<Digit>) -> Self {
        SdNumber { digits }
    }

    /// The `n`-digit zero.
    #[must_use]
    pub fn zero(n: usize) -> Self {
        SdNumber { digits: vec![Digit::Zero; n] }
    }

    /// Number of digits `N`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// True if the number has no digits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// The digits, MSD first.
    #[must_use]
    pub fn digits(&self) -> &[Digit] {
        &self.digits
    }

    /// Digit at 1-indexed position `i` (weight `2^-i`), or `Digit::Zero` when
    /// `i` is outside `1..=N`. The zero-extension mirrors the appending logic
    /// of the digit-parallel operators, which consume zeros past the LSD.
    #[must_use]
    pub fn digit(&self, i: usize) -> Digit {
        if i == 0 {
            return Digit::Zero;
        }
        self.digits.get(i - 1).copied().unwrap_or(Digit::Zero)
    }

    /// The exact value `Σ digits[i-1] · 2^-i`.
    #[must_use]
    pub fn value(&self) -> Q {
        let mut acc: i128 = 0;
        for &d in &self.digits {
            acc = (acc << 1) + i128::from(d.value());
        }
        Q::new(acc, self.digits.len() as u32)
    }

    /// The online prefix value `X_{[j]} = Σ_{i=1}^{k} x_i 2^-i` of the first
    /// `k` digits (Eq. (1)). `k` may exceed `N`; extra digits are zero.
    #[must_use]
    pub fn prefix_value(&self, k: usize) -> Q {
        let k = k.min(self.digits.len());
        let mut acc: i128 = 0;
        for &d in &self.digits[..k] {
            acc = (acc << 1) + i128::from(d.value());
        }
        Q::new(acc, k as u32)
    }

    /// Encodes an exact value into `n` signed digits, MSD-first greedy.
    ///
    /// The returned encoding is the *canonical borrow-free* one produced by
    /// rounding the remainder at each position.
    ///
    /// # Errors
    ///
    /// Returns [`RangeError`] if `value` is not a multiple of `2^-n` or lies
    /// outside `[-(1 - 2^-n), 1 - 2^-n]`.
    pub fn from_value(value: Q, n: usize) -> Result<Self, RangeError> {
        let err = || RangeError { value, digits: n };
        let scaled = value.scaled_to(n as u32).ok_or_else(err)?;
        let limit = (1i128 << n) - 1;
        if scaled.abs() > limit {
            return Err(err());
        }
        let mut digits = Vec::with_capacity(n);
        let mut rem = scaled; // remainder over denominator 2^n
        for i in 1..=n {
            let w = 1i128 << (n - i); // weight of digit i over 2^n
            let d = if 2 * rem >= w {
                Digit::One
            } else if 2 * rem <= -w {
                Digit::NegOne
            } else {
                Digit::Zero
            };
            rem -= i128::from(d.value()) * w;
            digits.push(d);
        }
        debug_assert_eq!(rem, 0, "greedy SD recoding must terminate exactly");
        Ok(SdNumber { digits })
    }

    /// Re-encodes to the canonical form of the same value and width.
    #[must_use]
    pub fn to_canonical(&self) -> Self {
        SdNumber::from_value(self.value(), self.len())
            .expect("every SD number's value is representable at its own width")
    }

    /// True if `self` and `other` denote the same value (possibly through
    /// different digit encodings).
    #[must_use]
    pub fn value_eq(&self, other: &SdNumber) -> bool {
        self.value() == other.value()
    }

    /// The number with every digit negated (exact negation).
    #[must_use]
    pub fn negated(&self) -> Self {
        SdNumber { digits: self.digits.iter().map(|&d| -d).collect() }
    }

    /// Widens (or truncates) to `n` digits. Truncation drops LSDs and loses
    /// their value contribution.
    #[must_use]
    pub fn resized(&self, n: usize) -> Self {
        let mut digits = self.digits.clone();
        digits.resize(n, Digit::Zero);
        SdNumber { digits }
    }

    /// Iterates over digits MSD first.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Digit>> {
        self.digits.iter().copied()
    }
}

impl Neg for SdNumber {
    type Output = SdNumber;
    fn neg(self) -> SdNumber {
        self.negated()
    }
}

impl Neg for &SdNumber {
    type Output = SdNumber;
    fn neg(self) -> SdNumber {
        self.negated()
    }
}

impl FromIterator<Digit> for SdNumber {
    fn from_iter<T: IntoIterator<Item = Digit>>(iter: T) -> Self {
        SdNumber { digits: iter.into_iter().collect() }
    }
}

impl<'a> IntoIterator for &'a SdNumber {
    type Item = Digit;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Digit>>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl fmt::Debug for SdNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SdNumber({self} = {})", self.value())
    }
}

impl fmt::Display for SdNumber {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("0.")?;
        for d in &self.digits {
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sd(digits: &[i8]) -> SdNumber {
        digits.iter().map(|&d| Digit::try_from(d).unwrap()).collect()
    }

    #[test]
    fn value_of_simple_encodings() {
        assert_eq!(sd(&[1, 0, -1]).value(), Q::new(3, 3));
        assert_eq!(sd(&[1, 1, 1]).value(), Q::new(7, 3));
        assert_eq!(sd(&[-1, -1, -1]).value(), Q::new(-7, 3));
        assert_eq!(SdNumber::zero(5).value(), Q::ZERO);
    }

    #[test]
    fn redundant_encodings_share_a_value() {
        // 0.111 == 0.101̄ is false; the paper's example: 0.111 = 0.10 1̄ is for
        // 7/8 vs 3/8 — verify actual redundancy instead: 1 0 -1 == 0 1 1.
        assert_eq!(sd(&[1, 0, -1]).value(), sd(&[0, 1, 1]).value());
        assert!(sd(&[1, 0, -1]).value_eq(&sd(&[0, 1, 1])));
    }

    #[test]
    fn from_value_round_trips_exhaustively() {
        for n in 1..=8usize {
            let limit = (1i128 << n) - 1;
            for v in -limit..=limit {
                let q = Q::new(v, n as u32);
                let x = SdNumber::from_value(q, n).unwrap();
                assert_eq!(x.value(), q, "n={n} v={v}");
                assert_eq!(x.len(), n);
            }
        }
    }

    #[test]
    fn from_value_rejects_out_of_range() {
        assert!(SdNumber::from_value(Q::ONE, 4).is_err());
        assert!(SdNumber::from_value(Q::new(-1, 0), 4).is_err());
        assert!(SdNumber::from_value(Q::new(1, 5), 4).is_err()); // too fine
        let e = SdNumber::from_value(Q::ONE, 4).unwrap_err();
        assert_eq!(e.digits, 4);
        assert!(e.to_string().contains("4 signed digits"));
    }

    #[test]
    fn canonicalization_preserves_value() {
        let x = sd(&[1, 1, 1, 1]);
        let c = x.to_canonical();
        assert_eq!(c.value(), x.value());
        // Canonical form of 15/16 is 1.0 0 0 -1 … but we only have fractional
        // digits, so it is the greedy encoding 1, 0, 0, 1 → check exactness only.
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn negation_negates_value() {
        let x = sd(&[1, 0, -1, 1]);
        assert_eq!((-&x).value(), -x.value());
    }

    #[test]
    fn prefix_values_follow_equation_one() {
        let x = sd(&[1, -1, 0, 1]);
        assert_eq!(x.prefix_value(0), Q::ZERO);
        assert_eq!(x.prefix_value(1), Q::new(1, 1));
        assert_eq!(x.prefix_value(2), Q::new(1, 2));
        assert_eq!(x.prefix_value(4), x.value());
        assert_eq!(x.prefix_value(9), x.value());
    }

    #[test]
    fn digit_accessor_is_one_indexed_and_zero_extended() {
        let x = sd(&[1, -1]);
        assert_eq!(x.digit(0), Digit::Zero);
        assert_eq!(x.digit(1), Digit::One);
        assert_eq!(x.digit(2), Digit::NegOne);
        assert_eq!(x.digit(3), Digit::Zero);
    }

    #[test]
    fn resize_preserves_prefix() {
        let x = sd(&[1, -1, 1]);
        let wide = x.resized(6);
        assert_eq!(wide.len(), 6);
        assert_eq!(wide.value(), x.value());
        let narrow = x.resized(2);
        assert_eq!(narrow.value(), Q::new(1, 2));
    }

    #[test]
    fn display_formats_digits() {
        assert_eq!(sd(&[1, 0]).to_string(), "0.10");
    }
}
