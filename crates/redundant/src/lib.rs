//! # ola-redundant — radix-2 signed-digit number system
//!
//! Substrate crate for the `ola` workspace (a reproduction of *"Datapath
//! Synthesis for Overclocking: Online Arithmetic for Latency-Accuracy
//! Trade-offs"*, DAC 2014). It provides the redundant number system on
//! which online (most-significant-digit-first) arithmetic is built:
//!
//! * [`Digit`] — the radix-2 redundant digit set {−1, 0, 1};
//! * [`SdNumber`] — fractional signed-digit numbers with exact values;
//! * [`BsVector`] — the borrow-save `(p, n)` bit-pair encoding used by
//!   hardware datapaths, with arbitrary weight windows;
//! * [`Q`] — exact dyadic rationals (`num / 2^scale`), so every datapath
//!   value is represented without rounding;
//! * [`OnTheFlyConverter`] — carry-free MSD-first conversion back to
//!   non-redundant form;
//! * [`random`] — the input distributions used by the paper's experiments;
//! * [`radix4`] — the maximally redundant radix-4 system with carry-free
//!   (Avizienis) addition, the paper's higher-radix outlook.
//!
//! # Example
//!
//! ```
//! use ola_redundant::{Digit, Q, SdNumber};
//!
//! // 3/8 has several redundant encodings; values compare exactly.
//! let a = SdNumber::new(vec![Digit::One, Digit::Zero, Digit::NegOne]);
//! let b = SdNumber::from_value(Q::new(3, 3), 3)?;
//! assert!(a.value_eq(&b));
//! # Ok::<(), ola_redundant::RangeError>(())
//! ```

mod bs;
mod convert;
mod digit;
mod q;
pub mod radix4;
pub mod random;
mod sd;

pub use bs::BsVector;
pub use convert::OnTheFlyConverter;
pub use digit::{Digit, DigitRangeError};
pub use q::Q;
pub use sd::{RangeError, SdNumber};
