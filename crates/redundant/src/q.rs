//! Exact dyadic rationals: values of the form `num / 2^scale`.
//!
//! Every quantity flowing through an online-arithmetic datapath is a dyadic
//! rational (a finite binary fraction), so [`Q`] can represent datapath
//! values *exactly*. All comparisons and arithmetic are integer-exact;
//! floating point only appears at the reporting boundary via [`Q::to_f64`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Shl, Shr, Sub, SubAssign};

/// An exact dyadic rational `num / 2^scale`.
///
/// The representation is kept normalized: `num` is odd or zero, and zero is
/// always stored as `0 / 2^0`. This keeps `scale` small so products never
/// overflow `i128` for the word lengths used in this workspace (≤ 64 digits).
///
/// # Examples
///
/// ```
/// use ola_redundant::Q;
///
/// let half = Q::new(1, 1);      // 1 / 2^1
/// let quarter = Q::new(1, 2);   // 1 / 2^2
/// assert_eq!(half + quarter, Q::new(3, 2));
/// assert_eq!(half * quarter, Q::new(1, 3));
/// assert!(half > quarter);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Q {
    num: i128,
    scale: u32,
}

impl Q {
    /// The value zero.
    pub const ZERO: Q = Q { num: 0, scale: 0 };
    /// The value one.
    pub const ONE: Q = Q { num: 1, scale: 0 };

    /// Creates the exact value `num / 2^scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale > 120` (guards against overflow in later products).
    #[must_use]
    pub fn new(num: i128, scale: u32) -> Self {
        assert!(scale <= 120, "Q scale {scale} too large");
        Q { num, scale }.normalized()
    }

    /// Creates an integer value.
    #[must_use]
    pub fn from_int(v: i64) -> Self {
        Q::new(i128::from(v), 0)
    }

    /// The exact value `2^-k`.
    #[must_use]
    pub fn pow2_neg(k: u32) -> Self {
        Q::new(1, k)
    }

    /// Numerator after normalization (odd or zero).
    #[must_use]
    pub fn numerator(self) -> i128 {
        self.num
    }

    /// Power-of-two denominator exponent after normalization.
    #[must_use]
    pub fn scale(self) -> u32 {
        self.scale
    }

    /// Returns the numerator when the value is expressed over denominator
    /// `2^scale`, or `None` if the value is not representable at that scale.
    ///
    /// ```
    /// use ola_redundant::Q;
    /// assert_eq!(Q::new(3, 2).scaled_to(4), Some(12)); // 3/4 == 12/16
    /// assert_eq!(Q::new(1, 3).scaled_to(2), None);     // 1/8 not a multiple of 1/4
    /// ```
    #[must_use]
    pub fn scaled_to(self, scale: u32) -> Option<i128> {
        if scale >= self.scale {
            self.num.checked_shl(scale - self.scale)
        } else {
            let shift = self.scale - scale;
            if self.num.trailing_zeros() >= shift || self.num == 0 {
                Some(self.num >> shift)
            } else {
                None
            }
        }
    }

    /// True if the value is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Sign of the value: −1, 0 or 1.
    #[must_use]
    pub fn signum(self) -> i32 {
        self.num.signum() as i32
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(self) -> Self {
        Q { num: self.num.abs(), scale: self.scale }
    }

    /// Converts to `f64` (inexact for very fine scales; reporting only).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.num as f64 / (self.scale as f64).exp2()
    }

    /// Compares against the exact value `num / 2^scale` without constructing
    /// an intermediate `Q`.
    #[must_use]
    pub fn cmp_frac(self, num: i128, scale: u32) -> Ordering {
        cmp_aligned(self.num, self.scale, num, scale)
    }

    fn normalized(mut self) -> Self {
        if self.num == 0 {
            return Q::ZERO;
        }
        let tz = self.num.trailing_zeros().min(self.scale);
        self.num >>= tz;
        self.scale -= tz;
        self
    }
}

fn cmp_aligned(an: i128, asc: u32, bn: i128, bsc: u32) -> Ordering {
    let common = asc.max(bsc);
    let a = an << (common - asc);
    let b = bn << (common - bsc);
    a.cmp(&b)
}

impl Default for Q {
    fn default() -> Self {
        Q::ZERO
    }
}

impl fmt::Debug for Q {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q({}/2^{})", self.num, self.scale)
    }
}

impl fmt::Display for Q {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl PartialOrd for Q {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Q {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_aligned(self.num, self.scale, other.num, other.scale)
    }
}

impl Add for Q {
    type Output = Q;
    fn add(self, rhs: Q) -> Q {
        let scale = self.scale.max(rhs.scale);
        let a = self.num << (scale - self.scale);
        let b = rhs.num << (scale - rhs.scale);
        Q { num: a + b, scale }.normalized()
    }
}

impl AddAssign for Q {
    fn add_assign(&mut self, rhs: Q) {
        *self = *self + rhs;
    }
}

impl Sub for Q {
    type Output = Q;
    fn sub(self, rhs: Q) -> Q {
        self + (-rhs)
    }
}

impl SubAssign for Q {
    fn sub_assign(&mut self, rhs: Q) {
        *self = *self - rhs;
    }
}

impl Neg for Q {
    type Output = Q;
    fn neg(self) -> Q {
        Q { num: -self.num, scale: self.scale }
    }
}

impl Mul for Q {
    type Output = Q;
    fn mul(self, rhs: Q) -> Q {
        Q { num: self.num * rhs.num, scale: self.scale + rhs.scale }.normalized()
    }
}

impl Mul<i64> for Q {
    type Output = Q;
    fn mul(self, rhs: i64) -> Q {
        Q { num: self.num * i128::from(rhs), scale: self.scale }.normalized()
    }
}

/// Multiplication by `2^rhs`.
impl Shl<u32> for Q {
    type Output = Q;
    fn shl(self, rhs: u32) -> Q {
        if self.num == 0 {
            return Q::ZERO;
        }
        if rhs >= self.scale {
            Q { num: self.num << (rhs - self.scale), scale: 0 }
        } else {
            Q { num: self.num, scale: self.scale - rhs }
        }
    }
}

/// Division by `2^rhs` (exact: increases the scale).
impl Shr<u32> for Q {
    type Output = Q;
    fn shr(self, rhs: u32) -> Q {
        if self.num == 0 {
            return Q::ZERO;
        }
        Q::new(self.num, self.scale + rhs)
    }
}

impl From<i64> for Q {
    fn from(v: i64) -> Self {
        Q::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_canonical() {
        assert_eq!(Q::new(0, 17), Q::ZERO);
        assert!(Q::new(0, 3).is_zero());
        assert_eq!(Q::default(), Q::ZERO);
    }

    #[test]
    fn normalization_reduces_even_numerators() {
        let q = Q::new(8, 5); // 8/32 = 1/4
        assert_eq!(q.numerator(), 1);
        assert_eq!(q.scale(), 2);
        assert_eq!(q, Q::new(1, 2));
    }

    #[test]
    fn add_aligns_scales() {
        assert_eq!(Q::new(1, 1) + Q::new(1, 3), Q::new(5, 3));
        assert_eq!(Q::new(1, 1) + Q::new(-1, 1), Q::ZERO);
        assert_eq!(Q::from_int(3) + Q::new(1, 2), Q::new(13, 2));
    }

    #[test]
    fn sub_and_neg() {
        assert_eq!(Q::new(3, 2) - Q::new(1, 2), Q::new(1, 1));
        assert_eq!(-Q::new(3, 2), Q::new(-3, 2));
        assert_eq!(Q::new(3, 2) - Q::new(3, 2), Q::ZERO);
    }

    #[test]
    fn mul_is_exact() {
        assert_eq!(Q::new(3, 2) * Q::new(5, 3), Q::new(15, 5));
        assert_eq!(Q::new(-1, 1) * Q::new(1, 1), Q::new(-1, 2));
        assert_eq!(Q::from_int(4) * Q::new(1, 2), Q::ONE);
    }

    #[test]
    fn shifts() {
        assert_eq!(Q::new(1, 3) << 3, Q::ONE);
        assert_eq!(Q::new(1, 3) << 5, Q::from_int(4));
        assert_eq!(Q::ONE >> 4, Q::new(1, 4));
        assert_eq!(Q::ZERO << 7, Q::ZERO);
        assert_eq!(Q::ZERO >> 7, Q::ZERO);
    }

    #[test]
    fn ordering_is_value_based() {
        assert!(Q::new(1, 1) > Q::new(1, 2));
        assert!(Q::new(-1, 1) < Q::ZERO);
        assert_eq!(Q::new(2, 2).cmp(&Q::new(1, 1)), Ordering::Equal);
        assert_eq!(Q::new(1, 1).cmp_frac(1, 1), Ordering::Equal);
        assert_eq!(Q::new(1, 2).cmp_frac(1, 1), Ordering::Less);
    }

    #[test]
    fn scaled_to_round_trips() {
        assert_eq!(Q::new(3, 2).scaled_to(4), Some(12));
        assert_eq!(Q::new(1, 3).scaled_to(2), None);
        assert_eq!(Q::ZERO.scaled_to(10), Some(0));
        assert_eq!(Q::new(-5, 3).scaled_to(3), Some(-5));
    }

    #[test]
    fn to_f64_matches() {
        assert_eq!(Q::new(1, 1).to_f64(), 0.5);
        assert_eq!(Q::new(-3, 2).to_f64(), -0.75);
    }

    #[test]
    fn abs_and_signum() {
        assert_eq!(Q::new(-3, 2).abs(), Q::new(3, 2));
        assert_eq!(Q::new(-3, 2).signum(), -1);
        assert_eq!(Q::ZERO.signum(), 0);
        assert_eq!(Q::new(3, 2).signum(), 1);
    }
}
