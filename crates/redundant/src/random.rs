//! Random generation of signed-digit operands.
//!
//! The paper's probabilistic model assumes "every digit of each input is
//! uniformly and independently generated with the digit set {−1, 0, 1}"
//! ([`uniform_digits`]); its experiments also use operands drawn uniformly
//! by *value* ([`uniform_value`], the "Uniform Independent inputs").

use crate::{Digit, SdNumber, Q};
use rand::Rng;

/// Draws an `n`-digit number whose digits are i.i.d. uniform over {−1, 0, 1}.
///
/// This is the input model of the paper's Section 3 (each digit pattern
/// `C1..C4` then has probability 1/9, 4/9, 2/9, 2/9).
pub fn uniform_digits<R: Rng + ?Sized>(rng: &mut R, n: usize) -> SdNumber {
    (0..n)
        .map(|_| match rng.gen_range(0..3u8) {
            0 => Digit::NegOne,
            1 => Digit::Zero,
            _ => Digit::One,
        })
        .collect()
}

/// Draws a number uniformly by *value* over all multiples of `2^-n` in
/// `[-(1 - 2^-n), 1 - 2^-n]`, in canonical encoding.
pub fn uniform_value<R: Rng + ?Sized>(rng: &mut R, n: usize) -> SdNumber {
    let limit = (1i128 << n) - 1;
    let v = rng.gen_range(-limit..=limit);
    SdNumber::from_value(Q::new(v, n as u32), n)
        .expect("sampled value is representable by construction")
}

/// Draws a *non-negative* value uniformly over multiples of `2^-n` in
/// `[0, 1 - 2^-n]` — the distribution of normalized image pixels.
pub fn uniform_nonneg_value<R: Rng + ?Sized>(rng: &mut R, n: usize) -> SdNumber {
    let limit = (1i128 << n) - 1;
    let v = rng.gen_range(0..=limit);
    SdNumber::from_value(Q::new(v, n as u32), n)
        .expect("sampled value is representable by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn uniform_digits_covers_all_digits() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut seen = [false; 3];
        for _ in 0..100 {
            for d in &uniform_digits(&mut rng, 8) {
                seen[(d.value() + 1) as usize] = true;
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn uniform_digit_frequencies_are_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut counts = [0u32; 3];
        for _ in 0..3000 {
            for d in &uniform_digits(&mut rng, 4) {
                counts[(d.value() + 1) as usize] += 1;
            }
        }
        let total: u32 = counts.iter().sum();
        for c in counts {
            let frac = f64::from(c) / f64::from(total);
            assert!((frac - 1.0 / 3.0).abs() < 0.03, "digit frequency {frac}");
        }
    }

    #[test]
    fn uniform_value_stays_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..500 {
            let x = uniform_value(&mut rng, 8);
            let v = x.value();
            assert!(v.abs() <= Q::new(255, 8));
            assert_eq!(x.len(), 8);
        }
    }

    #[test]
    fn uniform_nonneg_value_is_nonneg() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..500 {
            let x = uniform_nonneg_value(&mut rng, 8);
            assert!(x.value().signum() >= 0);
        }
    }
}
