//! Borrow-save bit-level representation of signed-digit numbers.
//!
//! Hardware implementations of radix-2 online arithmetic encode each signed
//! digit as a pair of wires `(p, n)` with digit value `p − n`. A
//! [`BsVector`] is a window of such digit pairs over arbitrary (possibly
//! integer) weight positions, mirroring exactly the buses inside the
//! unrolled online operators. Unlike [`SdNumber`](crate::SdNumber), the pair
//! `(1, 1)` (value 0) is allowed — it arises naturally inside borrow-save
//! adders.

use crate::{Digit, Q};
use std::fmt;

/// A borrow-save number: signed digits at weight positions
/// `msd_pos ..= msd_pos + len - 1`, where position `p` has weight `2^-p`.
///
/// Positions may be zero or negative, giving integer-weight digits — the
/// internal residuals `W` and `P` of the online multiplier need an integer
/// position.
///
/// # Examples
///
/// ```
/// use ola_redundant::{BsVector, Digit, Q};
///
/// let mut w = BsVector::zero(0, 4); // positions 0..=3, weights 1, 1/2, 1/4, 1/8
/// w.set_digit(0, Digit::One);
/// w.set_digit(2, Digit::NegOne);
/// assert_eq!(w.value(), Q::new(3, 2)); // 1 - 1/4
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BsVector {
    msd_pos: i32,
    p: Vec<bool>,
    n: Vec<bool>,
}

impl BsVector {
    /// An all-zero vector spanning positions `msd_pos ..= msd_pos + len - 1`.
    #[must_use]
    pub fn zero(msd_pos: i32, len: usize) -> Self {
        BsVector { msd_pos, p: vec![false; len], n: vec![false; len] }
    }

    /// Builds from a fractional [`SdNumber`](crate::SdNumber) (digit `i` at
    /// position `i`).
    #[must_use]
    pub fn from_sd(x: &crate::SdNumber) -> Self {
        let mut v = BsVector::zero(1, x.len());
        for (idx, d) in x.iter().enumerate() {
            let (p, n) = d.to_bits();
            v.p[idx] = p;
            v.n[idx] = n;
        }
        v
    }

    /// Position of the most significant digit (weight `2^-msd_pos`).
    #[must_use]
    pub fn msd_pos(&self) -> i32 {
        self.msd_pos
    }

    /// Position just past the least significant digit.
    #[must_use]
    pub fn end_pos(&self) -> i32 {
        self.msd_pos + self.len() as i32
    }

    /// Number of digit positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True if the vector has no positions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// The `(p, n)` bit pair at weight position `pos`; `(false, false)` if
    /// outside the window.
    #[must_use]
    pub fn bits(&self, pos: i32) -> (bool, bool) {
        match self.index_of(pos) {
            Some(i) => (self.p[i], self.n[i]),
            None => (false, false),
        }
    }

    /// The digit value at weight position `pos` (zero outside the window).
    #[must_use]
    pub fn digit(&self, pos: i32) -> Digit {
        let (p, n) = self.bits(pos);
        Digit::from_bits(p, n)
    }

    /// Sets the bit pair at position `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the window.
    pub fn set_bits(&mut self, pos: i32, p: bool, n: bool) {
        let i = self.index_of(pos).expect("position outside borrow-save window");
        self.p[i] = p;
        self.n[i] = n;
    }

    /// Sets the digit at position `pos` using the canonical encoding.
    ///
    /// # Panics
    ///
    /// Panics if `pos` is outside the window.
    pub fn set_digit(&mut self, pos: i32, d: Digit) {
        let (p, n) = d.to_bits();
        self.set_bits(pos, p, n);
    }

    /// The exact value `Σ (p_i − n_i) · 2^-pos(i)`.
    #[must_use]
    pub fn value(&self) -> Q {
        let mut acc: i128 = 0;
        for i in 0..self.len() {
            acc = (acc << 1) + i128::from(self.p[i]) - i128::from(self.n[i]);
        }
        // acc is the value scaled by 2^(end_pos - 1).
        let scale = self.end_pos() - 1;
        if scale >= 0 {
            Q::new(acc, scale as u32)
        } else {
            Q::new(acc, 0) << (-scale) as u32
        }
    }

    /// Multiplies by `2^k` (shifts every position up by `k`).
    #[must_use]
    pub fn shifted(&self, k: i32) -> Self {
        BsVector { msd_pos: self.msd_pos - k, p: self.p.clone(), n: self.n.clone() }
    }

    /// Exact negation: swaps the `p` and `n` bit planes.
    #[must_use]
    pub fn negated(&self) -> Self {
        BsVector { msd_pos: self.msd_pos, p: self.n.clone(), n: self.p.clone() }
    }

    /// Copies into a new window, zero-filling positions not covered by
    /// `self`. Digits of `self` that fall outside the new window are dropped:
    /// the caller asserts (and our tests verify) they are zero.
    #[must_use]
    pub fn rewindowed(&self, msd_pos: i32, len: usize) -> Self {
        let mut out = BsVector::zero(msd_pos, len);
        for i in 0..len {
            let pos = msd_pos + i as i32;
            let (p, n) = self.bits(pos);
            out.p[i] = p;
            out.n[i] = n;
        }
        out
    }

    /// True if every digit of `self` lying outside
    /// `msd_pos ..= msd_pos+len-1` is zero (so `rewindowed` is lossless).
    #[must_use]
    pub fn fits_window(&self, msd_pos: i32, len: usize) -> bool {
        (0..self.len()).all(|i| {
            let pos = self.msd_pos + i as i32;
            pos >= msd_pos && pos < msd_pos + len as i32 || self.p[i] == self.n[i]
        })
    }

    /// Iterates `(pos, digit)` pairs, MSD first.
    pub fn iter_digits(&self) -> impl Iterator<Item = (i32, Digit)> + '_ {
        (0..self.len())
            .map(move |i| (self.msd_pos + i as i32, Digit::from_bits(self.p[i], self.n[i])))
    }

    fn index_of(&self, pos: i32) -> Option<usize> {
        let off = pos - self.msd_pos;
        if off >= 0 && (off as usize) < self.len() {
            Some(off as usize)
        } else {
            None
        }
    }
}

impl fmt::Debug for BsVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BsVector@{}[", self.msd_pos)?;
        for i in 0..self.len() {
            let d = Digit::from_bits(self.p[i], self.n[i]);
            write!(f, "{d}")?;
        }
        write!(f, "] = {}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SdNumber;

    #[test]
    fn zero_vector_has_zero_value() {
        assert_eq!(BsVector::zero(-2, 8).value(), Q::ZERO);
        assert_eq!(BsVector::zero(3, 0).value(), Q::ZERO);
    }

    #[test]
    fn from_sd_preserves_value() {
        for n in 1..=6usize {
            let limit = (1i128 << n) - 1;
            for v in (-limit..=limit).step_by(3) {
                let q = Q::new(v, n as u32);
                let x = SdNumber::from_value(q, n).unwrap();
                assert_eq!(BsVector::from_sd(&x).value(), q);
            }
        }
    }

    #[test]
    fn integer_positions_have_integer_weights() {
        let mut w = BsVector::zero(-1, 3); // weights 2, 1, 1/2
        w.set_digit(-1, Digit::One);
        w.set_digit(1, Digit::NegOne);
        assert_eq!(w.value(), Q::new(3, 1)); // 2 - 1/2
    }

    #[test]
    fn redundant_pair_is_zero_valued() {
        let mut w = BsVector::zero(1, 2);
        w.set_bits(1, true, true);
        assert_eq!(w.value(), Q::ZERO);
        assert_eq!(w.digit(1), Digit::Zero);
    }

    #[test]
    fn shifting_scales_by_powers_of_two() {
        let x = BsVector::from_sd(&SdNumber::from_value(Q::new(3, 3), 3).unwrap());
        assert_eq!(x.shifted(1).value(), Q::new(3, 2));
        assert_eq!(x.shifted(-2).value(), Q::new(3, 5));
        assert_eq!(x.shifted(3).value(), Q::from_int(3));
    }

    #[test]
    fn negation_swaps_planes() {
        let x = BsVector::from_sd(&SdNumber::from_value(Q::new(5, 3), 3).unwrap());
        assert_eq!(x.negated().value(), -x.value());
        assert_eq!(x.negated().negated(), x);
    }

    #[test]
    fn rewindow_round_trips_when_it_fits() {
        let x = BsVector::from_sd(&SdNumber::from_value(Q::new(5, 3), 3).unwrap());
        assert!(x.fits_window(0, 6));
        let y = x.rewindowed(0, 6);
        assert_eq!(y.value(), x.value());
        assert!(!x.fits_window(2, 2));
    }

    #[test]
    fn out_of_window_reads_are_zero() {
        let x = BsVector::zero(1, 2);
        assert_eq!(x.digit(0), Digit::Zero);
        assert_eq!(x.digit(17), Digit::Zero);
        assert_eq!(x.bits(-5), (false, false));
    }

    #[test]
    #[should_panic(expected = "position outside")]
    fn out_of_window_writes_panic() {
        let mut x = BsVector::zero(1, 2);
        x.set_digit(3, Digit::One);
    }

    #[test]
    fn iter_digits_yields_positions_msd_first() {
        let mut w = BsVector::zero(0, 3);
        w.set_digit(1, Digit::One);
        let v: Vec<(i32, Digit)> = w.iter_digits().collect();
        assert_eq!(v, vec![(0, Digit::Zero), (1, Digit::One), (2, Digit::Zero)]);
    }
}
