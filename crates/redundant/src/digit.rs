//! Radix-2 signed digits: the redundant digit set {−1, 0, 1}.

use crate::Q;
use std::fmt;
use std::ops::Neg;

/// A radix-2 signed digit from the redundant set {−1, 0, 1}.
///
/// The paper writes the digit −1 as 1̄. The redundancy (two encodings exist
/// for most values once digits are strung together) is what allows
/// most-significant-digit-first computation: early digits may over- or
/// under-estimate and later digits compensate.
///
/// # Examples
///
/// ```
/// use ola_redundant::Digit;
///
/// let d = Digit::NegOne;
/// assert_eq!(d.value(), -1);
/// assert_eq!(-d, Digit::One);
/// assert_eq!(Digit::try_from(0i8)?, Digit::Zero);
/// # Ok::<(), ola_redundant::DigitRangeError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Digit {
    /// The digit −1 (written 1̄ in the paper).
    NegOne,
    /// The digit 0.
    #[default]
    Zero,
    /// The digit 1.
    One,
}

/// Error returned when converting an out-of-range integer into a [`Digit`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DigitRangeError(pub i8);

impl fmt::Display for DigitRangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "value {} is not a radix-2 signed digit (-1, 0, 1)", self.0)
    }
}

impl std::error::Error for DigitRangeError {}

impl Digit {
    /// All digits in ascending order; handy for exhaustive enumeration.
    pub const ALL: [Digit; 3] = [Digit::NegOne, Digit::Zero, Digit::One];

    /// The numeric value of the digit.
    #[must_use]
    pub fn value(self) -> i32 {
        match self {
            Digit::NegOne => -1,
            Digit::Zero => 0,
            Digit::One => 1,
        }
    }

    /// True if this digit is zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Digit::Zero
    }

    /// The digit's contribution at fractional position `pos` (weight `2^-pos`).
    #[must_use]
    pub fn weighted(self, pos: u32) -> Q {
        match self {
            Digit::Zero => Q::ZERO,
            Digit::One => Q::pow2_neg(pos),
            Digit::NegOne => -Q::pow2_neg(pos),
        }
    }

    /// Borrow-save encoding `(p, n)` with `value = p − n`.
    ///
    /// The canonical encodings are used: 0 → (0,0), 1 → (1,0), −1 → (0,1).
    #[must_use]
    pub fn to_bits(self) -> (bool, bool) {
        match self {
            Digit::NegOne => (false, true),
            Digit::Zero => (false, false),
            Digit::One => (true, false),
        }
    }

    /// Decodes a borrow-save bit pair `(p, n)` into its digit value `p − n`.
    ///
    /// The non-canonical pair (1,1) also decodes to zero — redundant encodings
    /// arise naturally inside borrow-save adders.
    #[must_use]
    pub fn from_bits(p: bool, n: bool) -> Digit {
        match (p, n) {
            (true, false) => Digit::One,
            (false, true) => Digit::NegOne,
            _ => Digit::Zero,
        }
    }
}

impl Neg for Digit {
    type Output = Digit;
    fn neg(self) -> Digit {
        match self {
            Digit::NegOne => Digit::One,
            Digit::Zero => Digit::Zero,
            Digit::One => Digit::NegOne,
        }
    }
}

impl TryFrom<i8> for Digit {
    type Error = DigitRangeError;
    fn try_from(v: i8) -> Result<Self, Self::Error> {
        match v {
            -1 => Ok(Digit::NegOne),
            0 => Ok(Digit::Zero),
            1 => Ok(Digit::One),
            other => Err(DigitRangeError(other)),
        }
    }
}

impl From<Digit> for i8 {
    fn from(d: Digit) -> i8 {
        d.value() as i8
    }
}

impl fmt::Display for Digit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Digit::NegOne => f.write_str("1\u{0304}"), // 1 with combining macron
            Digit::Zero => f.write_str("0"),
            Digit::One => f.write_str("1"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_i8() {
        for d in Digit::ALL {
            assert_eq!(Digit::try_from(i8::from(d)).unwrap(), d);
        }
        assert_eq!(Digit::try_from(2i8), Err(DigitRangeError(2)));
        assert_eq!(Digit::try_from(-2i8), Err(DigitRangeError(-2)));
    }

    #[test]
    fn negation_flips_sign() {
        assert_eq!(-Digit::One, Digit::NegOne);
        assert_eq!(-Digit::NegOne, Digit::One);
        assert_eq!(-Digit::Zero, Digit::Zero);
        for d in Digit::ALL {
            assert_eq!((-d).value(), -d.value());
        }
    }

    #[test]
    fn bit_encoding_round_trips() {
        for d in Digit::ALL {
            let (p, n) = d.to_bits();
            assert_eq!(Digit::from_bits(p, n), d);
        }
        // The redundant (1,1) pair decodes to zero.
        assert_eq!(Digit::from_bits(true, true), Digit::Zero);
    }

    #[test]
    fn weighted_values() {
        assert_eq!(Digit::One.weighted(1), Q::new(1, 1));
        assert_eq!(Digit::NegOne.weighted(2), Q::new(-1, 2));
        assert_eq!(Digit::Zero.weighted(9), Q::ZERO);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Digit::default(), Digit::Zero);
    }

    #[test]
    fn display_uses_overbar() {
        assert_eq!(Digit::One.to_string(), "1");
        assert_eq!(Digit::Zero.to_string(), "0");
        assert_eq!(Digit::NegOne.to_string(), "1\u{0304}");
    }
}
