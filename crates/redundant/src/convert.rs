//! On-the-fly conversion of MSD-first digit streams to non-redundant form.
//!
//! Online operators emit result digits most-significant first in the
//! redundant set {−1, 0, 1}. Converting to conventional (non-redundant)
//! binary with a carry-propagate adder would reintroduce the very carry
//! chains online arithmetic avoids, so hardware uses Ercegovac's
//! *on-the-fly conversion*: two candidate prefixes `Q` and `QM = Q − ulp`
//! are maintained and extended by appends only — no carries.

use crate::{Digit, Q};

/// Carry-free MSD-first converter from signed digits to two's-complement.
///
/// # Examples
///
/// ```
/// use ola_redundant::{Digit, OnTheFlyConverter, Q};
///
/// let mut c = OnTheFlyConverter::new();
/// // 0.1 1̄ 1 = 1/2 - 1/4 + 1/8 = 3/8
/// c.push(Digit::One);
/// c.push(Digit::NegOne);
/// c.push(Digit::One);
/// assert_eq!(c.value(), Q::new(3, 3));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OnTheFlyConverter {
    q: i128,
    qm: i128,
    ndigits: u32,
}

impl OnTheFlyConverter {
    /// A converter that has consumed no digits (value 0).
    #[must_use]
    pub fn new() -> Self {
        OnTheFlyConverter { q: 0, qm: -1, ndigits: 0 }
    }

    /// Appends the next digit (one position less significant than the last).
    ///
    /// Each of the three cases extends either `Q` or `QM` with a single new
    /// bit — the integer doublings below correspond to wiring, not adders.
    pub fn push(&mut self, d: Digit) {
        let (q, qm) = (self.q, self.qm);
        match d {
            Digit::One => {
                self.q = 2 * q + 1;
                self.qm = 2 * q;
            }
            Digit::Zero => {
                self.q = 2 * q;
                self.qm = 2 * qm + 1;
            }
            Digit::NegOne => {
                self.q = 2 * qm + 1;
                self.qm = 2 * qm;
            }
        }
        self.ndigits += 1;
    }

    /// Number of digits consumed so far.
    #[must_use]
    pub fn digits_consumed(&self) -> u32 {
        self.ndigits
    }

    /// The exact value of the digits consumed so far.
    #[must_use]
    pub fn value(&self) -> Q {
        Q::new(self.q, self.ndigits)
    }

    /// The converted result as a scaled integer `value · 2^ndigits`.
    #[must_use]
    pub fn scaled(&self) -> i128 {
        self.q
    }

    /// Consumes a whole digit sequence and returns its exact value.
    #[must_use]
    pub fn convert<I: IntoIterator<Item = Digit>>(digits: I) -> Q {
        let mut c = OnTheFlyConverter::new();
        for d in digits {
            c.push(d);
        }
        c.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SdNumber;

    #[test]
    fn matches_direct_evaluation_exhaustively() {
        // All 3^7 seven-digit numbers.
        for n in 0..3usize.pow(7) {
            let mut digits = Vec::new();
            let mut k = n;
            for _ in 0..7 {
                digits.push(Digit::try_from((k % 3) as i8 - 1).unwrap());
                k /= 3;
            }
            let sd = SdNumber::new(digits.clone());
            assert_eq!(OnTheFlyConverter::convert(digits), sd.value());
        }
    }

    #[test]
    fn qm_invariant_holds_while_streaming() {
        let mut c = OnTheFlyConverter::new();
        for d in [Digit::One, Digit::Zero, Digit::NegOne, Digit::NegOne, Digit::One] {
            c.push(d);
            assert_eq!(c.qm, c.q - 1, "QM must always be Q - ulp");
        }
    }

    #[test]
    fn empty_converter_is_zero() {
        assert_eq!(OnTheFlyConverter::new().value(), Q::ZERO);
        assert_eq!(OnTheFlyConverter::new().digits_consumed(), 0);
    }

    #[test]
    fn prefix_values_are_online_prefixes() {
        let x = SdNumber::from_value(Q::new(-23, 6), 6).unwrap();
        let mut c = OnTheFlyConverter::new();
        for (i, d) in x.iter().enumerate() {
            c.push(d);
            assert_eq!(c.value(), x.prefix_value(i + 1));
        }
    }
}
