//! Radix-4 signed-digit numbers — the higher-radix direction the paper
//! leaves open ("as radix-2 is used most commonly … we keep r = 2").
//!
//! Radix-4 online arithmetic halves the stage count of an unrolled operator
//! at the cost of a wider digit set. This module provides the maximally
//! redundant radix-4 system (digit set {−3 … 3}) with the classic Avizienis
//! carry-free addition: a transfer/interim decomposition bounds every carry
//! to one position, so addition stays constant-depth exactly like the
//! radix-2 online adder.

use crate::Q;
use std::fmt;
use std::ops::Neg;

/// A radix-4 signed digit from the maximally redundant set {−3 … 3}.
///
/// # Examples
///
/// ```
/// use ola_redundant::radix4::Digit4;
///
/// let d = Digit4::new(-3)?;
/// assert_eq!(d.value(), -3);
/// assert_eq!((-d).value(), 3);
/// # Ok::<(), ola_redundant::DigitRangeError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Digit4(i8);

impl Digit4 {
    /// The zero digit.
    pub const ZERO: Digit4 = Digit4(0);

    /// Creates a digit, checking the range.
    ///
    /// # Errors
    ///
    /// Returns [`DigitRangeError`](crate::DigitRangeError) for values
    /// outside −3 ..= 3.
    pub fn new(v: i8) -> Result<Self, crate::DigitRangeError> {
        if (-3..=3).contains(&v) {
            Ok(Digit4(v))
        } else {
            Err(crate::DigitRangeError(v))
        }
    }

    /// The digit value.
    #[must_use]
    pub fn value(self) -> i8 {
        self.0
    }

    /// True if zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Neg for Digit4 {
    type Output = Digit4;
    fn neg(self) -> Digit4 {
        Digit4(-self.0)
    }
}

impl fmt::Display for Digit4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A fractional radix-4 signed-digit number: digit `i` (1-indexed) has
/// weight `4^-i`; an `n`-digit number covers multiples of `4^-n` in
/// `[−(1 − 4^-n), 1 − 4^-n]`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Sd4Number {
    digits: Vec<Digit4>,
}

impl Sd4Number {
    /// Creates a number from its digit vector (MSD first).
    #[must_use]
    pub fn new(digits: Vec<Digit4>) -> Self {
        Sd4Number { digits }
    }

    /// The `n`-digit zero.
    #[must_use]
    pub fn zero(n: usize) -> Self {
        Sd4Number { digits: vec![Digit4::ZERO; n] }
    }

    /// Number of radix-4 digits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.digits.len()
    }

    /// True if the number has no digits.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.digits.is_empty()
    }

    /// The digits, MSD first.
    #[must_use]
    pub fn digits(&self) -> &[Digit4] {
        &self.digits
    }

    /// The exact value `Σ d_i 4^-i`.
    #[must_use]
    pub fn value(&self) -> Q {
        let mut acc: i128 = 0;
        for &d in &self.digits {
            acc = (acc << 2) + i128::from(d.value());
        }
        Q::new(acc, 2 * self.digits.len() as u32)
    }

    /// Encodes an exact value into `n` radix-4 digits (greedy, MSD first).
    ///
    /// # Errors
    ///
    /// Returns [`RangeError`](crate::RangeError) if `value` is not a
    /// multiple of `4^-n` or lies outside the representable range.
    pub fn from_value(value: Q, n: usize) -> Result<Self, crate::RangeError> {
        let err = || crate::RangeError { value, digits: n };
        let scaled = value.scaled_to(2 * n as u32).ok_or_else(err)?;
        let limit = (1i128 << (2 * n)) - 1;
        if scaled.abs() > limit {
            return Err(err());
        }
        let mut digits = Vec::with_capacity(n);
        let mut rem = scaled;
        for i in 1..=n {
            let w = 1i128 << (2 * (n - i)); // 4^{n-i}
                                            // Nearest digit in {−3..3}: round(rem / w), clamped.
            let d = ((2 * rem + w * rem.signum()) / (2 * w)).clamp(-3, 3);
            rem -= d * w;
            digits.push(Digit4(d as i8));
        }
        debug_assert_eq!(rem, 0, "greedy radix-4 recoding must terminate");
        Ok(Sd4Number { digits })
    }

    /// Carry-free addition (Avizienis): interim `w` and transfer `t` with
    /// `x_i + y_i = 4·t_i + w_i`, `|w| ≤ 2`, `t ∈ {−1,0,1}`, then
    /// `z_i = w_i + t_{i+1}` — no carry ever crosses more than one
    /// position, so the depth is constant in the word length.
    ///
    /// The result has one extra integer-position digit (returned separately
    /// with weight `4^0 = 1`).
    #[must_use]
    pub fn add(&self, other: &Sd4Number) -> (Digit4, Sd4Number) {
        let n = self.len().max(other.len());
        let digit = |v: &Sd4Number, i: usize| -> i8 { v.digits.get(i).map_or(0, |d| d.value()) };
        let mut transfers = vec![0i8; n + 1]; // t at position i lands at i−1
        let mut interims = vec![0i8; n];
        for i in 0..n {
            let u = digit(self, i) + digit(other, i);
            let t = if u >= 3 {
                1
            } else if u <= -3 {
                -1
            } else {
                0
            };
            transfers[i] = t;
            interims[i] = u - 4 * t;
        }
        let mut digits = Vec::with_capacity(n);
        for (i, &w) in interims.iter().enumerate() {
            let z = w + transfers.get(i + 1).copied().unwrap_or(0);
            debug_assert!((-3..=3).contains(&z));
            digits.push(Digit4(z));
        }
        (Digit4(transfers[0]), Sd4Number { digits })
    }

    /// Exact negation.
    #[must_use]
    pub fn negated(&self) -> Self {
        Sd4Number { digits: self.digits.iter().map(|&d| -d).collect() }
    }

    /// Re-encodes as a radix-2 signed-digit number with `2n` digits (each
    /// radix-4 digit splits into two radix-2 positions).
    #[must_use]
    pub fn to_radix2(&self) -> crate::SdNumber {
        crate::SdNumber::from_value(self.value(), 2 * self.len())
            .expect("radix-4 values fit 2n radix-2 digits")
    }
}

impl fmt::Debug for Sd4Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sd4(")?;
        for (i, d) in self.digits.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ") = {}", self.value())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_sd4(n: usize) -> impl Iterator<Item = Sd4Number> {
        (0..7usize.pow(n as u32)).map(move |mut k| {
            let digits = (0..n)
                .map(|_| {
                    let d = Digit4::new((k % 7) as i8 - 3).unwrap();
                    k /= 7;
                    d
                })
                .collect();
            Sd4Number::new(digits)
        })
    }

    #[test]
    fn digit_range_is_enforced() {
        assert!(Digit4::new(3).is_ok());
        assert!(Digit4::new(-3).is_ok());
        assert!(Digit4::new(4).is_err());
        assert!(Digit4::new(-4).is_err());
    }

    #[test]
    fn from_value_round_trips() {
        for n in 1..=4usize {
            let limit = (1i128 << (2 * n)) - 1;
            for v in (-limit..=limit).step_by(5) {
                let q = Q::new(v, 2 * n as u32);
                let x = Sd4Number::from_value(q, n).unwrap();
                assert_eq!(x.value(), q, "n={n} v={v}");
            }
        }
    }

    #[test]
    fn from_value_rejects_out_of_range() {
        assert!(Sd4Number::from_value(Q::ONE, 3).is_err());
        assert!(Sd4Number::from_value(Q::new(1, 9), 3).is_err());
    }

    #[test]
    fn addition_is_exact_and_carry_free_exhaustively() {
        // All pairs of 2-digit radix-4 numbers (49 × 49 encodings).
        for x in all_sd4(2) {
            for y in all_sd4(2) {
                let (carry, z) = x.add(&y);
                let total = Q::from_int(i64::from(carry.value())) + z.value();
                assert_eq!(total, x.value() + y.value(), "x={x:?} y={y:?} carry={carry} z={z:?}");
            }
        }
    }

    #[test]
    fn addition_handles_unequal_lengths() {
        let a = Sd4Number::from_value(Q::new(11, 4), 2).unwrap();
        let b = Sd4Number::from_value(Q::new(3, 2), 1).unwrap();
        let (carry, z) = a.add(&b);
        assert_eq!(Q::from_int(i64::from(carry.value())) + z.value(), a.value() + b.value());
    }

    #[test]
    fn negation_negates() {
        for x in all_sd4(3).step_by(11) {
            assert_eq!(x.negated().value(), -x.value());
        }
    }

    #[test]
    fn radix2_conversion_preserves_value() {
        for x in all_sd4(3).step_by(7) {
            let r2 = x.to_radix2();
            assert_eq!(r2.value(), x.value());
            assert_eq!(r2.len(), 2 * x.len());
        }
    }

    #[test]
    fn max_value_is_all_threes() {
        let x = Sd4Number::new(vec![Digit4::new(3).unwrap(); 3]);
        assert_eq!(x.value(), Q::new((1 << 6) - 1, 6)); // 1 − 4^-3
    }
}
