//! Property-based tests for the imaging substrate.

use ola_imaging::synthetic::{synthesize, Benchmark, SyntheticSpec};
use ola_imaging::{Image, Kernel};
use ola_redundant::Q;
use proptest::prelude::*;

fn image_strategy() -> impl Strategy<Value = Image> {
    (2usize..12, 2usize..12).prop_flat_map(|(w, h)| {
        prop::collection::vec(any::<u8>(), w * h).prop_map(move |px| Image::from_pixels(w, h, px))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pgm_round_trips(img in image_strategy()) {
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let back = Image::read_pgm(&buf[..]).unwrap();
        prop_assert_eq!(back, img);
    }

    #[test]
    fn clamped_reads_never_panic(img in image_strategy(), x in -50isize..50, y in -50isize..50) {
        let v = img.get_clamped(x, y);
        // The clamped pixel must exist somewhere in the image.
        prop_assert!(img.pixels().contains(&v));
    }

    #[test]
    fn statistics_are_well_defined(img in image_strategy()) {
        prop_assert!((0.0..=255.0).contains(&img.mean()));
        prop_assert!(img.stddev() >= 0.0 && img.stddev() <= 128.0);
        prop_assert!((-1.0..=1.0).contains(&img.autocorrelation()));
    }

    #[test]
    fn gaussian_kernels_are_normalized_and_positive(
        size in prop::sample::select(vec![3usize, 5, 7]),
        sigma in 0.5f64..3.0,
    ) {
        let k = Kernel::gaussian(size, sigma, 10);
        prop_assert_eq!(k.taps(), size * size);
        for &c in k.coefficients() {
            prop_assert!(c >= Q::ZERO);
        }
        let gain = k.dc_gain().to_f64();
        prop_assert!((gain - 1.0).abs() < 0.05, "gain {gain}");
    }

    #[test]
    fn wider_sigma_flattens_the_kernel(sigma in 0.6f64..1.4) {
        let narrow = Kernel::gaussian(3, sigma, 10);
        let wide = Kernel::gaussian(3, sigma + 1.0, 10);
        // Peak-to-corner ratio shrinks as sigma grows.
        let ratio = |k: &Kernel| k.at(0, 0).to_f64() / k.at(1, 1).to_f64().max(1e-9);
        prop_assert!(ratio(&wide) < ratio(&narrow));
    }

    #[test]
    fn synthesis_is_deterministic_and_in_spec(seed in 0u64..1000) {
        let spec = SyntheticSpec {
            brightness: 120.0,
            contrast: 40.0,
            correlation: 8,
            octaves: 3,
            edges: 0.3,
        };
        let a = synthesize(32, 32, seed, spec);
        let b = synthesize(32, 32, seed, spec);
        prop_assert_eq!(&a, &b);
        prop_assert!((a.mean() - 120.0).abs() < 30.0);
        prop_assert!(a.autocorrelation() > 0.4, "corr {}", a.autocorrelation());
    }

    #[test]
    fn benchmarks_generate_any_size(
        w in 4usize..40,
        h in 4usize..40,
        seed in 0u64..100,
    ) {
        for b in Benchmark::ALL {
            let img = b.generate(w, h, seed);
            prop_assert_eq!(img.width(), w);
            prop_assert_eq!(img.height(), h);
        }
    }
}
