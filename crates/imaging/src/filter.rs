//! The overclocked Gaussian image filter (Section 4 of the paper).
//!
//! Two implementations of the same `N`-digit multiply-accumulate datapath:
//!
//! * [`OnlineFilter`] — digit-parallel online multipliers feeding a tree of
//!   online (signed-digit) adders;
//! * [`TraditionalFilter`] — two's-complement array multipliers feeding a
//!   tree of ripple-carry adders (the Core-Generator stand-in).
//!
//! Both are synthesized to gate level and overclocked identically: the
//! multiplier bank and the adder tree are register-separated stages clocked
//! with period `Ts`, simulated with the event-driven timing simulator under
//! a jittered FPGA delay model. Errors are measured against the same
//! design's *settled* output — exactly the paper's "overclocking error".
//!
//! Multiplier output *waveforms* are memoized per `(pixel value,
//! coefficient)` — coefficients are fixed, pixels are 8-bit — so the
//! multiplier bank is simulated a few hundred times total per design and
//! can then be sampled at any clock period for free; only the small
//! adder-tree simulation runs per pixel and period.

use crate::{Image, Kernel};
use ola_arith::online::{digits_value, DELTA};
use ola_arith::synth::{
    array_multiplier, bits, online_multiplier, ArrayMultiplierCircuit, BsSignals,
    OnlineMultiplierCircuit,
};
use ola_core::metrics;
use ola_netlist::{analyze, simulate_from_zero, BusWaveforms, FpgaDelay, JitteredDelay, Netlist};
use ola_redundant::{Digit, SdNumber, Q};
use ola_synth::{allocate_adders, elaborate, eliminate_dead};
use ola_synth::{AdderStructure, Dfg, ElabOptions, InputFmt, Style};
use std::collections::HashMap;
use std::sync::{Mutex, PoisonError};

/// Configuration shared by both filter implementations.
#[derive(Clone, Debug)]
pub struct FilterConfig {
    /// Operand digit count `N` (the paper uses 8).
    pub digits: usize,
    /// The convolution kernel (quantized to `2^-digits`).
    pub kernel: Kernel,
    /// Delay jitter amplitude (stand-in for place-and-route variation).
    pub jitter_amplitude: u64,
    /// Delay jitter seed.
    pub jitter_seed: u64,
}

impl FilterConfig {
    /// The paper's setup: `N = 8`, 3×3 Gaussian (σ = 1) quantized to 8
    /// fractional bits, moderate delay jitter.
    #[must_use]
    pub fn paper_default() -> Self {
        FilterConfig {
            digits: 8,
            kernel: Kernel::gaussian(3, 1.0, 8),
            jitter_amplitude: 15,
            jitter_seed: 2014,
        }
    }
}

/// Output of one overclocked run at a single clock period.
#[derive(Clone, Debug)]
pub struct FilterRun {
    /// The clock period.
    pub ts: u64,
    /// The output image produced at this period.
    pub image: Image,
    /// Per-pixel sampled values (normalized to `[0, 1)`).
    pub sampled: Vec<f64>,
    /// Mean relative error vs the settled output, in percent (Eq. 13).
    pub mre_percent: f64,
    /// SNR of the sampled output against the settled output, in dB.
    pub snr_db: f64,
    /// Number of pixels that differ from the settled output.
    pub wrong_pixels: usize,
}

/// A sweep of one image over several clock periods.
#[derive(Clone, Debug)]
pub struct FilterSweep {
    /// The design's settled (timing-correct) output image.
    pub settled_image: Image,
    /// Per-pixel settled values.
    pub settled: Vec<f64>,
    /// One run per requested period.
    pub runs: Vec<FilterRun>,
    /// The design's rated period (structural STA over both stages).
    pub rated_period: u64,
}

/// A gate-level filter datapath that can be overclocked.
pub trait OverclockedFilter {
    /// Human-readable arithmetic name ("online" / "traditional").
    fn name(&self) -> &'static str;

    /// The structural rated period of the slowest pipeline stage.
    fn rated_period(&self) -> u64;

    /// Filters `img` once per clock period in `ts_points`.
    fn apply_sweep(&self, img: &Image, ts_points: &[u64]) -> FilterSweep;
}

// ---------------------------------------------------------------------------
// Online filter
// ---------------------------------------------------------------------------

/// The online-arithmetic filter datapath.
pub struct OnlineFilter {
    cfg: FilterConfig,
    mult: OnlineMultiplierCircuit,
    tree: OnlineTree,
    delay: JitteredDelay<FpgaDelay>,
    coeffs: Vec<SdNumber>,
    memo: Mutex<HashMap<(u8, Q), std::sync::Arc<BusWaveforms>>>,
}

struct OnlineTree {
    netlist: Netlist,
    out: BsSignals,
}

impl OnlineFilter {
    /// Builds the online filter for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if a kernel coefficient is not representable in `N` digits.
    #[must_use]
    pub fn new(cfg: FilterConfig) -> Self {
        let n = cfg.digits;
        let coeffs: Vec<SdNumber> = cfg
            .kernel
            .coefficients()
            .iter()
            .map(|&c| SdNumber::from_value(c, n).expect("kernel coefficient fits N digits"))
            .collect();
        let mult = online_multiplier(n, 3);
        let tree = build_online_tree(n, cfg.kernel.taps());
        let delay = JitteredDelay::new(FpgaDelay::default(), cfg.jitter_amplitude, cfg.jitter_seed);
        OnlineFilter { cfg, mult, tree, delay, coeffs, memo: Mutex::new(HashMap::new()) }
    }

    /// The synthesized multiplier (for area/STA reports).
    #[must_use]
    pub fn multiplier(&self) -> &OnlineMultiplierCircuit {
        &self.mult
    }

    /// The adder-tree netlist (for area/STA reports).
    #[must_use]
    pub fn tree_netlist(&self) -> &Netlist {
        &self.tree.netlist
    }

    fn pixel_operand(&self, p: u8) -> SdNumber {
        SdNumber::from_value(Q::new(i128::from(p), 8), self.cfg.digits)
            .expect("pixels are representable")
    }

    /// The memoized output waveforms of `pixel × coeff` (both digit planes
    /// concatenated: zp bus then zn bus).
    fn product_waves(&self, p: u8, coeff: &SdNumber) -> std::sync::Arc<BusWaveforms> {
        let key = (p, coeff.value());
        if let Some(e) = self.memo.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
            return e.clone();
        }
        let x = self.pixel_operand(p);
        let inputs = self.mult.encode_inputs(&x, coeff);
        let res = simulate_from_zero(&self.mult.netlist, &self.delay, &inputs);
        let mut bus = self.mult.netlist.output("zp").to_vec();
        bus.extend_from_slice(self.mult.netlist.output("zn"));
        let waves = std::sync::Arc::new(res.bus_waveforms(&bus));
        self.memo.lock().unwrap_or_else(PoisonError::into_inner).insert(key, waves.clone());
        waves
    }
}

fn digits_of(bits: &[bool]) -> Vec<Digit> {
    let half = bits.len() / 2;
    bits[..half].iter().zip(&bits[half..]).map(|(&p, &n)| Digit::from_bits(p, n)).collect()
}

/// The tap-sum dataflow graph `sum = t0 + … + t{taps−1}`, allocated as
/// the classic pairwise-reduction tree. The balanced allocation matches
/// the hand-wired seed tree gate for gate (the elaborator composes the
/// same adder cores in the same order), which `filter.rs` tests pin down.
fn tap_sum_dfg(taps: usize, fmt: InputFmt) -> Dfg {
    let mut d = Dfg::new();
    let terms: Vec<_> = (0..taps).map(|k| d.input(&format!("t{k}"), fmt)).collect();
    let mut acc = terms[0];
    for &t in &terms[1..] {
        acc = d.add(acc, t);
    }
    d.mark_output("sum", acc);
    // Re-associate the chain into the balanced tree, then drop the dead
    // chain adders so the netlist carries only live gates.
    eliminate_dead(&allocate_adders(&d, AdderStructure::BalancedTree))
}

fn build_online_tree(n: usize, taps: usize) -> OnlineTree {
    let width = n + DELTA;
    // Digit k of a product has weight 2^-(k-δ+1): MSD position −δ+1.
    let fmt = InputFmt { msd_pos: 1 - DELTA as i32, digits: width };
    let dfg = tap_sum_dfg(taps, fmt);
    // No pruning: the delay model downstream is net-id-keyed (jittered),
    // so the netlist must be gate-index-stable against the seed layout.
    let dp = elaborate(&dfg, &ElabOptions::new(Style::Online).with_prune(false));
    let p = dp.netlist.output("sump").to_vec();
    let nn = dp.netlist.output("sumn").to_vec();
    let ola_synth::PortShape::Online { msd_pos, .. } = dp.outputs[0].shape else {
        unreachable!("online elaboration yields online ports")
    };
    let out = BsSignals::from_nets(msd_pos, p, nn);
    OnlineTree { netlist: dp.netlist, out }
}

impl OverclockedFilter for OnlineFilter {
    fn name(&self) -> &'static str {
        "online"
    }

    fn rated_period(&self) -> u64 {
        let m = analyze(&self.mult.netlist, &self.delay).critical_path();
        let t = analyze(&self.tree.netlist, &self.delay).critical_path();
        m.max(t)
    }

    fn apply_sweep(&self, img: &Image, ts_points: &[u64]) -> FilterSweep {
        let taps = self.cfg.kernel.taps();
        let half = (self.cfg.kernel.size() / 2) as isize;
        let pixels = img.width() * img.height();

        let mut settled = vec![0.0f64; pixels];
        let mut sampled = vec![vec![0.0f64; pixels]; ts_points.len()];

        for y in 0..img.height() {
            for x in 0..img.width() {
                let idx = y * img.width() + x;
                // Gather the 9 window pixels' memoized product waveforms.
                let mut products = Vec::with_capacity(taps);
                let mut tap = 0usize;
                for dy in -half..=half {
                    for dx in -half..=half {
                        let p = img.get_clamped(x as isize + dx, y as isize + dy);
                        products.push(self.product_waves(p, &self.coeffs[tap]));
                        tap += 1;
                    }
                }
                // Settled output: exact sum of settled products.
                settled[idx] = products
                    .iter()
                    .map(|m| digits_value(&digits_of(&m.settled())))
                    .fold(Q::ZERO, |a, v| a + v)
                    .to_f64();
                // Overclocked: adder tree simulated at each period.
                for (ti, &ts) in ts_points.iter().enumerate() {
                    // Input order follows bus declaration order: p0,n0,p1,n1…
                    let mut ordered = Vec::with_capacity(2 * taps * (self.cfg.digits + DELTA));
                    for m in &products {
                        ordered.extend(m.sample(ts));
                    }
                    let res = simulate_from_zero(&self.tree.netlist, &self.delay, &ordered);
                    let v = self.tree.out.sample(&res, ts).value().to_f64();
                    sampled[ti][idx] = v;
                }
            }
        }
        finish_sweep(img, settled, sampled, ts_points, self.rated_period())
    }
}

// ---------------------------------------------------------------------------
// Traditional filter
// ---------------------------------------------------------------------------

/// The conventional two's-complement filter datapath.
pub struct TraditionalFilter {
    cfg: FilterConfig,
    mult: ArrayMultiplierCircuit,
    tree: TcTree,
    delay: JitteredDelay<FpgaDelay>,
    coeff_raw: Vec<i64>,
    memo: Mutex<HashMap<(u8, i64), std::sync::Arc<BusWaveforms>>>,
}

struct TcTree {
    netlist: Netlist,
    width_in: usize,
    taps: usize,
}

impl TraditionalFilter {
    /// Builds the traditional filter. The multiplier is `N+1` bits wide so
    /// its two's-complement range matches the `N`-digit signed-digit range
    /// (the paper's fairness note).
    ///
    /// # Panics
    ///
    /// Panics if a kernel coefficient is not representable.
    #[must_use]
    pub fn new(cfg: FilterConfig) -> Self {
        let w = cfg.digits + 1;
        let coeff_raw: Vec<i64> = cfg
            .kernel
            .coefficients()
            .iter()
            .map(|&c| {
                c.scaled_to(cfg.digits as u32).expect("kernel coefficient fits N bits") as i64
            })
            .collect();
        let mult = array_multiplier(w);
        let tree = build_tc_tree(2 * w, cfg.kernel.taps());
        let delay = JitteredDelay::new(FpgaDelay::default(), cfg.jitter_amplitude, cfg.jitter_seed);
        TraditionalFilter { cfg, mult, tree, delay, coeff_raw, memo: Mutex::new(HashMap::new()) }
    }

    /// The synthesized multiplier (for area/STA reports).
    #[must_use]
    pub fn multiplier(&self) -> &ArrayMultiplierCircuit {
        &self.mult
    }

    /// The adder-tree netlist (for area/STA reports).
    #[must_use]
    pub fn tree_netlist(&self) -> &Netlist {
        &self.tree.netlist
    }

    fn product_waves(&self, p: u8, coeff: i64) -> std::sync::Arc<BusWaveforms> {
        let key = (p, coeff);
        if let Some(e) = self.memo.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
            return e.clone();
        }
        let inputs = self.mult.encode_inputs(i64::from(p), coeff);
        let res = simulate_from_zero(&self.mult.netlist, &self.delay, &inputs);
        let waves = std::sync::Arc::new(res.bus_waveforms(self.mult.netlist.output("product")));
        self.memo.lock().unwrap_or_else(PoisonError::into_inner).insert(key, waves.clone());
        waves
    }
}

fn build_tc_tree(width_in: usize, taps: usize) -> TcTree {
    // `width_in`-bit two's-complement products: a (width_in − 1)-digit
    // window elaborates to exactly `width_in` bits; the fractional weight
    // is uniform across taps so no alignment padding is emitted.
    let fmt = InputFmt { msd_pos: 0, digits: width_in - 1 };
    let dfg = tap_sum_dfg(taps, fmt);
    let dp = elaborate(&dfg, &ElabOptions::new(Style::Conventional).with_prune(false));
    TcTree { netlist: dp.netlist, width_in, taps }
}

impl OverclockedFilter for TraditionalFilter {
    fn name(&self) -> &'static str {
        "traditional"
    }

    fn rated_period(&self) -> u64 {
        let m = analyze(&self.mult.netlist, &self.delay).critical_path();
        let t = analyze(&self.tree.netlist, &self.delay).critical_path();
        m.max(t)
    }

    fn apply_sweep(&self, img: &Image, ts_points: &[u64]) -> FilterSweep {
        let taps = self.tree.taps;
        let half = (self.cfg.kernel.size() / 2) as isize;
        let pixels = img.width() * img.height();
        let scale = (2.0f64).powi(2 * self.cfg.digits as i32); // frac bits of products

        let mut settled = vec![0.0f64; pixels];
        let mut sampled = vec![vec![0.0f64; pixels]; ts_points.len()];

        for y in 0..img.height() {
            for x in 0..img.width() {
                let idx = y * img.width() + x;
                let mut products = Vec::with_capacity(taps);
                let mut tap = 0usize;
                for dy in -half..=half {
                    for dx in -half..=half {
                        let p = img.get_clamped(x as isize + dx, y as isize + dy);
                        products.push(self.product_waves(p, self.coeff_raw[tap]));
                        tap += 1;
                    }
                }
                settled[idx] =
                    products.iter().map(|m| bits::decode_signed(&m.settled()) as f64).sum::<f64>()
                        / scale;
                for (ti, &ts) in ts_points.iter().enumerate() {
                    let mut inputs = Vec::with_capacity(taps * self.tree.width_in);
                    for m in &products {
                        inputs.extend(m.sample(ts));
                    }
                    let res = simulate_from_zero(&self.tree.netlist, &self.delay, &inputs);
                    let bus = self.tree.netlist.output("sum");
                    let raw = bits::decode_signed(&res.sample_bus(bus, ts));
                    sampled[ti][idx] = raw as f64 / scale;
                }
            }
        }
        finish_sweep(img, settled, sampled, ts_points, self.rated_period())
    }
}

// ---------------------------------------------------------------------------
// Shared post-processing
// ---------------------------------------------------------------------------

fn finish_sweep(
    img: &Image,
    settled: Vec<f64>,
    sampled: Vec<Vec<f64>>,
    ts_points: &[u64],
    rated_period: u64,
) -> FilterSweep {
    let settled_image = to_image(img.width(), img.height(), &settled);
    let runs = ts_points
        .iter()
        .zip(sampled)
        .map(|(&ts, values)| {
            let image = to_image(img.width(), img.height(), &values);
            let wrong =
                values.iter().zip(&settled).filter(|(a, b)| (*a - *b).abs() > 1e-12).count();
            FilterRun {
                ts,
                // Shapes are equal by construction here; a degenerate
                // (empty) sweep degrades to NaN columns instead of tearing
                // the filter run down.
                mre_percent: metrics::mre_percent(&settled, &values).unwrap_or(f64::NAN),
                snr_db: metrics::snr_db(&settled, &values).unwrap_or(f64::NAN),
                wrong_pixels: wrong,
                sampled: values,
                image,
            }
        })
        .collect();
    FilterSweep { settled_image, settled, runs, rated_period }
}

fn to_image(width: usize, height: usize, values: &[f64]) -> Image {
    let pixels = values.iter().map(|&v| (v * 256.0).round().clamp(0.0, 255.0) as u8).collect();
    Image::from_pixels(width, height, pixels)
}

/// The ideal (infinite-precision settled) Gaussian filter, for reference
/// images and PSNR-vs-ideal comparisons.
#[must_use]
pub fn filter_exact(img: &Image, kernel: &Kernel) -> Image {
    let half = (kernel.size() / 2) as isize;
    let mut out = Image::new(img.width(), img.height());
    for y in 0..img.height() {
        for x in 0..img.width() {
            let mut acc = Q::ZERO;
            for dy in -half..=half {
                for dx in -half..=half {
                    let p = img.get_clamped(x as isize + dx, y as isize + dy);
                    acc += kernel.at(dx, dy) * Q::new(i128::from(p), 8);
                }
            }
            let v = (acc.to_f64() * 256.0).round().clamp(0.0, 255.0) as u8;
            out.set(x, y, v);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::Benchmark;
    use std::sync::OnceLock;

    fn tiny_cfg() -> FilterConfig {
        FilterConfig {
            digits: 8,
            kernel: Kernel::gaussian(3, 1.0, 8),
            // No delay jitter in unit tests: the multiplier memo builds an
            // order of magnitude faster (fewer glitch events) and the
            // correctness properties are identical.
            jitter_amplitude: 0,
            jitter_seed: 3,
        }
    }

    /// Filters are expensive to warm up (multiplier waveform memo), so the
    /// whole test module shares one instance of each design.
    fn shared_online() -> &'static OnlineFilter {
        static S: OnceLock<OnlineFilter> = OnceLock::new();
        S.get_or_init(|| OnlineFilter::new(tiny_cfg()))
    }

    fn shared_trad() -> &'static TraditionalFilter {
        static S: OnceLock<TraditionalFilter> = OnceLock::new();
        S.get_or_init(|| TraditionalFilter::new(tiny_cfg()))
    }

    #[test]
    fn settled_sweep_is_error_free_both_designs() {
        let img = Benchmark::LenaLike.generate(8, 8, 1);
        let online = shared_online();
        let trad = shared_trad();
        for f in [online as &dyn OverclockedFilter, trad] {
            let rated = f.rated_period();
            let sweep = f.apply_sweep(&img, &[rated]);
            assert_eq!(sweep.runs[0].mre_percent, 0.0, "{}", f.name());
            assert_eq!(sweep.runs[0].wrong_pixels, 0, "{}", f.name());
            assert_eq!(sweep.runs[0].image, sweep.settled_image);
        }
    }

    #[test]
    fn settled_output_tracks_ideal_filter() {
        let img = Benchmark::PepperLike.generate(8, 8, 2);
        let cfg = tiny_cfg();
        let online = shared_online();
        let ideal = filter_exact(&img, &cfg.kernel);
        let sweep = online.apply_sweep(&img, &[online.rated_period()]);
        // Quantization differences only: every pixel within a few LSBs.
        for (a, b) in sweep.settled_image.pixels().iter().zip(ideal.pixels()) {
            assert!((i16::from(*a) - i16::from(*b)).abs() <= 8, "settled {a} vs ideal {b}");
        }
    }

    #[test]
    fn overclocking_degrades_online_less_than_traditional() {
        let img = Benchmark::LenaLike.generate(8, 8, 3);
        let online = shared_online();
        let trad = shared_trad();
        // Sample each design at 60% of its own rated period: deep
        // overclocking for both.
        let o_ts = online.rated_period() * 6 / 10;
        let t_ts = trad.rated_period() * 6 / 10;
        let o = online.apply_sweep(&img, &[o_ts]);
        let t = trad.apply_sweep(&img, &[t_ts]);
        let (o_mre, t_mre) = (o.runs[0].mre_percent, t.runs[0].mre_percent);
        assert!(o_mre < t_mre, "online MRE {o_mre}% must beat traditional {t_mre}%");
        assert!(
            o.runs[0].snr_db > t.runs[0].snr_db,
            "online SNR {} vs traditional {}",
            o.runs[0].snr_db,
            t.runs[0].snr_db
        );
    }

    #[test]
    fn signed_kernels_flow_through_both_datapaths() {
        // Sobel has negative coefficients; both arithmetics must agree with
        // the ideal response on their settled outputs.
        let img = Benchmark::SailboatLike.generate(6, 6, 9);
        let cfg = FilterConfig { kernel: Kernel::sobel_x(), ..tiny_cfg() };
        let online = OnlineFilter::new(cfg.clone());
        let trad = TraditionalFilter::new(cfg.clone());
        let o = online.apply_sweep(&img, &[online.rated_period()]);
        let t = trad.apply_sweep(&img, &[trad.rated_period()]);
        for (a, b) in o.settled.iter().zip(&t.settled) {
            assert!((a - b).abs() < 0.02, "online {a} vs traditional {b}");
        }
        // Edge response must actually be signed somewhere.
        assert!(o.settled.iter().any(|&v| v < -0.01));
        assert!(o.settled.iter().any(|&v| v > 0.01));
    }

    /// The hand-wired online adder tree exactly as the pre-`ola-synth`
    /// seed built it — kept as the reference the compiler-built tree is
    /// pinned against.
    fn hand_wired_online_tree(n: usize, taps: usize) -> Netlist {
        use ola_arith::synth::bs_add_gates;
        let mut nl = Netlist::new();
        let width = n + DELTA;
        let mut level: Vec<BsSignals> = (0..taps)
            .map(|k| {
                let p = nl.input_bus(&format!("p{k}"), width);
                let nn = nl.input_bus(&format!("n{k}"), width);
                BsSignals::from_nets(1 - DELTA as i32, p, nn)
            })
            .collect();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        bs_add_gates(&mut nl, &pair[0], &pair[1])
                    } else {
                        pair[0].clone()
                    }
                })
                .collect();
        }
        let out = level.pop().expect("at least one tap");
        let (p, nn) = out.flat_nets();
        nl.set_output("sump", p);
        nl.set_output("sumn", nn);
        nl
    }

    /// The hand-wired conventional adder tree of the seed.
    fn hand_wired_tc_tree(width_in: usize, taps: usize) -> Netlist {
        let mut nl = Netlist::new();
        let mut level: Vec<Vec<ola_netlist::NetId>> =
            (0..taps).map(|k| nl.input_bus(&format!("t{k}"), width_in)).collect();
        while level.len() > 1 {
            level = level
                .chunks(2)
                .map(|pair| {
                    if pair.len() == 2 {
                        bits::add_signed(&mut nl, &pair[0], &pair[1])
                    } else {
                        pair[0].clone()
                    }
                })
                .collect();
        }
        let out = level.pop().expect("at least one tap");
        nl.set_output("sum", out);
        nl
    }

    /// Net-for-net structural equality: same gate kinds, same gate input
    /// nets, same primary-input count, same named output buses. Identical
    /// structure under the net-id-keyed jittered delay model implies
    /// bit-identical waveforms — and therefore bit-identical error and
    /// SNR curves — at every clock period.
    fn assert_netlists_identical(a: &Netlist, b: &Netlist, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: net count");
        assert_eq!(a.inputs().len(), b.inputs().len(), "{what}: input count");
        for (x, y) in a.nets().zip(b.nets()) {
            assert_eq!(a.kind(x), b.kind(y), "{what}: gate kind at {x:?}");
            assert_eq!(a.gate_inputs(x), b.gate_inputs(y), "{what}: gate inputs at {x:?}");
        }
        let ao: Vec<_> = a.outputs().collect();
        let bo: Vec<_> = b.outputs().collect();
        assert_eq!(ao, bo, "{what}: output buses");
    }

    #[test]
    fn synth_built_trees_match_hand_wired_seed_gate_for_gate() {
        for taps in [1usize, 2, 3, 9] {
            for n in [4usize, 8] {
                let synth = build_online_tree(n, taps);
                let hand = hand_wired_online_tree(n, taps);
                assert_netlists_identical(
                    &synth.netlist,
                    &hand,
                    &format!("online tree n={n} taps={taps}"),
                );
                let w_in = 2 * (n + 1);
                let synth = build_tc_tree(w_in, taps);
                let hand = hand_wired_tc_tree(w_in, taps);
                assert_netlists_identical(
                    &synth.netlist,
                    &hand,
                    &format!("tc tree w={w_in} taps={taps}"),
                );
            }
        }
    }

    #[test]
    fn synth_built_tree_is_waveform_identical_under_jittered_delay() {
        // Belt and braces on top of the structural identity: simulate
        // both netlists under the paper's jittered delay model and sample
        // every output net at several overclocked periods — the sampled
        // bits (hence any error curve computed from them) must be equal.
        let (n, taps) = (4usize, 3usize);
        let synth = build_online_tree(n, taps).netlist;
        let hand = hand_wired_online_tree(n, taps);
        let delay = JitteredDelay::new(FpgaDelay::default(), 15, 2014);
        let width = n + DELTA;
        let mut inputs = vec![false; 2 * taps * width];
        for (i, b) in inputs.iter_mut().enumerate() {
            *b = i % 3 == 0; // arbitrary but fixed pattern
        }
        let rs = simulate_from_zero(&synth, &delay, &inputs);
        let rh = simulate_from_zero(&hand, &delay, &inputs);
        let rated = analyze(&synth, &delay).critical_path();
        for ts in [rated / 3, rated / 2, (rated * 3) / 4, rated] {
            for (name, bus) in synth.outputs() {
                let hb = hand.output(name);
                for (sn, hn) in bus.iter().zip(hb) {
                    assert_eq!(
                        rs.value_at(*sn, ts),
                        rh.value_at(*hn, ts),
                        "net {sn:?} of {name} at Ts={ts}"
                    );
                }
            }
        }
    }

    #[test]
    fn exact_filter_smooths() {
        let img = Benchmark::Uniform.generate(10, 10, 4);
        let k = Kernel::gaussian(3, 1.0, 8);
        let filtered = filter_exact(&img, &k);
        assert!(filtered.stddev() < img.stddev(), "Gaussian must reduce variance");
        assert!((filtered.mean() - img.mean()).abs() < 10.0, "unity DC gain");
    }
}
