//! Grayscale images with PGM I/O.

use std::fmt;
use std::io::{self, Read, Write};

/// An 8-bit grayscale image.
///
/// # Examples
///
/// ```
/// use ola_imaging::Image;
///
/// let mut img = Image::new(4, 3);
/// img.set(1, 2, 200);
/// assert_eq!(img.get(1, 2), 200);
/// assert_eq!(img.get_clamped(-5, 99), img.get(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Image {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Image {
    /// An all-black image.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image { width, height, pixels: vec![0; width * height] }
    }

    /// Builds an image from row-major pixel data.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height`.
    #[must_use]
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        assert!(width > 0 && height > 0, "image dimensions must be positive");
        Image { width, height, pixels }
    }

    /// Image width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major pixel data.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// The pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    #[must_use]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x]
    }

    /// The pixel at `(x, y)` with replicate (clamp-to-edge) boundary
    /// handling — the convolution boundary policy.
    #[must_use]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let xc = x.clamp(0, self.width as isize - 1) as usize;
        let yc = y.clamp(0, self.height as isize - 1) as usize;
        self.pixels[yc * self.width + xc]
    }

    /// Sets the pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are out of bounds.
    pub fn set(&mut self, x: usize, y: usize, value: u8) {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.pixels[y * self.width + x] = value;
    }

    /// Mean pixel value.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.pixels.iter().map(|&p| f64::from(p)).sum::<f64>() / self.pixels.len() as f64
    }

    /// Pixel standard deviation (contrast).
    #[must_use]
    pub fn stddev(&self) -> f64 {
        let m = self.mean();
        let var = self.pixels.iter().map(|&p| (f64::from(p) - m).powi(2)).sum::<f64>()
            / self.pixels.len() as f64;
        var.sqrt()
    }

    /// Horizontal lag-1 autocorrelation — near 1 for natural images, near 0
    /// for white noise. Returns 0 for constant images.
    #[must_use]
    pub fn autocorrelation(&self) -> f64 {
        let m = self.mean();
        let mut num = 0.0;
        let mut den = 0.0;
        for y in 0..self.height {
            for x in 0..self.width {
                let a = f64::from(self.get(x, y)) - m;
                den += a * a;
                if x + 1 < self.width {
                    let b = f64::from(self.get(x + 1, y)) - m;
                    num += a * b;
                }
            }
        }
        if den == 0.0 {
            0.0
        } else {
            num / den
        }
    }

    /// Pixels as normalized `f64` values in `[0, 1)` (divided by 256).
    #[must_use]
    pub fn to_normalized(&self) -> Vec<f64> {
        self.pixels.iter().map(|&p| f64::from(p) / 256.0).collect()
    }

    /// Writes the image as a binary PGM (P5).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_pgm<W: Write>(&self, mut w: W) -> io::Result<()> {
        write!(w, "P5\n{} {}\n255\n", self.width, self.height)?;
        w.write_all(&self.pixels)
    }

    /// Reads a binary PGM (P5) image.
    ///
    /// # Errors
    ///
    /// Returns an error on malformed headers or truncated data.
    pub fn read_pgm<R: Read>(mut r: R) -> io::Result<Self> {
        let mut data = Vec::new();
        r.read_to_end(&mut data)?;
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_owned());
        let mut pos = 0usize;
        let mut token = || -> io::Result<String> {
            while pos < data.len() && data[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if pos < data.len() && data[pos] == b'#' {
                while pos < data.len() && data[pos] != b'\n' {
                    pos += 1;
                }
                while pos < data.len() && data[pos].is_ascii_whitespace() {
                    pos += 1;
                }
            }
            let start = pos;
            while pos < data.len() && !data[pos].is_ascii_whitespace() {
                pos += 1;
            }
            if start == pos {
                return Err(io::Error::new(io::ErrorKind::InvalidData, "truncated header"));
            }
            Ok(String::from_utf8_lossy(&data[start..pos]).into_owned())
        };
        if token()? != "P5" {
            return Err(bad("not a binary PGM"));
        }
        let width: usize = token()?.parse().map_err(|_| bad("bad width"))?;
        let height: usize = token()?.parse().map_err(|_| bad("bad height"))?;
        let maxval: usize = token()?.parse().map_err(|_| bad("bad maxval"))?;
        if maxval != 255 {
            return Err(bad("only 8-bit PGM supported"));
        }
        pos += 1; // single whitespace after maxval
        if data.len() < pos + width * height {
            return Err(bad("truncated pixel data"));
        }
        Ok(Image::from_pixels(width, height, data[pos..pos + width * height].to_vec()))
    }
}

impl fmt::Debug for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Image({}x{}, mean {:.1}, σ {:.1})",
            self.width,
            self.height,
            self.mean(),
            self.stddev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip() {
        let mut img = Image::new(5, 4);
        img.set(4, 3, 77);
        assert_eq!(img.get(4, 3), 77);
        assert_eq!(img.get(0, 0), 0);
        assert_eq!(img.width(), 5);
        assert_eq!(img.height(), 4);
    }

    #[test]
    fn clamped_access_replicates_edges() {
        let mut img = Image::new(3, 3);
        img.set(0, 0, 10);
        img.set(2, 2, 20);
        assert_eq!(img.get_clamped(-2, -2), 10);
        assert_eq!(img.get_clamped(9, 9), 20);
        assert_eq!(img.get_clamped(1, 1), img.get(1, 1));
    }

    #[test]
    fn stats_of_known_image() {
        let img = Image::from_pixels(2, 2, vec![0, 0, 255, 255]);
        assert!((img.mean() - 127.5).abs() < 1e-12);
        assert!((img.stddev() - 127.5).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_constant_rows_is_high() {
        // Rows of identical values → perfect horizontal correlation up to
        // the estimator's edge bias: 3 of 4 columns have a right neighbour,
        // so the biased lag-1 estimate is exactly 3/4.
        let img = Image::from_pixels(4, 2, vec![10, 10, 10, 10, 200, 200, 200, 200]);
        assert!((img.autocorrelation() - 0.75).abs() < 1e-12);
        // A wide image approaches 1.
        let wide = Image::from_pixels(64, 1, [10u8, 200].repeat(32));
        assert!(wide.autocorrelation() < 0.0, "alternating rows anticorrelate");
    }

    #[test]
    fn pgm_round_trip() {
        let mut img = Image::new(7, 5);
        for y in 0..5 {
            for x in 0..7 {
                img.set(x, y, (x * 31 + y * 17) as u8);
            }
        }
        let mut buf = Vec::new();
        img.write_pgm(&mut buf).unwrap();
        let back = Image::read_pgm(&buf[..]).unwrap();
        assert_eq!(back, img);
    }

    #[test]
    fn pgm_rejects_garbage() {
        assert!(Image::read_pgm(&b"P6\n2 2\n255\nxxxx"[..]).is_err());
        assert!(Image::read_pgm(&b"P5\n2 2\n255\nxx"[..]).is_err()); // truncated
        assert!(Image::read_pgm(&b"P5\n2 2\n65535\nxxxxxxxx"[..]).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_get_panics() {
        let img = Image::new(2, 2);
        let _ = img.get(2, 0);
    }
}
