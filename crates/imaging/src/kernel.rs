//! Gaussian convolution kernels quantized for the fixed-point datapaths.

use ola_redundant::Q;

/// A square convolution kernel with exactly-representable (dyadic)
/// coefficients.
///
/// # Examples
///
/// ```
/// use ola_imaging::Kernel;
///
/// let k = Kernel::gaussian(3, 1.0, 8);
/// assert_eq!(k.size(), 3);
/// // Quantized weights still sum to ≈ 1 (unity DC gain).
/// let sum: f64 = k.coefficients().iter().map(|c| c.to_f64()).sum();
/// assert!((sum - 1.0).abs() < 0.05);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Kernel {
    size: usize,
    coeffs: Vec<Q>,
}

impl Kernel {
    /// A `size × size` Gaussian kernel with standard deviation `sigma`,
    /// quantized to multiples of `2^-frac_bits` (round to nearest).
    ///
    /// # Panics
    ///
    /// Panics if `size` is even or zero, `sigma ≤ 0`, or `frac_bits` is not
    /// in `1..=30`.
    #[must_use]
    pub fn gaussian(size: usize, sigma: f64, frac_bits: u32) -> Self {
        assert!(size % 2 == 1 && size > 0, "kernel size must be odd");
        assert!(sigma > 0.0, "sigma must be positive");
        assert!((1..=30).contains(&frac_bits), "unsupported quantization");
        let half = (size / 2) as isize;
        let mut raw = Vec::with_capacity(size * size);
        let mut total = 0.0;
        for dy in -half..=half {
            for dx in -half..=half {
                let w = (-((dx * dx + dy * dy) as f64) / (2.0 * sigma * sigma)).exp();
                raw.push(w);
                total += w;
            }
        }
        let scale = f64::from(1u32 << frac_bits);
        let coeffs = raw
            .iter()
            .map(|w| {
                let q = (w / total * scale).round() as i128;
                Q::new(q, frac_bits)
            })
            .collect();
        Kernel { size, coeffs }
    }

    /// The horizontal Sobel edge-detection kernel, scaled by 1/8 so the
    /// response of a `[0, 1)` image stays within `(−1, 1)`:
    /// `[−1 0 1; −2 0 2; −1 0 1] / 8`. Exercises negative (signed-digit /
    /// two's-complement) coefficients in the filter datapaths.
    #[must_use]
    pub fn sobel_x() -> Self {
        let c = |v: i128| Q::new(v, 3);
        Kernel { size: 3, coeffs: vec![c(-1), c(0), c(1), c(-2), c(0), c(2), c(-1), c(0), c(1)] }
    }

    /// A mild unsharp-masking kernel, `[0 −1 0; −1 6 −1; 0 −1 0] / 8`
    /// (DC gain 1/4): mixed-sign taps with a dominant positive centre.
    #[must_use]
    pub fn sharpen() -> Self {
        let c = |v: i128| Q::new(v, 3);
        Kernel { size: 3, coeffs: vec![c(0), c(-1), c(0), c(-1), c(6), c(-1), c(0), c(-1), c(0)] }
    }

    /// Builds a kernel from explicit coefficients (row-major).
    ///
    /// # Panics
    ///
    /// Panics if the coefficient count is not an odd perfect square.
    #[must_use]
    pub fn from_coefficients(coeffs: Vec<Q>) -> Self {
        let size = (coeffs.len() as f64).sqrt().round() as usize;
        assert_eq!(size * size, coeffs.len(), "kernel must be square");
        assert!(size % 2 == 1, "kernel size must be odd");
        Kernel { size, coeffs }
    }

    /// Kernel side length.
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of taps (`size²`).
    #[must_use]
    pub fn taps(&self) -> usize {
        self.coeffs.len()
    }

    /// The coefficients, row-major.
    #[must_use]
    pub fn coefficients(&self) -> &[Q] {
        &self.coeffs
    }

    /// The coefficient at kernel offset `(dx, dy)` from the center.
    ///
    /// # Panics
    ///
    /// Panics if the offset is outside the kernel.
    #[must_use]
    pub fn at(&self, dx: isize, dy: isize) -> Q {
        let half = (self.size / 2) as isize;
        assert!(dx.abs() <= half && dy.abs() <= half, "offset outside kernel");
        let idx = (dy + half) * self.size as isize + (dx + half);
        self.coeffs[idx as usize]
    }

    /// Sum of all coefficients (DC gain).
    #[must_use]
    pub fn dc_gain(&self) -> Q {
        self.coeffs.iter().fold(Q::ZERO, |a, &c| a + c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_is_symmetric_and_peaked() {
        let k = Kernel::gaussian(3, 1.0, 8);
        assert_eq!(k.at(-1, 0), k.at(1, 0));
        assert_eq!(k.at(0, -1), k.at(0, 1));
        assert_eq!(k.at(-1, -1), k.at(1, 1));
        assert!(k.at(0, 0) > k.at(1, 0));
        assert!(k.at(1, 0) > k.at(1, 1));
    }

    #[test]
    fn coefficients_are_nontrivial_fractions() {
        // The σ=1 kernel must not degenerate to an all-power-of-two kernel
        // like [1 2 1]/16 (which would make every product a pure shift).
        let k = Kernel::gaussian(3, 1.0, 8);
        let nontrivial = k.coefficients().iter().filter(|c| c.numerator() != 1).count();
        assert!(
            nontrivial * 2 > k.taps(),
            "most taps must be non-power-of-two: {:?}",
            k.coefficients()
        );
        for &c in k.coefficients() {
            assert!(c > Q::ZERO);
        }
    }

    #[test]
    fn dc_gain_close_to_unity() {
        for (size, sigma) in [(3usize, 0.8), (3, 1.0), (5, 1.2)] {
            let k = Kernel::gaussian(size, sigma, 8);
            let gain = k.dc_gain().to_f64();
            assert!((gain - 1.0).abs() < 0.05, "size={size} σ={sigma}: {gain}");
        }
    }

    #[test]
    fn five_by_five_has_25_taps() {
        let k = Kernel::gaussian(5, 1.5, 10);
        assert_eq!(k.taps(), 25);
        assert_eq!(k.size(), 5);
    }

    #[test]
    fn explicit_kernel_round_trips() {
        let coeffs: Vec<Q> = (0..9).map(|i| Q::new(i, 5)).collect();
        let k = Kernel::from_coefficients(coeffs.clone());
        assert_eq!(k.coefficients(), &coeffs[..]);
        assert_eq!(k.at(-1, -1), coeffs[0]);
        assert_eq!(k.at(1, 1), coeffs[8]);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_kernel_rejected() {
        let _ = Kernel::gaussian(4, 1.0, 8);
    }

    #[test]
    fn sobel_is_antisymmetric_with_zero_gain() {
        let k = Kernel::sobel_x();
        assert_eq!(k.dc_gain(), Q::ZERO);
        assert_eq!(k.at(-1, 0), -k.at(1, 0));
        assert_eq!(k.at(-1, -1), Q::new(-1, 3));
        assert_eq!(k.at(0, 0), Q::ZERO);
    }

    #[test]
    fn sharpen_has_quarter_gain_and_negative_surround() {
        let k = Kernel::sharpen();
        assert_eq!(k.dc_gain().to_f64(), 0.25); // (6 − 4)/8
        assert!(k.at(0, 0) > Q::ZERO);
        assert!(k.at(0, 1) < Q::ZERO);
    }
}
