//! # ola-imaging — the overclocked Gaussian-filter case study
//!
//! Substrate + experiment crate for Section 4 of the reproduced paper
//! (*"Datapath Synthesis for Overclocking: Online Arithmetic for
//! Latency-Accuracy Trade-offs"*, DAC 2014):
//!
//! * [`Image`] — 8-bit grayscale images with PGM I/O;
//! * [`synthetic`] — deterministic procedural stand-ins for the Lena /
//!   Pepper / Sailboat / Tiffany benchmark images (see `DESIGN.md` for the
//!   substitution rationale) plus the uniform-noise "UI inputs";
//! * [`Kernel`] — quantized Gaussian convolution kernels;
//! * [`filter`] — the two gate-level filter datapaths ([`OnlineFilter`],
//!   [`TraditionalFilter`]) overclocked through the event-driven timing
//!   simulator, producing the MRE / SNR numbers behind Figures 6–7 and
//!   Tables 1–3.
//!
//! # Example
//!
//! ```no_run
//! use ola_imaging::filter::{FilterConfig, OnlineFilter, OverclockedFilter};
//! use ola_imaging::synthetic::Benchmark;
//!
//! let image = Benchmark::LenaLike.generate(64, 64, 1);
//! let filter = OnlineFilter::new(FilterConfig::paper_default());
//! let rated = filter.rated_period();
//! let sweep = filter.apply_sweep(&image, &[rated * 9 / 10, rated]);
//! println!("MRE at 1.11 f0: {:.4}%", sweep.runs[0].mre_percent);
//! ```

pub mod filter;
mod image;
mod kernel;
pub mod synthetic;

pub use filter::{FilterConfig, OnlineFilter, OverclockedFilter, TraditionalFilter};
pub use image::Image;
pub use kernel::Kernel;
