//! Procedural benchmark images.
//!
//! The paper's "real inputs" are the classic Lena / Pepper / Sailboat /
//! Tiffany test images, which we cannot redistribute; what its experiments
//! actually rely on is that natural images are *spatially correlated* and
//! not digit-uniform, so the multipliers see far fewer long residual
//! chains. These generators synthesize deterministic images matching each
//! benchmark's coarse statistics (brightness, contrast, correlation
//! length, edge content) — same code path, same statistical mechanism.

use crate::Image;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Parameters of the procedural generator.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyntheticSpec {
    /// Target mean brightness (0–255).
    pub brightness: f64,
    /// Target contrast (pixel standard deviation).
    pub contrast: f64,
    /// Cell size of the coarsest noise octave; larger = smoother.
    pub correlation: usize,
    /// Number of value-noise octaves.
    pub octaves: u32,
    /// Strength of hard edges (0 = none, 1 = strong).
    pub edges: f64,
}

/// The named benchmark lookalikes plus the uniform-noise input.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Uniform i.i.d. pixels — the paper's "UI inputs".
    Uniform,
    /// Portrait-like: mid-bright, smooth, moderate edges.
    LenaLike,
    /// Dark, high-contrast blobs.
    PepperLike,
    /// Structured scene with strong edges.
    SailboatLike,
    /// Bright, low-contrast.
    TiffanyLike,
}

impl Benchmark {
    /// Every benchmark, in the paper's table order.
    pub const ALL: [Benchmark; 5] = [
        Benchmark::Uniform,
        Benchmark::LenaLike,
        Benchmark::PepperLike,
        Benchmark::SailboatLike,
        Benchmark::TiffanyLike,
    ];

    /// Table row label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Uniform => "Uniform",
            Benchmark::LenaLike => "Lena-like",
            Benchmark::PepperLike => "Pepper-like",
            Benchmark::SailboatLike => "Sailboat-like",
            Benchmark::TiffanyLike => "Tiffany-like",
        }
    }

    /// The generator parameters for this benchmark.
    #[must_use]
    pub fn spec(self) -> Option<SyntheticSpec> {
        match self {
            Benchmark::Uniform => None,
            Benchmark::LenaLike => Some(SyntheticSpec {
                brightness: 124.0,
                contrast: 47.0,
                correlation: 16,
                octaves: 4,
                edges: 0.25,
            }),
            Benchmark::PepperLike => Some(SyntheticSpec {
                brightness: 105.0,
                contrast: 55.0,
                correlation: 12,
                octaves: 3,
                edges: 0.5,
            }),
            Benchmark::SailboatLike => Some(SyntheticSpec {
                brightness: 125.0,
                contrast: 64.0,
                correlation: 10,
                octaves: 5,
                edges: 0.6,
            }),
            Benchmark::TiffanyLike => Some(SyntheticSpec {
                brightness: 180.0,
                contrast: 35.0,
                correlation: 20,
                octaves: 3,
                edges: 0.15,
            }),
        }
    }

    /// Generates the benchmark image (deterministic in `(self, size, seed)`).
    #[must_use]
    pub fn generate(self, width: usize, height: usize, seed: u64) -> Image {
        match self.spec() {
            None => uniform_noise(width, height, seed),
            Some(spec) => synthesize(width, height, seed, spec),
        }
    }
}

/// I.i.d. uniform pixels — the "UI inputs".
#[must_use]
pub fn uniform_noise(width: usize, height: usize, seed: u64) -> Image {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let pixels = (0..width * height).map(|_| rng.gen::<u8>()).collect();
    Image::from_pixels(width, height, pixels)
}

/// Multi-octave value noise with optional hard edges, normalized to the
/// target brightness/contrast.
#[must_use]
pub fn synthesize(width: usize, height: usize, seed: u64, spec: SyntheticSpec) -> Image {
    assert!(spec.correlation >= 2, "correlation cell must be ≥ 2");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut field = vec![0.0f64; width * height];

    // Smooth base: octaves of bilinear value noise.
    let mut amplitude = 1.0;
    let mut cell = spec.correlation;
    for _ in 0..spec.octaves {
        add_value_noise(&mut field, width, height, cell.max(2), amplitude, &mut rng);
        amplitude *= 0.5;
        cell = (cell / 2).max(2);
    }

    // Hard structure: a few random half-plane / blob edges.
    if spec.edges > 0.0 {
        let count = 2 + (spec.edges * 6.0) as usize;
        for _ in 0..count {
            let cx = rng.gen_range(0.0..width as f64);
            let cy = rng.gen_range(0.0..height as f64);
            let angle = rng.gen_range(0.0..std::f64::consts::TAU);
            let (nx, ny) = (angle.cos(), angle.sin());
            let step = rng.gen_range(-1.0..1.0) * spec.edges;
            let blob = rng.gen_bool(0.5);
            let radius = rng.gen_range(0.15..0.4) * width.min(height) as f64;
            for y in 0..height {
                for x in 0..width {
                    let inside = if blob {
                        let dx = x as f64 - cx;
                        let dy = y as f64 - cy;
                        (dx * dx + dy * dy).sqrt() < radius
                    } else {
                        (x as f64 - cx) * nx + (y as f64 - cy) * ny > 0.0
                    };
                    if inside {
                        field[y * width + x] += step;
                    }
                }
            }
        }
    }

    // Normalize to the requested brightness and contrast.
    let mean = field.iter().sum::<f64>() / field.len() as f64;
    let var = field.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / field.len() as f64;
    let std = var.sqrt().max(1e-9);
    let pixels = field
        .iter()
        .map(|v| {
            let z = (v - mean) / std;
            (spec.brightness + z * spec.contrast).clamp(0.0, 255.0).round() as u8
        })
        .collect();
    Image::from_pixels(width, height, pixels)
}

fn add_value_noise(
    field: &mut [f64],
    width: usize,
    height: usize,
    cell: usize,
    amplitude: f64,
    rng: &mut ChaCha8Rng,
) {
    let gw = width / cell + 2;
    let gh = height / cell + 2;
    let grid: Vec<f64> = (0..gw * gh).map(|_| rng.gen_range(-1.0..1.0)).collect();
    for y in 0..height {
        for x in 0..width {
            let fx = x as f64 / cell as f64;
            let fy = y as f64 / cell as f64;
            let (ix, iy) = (fx as usize, fy as usize);
            let (tx, ty) = (fx - ix as f64, fy - iy as f64);
            // Smoothstep for C1-continuous interpolation.
            let sx = tx * tx * (3.0 - 2.0 * tx);
            let sy = ty * ty * (3.0 - 2.0 * ty);
            let g = |gx: usize, gy: usize| grid[gy * gw + gx];
            let top = g(ix, iy) * (1.0 - sx) + g(ix + 1, iy) * sx;
            let bot = g(ix, iy + 1) * (1.0 - sx) + g(ix + 1, iy + 1) * sx;
            field[y * width + x] += amplitude * (top * (1.0 - sy) + bot * sy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for b in Benchmark::ALL {
            assert_eq!(b.generate(32, 32, 7), b.generate(32, 32, 7), "{b:?}");
        }
        assert_ne!(
            Benchmark::LenaLike.generate(32, 32, 1),
            Benchmark::LenaLike.generate(32, 32, 2)
        );
    }

    #[test]
    fn natural_images_are_correlated_noise_is_not() {
        let lena = Benchmark::LenaLike.generate(64, 64, 3);
        let noise = Benchmark::Uniform.generate(64, 64, 3);
        assert!(lena.autocorrelation() > 0.8, "natural-like: {}", lena.autocorrelation());
        assert!(noise.autocorrelation().abs() < 0.15, "white noise: {}", noise.autocorrelation());
    }

    #[test]
    fn statistics_roughly_match_spec() {
        for b in [Benchmark::LenaLike, Benchmark::PepperLike, Benchmark::TiffanyLike] {
            let spec = b.spec().unwrap();
            let img = b.generate(96, 96, 11);
            assert!(
                (img.mean() - spec.brightness).abs() < 20.0,
                "{b:?}: mean {} vs {}",
                img.mean(),
                spec.brightness
            );
            assert!(
                (img.stddev() - spec.contrast).abs() < 25.0,
                "{b:?}: σ {} vs {}",
                img.stddev(),
                spec.contrast
            );
        }
    }

    #[test]
    fn tiffany_is_brighter_than_pepper() {
        let t = Benchmark::TiffanyLike.generate(48, 48, 5);
        let p = Benchmark::PepperLike.generate(48, 48, 5);
        assert!(t.mean() > p.mean() + 30.0);
    }

    #[test]
    fn names_are_stable_table_labels() {
        let names: Vec<&str> = Benchmark::ALL.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["Uniform", "Lena-like", "Pepper-like", "Sailboat-like", "Tiffany-like"]);
    }

    #[test]
    fn all_pixels_exercised_by_noise() {
        let img = uniform_noise(64, 64, 9);
        let mut seen = [false; 256];
        for &p in img.pixels() {
            seen[p as usize] = true;
        }
        assert!(seen.iter().filter(|&&s| s).count() > 200);
    }
}
