//! `ola-serve`: a high-QPS datapath analysis service with a
//! content-addressed result cache.
//!
//! The server speaks hand-rolled HTTP/1.1 over `std::net` (zero new
//! dependencies, matching the repo's hand-rolled JSON idiom) and exposes
//! the `ola-synth` analysis surface as a long-running service:
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /query` | Run a [`ola_synth::Query`] (pareto / sweep / sta / lint / verify); response embeds an `ola.run-manifest/v1` manifest |
//! | `GET /healthz` | Liveness + drain state |
//! | `GET /metrics` | Process metric registry (counters + gauges) as JSON |
//! | `POST /admin/drain` | SIGTERM-equivalent graceful drain |
//!
//! Queries are canonicalized, content-addressed with SHA-256, and
//! deduplicated through [`ola_core::cache::ContentCache`]: N identical
//! in-flight queries cost exactly one computation (single-flight), and a
//! cache hit returns bytes **bit-identical** to the cold computation —
//! manifest artifact hashes included — because the whole response body is
//! rendered once at fill time. Cache status travels in `X-Ola-Cache` /
//! `X-Ola-Key` headers, outside the cached bytes.
//!
//! Overload is shed at the door: a bounded accept queue answers `429` +
//! `Retry-After` when full, per-peer token buckets ([`limiter`]) shape
//! abusive clients, and per-request deadlines ride the PR-6 ambient
//! [`ola_core::CancelToken`] stack so runaway queries unwind into `503`s
//! instead of wedging workers. A worker panic answers `500` and the
//! worker survives. See [`server`] for the full policy and `DESIGN.md`
//! §15 for rationale.

// Request-derived data must never panic the worker, not even on a
// violated "can't happen": this crate forgoes `.expect()` outside tests
// and threads typed errors to a `400`/`500` response instead. The
// workspace-wide `clippy::unwrap_used` ban plus this crate-local bar is
// what keeps the catch_unwind 500 path a last resort rather than a
// control-flow mechanism. (`allow-expect-in-tests` in clippy.toml keeps
// test assertions loud.)
#![warn(clippy::expect_used)]

pub mod http;
pub mod limiter;
pub mod server;
pub mod wire;

pub use http::{HttpLimits, Request, Response};
pub use limiter::{RateConfig, RateDecision, RateLimiter};
pub use server::{Server, ServerConfig};
