//! Per-peer token-bucket rate limiting.
//!
//! One bucket per peer IP: `capacity` tokens, refilled continuously at
//! `refill_per_sec`. A request spends one token; an empty bucket means
//! 429 with a `Retry-After` derived from the refill rate. Buckets are
//! created on first sight and pruned once full again and idle, so the map
//! stays bounded by the active peer set.
//!
//! Time is passed in explicitly (seconds since an arbitrary epoch), which
//! keeps the arithmetic testable without sleeping.

use std::collections::HashMap;
use std::net::IpAddr;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Token-bucket parameters.
#[derive(Clone, Copy, Debug)]
pub struct RateConfig {
    /// Bucket capacity (burst size), tokens. Must be ≥ 1.
    pub capacity: f64,
    /// Refill rate, tokens per second.
    pub refill_per_sec: f64,
}

impl Default for RateConfig {
    fn default() -> Self {
        RateConfig { capacity: 100.0, refill_per_sec: 2000.0 }
    }
}

struct Bucket {
    tokens: f64,
    last: f64,
}

/// The per-peer limiter. Cheap to share behind an `Arc`.
pub struct RateLimiter {
    cfg: RateConfig,
    epoch: Instant,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

/// Outcome of a rate-limit probe.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RateDecision {
    /// Token granted.
    Allow,
    /// Bucket empty: retry after the given number of seconds (≥ 1,
    /// rounded up for the `Retry-After` header).
    Deny {
        /// Whole seconds until a token is available.
        retry_after_secs: u64,
    },
}

impl RateLimiter {
    /// A limiter with the given parameters (capacity clamped to ≥ 1
    /// token, refill to > 0).
    #[must_use]
    pub fn new(cfg: RateConfig) -> RateLimiter {
        let cfg = RateConfig {
            capacity: cfg.capacity.max(1.0),
            refill_per_sec: cfg.refill_per_sec.max(1e-6),
        };
        RateLimiter { cfg, epoch: Instant::now(), buckets: Mutex::new(HashMap::new()) }
    }

    /// Probes the bucket for `peer` at the current wall clock.
    pub fn check(&self, peer: IpAddr) -> RateDecision {
        self.check_at(peer, self.epoch.elapsed().as_secs_f64())
    }

    /// Probes the bucket for `peer` at explicit time `now` (seconds since
    /// the limiter's epoch) — the deterministic core [`check`][Self::check]
    /// wraps.
    pub fn check_at(&self, peer: IpAddr, now: f64) -> RateDecision {
        let mut buckets = self.buckets.lock().unwrap_or_else(PoisonError::into_inner);
        let bucket = buckets.entry(peer).or_insert(Bucket { tokens: self.cfg.capacity, last: now });
        let elapsed = (now - bucket.last).max(0.0);
        bucket.tokens = (bucket.tokens + elapsed * self.cfg.refill_per_sec).min(self.cfg.capacity);
        bucket.last = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            RateDecision::Allow
        } else {
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / self.cfg.refill_per_sec).ceil().max(1.0);
            // Cap to something a client can sensibly honor.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let retry_after_secs = if secs >= 3600.0 { 3600 } else { secs as u64 };
            RateDecision::Deny { retry_after_secs }
        }
    }

    /// Drops buckets that have refilled completely — they carry no state a
    /// fresh bucket wouldn't. Called opportunistically by the server.
    pub fn prune(&self) {
        let now = self.epoch.elapsed().as_secs_f64();
        let mut buckets = self.buckets.lock().unwrap_or_else(PoisonError::into_inner);
        buckets.retain(|_, b| {
            let refilled = b.tokens + (now - b.last).max(0.0) * self.cfg.refill_per_sec;
            refilled < self.cfg.capacity
        });
    }

    /// Number of tracked peers (for the `ola.serve.peers` gauge).
    #[must_use]
    pub fn peers(&self) -> usize {
        self.buckets.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn ip(last: u8) -> IpAddr {
        IpAddr::V4(Ipv4Addr::new(10, 0, 0, last))
    }

    #[test]
    fn burst_spends_capacity_then_denies_with_retry_after() {
        let rl = RateLimiter::new(RateConfig { capacity: 3.0, refill_per_sec: 1.0 });
        for _ in 0..3 {
            assert_eq!(rl.check_at(ip(1), 0.0), RateDecision::Allow);
        }
        match rl.check_at(ip(1), 0.0) {
            RateDecision::Deny { retry_after_secs } => assert!(retry_after_secs >= 1),
            RateDecision::Allow => panic!("bucket must be empty"),
        }
    }

    #[test]
    fn refill_restores_tokens_over_time() {
        let rl = RateLimiter::new(RateConfig { capacity: 2.0, refill_per_sec: 10.0 });
        assert_eq!(rl.check_at(ip(2), 0.0), RateDecision::Allow);
        assert_eq!(rl.check_at(ip(2), 0.0), RateDecision::Allow);
        assert!(matches!(rl.check_at(ip(2), 0.0), RateDecision::Deny { .. }));
        // 0.2 s at 10 tokens/s = 2 tokens, capped at capacity.
        assert_eq!(rl.check_at(ip(2), 0.2), RateDecision::Allow);
    }

    #[test]
    fn peers_are_isolated() {
        let rl = RateLimiter::new(RateConfig { capacity: 1.0, refill_per_sec: 0.001 });
        assert_eq!(rl.check_at(ip(3), 0.0), RateDecision::Allow);
        assert!(matches!(rl.check_at(ip(3), 0.0), RateDecision::Deny { .. }));
        assert_eq!(rl.check_at(ip(4), 0.0), RateDecision::Allow, "other peer unaffected");
        assert_eq!(rl.peers(), 2);
    }

    #[test]
    fn retry_after_is_bounded_and_positive() {
        let rl = RateLimiter::new(RateConfig { capacity: 1.0, refill_per_sec: 1e-6 });
        assert_eq!(rl.check_at(ip(5), 0.0), RateDecision::Allow);
        match rl.check_at(ip(5), 0.0) {
            RateDecision::Deny { retry_after_secs } => {
                assert!(retry_after_secs >= 1);
                assert!(retry_after_secs <= 3600, "capped for sane clients");
            }
            RateDecision::Allow => panic!("must deny"),
        }
    }

    #[test]
    fn prune_drops_only_full_buckets() {
        let rl = RateLimiter::new(RateConfig { capacity: 1.0, refill_per_sec: 1e9 });
        let _ = rl.check(ip(6));
        // At 1e9 tokens/s the bucket is instantly full again.
        std::thread::sleep(std::time::Duration::from_millis(2));
        rl.prune();
        assert_eq!(rl.peers(), 0, "refilled bucket pruned");
    }
}
