//! A hand-rolled HTTP/1.1 subset over `std::io`, matching the repo's
//! zero-dependency idiom (cf. the hand-rolled JSON in
//! [`ola_core::obs::json`]).
//!
//! Exactly what the wire API needs, nothing more: request-line + headers +
//! `Content-Length` bodies, keep-alive by default (`Connection: close`
//! honored), CRLF framing, and hard size limits ([`HttpLimits`]) so a
//! hostile peer cannot balloon memory. No chunked encoding, no multipart,
//! no TLS — the service speaks plain JSON bodies on a trusted network.
//!
//! Both directions are implemented (the load generator is a first-class
//! client of this module), and parse(serialize(x)) == x for every
//! representable message — property-tested in `tests/proptest_http.rs`.

use std::io::{self, BufRead, Write};

/// Size limits for inbound messages.
#[derive(Clone, Copy, Debug)]
pub struct HttpLimits {
    /// Longest accepted request/status line, bytes (CRLF included).
    pub max_line: usize,
    /// Most accepted headers per message.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`.
    pub max_body: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        HttpLimits { max_line: 8 * 1024, max_headers: 64, max_body: 1024 * 1024 }
    }
}

/// An HTTP/1.1 request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// Method token (`GET`, `POST`, …), uppercase by convention.
    pub method: String,
    /// Request target (origin form, e.g. `/query`).
    pub path: String,
    /// Header fields in wire order. `Content-Length` is derived from the
    /// body at serialization time and stripped at parse time, so it never
    /// appears (and can never lie) here.
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

/// An HTTP/1.1 response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// Status code (200, 429, …).
    pub status: u16,
    /// Header fields in wire order (same `Content-Length` rule as
    /// [`Request::headers`]).
    pub headers: Vec<(String, String)>,
    /// Message body.
    pub body: Vec<u8>,
}

impl Response {
    /// A response with a JSON body and `Content-Type` set.
    #[must_use]
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// The standard reason phrase for this status (a small table; unknown
    /// codes render as `Status`).
    #[must_use]
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            _ => "Status",
        }
    }
}

/// A malformed or over-limit message. The connection should be closed
/// after one of these — framing cannot be trusted afterwards.
#[derive(Debug)]
pub enum HttpError {
    /// Underlying transport failure.
    Io(io::Error),
    /// Protocol violation or limit breach; the message says which.
    Malformed(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Io(e) => write!(f, "io: {e}"),
            HttpError::Malformed(m) => write!(f, "malformed http: {m}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

fn malformed(msg: impl Into<String>) -> HttpError {
    HttpError::Malformed(msg.into())
}

/// Reads one CRLF-terminated line (returned without the CRLF). Bounded by
/// `max`; EOF before any byte yields `None`.
fn read_line(r: &mut impl BufRead, max: usize) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => {
                if buf.is_empty() {
                    return Ok(None);
                }
                return Err(malformed("eof mid-line"));
            }
            Ok(_) => {
                buf.push(byte[0]);
                if buf.len() > max {
                    return Err(malformed(format!("line over {max} bytes")));
                }
                if buf.ends_with(b"\r\n") {
                    buf.truncate(buf.len() - 2);
                    let s = String::from_utf8(buf).map_err(|_| malformed("non-utf8 line"))?;
                    return Ok(Some(s));
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
}

/// Validates a header-name token: RFC 7230 `tchar`s only.
fn valid_token(s: &str) -> bool {
    !s.is_empty() && s.bytes().all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

/// Reads headers until the blank line; returns `(headers, content_length)`
/// with any `Content-Length` field consumed rather than kept.
fn read_headers(
    r: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<(Vec<(String, String)>, usize), HttpError> {
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let line = read_line(r, limits.max_line)?.ok_or_else(|| malformed("eof in headers"))?;
        if line.is_empty() {
            return Ok((headers, content_length));
        }
        if headers.len() >= limits.max_headers {
            return Err(malformed(format!("more than {} headers", limits.max_headers)));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| malformed(format!("header without colon: {line:?}")))?;
        if !valid_token(name) {
            return Err(malformed(format!("bad header name {name:?}")));
        }
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| malformed(format!("bad content-length {value:?}")))?;
            if content_length > limits.max_body {
                return Err(malformed(format!(
                    "content-length {content_length} over limit {}",
                    limits.max_body
                )));
            }
        } else {
            headers.push((name.to_owned(), value.to_owned()));
        }
    }
}

fn read_body(r: &mut impl BufRead, len: usize) -> Result<Vec<u8>, HttpError> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            malformed("eof in body")
        } else {
            HttpError::Io(e)
        }
    })?;
    Ok(body)
}

/// Reads one request off `r`. `Ok(None)` is a clean EOF between requests
/// (the peer closed a keep-alive connection).
///
/// # Errors
///
/// [`HttpError::Malformed`] on any framing violation; [`HttpError::Io`]
/// on transport failure (including read timeouts).
pub fn read_request(
    r: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(r, limits.max_line)? else {
        return Ok(None);
    };
    let mut parts = line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(malformed(format!("bad request line {line:?}"))),
    };
    if !valid_token(method) {
        return Err(malformed(format!("bad method {method:?}")));
    }
    if version != "HTTP/1.1" {
        return Err(malformed(format!("unsupported version {version:?}")));
    }
    let (headers, content_length) = read_headers(r, limits)?;
    let body = read_body(r, content_length)?;
    Ok(Some(Request { method: method.to_owned(), path: path.to_owned(), headers, body }))
}

/// Reads one response off `r`. `Ok(None)` on clean EOF.
///
/// # Errors
///
/// Same contract as [`read_request`].
pub fn read_response(
    r: &mut impl BufRead,
    limits: &HttpLimits,
) -> Result<Option<Response>, HttpError> {
    let Some(line) = read_line(r, limits.max_line)? else {
        return Ok(None);
    };
    let mut parts = line.splitn(3, ' ');
    let (version, code) = match (parts.next(), parts.next()) {
        (Some(v), Some(c)) => (v, c),
        _ => return Err(malformed(format!("bad status line {line:?}"))),
    };
    if version != "HTTP/1.1" {
        return Err(malformed(format!("unsupported version {version:?}")));
    }
    let status: u16 = code.parse().map_err(|_| malformed(format!("bad status code {code:?}")))?;
    let (headers, content_length) = read_headers(r, limits)?;
    let body = read_body(r, content_length)?;
    Ok(Some(Response { status, headers, body }))
}

/// Serializes `req` to `w` (adds `Content-Length`, flushes).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    let mut head = format!("{} {} HTTP/1.1\r\n", req.method, req.path);
    for (k, v) in &req.headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", req.body.len()));
    // One write for head + body: a split write puts the body in its own
    // TCP segment, and Nagle + delayed ACK turns that into a ~40 ms stall
    // per message on loopback.
    let mut message = head.into_bytes();
    message.extend_from_slice(&req.body);
    w.write_all(&message)?;
    w.flush()
}

/// Serializes `resp` to `w` (adds `Content-Length`, flushes).
///
/// # Errors
///
/// Propagates transport errors.
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    let mut head = format!("HTTP/1.1 {} {}\r\n", resp.status, resp.reason());
    for (k, v) in &resp.headers {
        head.push_str(k);
        head.push_str(": ");
        head.push_str(v);
        head.push_str("\r\n");
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", resp.body.len()));
    // Same single-write rule as `write_request` (Nagle + delayed ACK).
    let mut message = head.into_bytes();
    message.extend_from_slice(&resp.body);
    w.write_all(&message)?;
    w.flush()
}

/// Finds a header by case-insensitive name.
#[must_use]
pub fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k.eq_ignore_ascii_case(name)).map(|(_, v)| v.as_str())
}

/// True when the message asked to drop the connection after this exchange.
#[must_use]
pub fn wants_close(headers: &[(String, String)]) -> bool {
    header(headers, "connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn roundtrip_request(req: &Request) -> Request {
        let mut wire = Vec::new();
        write_request(&mut wire, req).unwrap();
        let mut r = BufReader::new(&wire[..]);
        read_request(&mut r, &HttpLimits::default()).unwrap().expect("one request")
    }

    #[test]
    fn request_roundtrips_with_body_and_headers() {
        let req = Request {
            method: "POST".into(),
            path: "/query".into(),
            headers: vec![
                ("X-Trace".into(), "abc".into()),
                ("Accept".into(), "application/json".into()),
            ],
            body: br#"{"kind":"lint"}"#.to_vec(),
        };
        assert_eq!(roundtrip_request(&req), req);
        let empty = Request {
            method: "GET".into(),
            path: "/healthz".into(),
            headers: vec![],
            body: vec![],
        };
        assert_eq!(roundtrip_request(&empty), empty);
    }

    #[test]
    fn response_roundtrips() {
        let resp = Response::json(429, r#"{"error":"slow down"}"#.into());
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let got = read_response(&mut r, &HttpLimits::default()).unwrap().expect("one response");
        assert_eq!(got, resp);
        assert_eq!(got.reason(), "Too Many Requests");
    }

    #[test]
    fn keep_alive_carries_multiple_requests_per_connection() {
        let a = Request { method: "GET".into(), path: "/a".into(), headers: vec![], body: vec![] };
        let b = Request {
            method: "POST".into(),
            path: "/b".into(),
            headers: vec![],
            body: b"xy".to_vec(),
        };
        let mut wire = Vec::new();
        write_request(&mut wire, &a).unwrap();
        write_request(&mut wire, &b).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let lim = HttpLimits::default();
        assert_eq!(read_request(&mut r, &lim).unwrap().unwrap(), a);
        assert_eq!(read_request(&mut r, &lim).unwrap().unwrap(), b);
        assert!(read_request(&mut r, &lim).unwrap().is_none(), "clean EOF after the last request");
    }

    #[test]
    fn malformed_messages_are_rejected_not_misparsed() {
        let lim = HttpLimits::default();
        let cases: &[&[u8]] = &[
            b"GET\r\n\r\n",                                      // no path
            b"GET /x HTTP/1.0\r\n\r\n",                          // wrong version
            b"GET /x HTTP/1.1 extra\r\n\r\n",                    // 4 request-line parts
            b"GET /x HTTP/1.1\r\nno-colon\r\n\r\n",              // header without colon
            b"GET /x HTTP/1.1\r\nContent-Length: beef\r\n\r\n",  // bad length
            b"GET /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc", // truncated body
            b"GET /x HTTP/1.1\r\nBad Name: v\r\n\r\n",           // space in header name
        ];
        for case in cases {
            let mut r = BufReader::new(*case);
            assert!(
                matches!(read_request(&mut r, &lim), Err(HttpError::Malformed(_))),
                "must reject {:?}",
                String::from_utf8_lossy(case)
            );
        }
    }

    #[test]
    fn limits_bound_lines_headers_and_bodies() {
        let lim = HttpLimits { max_line: 64, max_headers: 2, max_body: 8 };
        let long_path = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(200));
        let mut r = BufReader::new(long_path.as_bytes());
        assert!(read_request(&mut r, &lim).is_err(), "over-long line");

        let many = b"GET /x HTTP/1.1\r\nA: 1\r\nB: 2\r\nC: 3\r\n\r\n";
        let mut r = BufReader::new(&many[..]);
        assert!(read_request(&mut r, &lim).is_err(), "too many headers");

        let big = b"POST /x HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789";
        let mut r = BufReader::new(&big[..]);
        assert!(read_request(&mut r, &lim).is_err(), "body over limit");
    }

    #[test]
    fn content_length_is_derived_never_trusted_twice() {
        // A parsed message never exposes Content-Length in headers, so
        // re-serialization cannot disagree with the actual body.
        let req = Request {
            method: "POST".into(),
            path: "/q".into(),
            headers: vec![],
            body: b"12345".to_vec(),
        };
        let got = roundtrip_request(&req);
        assert!(header(&got.headers, "content-length").is_none());
        assert_eq!(got.body.len(), 5);
    }

    #[test]
    fn connection_close_is_detected() {
        assert!(wants_close(&[("Connection".into(), "close".into())]));
        assert!(wants_close(&[("connection".into(), "CLOSE".into())]));
        assert!(!wants_close(&[("Connection".into(), "keep-alive".into())]));
        assert!(!wants_close(&[]));
    }
}
