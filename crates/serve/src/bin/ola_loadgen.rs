//! `ola-loadgen` — closed-loop load generator for `ola-serve`.
//!
//! ```text
//! ola-loadgen --addr HOST:PORT [--clients N] [--requests N]
//!             [--out FILE] [--min-qps N] [--materialize DIR]
//! ```
//!
//! Each client thread holds one keep-alive connection and sends queries
//! back-to-back (closed loop: the next request leaves when the previous
//! response lands). The query mix cycles through a small set of distinct
//! analyses, so after a one-pass warmup almost every request is a cache
//! hit — this measures the **sustained cached-query throughput** the
//! acceptance gate cares about, with cold fill cost isolated in the
//! warmup numbers.
//!
//! Three invariants are enforced while measuring, any violation is an
//! error counted in the summary (and a non-zero exit):
//!
//! * every response is `200` with parseable `{"manifest":..,"result":..}`,
//! * **bit-identity**: all bodies for one `X-Ola-Key` are byte-identical
//!   to the first body seen for that key — cache hits reproduce the cold
//!   computation exactly, manifest artifact hashes included,
//! * the embedded manifest's recorded SHA-256 matches a re-hash of the
//!   re-rendered result.
//!
//! With `--materialize DIR`, one response per unique key is written out
//! as `DIR/results/serve/<experiment>.result.json` plus
//! `DIR/results/manifests/<experiment>.json`, in exactly the layout the
//! unmodified `manifest_check` binary validates — CI closes the loop by
//! running it against these files.
//!
//! The summary (sustained QPS, latency percentiles, error counts) is
//! written to `--out` (default `BENCH_serve.json`).

use ola_core::obs::json::{parse, JsonValue};
use ola_core::obs::sha256;
use ola_serve::http::{self, HttpLimits, Request};
use std::collections::HashMap;
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// The query mix: distinct analyses, all cheap enough to serve from cache
/// at four-digit QPS. Width and expression variety exercise distinct
/// cache keys.
const QUERIES: [&str; 7] = [
    r#"{"kind":"lint","expr":"y = a * 0.5 + b","width":3}"#,
    r#"{"kind":"lint","expr":"y = (a + b) * 0.25","width":4}"#,
    r#"{"kind":"sta","expr":"y = a + b","width":2,"ts_points":4}"#,
    r#"{"kind":"sta","expr":"y = a * 0.5 + b","width":3,"ts_points":4}"#,
    r#"{"kind":"sweep","expr":"y = a * 0.5 + b","width":2,"ts_points":3,"samples":8}"#,
    r#"{"kind":"sweep","expr":"y = (a + b) * 0.5","width":2,"ts_points":3,"samples":8}"#,
    r#"{"kind":"verify","expr":"y = a * 0.5 + b","width":2,"ts_points":3}"#,
];

struct Baseline {
    body: Vec<u8>,
    experiment: String,
}

#[derive(Default)]
struct Tally {
    latencies_us: Vec<u64>,
    hits: u64,
    misses: u64,
    errors: Vec<String>,
}

struct SharedState {
    /// First body seen per content address — the bit-identity reference.
    baselines: Mutex<HashMap<String, Baseline>>,
    errors_seen: Mutex<Vec<String>>,
}

fn usage() -> ! {
    eprintln!("usage: ola-loadgen --addr HOST:PORT [flags]");
    eprintln!("flags:");
    eprintln!("  --clients N       concurrent closed-loop clients (default 4)");
    eprintln!("  --requests N      total measured requests (default 2000)");
    eprintln!("  --out FILE        summary JSON (default BENCH_serve.json)");
    eprintln!("  --min-qps N       exit 1 if sustained QPS falls below N");
    eprintln!("  --materialize DIR write result files + manifests for manifest_check");
    eprintln!("exit codes: 0 ok, 1 errors or below --min-qps, 2 usage");
    std::process::exit(2);
}

fn connect(addr: &str) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(30)))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((reader, stream))
}

/// Sends one query on the connection; validates the response; returns
/// (latency, cache label) or an error description.
fn one_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    query: &str,
    shared: &SharedState,
) -> Result<(u64, String), String> {
    let started = Instant::now();
    http::write_request(
        writer,
        &Request {
            method: "POST".into(),
            path: "/query".into(),
            headers: vec![],
            body: query.as_bytes().to_vec(),
        },
    )
    .map_err(|e| format!("write: {e}"))?;
    let resp = http::read_response(reader, &HttpLimits::default())
        .map_err(|e| format!("read: {e}"))?
        .ok_or_else(|| "connection closed mid-run".to_string())?;
    let latency_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    if resp.status != 200 {
        return Err(format!("status {} for {query}", resp.status));
    }
    let key = http::header(&resp.headers, "x-ola-key")
        .ok_or_else(|| "missing X-Ola-Key".to_string())?
        .to_owned();
    let label = http::header(&resp.headers, "x-ola-cache").unwrap_or("?").to_owned();

    let mut baselines = shared.baselines.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(baseline) = baselines.get(&key) {
        if baseline.body != resp.body {
            return Err(format!("bit-identity violation for key {key}: cached body differs"));
        }
    } else {
        // First sighting: deep-check the body once, then freeze it as the
        // reference every later response must match byte-for-byte.
        let text = std::str::from_utf8(&resp.body).map_err(|_| "body not utf-8".to_string())?;
        let doc = parse(text).map_err(|e| format!("body not JSON: {e}"))?;
        let manifest = doc.get("manifest").ok_or("no manifest in body")?;
        let result = doc.get("result").ok_or("no result in body")?;
        let experiment = manifest
            .get("experiment")
            .and_then(JsonValue::as_str)
            .ok_or("manifest missing experiment")?
            .to_owned();
        let rendered = result.render();
        let outputs = manifest.get("outputs").and_then(JsonValue::as_array).ok_or("no outputs")?;
        let rec = outputs.first().ok_or("empty outputs")?;
        let recorded = rec.get("sha256").and_then(JsonValue::as_str).ok_or("no sha256")?;
        let actual = sha256::hex_digest(rendered.as_bytes());
        if recorded != actual {
            return Err(format!(
                "manifest hash mismatch for {experiment}: recorded {recorded}, actual {actual}"
            ));
        }
        baselines.insert(key, Baseline { body: resp.body, experiment });
    }
    Ok((latency_us, label))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = String::new();
    let mut clients = 4usize;
    let mut requests = 2000usize;
    let mut out = PathBuf::from("BENCH_serve.json");
    let mut min_qps = 0.0f64;
    let mut materialize: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--clients" => {
                i += 1;
                clients = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--requests" => {
                i += 1;
                requests = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                out = PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage()));
            }
            "--min-qps" => {
                i += 1;
                min_qps = args.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--materialize" => {
                i += 1;
                materialize = Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage())));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
        i += 1;
    }
    if addr.is_empty() {
        eprintln!("--addr is required");
        usage();
    }
    let clients = clients.max(1);

    let shared = Arc::new(SharedState {
        baselines: Mutex::new(HashMap::new()),
        errors_seen: Mutex::new(Vec::new()),
    });

    // Warmup: one pass over the query mix on a single connection fills
    // the cache (cold cost isolated here) and freezes the baselines.
    let warmup_started = Instant::now();
    {
        let Ok((mut reader, mut writer)) = connect(&addr) else {
            eprintln!("ola-loadgen: cannot connect to {addr}");
            std::process::exit(2);
        };
        for query in QUERIES {
            if let Err(e) = one_request(&mut reader, &mut writer, query, &shared) {
                eprintln!("ola-loadgen: warmup failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let warmup_secs = warmup_started.elapsed().as_secs_f64();
    eprintln!("warmup: {} queries in {warmup_secs:.3}s", QUERIES.len());

    // Measured phase: closed-loop clients over keep-alive connections.
    let per_client = requests.div_ceil(clients);
    let measure_started = Instant::now();
    let mut handles = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || {
            let mut tally = Tally::default();
            let Ok((mut reader, mut writer)) = connect(&addr) else {
                tally.errors.push(format!("client {c}: connect failed"));
                return tally;
            };
            for n in 0..per_client {
                let query = QUERIES[(c + n) % QUERIES.len()];
                match one_request(&mut reader, &mut writer, query, &shared) {
                    Ok((us, label)) => {
                        tally.latencies_us.push(us);
                        if label == "miss" {
                            tally.misses += 1;
                        } else {
                            tally.hits += 1;
                        }
                    }
                    Err(e) => {
                        tally.errors.push(format!("client {c}: {e}"));
                        // Reconnect once after an error; a dead server
                        // will just keep accumulating errors.
                        if let Ok(conn) = connect(&addr) {
                            (reader, writer) = conn;
                        }
                    }
                }
            }
            tally
        }));
    }
    let mut latencies: Vec<u64> = Vec::with_capacity(requests);
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut errors: Vec<String> = Vec::new();
    for h in handles {
        let tally = h.join().unwrap_or_default();
        latencies.extend(tally.latencies_us);
        hits += tally.hits;
        misses += tally.misses;
        errors.extend(tally.errors);
    }
    errors.extend(shared.errors_seen.lock().unwrap_or_else(PoisonError::into_inner).drain(..));
    let elapsed = measure_started.elapsed().as_secs_f64().max(1e-9);
    let completed = latencies.len();
    #[allow(clippy::cast_precision_loss)]
    let qps = completed as f64 / elapsed;
    latencies.sort_unstable();
    let (p50, p90, p99) =
        (percentile(&latencies, 0.50), percentile(&latencies, 0.90), percentile(&latencies, 0.99));

    // Materialize one result document + manifest per unique key, in the
    // exact layout `manifest_check` validates.
    let mut materialized = 0usize;
    if let Some(root) = &materialize {
        let serve_dir = root.join("results/serve");
        let manifest_dir = root.join("results/manifests");
        for dir in [&serve_dir, &manifest_dir] {
            if let Err(e) = std::fs::create_dir_all(dir) {
                errors.push(format!("materialize: mkdir {}: {e}", dir.display()));
            }
        }
        let baselines = shared.baselines.lock().unwrap_or_else(PoisonError::into_inner);
        for baseline in baselines.values() {
            let text = String::from_utf8_lossy(&baseline.body);
            let Ok(doc) = parse(&text) else { continue };
            let (Some(manifest), Some(result)) = (doc.get("manifest"), doc.get("result")) else {
                continue;
            };
            let exp = &baseline.experiment;
            let result_path = serve_dir.join(format!("{exp}.result.json"));
            let manifest_path = manifest_dir.join(format!("{exp}.json"));
            let wrote = std::fs::write(&result_path, result.render())
                .and_then(|()| std::fs::write(&manifest_path, manifest.render()));
            match wrote {
                Ok(()) => materialized += 1,
                Err(e) => errors.push(format!("materialize {exp}: {e}")),
            }
        }
    }

    #[allow(clippy::cast_precision_loss)]
    let summary = JsonValue::Object(vec![
        ("bench".into(), JsonValue::str("ola-serve cached-query throughput")),
        ("clients".into(), JsonValue::U64(clients as u64)),
        ("requests_completed".into(), JsonValue::U64(completed as u64)),
        ("elapsed_secs".into(), JsonValue::F64(elapsed)),
        ("sustained_qps".into(), JsonValue::F64(qps)),
        ("latency_us_p50".into(), JsonValue::U64(p50)),
        ("latency_us_p90".into(), JsonValue::U64(p90)),
        ("latency_us_p99".into(), JsonValue::U64(p99)),
        ("cache_hits".into(), JsonValue::U64(hits)),
        ("cache_misses".into(), JsonValue::U64(misses)),
        ("unique_queries".into(), JsonValue::U64(QUERIES.len() as u64)),
        ("warmup_secs".into(), JsonValue::F64(warmup_secs)),
        ("errors".into(), JsonValue::U64(errors.len() as u64)),
        ("bit_identity_checked".into(), JsonValue::Bool(true)),
        ("materialized_manifests".into(), JsonValue::U64(materialized as u64)),
    ]);
    if let Err(e) = std::fs::write(&out, format!("{}\n", summary.render())) {
        eprintln!("ola-loadgen: cannot write {}: {e}", out.display());
    }
    eprintln!(
        "ola-loadgen: {completed} requests in {elapsed:.3}s = {qps:.0} req/s \
         (p50 {p50}us p90 {p90}us p99 {p99}us; {hits} hits / {misses} misses)"
    );
    for e in errors.iter().take(10) {
        eprintln!("  error: {e}");
    }
    if !errors.is_empty() {
        eprintln!("ola-loadgen: {} error(s)", errors.len());
        std::process::exit(1);
    }
    if min_qps > 0.0 && qps < min_qps {
        eprintln!("ola-loadgen: sustained {qps:.0} req/s below the --min-qps {min_qps:.0} gate");
        std::process::exit(1);
    }
}
