//! `ola-serve` — the long-running datapath analysis server.
//!
//! ```text
//! ola-serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!           [--deadline-ms MS] [--cache-capacity N] [--cache-dir DIR]
//!           [--rate-capacity N] [--rate-per-sec N] [--no-rate-limit]
//! ```
//!
//! Prints `listening <addr>` on stdout once bound (so a supervisor using
//! `--addr 127.0.0.1:0` can discover the port), then serves until either
//! `POST /admin/drain` arrives or **stdin reaches EOF**. The stdin
//! watcher is the SIGTERM equivalent under `unsafe_code = "forbid"` (no
//! libc, no signal handlers): run the server with its stdin on a pipe and
//! closing that pipe drains it gracefully — queued and in-flight requests
//! finish, then the process exits 0.

use ola_serve::{RateConfig, Server, ServerConfig};
use std::io::Read;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn usage() -> ! {
    eprintln!("usage: ola-serve [flags]");
    eprintln!("flags:");
    eprintln!("  --addr HOST:PORT    bind address (default 127.0.0.1:8841; :0 picks a port)");
    eprintln!("  --workers N         worker threads (default 4)");
    eprintln!("  --queue-depth N     bounded accept queue; full => 429 (default 256)");
    eprintln!("  --deadline-ms MS    per-request compute deadline (default 10000)");
    eprintln!("  --cache-capacity N  in-memory cache entries (default 1024)");
    eprintln!("  --cache-dir DIR     enable the disk cache tier under DIR");
    eprintln!("  --rate-capacity N   per-peer token-bucket burst (default 100)");
    eprintln!("  --rate-per-sec N    per-peer refill rate (default 2000)");
    eprintln!("  --no-rate-limit     disable per-peer rate limiting");
    eprintln!();
    eprintln!("drain: POST /admin/drain, or close the server's stdin (SIGTERM equivalent)");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(value: Option<&String>, flag: &str) -> T {
    match value.and_then(|v| v.parse().ok()) {
        Some(v) => v,
        None => {
            eprintln!("flag {flag} needs a numeric value");
            usage();
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ServerConfig { addr: "127.0.0.1:8841".into(), ..ServerConfig::default() };
    let mut rate = RateConfig::default();
    let mut rate_enabled = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                cfg.addr = args.get(i).cloned().unwrap_or_else(|| usage());
            }
            "--workers" => {
                i += 1;
                cfg.workers = parse_num(args.get(i), "--workers");
            }
            "--queue-depth" => {
                i += 1;
                cfg.queue_depth = parse_num(args.get(i), "--queue-depth");
            }
            "--deadline-ms" => {
                i += 1;
                cfg.request_deadline =
                    Duration::from_millis(parse_num(args.get(i), "--deadline-ms"));
            }
            "--cache-capacity" => {
                i += 1;
                cfg.cache.capacity = parse_num(args.get(i), "--cache-capacity");
            }
            "--cache-dir" => {
                i += 1;
                cfg.cache.disk_dir =
                    Some(PathBuf::from(args.get(i).cloned().unwrap_or_else(|| usage())));
            }
            "--rate-capacity" => {
                i += 1;
                rate.capacity = parse_num(args.get(i), "--rate-capacity");
            }
            "--rate-per-sec" => {
                i += 1;
                rate.refill_per_sec = parse_num(args.get(i), "--rate-per-sec");
            }
            "--no-rate-limit" => rate_enabled = false,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
        i += 1;
    }
    cfg.rate = rate_enabled.then_some(rate);

    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ola-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening {}", server.addr());

    // SIGTERM equivalent: watch stdin for EOF on a helper thread. When
    // the supervisor closes the pipe (or the endpoint drains us), stop.
    let stdin_closed = Arc::new(AtomicBool::new(false));
    {
        let stdin_closed = Arc::clone(&stdin_closed);
        std::thread::spawn(move || {
            let mut sink = [0u8; 256];
            let mut stdin = std::io::stdin();
            loop {
                match stdin.read(&mut sink) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {}
                }
            }
            stdin_closed.store(true, Ordering::SeqCst);
        });
    }
    while !server.is_draining() && !stdin_closed.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20));
    }
    eprintln!("ola-serve: draining");
    server.drain_and_join();
    eprintln!("ola-serve: drained cleanly");
}
