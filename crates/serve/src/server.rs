//! The analysis server: accept loop, bounded worker pool, backpressure,
//! rate limiting, per-request deadlines, and graceful drain.
//!
//! ## Architecture
//!
//! One accept thread polls a non-blocking listener and pushes accepted
//! connections onto a **bounded** queue; `workers` threads pop
//! connections and speak keep-alive HTTP/1.1 on them. A full queue is
//! answered with `429 Too Many Requests` + `Retry-After` *on the accept
//! thread* — overload sheds load at the door instead of growing an
//! unbounded backlog. Per-peer token buckets ([`crate::limiter`]) shape
//! abusive clients the same way.
//!
//! ## Deadlines and panics
//!
//! Every query runs under an ambient [`CancelToken`] with a latching
//! deadline (`request_deadline`), installed exactly as the `repro` driver
//! installs its budget token: the sampling engines and the
//! [`ola_core::parallel`] pool poll it cooperatively, so a runaway query
//! unwinds with the typed cancellation payload and becomes a `503`. A
//! genuine worker panic (including the `OLA_CHAOS_SERVE_PANIC` injection)
//! is caught per request, answered with `500`, counted
//! (`ola.serve.panics`) — and the worker lives on.
//!
//! ## Drain
//!
//! `unsafe_code = "forbid"` rules out a real SIGTERM handler (no libc),
//! so graceful shutdown is exposed as the SIGTERM-equivalent
//! `POST /admin/drain` endpoint plus [`Server::drain_and_join`] (the
//! `ola-serve` binary also drains on stdin EOF, so `kill`-ing the
//! supervisor pipe drains the server). Draining stops new work at the
//! door (`503`), lets queued and in-flight requests finish, then joins
//! every thread.

use crate::http::{self, HttpLimits, Request, Response};
use crate::limiter::{RateConfig, RateDecision, RateLimiter};
use crate::wire;
use ola_core::cache::{CacheConfig, ContentCache};
use ola_core::obs::json;
use ola_core::resilience::{chaos, install_ambient, is_cancel_payload};
use ola_core::{CacheKey, CancelToken};
use ola_synth::{Limits, Query, QueryError};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::net::{IpAddr, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads handling connections.
    pub workers: usize,
    /// Bounded connection-queue depth; a full queue sheds with 429.
    pub queue_depth: usize,
    /// Per-request compute deadline (cooperative, via the ambient token).
    pub request_deadline: Duration,
    /// Socket read timeout while waiting for a request on a keep-alive
    /// connection.
    pub read_timeout: Duration,
    /// Per-peer token-bucket parameters; `None` disables rate limiting.
    pub rate: Option<RateConfig>,
    /// Result-cache configuration (capacity, optional disk tier).
    pub cache: CacheConfig,
    /// Query work limits.
    pub limits: Limits,
    /// HTTP message limits.
    pub http: HttpLimits,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_depth: 256,
            request_deadline: Duration::from_secs(10),
            read_timeout: Duration::from_secs(5),
            rate: None,
            cache: CacheConfig::default(),
            limits: Limits::default(),
            http: HttpLimits::default(),
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    cache: ContentCache,
    limiter: Option<RateLimiter>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_cv: Condvar,
    draining: AtomicBool,
}

impl Shared {
    fn counter(&self, name: &str) {
        ola_core::obs::registry().counter(name).inc();
    }
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`Server::drain_and_join`].
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the server (accept thread + worker pool).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration io errors.
    pub fn start(cfg: ServerConfig) -> io::Result<Server> {
        ola_core::obs::init();
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            limiter: cfg.rate.map(RateLimiter::new),
            cache: ContentCache::new(cfg.cache.clone()),
            cfg,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            draining: AtomicBool::new(false),
        });
        let mut threads = Vec::with_capacity(workers + 1);
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("ola-serve-accept".into())
                    .spawn(move || accept_loop(&listener, &shared))?,
            );
        }
        for i in 0..workers {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("ola-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }
        Ok(Server { addr, shared, threads })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a drain was requested (endpoint or handle).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Initiates graceful drain and blocks until every queued and
    /// in-flight request has been answered and all threads exited.
    pub fn drain_and_join(self) {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.counter("ola.serve.drains");
        self.shared.queue_cv.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.counter("ola.serve.connections");
                if shared.draining.load(Ordering::SeqCst) {
                    refuse(stream, 503, "draining", None);
                    continue;
                }
                let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
                if queue.len() >= shared.cfg.queue_depth {
                    drop(queue);
                    shared.counter("ola.serve.rejected_queue_full");
                    refuse(stream, 429, "server saturated", Some(1));
                    continue;
                }
                queue.push_back(stream);
                let depth = queue.len();
                drop(queue);
                #[allow(clippy::cast_possible_wrap)]
                ola_core::obs::registry().gauge("ola.serve.queue_depth").set(depth as i64);
                shared.queue_cv.notify_one();
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
}

/// Best-effort one-shot rejection on the accept thread: blocking write of
/// a tiny response, then close.
fn refuse(stream: TcpStream, status: u16, message: &str, retry_after: Option<u64>) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut resp = Response::json(status, wire::error_body(message));
    if let Some(secs) = retry_after {
        resp.headers.push(("Retry-After".into(), secs.to_string()));
    }
    resp.headers.push(("Connection".into(), "close".into()));
    let mut stream = stream;
    let _ = http::write_response(&mut stream, &resp);
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.draining.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _timeout) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        };
        let Some(stream) = stream else { return };
        serve_connection(shared, stream);
    }
}

fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(()) = stream.set_nonblocking(false) else { return };
    let _ = stream.set_read_timeout(Some(shared.cfg.read_timeout));
    // Responses larger than one MSS would otherwise pay Nagle + delayed
    // ACK (~40 ms) on their trailing segment.
    let _ = stream.set_nodelay(true);
    let peer: Option<IpAddr> = stream.peer_addr().ok().map(|a| a.ip());
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        let req = match http::read_request(&mut reader, &shared.cfg.http) {
            Ok(Some(req)) => req,
            // Clean EOF, malformed framing, or read timeout: drop the
            // connection (a malformed message gets one parting 400).
            Ok(None) => return,
            Err(http::HttpError::Malformed(m)) => {
                shared.counter("ola.serve.malformed");
                let mut resp = Response::json(400, wire::error_body(&m));
                resp.headers.push(("Connection".into(), "close".into()));
                let _ = http::write_response(&mut writer, &resp);
                return;
            }
            Err(http::HttpError::Io(_)) => return,
        };
        let close_after = http::wants_close(&req.headers) || shared.draining.load(Ordering::SeqCst);
        let started = Instant::now();
        shared.counter("ola.serve.requests");
        let mut resp = handle(shared, peer, &req);
        let us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        ola_core::obs::registry().histogram("ola.serve.request_us").observe(us);
        shared.counter(match resp.status {
            200..=299 => "ola.serve.responses_2xx",
            400..=499 => "ola.serve.responses_4xx",
            _ => "ola.serve.responses_5xx",
        });
        let close_after = close_after || shared.draining.load(Ordering::SeqCst);
        if close_after {
            resp.headers.push(("Connection".into(), "close".into()));
        }
        if http::write_response(&mut writer, &resp).is_err() || close_after {
            return;
        }
    }
}

fn handle(shared: &Arc<Shared>, peer: Option<IpAddr>, req: &Request) -> Response {
    if let (Some(limiter), Some(ip)) = (shared.limiter.as_ref(), peer) {
        if let RateDecision::Deny { retry_after_secs } = limiter.check(ip) {
            shared.counter("ola.serve.rejected_rate_limited");
            let mut resp = Response::json(429, wire::error_body("rate limit exceeded"));
            resp.headers.push(("Retry-After".into(), retry_after_secs.to_string()));
            return resp;
        }
    }
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::json(
            200,
            json::JsonValue::Object(vec![
                ("ok".into(), json::JsonValue::Bool(true)),
                ("draining".into(), json::JsonValue::Bool(shared.draining.load(Ordering::SeqCst))),
            ])
            .render(),
        ),
        ("GET", "/metrics") => Response::json(200, wire::metrics_body()),
        ("POST", "/admin/drain") => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.counter("ola.serve.drains");
            shared.queue_cv.notify_all();
            Response::json(
                200,
                json::JsonValue::Object(vec![("draining".into(), json::JsonValue::Bool(true))])
                    .render(),
            )
        }
        ("POST", "/query") => handle_query(shared, req),
        ("GET" | "POST", _) => Response::json(404, wire::error_body("no such endpoint")),
        _ => Response::json(405, wire::error_body("method not allowed")),
    }
}

fn handle_query(shared: &Arc<Shared>, req: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&req.body) else {
        return Response::json(400, wire::error_body("body must be utf-8 JSON"));
    };
    let parsed = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return Response::json(400, wire::error_body(&format!("invalid JSON: {e}"))),
    };
    let query = match Query::from_json(&parsed, &shared.cfg.limits) {
        Ok(q) => q,
        Err(QueryError::BadRequest(m)) => return Response::json(400, wire::error_body(&m)),
    };
    let key = query.cache_key();
    // The whole compute path — chaos injection, deadline, cache fill — is
    // unwind-isolated: a panic answers this request with 500 and the
    // worker thread lives on.
    let outcome = catch_unwind(AssertUnwindSafe(|| run_query(shared, &query, &key)));
    match outcome {
        Ok(Ok((bytes, lookup))) => {
            let mut resp = Response {
                status: 200,
                headers: vec![
                    ("Content-Type".into(), "application/json".into()),
                    ("X-Ola-Cache".into(), lookup.label().into()),
                    ("X-Ola-Key".into(), key.hex().into()),
                ],
                body: (*bytes).clone(),
            };
            if lookup.is_hit() {
                shared.counter("ola.serve.cache_served");
            }
            resp.headers.push(("X-Ola-Experiment".into(), wire::experiment_name(&query, &key)));
            resp
        }
        Ok(Err(QueryError::BadRequest(m))) => Response::json(400, wire::error_body(&m)),
        Err(payload) if is_cancel_payload(payload.as_ref()) => {
            shared.counter("ola.serve.deadline_cancelled");
            Response::json(503, wire::error_body("deadline exceeded"))
        }
        Err(_) => {
            shared.counter("ola.serve.panics");
            Response::json(500, wire::error_body("internal error (worker panic)"))
        }
    }
}

type QueryOutcome = Result<(Arc<Vec<u8>>, ola_core::Lookup), QueryError>;

fn run_query(shared: &Arc<Shared>, query: &Query, key: &CacheKey) -> QueryOutcome {
    if chaos::serve_panic_forced() {
        panic!("chaos: forced worker panic (OLA_CHAOS_SERVE_PANIC)");
    }
    let token = CancelToken::with_deadline(shared.cfg.request_deadline);
    let _guard = install_ambient(token);
    shared.cache.get_or_compute(key, || wire::fill_body(query, key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn start_test_server(cfg: ServerConfig) -> Server {
        Server::start(cfg).expect("bind test server")
    }

    fn post(addr: SocketAddr, path: &str, body: &str) -> Response {
        request(addr, "POST", path, body)
    }

    fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Response {
        let stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        http::write_request(
            &mut writer,
            &Request {
                method: method.into(),
                path: path.into(),
                headers: vec![("Connection".into(), "close".into())],
                body: body.as_bytes().to_vec(),
            },
        )
        .unwrap();
        http::read_response(&mut reader, &HttpLimits::default()).unwrap().expect("response")
    }

    const QUERY: &str = r#"{"kind":"lint","expr":"y = a * 0.5 + b","width":3}"#;

    #[test]
    fn end_to_end_query_hits_cache_on_second_request() {
        let server = start_test_server(ServerConfig::default());
        let addr = server.addr();

        let health = request(addr, "GET", "/healthz", "");
        assert_eq!(health.status, 200);

        let first = post(addr, "/query", QUERY);
        assert_eq!(first.status, 200, "{:?}", String::from_utf8_lossy(&first.body));
        assert_eq!(http::header(&first.headers, "x-ola-cache"), Some("miss"));

        let second = post(addr, "/query", QUERY);
        assert_eq!(second.status, 200);
        let how = http::header(&second.headers, "x-ola-cache").unwrap();
        assert!(how == "hit" || how == "coalesced", "cached: {how}");
        assert_eq!(second.body, first.body, "cache hit is bit-identical, manifest included");
        assert_eq!(
            http::header(&first.headers, "x-ola-key"),
            http::header(&second.headers, "x-ola-key")
        );

        let bad = post(addr, "/query", r#"{"kind":"nope","expr":"y = a"}"#);
        assert_eq!(bad.status, 400);
        let missing = request(addr, "GET", "/nowhere", "");
        assert_eq!(missing.status, 404);

        server.drain_and_join();
    }

    #[test]
    fn drain_endpoint_stops_new_work_and_joins_cleanly() {
        let server = start_test_server(ServerConfig::default());
        let addr = server.addr();
        assert_eq!(post(addr, "/query", QUERY).status, 200);

        let drain = post(addr, "/admin/drain", "");
        assert_eq!(drain.status, 200);
        assert!(server.is_draining());

        // New connections are refused while draining.
        std::thread::sleep(Duration::from_millis(20));
        if let Ok(stream) = TcpStream::connect(addr) {
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let _ = http::write_request(
                &mut writer,
                &Request {
                    method: "GET".into(),
                    path: "/healthz".into(),
                    headers: vec![],
                    body: vec![],
                },
            );
            if let Ok(Some(resp)) = http::read_response(&mut reader, &HttpLimits::default()) {
                assert_eq!(resp.status, 503, "draining server refuses new connections");
            }
        }
        server.drain_and_join();
    }

    #[test]
    fn worker_panic_yields_500_and_the_server_survives() {
        let server = start_test_server(ServerConfig::default());
        let addr = server.addr();

        std::env::set_var(chaos::SERVE_PANIC, "1");
        let crashed = post(addr, "/query", QUERY);
        std::env::remove_var(chaos::SERVE_PANIC);
        assert_eq!(crashed.status, 500, "panic becomes a 500");

        // Same worker pool still answers.
        let after = post(addr, "/query", QUERY);
        assert_eq!(after.status, 200, "server survived the panic");
        server.drain_and_join();
    }

    #[test]
    fn rate_limit_sheds_with_429_and_retry_after() {
        let server = start_test_server(ServerConfig {
            rate: Some(RateConfig { capacity: 2.0, refill_per_sec: 0.001 }),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
        assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
        let shed = request(addr, "GET", "/healthz", "");
        assert_eq!(shed.status, 429);
        assert!(http::header(&shed.headers, "retry-after").is_some());
        server.drain_and_join();
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        let server = start_test_server(ServerConfig::default());
        let addr = server.addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = stream;
        for _ in 0..5 {
            http::write_request(
                &mut writer,
                &Request {
                    method: "POST".into(),
                    path: "/query".into(),
                    headers: vec![],
                    body: QUERY.as_bytes().to_vec(),
                },
            )
            .unwrap();
            let resp = http::read_response(&mut reader, &HttpLimits::default())
                .unwrap()
                .expect("kept alive");
            assert_eq!(resp.status, 200);
        }
        drop(writer);
        server.drain_and_join();
    }
}
