//! The wire API: response bodies with run-manifest provenance.
//!
//! A successful query response body is exactly the bytes the cache
//! stores:
//!
//! ```json
//! {"manifest": { ...ola.run-manifest/v1... }, "result": { ... }}
//! ```
//!
//! The manifest is built **once, at fill time** — its timestamp, seeds,
//! annotations (including any `resilience.degraded.*` recorded while the
//! batch engine fell back to the event engine), and the SHA-256 of the
//! rendered result are frozen into the cached bytes. A cache hit
//! therefore returns a body *bit-identical* to the cold computation,
//! artifact hashes included; per-response state (hit/miss, the content
//! address) travels in `X-Ola-Cache` / `X-Ola-Key` headers, outside the
//! cached bytes.
//!
//! The manifest's single output record names the rendered result document
//! itself (`results/serve/<experiment>.result.json`); the load generator
//! materializes that file from the response and hands the manifest to the
//! unmodified `manifest_check` binary, which re-hashes it — an end-to-end
//! proof that served bytes match their recorded provenance.
//!
//! Per-request manifests deliberately carry an **empty metric snapshot**:
//! the process-global registry cannot attribute concurrent engine
//! activity to one request, and recording a racy delta would break the
//! bit-identity guarantee. Operational metrics live at `/metrics`.

use ola_core::obs::json::JsonValue;
use ola_core::obs::{self, OutputRecord, RunManifest};
use ola_core::CacheKey;
use ola_synth::{Query, QueryError};
use std::sync::OnceLock;

/// Relative directory (as recorded in manifests) for materialized result
/// documents.
pub const RESULT_DIR: &str = "results/serve";

/// The manifest experiment name for `query` under its content address:
/// `serve_<kind>_<key prefix>` — unique per canonical query, filesystem-
/// and `manifest_check`-friendly.
#[must_use]
pub fn experiment_name(query: &Query, key: &CacheKey) -> String {
    format!("serve_{}_{}", query.kind(), &key.hex()[..12])
}

fn git_once() -> &'static str {
    static GIT: OnceLock<String> = OnceLock::new();
    GIT.get_or_init(obs::git_describe)
}

/// Runs `query` and renders the full cacheable response body, capturing
/// per-request annotations (degradations included) into the embedded
/// manifest. This is the cache's fill function: everything inside the
/// returned bytes is deterministic except the fill timestamp, which the
/// cache freezes by storing the bytes.
///
/// # Errors
///
/// Propagates [`QueryError`] from the analysis itself.
pub fn fill_body(query: &Query, key: &CacheKey) -> Result<Vec<u8>, QueryError> {
    let scope = obs::AnnotationScope::new();
    let result = {
        let _guard = scope.install();
        query.run()?
    };
    let rendered = result.render();
    let experiment = experiment_name(query, key);
    let (backend, seeds) = match query {
        Query::Pareto { backend, seed, .. }
        | Query::Sweep { backend, seed, .. }
        | Query::Dsp { backend, seed, .. } => {
            (backend.label().to_owned(), vec![("query".to_owned(), *seed)])
        }
        Query::Sta { .. } | Query::Lint { .. } | Query::Verify { .. } => {
            ("none".to_owned(), Vec::new())
        }
    };
    let manifest = RunManifest {
        experiment: experiment.clone(),
        created_unix_ms: RunManifest::now_unix_ms(),
        git: git_once().to_owned(),
        backend,
        scale: 1.0,
        seeds,
        ola_threads: ola_core::parallel::thread_config().record(),
        trace: obs::mode().label().to_owned(),
        annotations: scope.drain(),
        // Spans stay out of per-request manifests: the span ring is
        // process-global and draining it here would steal concurrent
        // requests' records.
        spans: Vec::new(),
        metrics: ola_core::obs::MetricSnapshot::default(),
        outputs: vec![OutputRecord {
            path: format!("{RESULT_DIR}/{experiment}.result.json"),
            bytes: rendered.len() as u64,
            sha256: ola_core::obs::sha256::hex_digest(rendered.as_bytes()),
        }],
    };
    let body =
        JsonValue::Object(vec![("manifest".into(), manifest.to_json()), ("result".into(), result)]);
    Ok(body.render().into_bytes())
}

/// A JSON error body (`{"error": ...}`).
#[must_use]
pub fn error_body(message: &str) -> String {
    JsonValue::Object(vec![("error".into(), JsonValue::str(message))]).render()
}

/// Renders the process metrics registry (counters + gauges) as JSON for
/// the `/metrics` endpoint.
#[must_use]
pub fn metrics_body() -> String {
    let snap = obs::registry().snapshot();
    JsonValue::Object(vec![
        (
            "counters".into(),
            JsonValue::Object(
                snap.counters.iter().map(|(k, &v)| (k.clone(), JsonValue::U64(v))).collect(),
            ),
        ),
        (
            "gauges".into(),
            JsonValue::Object(
                snap.gauges.iter().map(|(k, &v)| (k.clone(), JsonValue::int(v))).collect(),
            ),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_core::obs::json;
    use ola_synth::Limits;

    fn query(body: &str) -> Query {
        Query::from_json(&json::parse(body).unwrap(), &Limits::default()).unwrap()
    }

    #[test]
    fn fill_body_embeds_a_schema_valid_manifest_with_matching_hashes() {
        let q = query(r#"{"kind":"lint","expr":"y = a * 0.5 + b","width":3}"#);
        let key = q.cache_key();
        let body = fill_body(&q, &key).unwrap();
        let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();

        let manifest = doc.get("manifest").expect("manifest present");
        assert_eq!(manifest.get("schema").unwrap().as_str(), Some(ola_core::obs::SCHEMA));
        let exp = manifest.get("experiment").unwrap().as_str().unwrap();
        assert!(exp.starts_with("serve_lint_"), "experiment {exp:?}");

        // The recorded output is the result document itself: re-rendering
        // the parsed result must reproduce the recorded size and SHA-256.
        let result = doc.get("result").expect("result present");
        let rendered = result.render();
        let outputs = manifest.get("outputs").unwrap().as_array().unwrap();
        assert_eq!(outputs.len(), 1);
        assert_eq!(outputs[0].get("bytes").unwrap().as_u64(), Some(rendered.len() as u64));
        assert_eq!(
            outputs[0].get("sha256").unwrap().as_str().unwrap(),
            ola_core::obs::sha256::hex_digest(rendered.as_bytes()),
            "served artifact hash is verifiable from the response alone"
        );
    }

    #[test]
    fn experiment_names_are_stable_and_keyed() {
        let q = query(r#"{"kind":"sta","expr":"y = a + b","width":2}"#);
        let key = q.cache_key();
        let name = experiment_name(&q, &key);
        assert_eq!(name, format!("serve_sta_{}", &key.hex()[..12]));
        assert_eq!(name, experiment_name(&q, &key), "deterministic");
    }

    #[test]
    fn degradation_annotations_land_in_the_response_manifest() {
        // Force the batch→event degradation: the request must still
        // succeed, carrying the `resilience.degraded.*` annotation.
        std::env::set_var(ola_core::resilience::chaos::BATCH_FAIL, "1");
        let q = query(
            r#"{"kind":"sweep","expr":"y = a * 0.5 + b","width":2,
                "ts_points":3,"samples":4,"backend":"batch"}"#,
        );
        let key = q.cache_key();
        let body = fill_body(&q, &key).unwrap();
        std::env::remove_var(ola_core::resilience::chaos::BATCH_FAIL);
        let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        let annotations = doc.get("manifest").unwrap().get("annotations").unwrap();
        let keys: Vec<&str> =
            annotations.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert!(
            keys.iter().any(|k| k.starts_with(ola_core::resilience::DEGRADED_PREFIX)),
            "degraded answer is annotated, not failed: {keys:?}"
        );
        // And the result is still a real sweep.
        assert_eq!(doc.get("result").unwrap().get("kind").unwrap().as_str(), Some("sweep"));
    }

    #[test]
    fn verify_queries_flow_through_the_wire_layer() {
        let q = query(r#"{"kind":"verify","expr":"y = a * 0.5 + b","width":2,"ts_points":3}"#);
        let key = q.cache_key();
        let name = experiment_name(&q, &key);
        assert!(name.starts_with("serve_verify_"), "experiment {name:?}");
        let body = fill_body(&q, &key).unwrap();
        let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        let result = doc.get("result").expect("result present");
        assert_eq!(result.get("kind").unwrap().as_str(), Some("verify"));
        assert_eq!(result.get("passes_verdict").unwrap().as_str(), Some("equivalent"));
    }

    #[test]
    fn dsp_queries_flow_through_the_wire_layer() {
        let q = query(r#"{"kind":"dsp","kernel":"fir","size":3,"width":4,"ts_points":3}"#);
        let key = q.cache_key();
        let name = experiment_name(&q, &key);
        assert!(name.starts_with("serve_dsp_"), "experiment {name:?}");
        let body = fill_body(&q, &key).unwrap();
        let doc = json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        let result = doc.get("result").expect("result present");
        assert_eq!(result.get("kind").unwrap().as_str(), Some("dsp"));
        assert!(result.get("fused").is_some() && result.get("unfused").is_some());
    }

    #[test]
    fn error_and_metrics_bodies_are_valid_json() {
        let e = error_body("no \"such\" thing");
        assert!(json::parse(&e).unwrap().get("error").is_some());
        let m = metrics_body();
        let doc = json::parse(&m).unwrap();
        assert!(doc.get("counters").is_some());
        assert!(doc.get("gauges").is_some());
    }
}
