//! End-to-end single-flight proof: K identical concurrent queries
//! against a live server cost exactly one computation — one `miss`, the
//! rest `hit`/`coalesced` — and every response body is byte-identical.

use ola_serve::http::{self, HttpLimits, Request};
use ola_serve::{Server, ServerConfig};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Barrier};

/// Heavy enough that overlapping clients pile onto the same in-flight
/// fill instead of finishing before the next one connects.
const QUERY: &str =
    r#"{"kind":"sweep","expr":"y = a * 0.5 + b * 0.25","width":4,"ts_points":6,"samples":64}"#;

const K: usize = 8;

#[test]
fn k_identical_concurrent_queries_cost_one_computation() {
    let server = Server::start(ServerConfig { workers: K, ..ServerConfig::default() })
        .expect("bind test server");
    let addr = server.addr();
    let barrier = Arc::new(Barrier::new(K));

    let mut handles = Vec::new();
    for _ in 0..K {
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            barrier.wait();
            http::write_request(
                &mut writer,
                &Request {
                    method: "POST".into(),
                    path: "/query".into(),
                    headers: vec![("Connection".into(), "close".into())],
                    body: QUERY.as_bytes().to_vec(),
                },
            )
            .expect("send");
            let resp = http::read_response(&mut reader, &HttpLimits::default())
                .expect("read")
                .expect("response");
            assert_eq!(resp.status, 200, "{}", String::from_utf8_lossy(&resp.body));
            let label =
                http::header(&resp.headers, "x-ola-cache").expect("cache header").to_owned();
            let key = http::header(&resp.headers, "x-ola-key").expect("key header").to_owned();
            (label, key, resp.body)
        }));
    }

    let results: Vec<(String, String, Vec<u8>)> =
        handles.into_iter().map(|h| h.join().expect("client thread")).collect();

    let misses = results.iter().filter(|(label, _, _)| label == "miss").count();
    assert_eq!(
        misses,
        1,
        "exactly one fill for {K} identical queries; labels: {:?}",
        results.iter().map(|(l, _, _)| l.as_str()).collect::<Vec<_>>()
    );
    for (label, _, _) in &results {
        assert!(
            ["miss", "hit", "coalesced", "disk-hit"].contains(&label.as_str()),
            "unexpected cache label {label:?}"
        );
    }
    let (_, key0, body0) = &results[0];
    for (_, key, body) in &results {
        assert_eq!(key, key0, "all clients computed the same content address");
        assert_eq!(body, body0, "coalesced and cached responses are bit-identical");
    }

    // The server's own counters agree: one fill, K-1 free rides.
    let snap = ola_core::obs::registry().snapshot();
    let fills = snap.counters.get("ola.cache.fills").copied().unwrap_or(0);
    assert!(fills >= 1, "fill counter recorded");

    server.drain_and_join();
}
