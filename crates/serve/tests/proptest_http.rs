//! Property tests: every representable wire message survives a
//! serialize → parse round trip bit-exactly, in both directions.
//!
//! "Representable" mirrors the documented parser contract: token methods,
//! space-free paths, token header names (`Content-Length` is reserved —
//! derived from the body, never user-supplied), trimmed CR/LF-free header
//! values, arbitrary byte bodies.

use ola_serve::http::{
    read_request, read_response, write_request, write_response, HttpLimits, Request, Response,
};
use proptest::prelude::*;
use std::io::BufReader;

/// The vendored proptest has no regex strategies; strings are built from
/// per-character alphabets instead.
fn string_of(alphabet: &str, len: impl Strategy<Value = usize>) -> impl Strategy<Value = String> {
    let chars: Vec<char> = alphabet.chars().collect();
    len.prop_flat_map(move |n| prop::collection::vec(prop::sample::select(chars.clone()), n..=n))
        .prop_map(|v| v.into_iter().collect())
}

fn method() -> impl Strategy<Value = String> {
    string_of("ABCDEFGHIJKLMNOPQRSTUVWXYZ", 1usize..8)
}

fn path() -> impl Strategy<Value = String> {
    string_of("abcdefghijklmnopqrstuvwxyz0123456789_./%?=&-", 0usize..40)
        .prop_map(|tail| format!("/{tail}"))
}

fn header_name() -> impl Strategy<Value = String> {
    string_of(
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789!#$%&'*+.^_`|~-",
        1usize..17,
    )
    .prop_filter("content-length is derived, never user-supplied", |n| {
        !n.eq_ignore_ascii_case("content-length")
    })
}

/// Header values arrive trimmed (the parser strips optional whitespace),
/// so representable values carry no leading/trailing whitespace — generate
/// printable ASCII and trim.
fn header_value() -> impl Strategy<Value = String> {
    string_of(
        " !\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`abcdefghijklmnopqrstuvwxyz{|}~",
        0usize..22,
    )
    .prop_map(|v| v.trim().to_owned())
}

fn headers() -> impl Strategy<Value = Vec<(String, String)>> {
    prop::collection::vec((header_name(), header_value()), 0..6)
}

fn body() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(any::<u8>(), 0..512)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn requests_roundtrip_exactly(
        method in method(),
        path in path(),
        headers in headers(),
        body in body(),
    ) {
        let req = Request { method, path, headers, body };
        let mut wire = Vec::new();
        write_request(&mut wire, &req).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let got = read_request(&mut r, &HttpLimits::default()).unwrap().expect("one request");
        prop_assert_eq!(got, req);
        prop_assert!(
            read_request(&mut r, &HttpLimits::default()).unwrap().is_none(),
            "clean EOF after the message"
        );
    }

    #[test]
    fn responses_roundtrip_exactly(
        status in 100u16..1000,
        headers in headers(),
        body in body(),
    ) {
        let resp = Response { status, headers, body };
        let mut wire = Vec::new();
        write_response(&mut wire, &resp).unwrap();
        let mut r = BufReader::new(&wire[..]);
        let got = read_response(&mut r, &HttpLimits::default()).unwrap().expect("one response");
        prop_assert_eq!(got, resp);
    }

    #[test]
    fn pipelined_requests_keep_their_framing(
        reqs in prop::collection::vec(
            (method(), path(), headers(), body())
                .prop_map(|(method, path, headers, body)| Request { method, path, headers, body }),
            1..5,
        ),
    ) {
        // Keep-alive framing: N serialized messages on one stream parse
        // back as exactly those N messages, in order.
        let mut wire = Vec::new();
        for req in &reqs {
            write_request(&mut wire, req).unwrap();
        }
        let mut r = BufReader::new(&wire[..]);
        for req in &reqs {
            let got = read_request(&mut r, &HttpLimits::default()).unwrap().expect("message");
            prop_assert_eq!(&got, req);
        }
        prop_assert!(read_request(&mut r, &HttpLimits::default()).unwrap().is_none());
    }

    #[test]
    fn arbitrary_garbage_never_panics_the_parser(junk in prop::collection::vec(any::<u8>(), 0..256)) {
        // Fuzz the inbound path: any byte soup either parses or errors,
        // never panics or hangs (the reader is finite).
        let mut r = BufReader::new(&junk[..]);
        let _ = read_request(&mut r, &HttpLimits::default());
        let mut r = BufReader::new(&junk[..]);
        let _ = read_response(&mut r, &HttpLimits::default());
    }
}
