//! Semantics-preserving optimization passes over the [`Dfg`].
//!
//! Every pass rebuilds the graph front to back, remapping operands — node
//! order stays topological and deterministic, which matters because the
//! elaborator emits gates in node order and downstream delay models key
//! off net identity. "Semantics-preserving" means *exact* ([`Q`])
//! semantics of every output: the online style's truncating multipliers
//! make bit-level semantics a property of the post-pass graph (each
//! elaboration is verified against the reference evaluator of the *same*
//! graph), while the exact value of every output never changes.
//!
//! [`allocate_adders`] is the chains-of-consecutive-additions decision:
//! how a flat list of addends is built into a two-input adder structure
//! dominates latency (and, for online arithmetic, the MSD window growth),
//! so it is a pluggable [`AdderStructure`] swept by the explorer.

use crate::ir::{Dfg, NodeId, Op};
use ola_redundant::Q;
use std::collections::HashMap;

/// How a chain of consecutive additions is allocated to two-input adders.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AdderStructure {
    /// Left-leaning chain in operand order: `((a+b)+c)+d`. Linear depth,
    /// minimal wiring — the naive allocation of a compiler front-end.
    LinearChain,
    /// Iterative pairwise reduction (`chunks(2)` rounds): logarithmic
    /// depth, the classic balanced adder tree.
    BalancedTree,
    /// Chain ordered by operand depth (shallowest first): each addition
    /// feeds the next while deeper operands are still producing digits —
    /// the allocation that overlaps online operators digit-serially.
    OnlineChained,
}

impl AdderStructure {
    /// Stable lowercase name for reports and CSV rows.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AdderStructure::LinearChain => "chain",
            AdderStructure::BalancedTree => "tree",
            AdderStructure::OnlineChained => "online-chain",
        }
    }
}

/// Copies one op into `out` with operands remapped through `map`,
/// returning the new id.
fn copy_op(out: &mut Dfg, map: &[NodeId], op: &Op) -> NodeId {
    match *op {
        Op::Input { ref name, fmt } => out.input(name, fmt),
        Op::Const(c) => out.constant(c),
        Op::Add(a, b) => out.add(map[a.index()], map[b.index()]),
        Op::Sub(a, b) => out.sub(map[a.index()], map[b.index()]),
        Op::Neg(a) => out.neg(map[a.index()]),
        Op::Mul(a, b) => out.mul(map[a.index()], map[b.index()]),
        Op::ConstMul(c, a) => out.const_mul(c, map[a.index()]),
        Op::Mac(ref terms) => {
            let mapped: Vec<(NodeId, NodeId)> =
                terms.iter().map(|&(a, b)| (map[a.index()], map[b.index()])).collect();
            out.mac(&mapped)
        }
    }
}

fn copy_outputs(dfg: &Dfg, out: &mut Dfg, map: &[NodeId]) {
    for (name, node) in dfg.outputs() {
        out.mark_output(name, map[node.index()]);
    }
}

/// Constant folding and algebraic canonicalization: all-constant
/// subtrees collapse to [`Op::Const`], `Const × x` canonicalizes to
/// [`Op::ConstMul`], and the identities `x + 0`, `x − 0`, `0 − x`,
/// `−(−x)`, `1·x`, `(−1)·x`, `0·x` simplify. Exact output values are
/// unchanged (multiplication folds exactly — the fold is the *exact*
/// product, which for the online style can only shrink the error budget
/// by removing a truncating operator).
#[must_use]
pub fn constant_fold(dfg: &Dfg) -> Dfg {
    let mut out = Dfg::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(dfg.len());
    // Exact constant value of each *new* node, when known.
    let mut cv: HashMap<NodeId, Q> = HashMap::new();
    let mut folded = 0u64;
    for (_, op) in dfg.nodes() {
        let cof = |map: &[NodeId], cv: &HashMap<NodeId, Q>, n: NodeId| -> Option<Q> {
            cv.get(&map[n.index()]).copied()
        };
        let new = match *op {
            Op::Input { .. } | Op::Const(_) => copy_op(&mut out, &map, op),
            Op::Add(a, b) => match (cof(&map, &cv, a), cof(&map, &cv, b)) {
                (Some(x), Some(y)) => {
                    folded += 1;
                    out.constant(x + y)
                }
                (Some(x), None) if x.is_zero() => {
                    folded += 1;
                    map[b.index()]
                }
                (None, Some(y)) if y.is_zero() => {
                    folded += 1;
                    map[a.index()]
                }
                _ => copy_op(&mut out, &map, op),
            },
            Op::Sub(a, b) => match (cof(&map, &cv, a), cof(&map, &cv, b)) {
                (Some(x), Some(y)) => {
                    folded += 1;
                    out.constant(x - y)
                }
                (None, Some(y)) if y.is_zero() => {
                    folded += 1;
                    map[a.index()]
                }
                (Some(x), None) if x.is_zero() => {
                    folded += 1;
                    out.neg(map[b.index()])
                }
                _ => copy_op(&mut out, &map, op),
            },
            Op::Neg(a) => {
                let na = map[a.index()];
                if let Some(x) = cv.get(&na).copied() {
                    folded += 1;
                    out.constant(-x)
                } else if let Op::Neg(inner) = *out.op(na) {
                    folded += 1;
                    inner
                } else {
                    out.neg(na)
                }
            }
            Op::Mul(a, b) => match (cof(&map, &cv, a), cof(&map, &cv, b)) {
                (Some(x), Some(y)) => {
                    folded += 1;
                    out.constant(x * y)
                }
                (Some(x), None) => {
                    folded += 1;
                    fold_const_mul(&mut out, x, map[b.index()])
                }
                (None, Some(y)) => {
                    folded += 1;
                    fold_const_mul(&mut out, y, map[a.index()])
                }
                _ => copy_op(&mut out, &map, op),
            },
            Op::ConstMul(c, a) => {
                if let Some(x) = cof(&map, &cv, a) {
                    folded += 1;
                    out.constant(c * x)
                } else {
                    fold_const_mul(&mut out, c, map[a.index()])
                }
            }
            Op::Mac(ref terms) => {
                // All-constant terms fold into one exact addend; terms
                // with a zero factor vanish. The accumulation order of
                // the surviving terms is preserved.
                let mut csum = Q::ZERO;
                let mut dropped = false;
                let mut kept: Vec<(NodeId, NodeId)> = Vec::new();
                for &(a, b) in terms {
                    match (cof(&map, &cv, a), cof(&map, &cv, b)) {
                        (Some(x), Some(y)) => {
                            dropped = true;
                            csum += x * y;
                        }
                        (Some(x), None) if x.is_zero() => dropped = true,
                        (None, Some(y)) if y.is_zero() => dropped = true,
                        _ => kept.push((map[a.index()], map[b.index()])),
                    }
                }
                if kept.is_empty() {
                    folded += 1;
                    out.constant(csum)
                } else {
                    if dropped {
                        folded += 1;
                    }
                    let m = out.mac(&kept);
                    if csum.is_zero() {
                        m
                    } else {
                        let c = out.constant(csum);
                        out.add(m, c)
                    }
                }
            }
        };
        if let Op::Const(c) = *out.op(new) {
            cv.insert(new, c);
        }
        map.push(new);
    }
    copy_outputs(dfg, &mut out, &map);
    ola_core::obs::registry().counter("ola.synth.nodes_folded").add(folded);
    crate::verify::debug_prove_rewrite("const-fold", dfg, &out);
    out
}

/// `c · x` with the multiplicative identities applied.
fn fold_const_mul(out: &mut Dfg, c: Q, x: NodeId) -> NodeId {
    if c.is_zero() {
        out.constant(Q::ZERO)
    } else if c == Q::ONE {
        x
    } else if c == -Q::ONE {
        out.neg(x)
    } else {
        out.const_mul(c, x)
    }
}

/// Structural key for CSE; commutative operands are sorted so `a + b`
/// and `b + a` share one node (the first occurrence — and its operand
/// order — is kept, so gate-level operand wiring never changes for the
/// surviving node).
#[derive(Clone, PartialEq, Eq, Hash)]
enum Key {
    Const(i128, u32),
    Add(NodeId, NodeId),
    Sub(NodeId, NodeId),
    Neg(NodeId),
    Mul(NodeId, NodeId),
    ConstMul(i128, u32, NodeId),
    Mac(Vec<(NodeId, NodeId)>),
}

/// Common-subexpression elimination: structurally identical non-input
/// nodes (same op, same remapped operands, commutative ops order-blind)
/// collapse to their first occurrence.
#[must_use]
pub fn cse(dfg: &Dfg) -> Dfg {
    let mut out = Dfg::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(dfg.len());
    let mut seen: HashMap<Key, NodeId> = HashMap::new();
    let mut merged = 0u64;
    for (_, op) in dfg.nodes() {
        let key = match *op {
            Op::Input { .. } => None,
            Op::Const(c) => Some(Key::Const(c.numerator(), c.scale())),
            Op::Add(a, b) => {
                let (x, y) = commute(map[a.index()], map[b.index()]);
                Some(Key::Add(x, y))
            }
            Op::Sub(a, b) => Some(Key::Sub(map[a.index()], map[b.index()])),
            Op::Neg(a) => Some(Key::Neg(map[a.index()])),
            Op::Mul(a, b) => {
                let (x, y) = commute(map[a.index()], map[b.index()]);
                Some(Key::Mul(x, y))
            }
            Op::ConstMul(c, a) => Some(Key::ConstMul(c.numerator(), c.scale(), map[a.index()])),
            // Each factor pair is order-blind (x·y = y·x, and the fused
            // window algebra is symmetric per term); the accumulation
            // order of terms is structural and kept.
            Op::Mac(ref terms) => Some(Key::Mac(
                terms.iter().map(|&(a, b)| commute(map[a.index()], map[b.index()])).collect(),
            )),
        };
        let new = match key {
            Some(k) => {
                if let Some(&hit) = seen.get(&k) {
                    merged += 1;
                    hit
                } else {
                    let id = copy_op(&mut out, &map, op);
                    seen.insert(k, id);
                    id
                }
            }
            None => copy_op(&mut out, &map, op),
        };
        map.push(new);
    }
    copy_outputs(dfg, &mut out, &map);
    ola_core::obs::registry().counter("ola.synth.cse_merged").add(merged);
    crate::verify::debug_prove_rewrite("cse", dfg, &out);
    out
}

fn commute(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Dead-node elimination: drops nodes no output depends on. Primary
/// inputs are always kept — the graph's interface (and hence the
/// elaborated netlist's input vector layout) is stable across passes.
#[must_use]
pub fn eliminate_dead(dfg: &Dfg) -> Dfg {
    let mut live = vec![false; dfg.len()];
    for &(_, n) in dfg.outputs() {
        live[n.index()] = true;
    }
    for (id, op) in dfg.nodes().collect::<Vec<_>>().into_iter().rev() {
        if live[id.index()] {
            for o in op.operands() {
                live[o.index()] = true;
            }
        }
    }
    let mut out = Dfg::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(dfg.len());
    let mut removed = 0u64;
    for (id, op) in dfg.nodes() {
        let keep = live[id.index()] || matches!(op, Op::Input { .. });
        let new = if keep {
            copy_op(&mut out, &map, op)
        } else {
            removed += 1;
            // Placeholder; dead nodes are never referenced by live ones.
            NodeId::placeholder()
        };
        map.push(new);
    }
    copy_outputs(dfg, &mut out, &map);
    ola_core::obs::registry().counter("ola.synth.dead_removed").add(removed);
    crate::verify::debug_prove_rewrite("eliminate-dead", dfg, &out);
    out
}

/// Re-associates chains of consecutive additions per `structure`.
///
/// An *add tree* is a maximal region of [`Op::Add`] nodes in which every
/// internal node has fan-out 1 and is not itself an output; its leaves
/// (in left-to-right order) are gathered and rebuilt per the chosen
/// [`AdderStructure`]. Bypassed internal adds become dead and are swept
/// by [`eliminate_dead`] (which [`optimize`] runs afterwards). Exact
/// output values are preserved — addition is associative and commutative
/// over `Q`.
#[must_use]
pub fn allocate_adders(dfg: &Dfg, structure: AdderStructure) -> Dfg {
    // Fan-out (operand uses + output references) per node.
    let mut uses = vec![0usize; dfg.len()];
    for (_, op) in dfg.nodes() {
        for o in op.operands() {
            uses[o.index()] += 1;
        }
    }
    let mut is_output = vec![false; dfg.len()];
    for &(_, n) in dfg.outputs() {
        is_output[n.index()] = true;
        uses[n.index()] += 1;
    }
    // Internal = an Add consumed exactly once, by an Add, and not an output.
    let mut consumed_by_add = vec![false; dfg.len()];
    for (_, op) in dfg.nodes() {
        if let Op::Add(a, b) = op {
            consumed_by_add[a.index()] = true;
            consumed_by_add[b.index()] = true;
        }
    }
    let internal = |id: NodeId| {
        matches!(dfg.op(id), Op::Add(..))
            && uses[id.index()] == 1
            && consumed_by_add[id.index()]
            && !is_output[id.index()]
    };

    // Node depth (longest path from a source) for OnlineChained ordering.
    let mut depth = vec![0usize; dfg.len()];
    for (id, op) in dfg.nodes() {
        depth[id.index()] = op.operands().iter().map(|o| depth[o.index()] + 1).max().unwrap_or(0);
    }

    fn leaves(dfg: &Dfg, id: NodeId, internal: &dyn Fn(NodeId) -> bool, acc: &mut Vec<NodeId>) {
        match *dfg.op(id) {
            Op::Add(a, b) if internal(a) => {
                leaves(dfg, a, internal, acc);
                if internal(b) {
                    leaves(dfg, b, internal, acc);
                } else {
                    acc.push(b);
                }
            }
            Op::Add(a, b) => {
                acc.push(a);
                if internal(b) {
                    leaves(dfg, b, internal, acc);
                } else {
                    acc.push(b);
                }
            }
            _ => acc.push(id),
        }
    }

    let mut out = Dfg::new();
    let mut map: Vec<NodeId> = Vec::with_capacity(dfg.len());
    for (id, op) in dfg.nodes() {
        let is_root = matches!(op, Op::Add(..)) && !internal(id);
        let new = if is_root {
            let mut ls = Vec::new();
            leaves(dfg, id, &internal, &mut ls);
            if ls.len() < 3 {
                copy_op(&mut out, &map, op)
            } else {
                let mapped: Vec<(NodeId, usize)> =
                    ls.iter().map(|l| (map[l.index()], depth[l.index()])).collect();
                build_structure(&mut out, &mapped, structure)
            }
        } else {
            copy_op(&mut out, &map, op)
        };
        map.push(new);
    }
    copy_outputs(dfg, &mut out, &map);
    crate::verify::debug_prove_rewrite("allocate-adders", dfg, &out);
    out
}

/// Builds one addend list into adders per the chosen structure.
fn build_structure(out: &mut Dfg, leaves: &[(NodeId, usize)], s: AdderStructure) -> NodeId {
    match s {
        AdderStructure::LinearChain => {
            let mut acc = leaves[0].0;
            for &(l, _) in &leaves[1..] {
                acc = out.add(acc, l);
            }
            acc
        }
        AdderStructure::OnlineChained => {
            // Stable sort by depth: shallow (early-settling) addends first,
            // so each adder's output streams into the next while the deep
            // operands are still producing digits.
            let mut sorted: Vec<(NodeId, usize)> = leaves.to_vec();
            sorted.sort_by_key(|&(_, d)| d);
            let mut acc = sorted[0].0;
            for &(l, _) in &sorted[1..] {
                acc = out.add(acc, l);
            }
            acc
        }
        AdderStructure::BalancedTree => {
            let mut level: Vec<NodeId> = leaves.iter().map(|&(l, _)| l).collect();
            while level.len() > 1 {
                level = level
                    .chunks(2)
                    .map(|pair| if pair.len() == 2 { out.add(pair[0], pair[1]) } else { pair[0] })
                    .collect();
            }
            level[0]
        }
    }
}

/// The standard pipeline: fold → CSE → adder allocation → dead-node
/// elimination. Publishes `ola.synth.*` counters for each pass.
#[must_use]
pub fn optimize(dfg: &Dfg, structure: AdderStructure) -> Dfg {
    let _span = ola_core::obs::span("synth.optimize");
    eliminate_dead(&allocate_adders(&cse(&constant_fold(dfg)), structure))
}

impl NodeId {
    /// A sentinel for dead-node map slots; never dereferenced.
    fn placeholder() -> NodeId {
        // Index usize::MAX can never be a real node.
        NodeId::from_raw(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::InputFmt;
    use crate::parser::parse_dfg;
    use ola_redundant::{BsVector, SdNumber};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fmt(n: usize) -> InputFmt {
        InputFmt { msd_pos: 1, digits: n }
    }

    /// Exact-semantics equivalence on random inputs.
    fn assert_equivalent(a: &Dfg, b: &Dfg) {
        assert_eq!(a.inputs().len(), b.inputs().len(), "interface must be stable");
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for _ in 0..50 {
            let ins: Vec<Q> = a
                .inputs()
                .iter()
                .map(|&(_, _, f)| {
                    let lim = (1i128 << f.digits) - 1;
                    Q::new(rng.gen_range(-lim..=lim), f.digits as u32)
                        << (1 - f.msd_pos).unsigned_abs()
                        >> (f.msd_pos - 1).max(0) as u32
                })
                .collect();
            // The shifts above cancel for msd_pos = 1; for other formats we
            // only need *some* representable value, so this is fine.
            assert_eq!(a.eval_exact(&ins), b.eval_exact(&ins));
        }
    }

    #[test]
    fn constant_subtrees_fold_away() {
        let d = parse_dfg("y = a + (0.5 * 0.5 + 0.25) - 0.5", fmt(4)).unwrap();
        let f = eliminate_dead(&constant_fold(&d));
        assert_equivalent(&d, &f);
        let consts = f.nodes().filter(|(_, op)| matches!(op, Op::Const(_))).count();
        assert!(f.len() < d.len(), "folded + dead-eliminated graph shrinks: {f:?}");
        assert!(consts >= 1);
    }

    #[test]
    fn mul_by_const_canonicalizes() {
        let d = parse_dfg("y = 0.25 * a + b * 0.5 + 1 * c + -1 * e + 0 * f", fmt(4)).unwrap();
        let f = eliminate_dead(&constant_fold(&d));
        assert_equivalent(&d, &f);
        let cm = f.nodes().filter(|(_, op)| matches!(op, Op::ConstMul(..))).count();
        let mul = f.nodes().filter(|(_, op)| matches!(op, Op::Mul(..))).count();
        assert_eq!((cm, mul), (2, 0), "{f:?}");
        // 1*c → alias, −1*e → Neg, 0*f → const zero (then x+0 folds).
        assert!(f.nodes().any(|(_, op)| matches!(op, Op::Neg(_))));
    }

    #[test]
    fn whole_graph_can_fold_to_a_constant() {
        let d = parse_dfg("y = 0.5 * 0.5 + 0.25", fmt(4)).unwrap();
        let f = eliminate_dead(&constant_fold(&d));
        assert_eq!(f.eval_exact(&[]), vec![Q::new(1, 1)]);
        assert!(f.nodes().all(|(_, op)| matches!(op, Op::Const(_))), "{f:?}");
    }

    #[test]
    fn cse_merges_duplicates_keeping_first_operand_order() {
        let mut d = Dfg::new();
        let a = d.input("a", fmt(4));
        let b = d.input("b", fmt(4));
        let s1 = d.add(a, b);
        let s2 = d.add(b, a); // commuted duplicate
        let m = d.mul(s1, s2);
        d.mark_output("y", m);
        let c = cse(&d);
        assert_equivalent(&d, &c);
        let adds: Vec<_> = c
            .nodes()
            .filter_map(|(id, op)| match op {
                Op::Add(x, y) => Some((id, *x, *y)),
                _ => None,
            })
            .collect();
        assert_eq!(adds.len(), 1, "duplicate add merged");
        // First occurrence's operand order (a, b) survives.
        assert_eq!((adds[0].1, adds[0].2), (NodeId::from_raw(0), NodeId::from_raw(1)));
    }

    #[test]
    fn dce_keeps_inputs_and_drops_dead_math() {
        let mut d = Dfg::new();
        let a = d.input("a", fmt(4));
        let b = d.input("b", fmt(4));
        let dead = d.mul(a, b);
        let _dead2 = d.neg(dead);
        let live = d.add(a, b);
        d.mark_output("y", live);
        let e = eliminate_dead(&d);
        assert_equivalent(&d, &e);
        assert_eq!(e.inputs().len(), 2, "inputs always survive");
        assert_eq!(e.len(), 3, "a, b, add");
    }

    #[test]
    fn allocations_are_semantics_preserving_and_shaped() {
        let d = parse_dfg("y = a + b + c + e + f", fmt(4)).unwrap();
        for s in [
            AdderStructure::LinearChain,
            AdderStructure::BalancedTree,
            AdderStructure::OnlineChained,
        ] {
            let r = optimize(&d, s);
            assert_equivalent(&d, &r);
            let adds = r.nodes().filter(|(_, op)| matches!(op, Op::Add(..))).count();
            assert_eq!(adds, 4, "{s:?} keeps 4 two-input adders");
        }
        // Depth differs: balanced tree is shallower than the chain.
        let chain = optimize(&d, AdderStructure::LinearChain);
        let tree = optimize(&d, AdderStructure::BalancedTree);
        assert!(max_depth(&tree) < max_depth(&chain));
    }

    fn max_depth(d: &Dfg) -> usize {
        let mut depth = vec![0usize; d.len()];
        let mut m = 0;
        for (id, op) in d.nodes() {
            depth[id.index()] =
                op.operands().iter().map(|o| depth[o.index()] + 1).max().unwrap_or(0);
            m = m.max(depth[id.index()]);
        }
        m
    }

    #[test]
    fn online_chained_orders_by_depth() {
        // f is behind a multiplier (deep); chain must put it last.
        let d = parse_dfg("y = f*g + a + b", fmt(4)).unwrap();
        let r = optimize(&d, AdderStructure::OnlineChained);
        assert_equivalent(&d, &r);
        let last_add = r
            .nodes()
            .filter_map(|(id, op)| match op {
                Op::Add(..) => Some(id),
                _ => None,
            })
            .last()
            .unwrap();
        if let Op::Add(_, rhs) = *r.op(last_add) {
            assert!(matches!(r.op(rhs), Op::Mul(..)), "deep multiplier addend chained last: {r:?}");
        }
    }

    #[test]
    fn fanout_and_output_boundaries_stop_reassociation() {
        // t is an output and also feeds y: it must survive reassociation.
        let d = parse_dfg("t = a + b + c\ny = t + e + f\nz = t", fmt(4)).unwrap();
        let r = optimize(&d, AdderStructure::BalancedTree);
        assert_equivalent(&d, &r);
        // `t` is read by `y`, so the alias `z` is the exported name.
        let t_node = r.outputs().iter().find(|(n, _)| n == "z").unwrap().1;
        let y_node = r.outputs().iter().find(|(n, _)| n == "y").unwrap().1;
        assert!(matches!(r.op(t_node), Op::Add(..)));
        assert!(matches!(r.op(y_node), Op::Add(..)));
    }

    #[test]
    fn mac_terms_fold_and_vanish() {
        // (a, 0.5) stays; (0.25, 0.5) folds to a constant addend;
        // (b, 0) vanishes.
        let mut d = Dfg::new();
        let a = d.input("a", fmt(4));
        let b = d.input("b", fmt(4));
        let half = d.constant(Q::new(1, 1));
        let quarter = d.constant(Q::new(1, 2));
        let zero = d.constant(Q::ZERO);
        let m = d.mac(&[(a, half), (quarter, half), (b, zero)]);
        d.mark_output("y", m);
        let f = eliminate_dead(&constant_fold(&d));
        assert_equivalent(&d, &f);
        let macs: Vec<_> = f
            .nodes()
            .filter_map(|(_, op)| match op {
                Op::Mac(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(macs.len(), 1);
        assert_eq!(macs[0].len(), 1, "only the live term survives: {f:?}");
        // The folded constant product re-enters through an Add.
        assert!(f.nodes().any(|(_, op)| matches!(op, Op::Add(..))));
    }

    #[test]
    fn all_constant_mac_folds_to_a_constant() {
        let mut d = Dfg::new();
        let h = d.constant(Q::new(1, 1));
        let q = d.constant(Q::new(1, 2));
        let m = d.mac(&[(h, q), (q, q)]);
        d.mark_output("y", m);
        let f = eliminate_dead(&constant_fold(&d));
        assert_eq!(
            f.eval_exact(&[]),
            vec![Q::new(1, 2) * Q::new(1, 1) + Q::new(1, 2) * Q::new(1, 2)]
        );
        assert!(f.nodes().all(|(_, op)| matches!(op, Op::Const(_))), "{f:?}");
    }

    #[test]
    fn cse_merges_macs_with_commuted_factor_pairs() {
        let mut d = Dfg::new();
        let a = d.input("a", fmt(4));
        let b = d.input("b", fmt(4));
        let c = d.input("c", fmt(4));
        let m1 = d.mac(&[(a, b), (b, c)]);
        let m2 = d.mac(&[(b, a), (c, b)]); // factor pairs commuted
        let s = d.add(m1, m2);
        d.mark_output("y", s);
        let r = cse(&d);
        assert_equivalent(&d, &r);
        let macs = r.nodes().filter(|(_, op)| matches!(op, Op::Mac(_))).count();
        assert_eq!(macs, 1, "commuted-pair duplicate merged: {r:?}");
    }

    #[test]
    fn optimize_preserves_online_reference_semantics_of_result() {
        // The post-pass graph evaluates consistently online: same graph,
        // same reference — sanity that passes produce valid graphs.
        let d = parse_dfg("y = 0.25*a + 0.5*b + 0.25*c", fmt(6)).unwrap();
        let r = optimize(&d, AdderStructure::BalancedTree);
        let ins: Vec<BsVector> = [5i128, -11, 19]
            .iter()
            .map(|&v| BsVector::from_sd(&SdNumber::from_value(Q::new(v, 6), 6).unwrap()))
            .collect();
        let got = r.eval_online(&ins, 3);
        let exact = r.eval_exact(&[Q::new(5, 6), Q::new(-11, 6), Q::new(19, 6)]);
        assert_eq!(got.len(), 1);
        assert!((got[0].value() - exact[0]).abs() <= Q::new(9, 7) << 1);
    }
}
