//! The elaborator: lowers a [`Dfg`] to one flat gate-level
//! [`Netlist`] in either arithmetic style.
//!
//! * **Online** ([`Style::Online`]): every edge is a borrow-save digit
//!   bus (MSD-first `(p, n)` planes). Adds and subtracts compose the
//!   digit-parallel online adder ([`bs_add_gates`]); multiplies compose
//!   the unrolled online multiplier core
//!   ([`online_multiplier_core`]) after normalizing both operands to MSD
//!   position 1 and zero-padding them to a common length — the
//!   δ-composition rule of [`Dfg::online_windows`]. The settled netlist
//!   is bit-exact against [`Dfg::eval_online`], including multiplier
//!   truncation and non-canonical digit encodings.
//! * **Conventional** ([`Style::Conventional`]): every edge is an
//!   LSB-first two's-complement vector with a fractional weight
//!   ([`Dfg::tc_formats`]). Adds/subtracts are full-precision ripple
//!   CPAs, multiplies are Baugh–Wooley arrays
//!   ([`array_multiplier_core`]); the result is exact against
//!   [`Dfg::eval_exact`].
//!
//! Either way the bus shapes of the produced [`SynthesizedDatapath`]
//! equal the IR's format bookkeeping, so harnesses can encode inputs and
//! decode outputs without consulting the netlist.

use crate::ir::{Dfg, Op};
use ola_arith::synth::bits::{add_signed, encode_const, ripple_add, sign_extend};
use ola_arith::synth::{
    array_multiplier_core, bs_add_gates, fused_mac_gates, online_multiplier_core, BsSignals,
};
use ola_netlist::sta::prune_dead;
use ola_netlist::{NetId, Netlist};
use ola_redundant::{BsVector, Q};

/// The two datapath styles the elaborator can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Style {
    /// MSD-first signed-digit (borrow-save) online arithmetic.
    Online,
    /// LSB-first two's-complement conventional arithmetic.
    Conventional,
}

impl Style {
    /// Stable lowercase name for CSV rows and manifests.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Style::Online => "online",
            Style::Conventional => "conventional",
        }
    }
}

/// Elaboration options.
#[derive(Clone, Copy, Debug)]
pub struct ElabOptions {
    /// Target arithmetic style.
    pub style: Style,
    /// Selection-estimate granularity `t` of every online multiplier
    /// (ignored by the conventional style). Must be ≥ 3.
    pub frac_digits: i32,
    /// Prune logic that cannot reach an output (the unrolled multiplier
    /// recurrence always leaves some behind). Disable only when a harness
    /// needs gate-index-stable netlists (e.g. jittered-delay seeds).
    pub prune: bool,
}

impl ElabOptions {
    /// Defaults for `style`: `frac_digits = 3`, pruning on.
    #[must_use]
    pub fn new(style: Style) -> Self {
        ElabOptions { style, frac_digits: 3, prune: true }
    }

    /// Sets the online selection granularity.
    #[must_use]
    pub fn with_frac_digits(mut self, t: i32) -> Self {
        self.frac_digits = t;
        self
    }

    /// Enables or disables dead-logic pruning.
    #[must_use]
    pub fn with_prune(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }
}

/// Shape of one I/O port of a synthesized datapath.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortShape {
    /// A borrow-save digit window: the netlist carries the `p` plane then
    /// the `n` plane, MSD first (`digits` nets each).
    Online {
        /// Most significant digit position (weight `2^-msd_pos`).
        msd_pos: i32,
        /// Number of digit positions.
        digits: usize,
    },
    /// An LSB-first two's-complement vector; bit `i` has weight
    /// `2^(i - frac)`.
    Tc {
        /// Number of bits (the last is the sign).
        width: usize,
        /// Fractional weight of the LSB (`2^-frac`).
        frac: i32,
    },
}

impl PortShape {
    /// Number of netlist wires the port occupies.
    #[must_use]
    pub fn wire_count(self) -> usize {
        match self {
            PortShape::Online { digits, .. } => 2 * digits,
            PortShape::Tc { width, .. } => width,
        }
    }
}

/// One named I/O port with its bus shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Port {
    /// Port name (the DFG input/output name).
    pub name: String,
    /// Bus shape.
    pub shape: PortShape,
}

/// A DFG lowered to one flat netlist, with enough port metadata to drive
/// the `ola-core` backends: input encoders, output wire lists, and
/// per-port decoders.
#[derive(Clone, Debug)]
pub struct SynthesizedDatapath {
    /// The gate-level netlist. Online output buses are named
    /// `"{name}p"`/`"{name}n"`; conventional buses are named `"{name}"`.
    pub netlist: Netlist,
    /// The style it was elaborated in.
    pub style: Style,
    /// Input ports, in [`Dfg::inputs`] order (also the netlist's input
    /// ordering).
    pub inputs: Vec<Port>,
    /// Output ports, in [`Dfg::outputs`] order.
    pub outputs: Vec<Port>,
    /// The online selection granularity used (3 for conventional).
    pub frac_digits: i32,
}

impl SynthesizedDatapath {
    /// All output nets, concatenated in port order (online: `p` plane
    /// then `n` plane per port). This is the wire list to watch in the
    /// simulation backends; [`SynthesizedDatapath::decode_output`] reads
    /// values back out of a slice with this layout.
    #[must_use]
    pub fn output_wires(&self) -> Vec<NetId> {
        let mut wires = Vec::new();
        for port in &self.outputs {
            match port.shape {
                PortShape::Online { .. } => {
                    wires.extend_from_slice(self.netlist.output(&format!("{}p", port.name)));
                    wires.extend_from_slice(self.netlist.output(&format!("{}n", port.name)));
                }
                PortShape::Tc { .. } => {
                    wires.extend_from_slice(self.netlist.output(&port.name));
                }
            }
        }
        wires
    }

    /// Per-digit output bit groups for [`ola_netlist::sta::certify()`]: one
    /// group per borrow-save digit (its `p` and `n` nets) or per
    /// two's-complement bit.
    #[must_use]
    pub fn output_digit_groups(&self) -> Vec<Vec<NetId>> {
        let mut groups = Vec::new();
        for port in &self.outputs {
            match port.shape {
                PortShape::Online { digits, .. } => {
                    let p = self.netlist.output(&format!("{}p", port.name)).to_vec();
                    let n = self.netlist.output(&format!("{}n", port.name)).to_vec();
                    for i in 0..digits {
                        groups.push(vec![p[i], n[i]]);
                    }
                }
                PortShape::Tc { .. } => {
                    for &net in self.netlist.output(&port.name) {
                        groups.push(vec![net]);
                    }
                }
            }
        }
        groups
    }

    /// Encodes one borrow-save vector per input port (windows must match)
    /// into the netlist's flat input-bit vector.
    ///
    /// # Panics
    ///
    /// Panics on a port-count, shape, or style mismatch.
    #[must_use]
    pub fn encode_inputs_online(&self, values: &[BsVector]) -> Vec<bool> {
        assert_eq!(self.style, Style::Online, "online encoding on a conventional datapath");
        assert_eq!(values.len(), self.inputs.len(), "input port count mismatch");
        let mut bits = Vec::new();
        for (port, v) in self.inputs.iter().zip(values) {
            let PortShape::Online { msd_pos, digits } = port.shape else {
                unreachable!("online datapaths have online ports");
            };
            assert_eq!(v.msd_pos(), msd_pos, "window MSD mismatch on {:?}", port.name);
            assert_eq!(v.len(), digits, "window length mismatch on {:?}", port.name);
            for i in 0..digits {
                bits.push(v.bits(msd_pos + i as i32).0);
            }
            for i in 0..digits {
                bits.push(v.bits(msd_pos + i as i32).1);
            }
        }
        bits
    }

    /// Encodes one exact rational per input port into the netlist's flat
    /// input-bit vector (two's-complement at each port's format).
    ///
    /// # Panics
    ///
    /// Panics on a port-count or style mismatch, or when a value does not
    /// fit a port's `(width, frac)` format.
    #[must_use]
    pub fn encode_inputs_tc(&self, values: &[Q]) -> Vec<bool> {
        assert_eq!(self.style, Style::Conventional, "tc encoding on an online datapath");
        assert_eq!(values.len(), self.inputs.len(), "input port count mismatch");
        let mut bits = Vec::new();
        for (port, &v) in self.inputs.iter().zip(values) {
            let PortShape::Tc { width, frac } = port.shape else {
                unreachable!("conventional datapaths have tc ports");
            };
            let units = q_to_units(v, frac)
                .unwrap_or_else(|| panic!("{v:?} not representable at frac {frac}"));
            assert!(
                units >= -(1i128 << (width - 1)) && units < (1i128 << (width - 1)),
                "{v:?} does not fit {width} bits at frac {frac}"
            );
            for i in 0..width {
                bits.push(units >> i & 1 == 1);
            }
        }
        bits
    }

    /// Decodes output port `port` from a value slice laid out like
    /// [`SynthesizedDatapath::output_wires`] — settled backend samples,
    /// `Netlist::eval` projections, and the empirical-curve judge all use
    /// this. Online ports decode their (possibly non-canonical)
    /// borrow-save digits to the represented value; conventional ports
    /// decode two's complement. Exact either way — no floating point.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range or `bits` is shorter than the
    /// concatenated output layout.
    #[must_use]
    pub fn decode_output(&self, port: usize, bits: &[bool]) -> Q {
        let mut off = 0usize;
        for p in &self.outputs[..port] {
            off += p.shape.wire_count();
        }
        match self.outputs[port].shape {
            PortShape::Online { msd_pos, digits } => {
                let mut v = BsVector::zero(msd_pos, digits);
                for i in 0..digits {
                    v.set_bits(msd_pos + i as i32, bits[off + i], bits[off + digits + i]);
                }
                v.value()
            }
            PortShape::Tc { width, frac } => {
                let mut units: i128 = 0;
                for i in 0..width {
                    if bits[off + i] {
                        units |= 1 << i;
                    }
                }
                if bits[off + width - 1] {
                    units -= 1 << width;
                }
                units_to_q(units, frac)
            }
        }
    }

    /// Decodes output port `port` as a raw borrow-save vector (online
    /// style only) — the bit-level view [`Dfg::eval_online`] is compared
    /// against.
    ///
    /// # Panics
    ///
    /// Panics on a conventional datapath or an out-of-range port.
    #[must_use]
    pub fn decode_output_bs(&self, port: usize, bits: &[bool]) -> BsVector {
        let mut off = 0usize;
        for p in &self.outputs[..port] {
            off += p.shape.wire_count();
        }
        let PortShape::Online { msd_pos, digits } = self.outputs[port].shape else {
            panic!("decode_output_bs on a conventional port");
        };
        let mut v = BsVector::zero(msd_pos, digits);
        for i in 0..digits {
            v.set_bits(msd_pos + i as i32, bits[off + i], bits[off + digits + i]);
        }
        v
    }
}

/// `v · 2^frac` when that is an integer (`frac` may be negative).
fn q_to_units(v: Q, frac: i32) -> Option<i128> {
    if frac >= 0 {
        v.scaled_to(frac as u32)
    } else {
        let div = 1i128 << (-frac) as u32;
        let n = v.scaled_to(0)?;
        (n % div == 0).then(|| n / div)
    }
}

/// `units · 2^-frac` as an exact rational (`frac` may be negative).
fn units_to_q(units: i128, frac: i32) -> Q {
    if frac >= 0 {
        Q::new(units, frac as u32)
    } else {
        Q::new(units, 0) << (-frac) as u32
    }
}

/// Lowers `dfg` to one flat netlist in the requested style.
///
/// # Panics
///
/// Panics if the graph has no outputs, if `opts.frac_digits < 3`, or (in
/// the conventional style) if a multiplier operand exceeds 31 bits or a
/// constant exceeds 63 bits.
#[must_use]
pub fn elaborate(dfg: &Dfg, opts: &ElabOptions) -> SynthesizedDatapath {
    assert!(!dfg.outputs().is_empty(), "datapath has no outputs");
    assert!(opts.frac_digits >= 3, "selection estimate must cover ≥ 3 fractional digits");
    let _span = ola_core::obs::span("synth.elaborate");
    let datapath = match opts.style {
        Style::Online => elaborate_online(dfg, opts),
        Style::Conventional => elaborate_conventional(dfg, opts),
    };
    ola_core::obs::registry().counter("ola.synth.elaborated").add(1);
    datapath
}

fn elaborate_online(dfg: &Dfg, opts: &ElabOptions) -> SynthesizedDatapath {
    let t = opts.frac_digits;
    let windows = dfg.online_windows();
    let mut nl = Netlist::new();
    let mut sigs: Vec<BsSignals> = Vec::with_capacity(dfg.len());
    let mut inputs = Vec::new();

    for (id, op) in dfg.nodes() {
        let sig = match *op {
            Op::Input { ref name, fmt } => {
                let p = nl.input_bus(&format!("{name}p"), fmt.digits);
                let n = nl.input_bus(&format!("{name}n"), fmt.digits);
                inputs.push(Port {
                    name: name.clone(),
                    shape: PortShape::Online { msd_pos: fmt.msd_pos, digits: fmt.digits },
                });
                BsSignals::from_nets(fmt.msd_pos, p, n)
            }
            Op::Const(c) => {
                let (sd, k) = crate::ir::const_sd(c);
                BsSignals::constant(&mut nl, &sd).shifted(k)
            }
            Op::Add(a, b) => bs_add_gates(&mut nl, &sigs[a.index()], &sigs[b.index()]),
            Op::Sub(a, b) => {
                let nb = sigs[b.index()].negated();
                bs_add_gates(&mut nl, &sigs[a.index()], &nb)
            }
            Op::Neg(a) => sigs[a.index()].negated(),
            Op::Mul(a, b) => {
                let (xa, xb) = (sigs[a.index()].clone(), sigs[b.index()].clone());
                mul_gates(&mut nl, &xa, &xb, t)
            }
            Op::ConstMul(c, a) => {
                let (sd, k) = crate::ir::const_sd(c);
                let cs = BsSignals::constant(&mut nl, &sd).shifted(k);
                let xa = sigs[a.index()].clone();
                mul_gates(&mut nl, &cs, &xa, t)
            }
            Op::Mac(ref terms) => {
                // Fused lowering: redundant accumulation end to end — no
                // selection CPAs, no per-product digitization.
                let pairs: Vec<(BsSignals, BsSignals)> = terms
                    .iter()
                    .map(|&(a, b)| (sigs[a.index()].clone(), sigs[b.index()].clone()))
                    .collect();
                let reg = ola_core::obs::registry();
                reg.counter("ola.synth.mac.fused_lowered").add(1);
                reg.counter("ola.synth.mac.terms").add(terms.len() as u64);
                fused_mac_gates(&mut nl, &pairs)
            }
        };
        debug_assert_eq!(
            (sig.msd_pos(), sig.len()),
            windows[id.index()],
            "elaborated window drifted from the IR bookkeeping"
        );
        sigs.push(sig);
    }

    let mut outputs = Vec::new();
    for (name, node) in dfg.outputs() {
        let sig = &sigs[node.index()];
        let (p, n) = sig.flat_nets();
        nl.set_output(&format!("{name}p"), p);
        nl.set_output(&format!("{name}n"), n);
        outputs.push(Port {
            name: name.clone(),
            shape: PortShape::Online { msd_pos: sig.msd_pos(), digits: sig.len() },
        });
    }

    let nl = if opts.prune { prune_with_gate(&nl) } else { nl };
    SynthesizedDatapath { netlist: nl, style: Style::Online, inputs, outputs, frac_digits: t }
}

/// Prunes unreachable logic, proving — under the [`crate::verify`]
/// `OLA_PROVE_REWRITES` debug gate — that the surviving cone is
/// bit-for-bit equivalent to the full netlist on every output bus.
fn prune_with_gate(nl: &Netlist) -> Netlist {
    let pruned = prune_dead(nl).expect("elaborated netlists are DAGs");
    crate::verify::debug_prove_netlist_rewrite("prune-dead", nl, &pruned);
    pruned
}

/// The online multiply lowering: normalize both operands to MSD position
/// 1 (pure rewiring), zero-pad to a common length, instantiate the
/// unrolled multiplier core, and shift the product window back —
/// mirroring [`crate::ir::Dfg::eval_online`]'s `mul_online` exactly.
fn mul_gates(nl: &mut Netlist, x: &BsSignals, y: &BsSignals, t: i32) -> BsSignals {
    let delta = ola_arith::online::DELTA as i32;
    let (sx, sy) = (x.msd_pos() - 1, y.msd_pos() - 1);
    let n = x.len().max(y.len()).max(1);
    let xs = pad_to(nl, &x.shifted(sx), n);
    let ys = pad_to(nl, &y.shifted(sy), n);
    let (zp, zn) = online_multiplier_core(nl, &xs, &ys, n, t);
    BsSignals::from_nets(1 - delta, zp, zn).shifted(-(sx + sy))
}

/// Zero-pads a MSD-position-1 bus to `n` digit positions (wires only).
fn pad_to(nl: &mut Netlist, v: &BsSignals, n: usize) -> BsSignals {
    let mut p = Vec::with_capacity(n);
    let mut nn = Vec::with_capacity(n);
    for pos in 1..=n as i32 {
        let (bp, bn) = v.bits(nl, pos);
        p.push(bp);
        nn.push(bn);
    }
    BsSignals::from_nets(1, p, nn)
}

/// A conventional edge: LSB-first bits plus the fractional weight of the
/// LSB.
struct TcSignal {
    bits: Vec<NetId>,
    frac: i32,
}

fn elaborate_conventional(dfg: &Dfg, opts: &ElabOptions) -> SynthesizedDatapath {
    let formats = dfg.tc_formats();
    let mut nl = Netlist::new();
    let mut sigs: Vec<TcSignal> = Vec::with_capacity(dfg.len());
    let mut inputs = Vec::new();

    for (id, op) in dfg.nodes() {
        let sig = match *op {
            Op::Input { ref name, fmt } => {
                let width = fmt.digits + 1;
                let frac = fmt.msd_pos + fmt.digits as i32 - 1;
                let bits = nl.input_bus(name, width);
                inputs.push(Port { name: name.clone(), shape: PortShape::Tc { width, frac } });
                TcSignal { bits, frac }
            }
            Op::Const(c) => {
                let (width, frac) = crate::ir::const_tc_format(c);
                let units = if c.is_zero() { 0 } else { c.numerator() };
                assert!(width <= 63, "constant too wide for the conventional lowering");
                let bits = encode_const(&mut nl, units as i64, width);
                TcSignal { bits, frac }
            }
            Op::Add(a, b) => {
                let (av, bv) = align(&mut nl, &sigs[a.index()], &sigs[b.index()]);
                let frac = sigs[a.index()].frac.max(sigs[b.index()].frac);
                TcSignal { bits: add_signed(&mut nl, &av, &bv), frac }
            }
            Op::Sub(a, b) => {
                let (av, bv) = align(&mut nl, &sigs[a.index()], &sigs[b.index()]);
                let frac = sigs[a.index()].frac.max(sigs[b.index()].frac);
                let width = av.len().max(bv.len()) + 1;
                let ax = sign_extend(&mut nl, &av, width);
                let bx = sign_extend(&mut nl, &bv, width);
                let nb: Vec<NetId> = bx.iter().map(|&x| nl.not(x)).collect();
                let one = nl.constant(true);
                TcSignal { bits: ripple_add(&mut nl, &ax, &nb, one).0, frac }
            }
            Op::Neg(a) => {
                let width = sigs[a.index()].bits.len() + 1;
                let ax = sign_extend(&mut nl, &sigs[a.index()].bits, width);
                let na: Vec<NetId> = ax.iter().map(|&x| nl.not(x)).collect();
                let zeros = vec![nl.constant(false); width];
                let one = nl.constant(true);
                TcSignal {
                    bits: ripple_add(&mut nl, &na, &zeros, one).0,
                    frac: sigs[a.index()].frac,
                }
            }
            Op::Mul(a, b) => {
                let (ab, af) = (sigs[a.index()].bits.clone(), sigs[a.index()].frac);
                let (bb, bf) = (sigs[b.index()].bits.clone(), sigs[b.index()].frac);
                mul_tc(&mut nl, &ab, af, &bb, bf)
            }
            Op::ConstMul(c, a) => {
                let (width, frac) = crate::ir::const_tc_format(c);
                let units = if c.is_zero() { 0 } else { c.numerator() };
                assert!(width <= 63, "constant too wide for the conventional lowering");
                let cb = encode_const(&mut nl, units as i64, width);
                let (ab, af) = (sigs[a.index()].bits.clone(), sigs[a.index()].frac);
                mul_tc(&mut nl, &cb, frac, &ab, af)
            }
            Op::Mac(ref terms) => {
                // Conventional MAC: per-term Baugh–Wooley arrays into one
                // balanced signed adder tree (exact, paper-style baseline).
                let reg = ola_core::obs::registry();
                reg.counter("ola.synth.mac.conventional_lowered").add(1);
                reg.counter("ola.synth.mac.terms").add(terms.len() as u64);
                let prods: Vec<TcSignal> = terms
                    .iter()
                    .map(|&(a, b)| {
                        let (ab, af) = (sigs[a.index()].bits.clone(), sigs[a.index()].frac);
                        let (bb, bf) = (sigs[b.index()].bits.clone(), sigs[b.index()].frac);
                        mul_tc(&mut nl, &ab, af, &bb, bf)
                    })
                    .collect();
                mac_tc_tree(&mut nl, prods)
            }
        };
        debug_assert_eq!(
            (sig.bits.len(), sig.frac),
            formats[id.index()],
            "elaborated format drifted from the IR bookkeeping"
        );
        sigs.push(sig);
    }

    let mut outputs = Vec::new();
    for (name, node) in dfg.outputs() {
        let sig = &sigs[node.index()];
        nl.set_output(name, sig.bits.clone());
        outputs.push(Port {
            name: name.clone(),
            shape: PortShape::Tc { width: sig.bits.len(), frac: sig.frac },
        });
    }

    let nl = if opts.prune { prune_with_gate(&nl) } else { nl };
    SynthesizedDatapath {
        netlist: nl,
        style: Style::Conventional,
        inputs,
        outputs,
        frac_digits: opts.frac_digits,
    }
}

/// Aligns two conventional signals to a common fractional weight by
/// prepending constant-zero LSBs to the coarser one.
fn align(nl: &mut Netlist, a: &TcSignal, b: &TcSignal) -> (Vec<NetId>, Vec<NetId>) {
    let frac = a.frac.max(b.frac);
    let pad = |nl: &mut Netlist, s: &TcSignal| {
        let zeros = (frac - s.frac) as usize;
        let mut v = vec![nl.constant(false); zeros];
        v.extend_from_slice(&s.bits);
        v
    };
    (pad(nl, a), pad(nl, b))
}

/// Folds conventional product signals with a balanced `chunks(2)` signed
/// adder tree — the format walk of [`crate::ir`]'s `mac_tc_fold`, in
/// gates.
fn mac_tc_tree(nl: &mut Netlist, prods: Vec<TcSignal>) -> TcSignal {
    let mut level = prods;
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.into_iter();
        while let Some(x) = it.next() {
            match it.next() {
                Some(y) => {
                    let (av, bv) = align(nl, &x, &y);
                    let frac = x.frac.max(y.frac);
                    next.push(TcSignal { bits: add_signed(nl, &av, &bv), frac });
                }
                None => next.push(x),
            }
        }
        level = next;
    }
    level.pop().expect("fused MAC needs at least one term")
}

/// Exact signed multiply: pad both operands to a common width `w ≤ 31`,
/// Baugh–Wooley array → `2w` product bits at `frac = fa + fb`.
fn mul_tc(nl: &mut Netlist, a: &[NetId], fa: i32, b: &[NetId], fb: i32) -> TcSignal {
    let w = a.len().max(b.len());
    assert!(w <= 31, "conventional multiplier operand exceeds 31 bits");
    let ax = sign_extend(nl, a, w);
    let bx = sign_extend(nl, b, w);
    TcSignal { bits: array_multiplier_core(nl, &ax, &bx), frac: fa + fb }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::InputFmt;
    use crate::parser::parse_dfg;
    use ola_redundant::SdNumber;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn filter_dfg(digits: usize) -> Dfg {
        parse_dfg("y = a * 0.5 + b * 0.5 + c * 0.25", InputFmt { msd_pos: 1, digits })
            .expect("valid program")
    }

    fn random_operand(rng: &mut ChaCha8Rng, digits: usize) -> BsVector {
        let bound = (1i128 << digits) - 1;
        let v = Q::new(rng.gen_range(-bound..=bound), digits as u32);
        BsVector::from_sd(&SdNumber::from_value(v, digits).expect("in range"))
    }

    #[test]
    fn online_elaboration_is_bit_true_against_the_ir_reference() {
        let digits = 4;
        let dfg = filter_dfg(digits);
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Online));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..40 {
            let ins: Vec<BsVector> = (0..3).map(|_| random_operand(&mut rng, digits)).collect();
            let want = dfg.eval_online(&ins, 3);
            let vals = dp.netlist.eval(&dp.encode_inputs_online(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            let got = dp.decode_output_bs(0, &bits);
            assert_eq!(got, want[0], "inputs {ins:?}");
        }
    }

    #[test]
    fn conventional_elaboration_is_exact_against_eval_exact() {
        let digits = 4;
        let dfg = filter_dfg(digits);
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Conventional));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..40 {
            let ins: Vec<Q> =
                (0..3).map(|_| Q::new(rng.gen_range(-15i128..=15), digits as u32)).collect();
            let want = dfg.eval_exact(&ins);
            let vals = dp.netlist.eval(&dp.encode_inputs_tc(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            assert_eq!(dp.decode_output(0, &bits), want[0], "inputs {ins:?}");
        }
    }

    #[test]
    fn online_decode_output_value_matches_bs_view() {
        let dfg = filter_dfg(3);
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Online));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let ins: Vec<BsVector> = (0..3).map(|_| random_operand(&mut rng, 3)).collect();
        let vals = dp.netlist.eval(&dp.encode_inputs_online(&ins));
        let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
        assert_eq!(dp.decode_output(0, &bits), dp.decode_output_bs(0, &bits).value());
    }

    #[test]
    fn subtraction_and_negation_lower_exactly_in_both_styles() {
        let mut dfg = Dfg::new();
        let fmt = InputFmt { msd_pos: 1, digits: 3 };
        let a = dfg.input("a", fmt);
        let b = dfg.input("b", fmt);
        let d = dfg.sub(a, b);
        let n = dfg.neg(d);
        dfg.mark_output("d", d);
        dfg.mark_output("m", n);

        // Conventional: exact.
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Conventional));
        let wires = dp.output_wires();
        for (av, bv) in [(3i128, -5i128), (-7, -7), (0, 6), (5, 7)] {
            let ins = [Q::new(av, 3), Q::new(bv, 3)];
            let vals = dp.netlist.eval(&dp.encode_inputs_tc(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            assert_eq!(dp.decode_output(0, &bits), ins[0] - ins[1]);
            assert_eq!(dp.decode_output(1, &bits), ins[1] - ins[0]);
        }

        // Online: adds/subs are exact too (no truncation).
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Online));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..20 {
            let ins: Vec<BsVector> = (0..2).map(|_| random_operand(&mut rng, 3)).collect();
            let vals = dp.netlist.eval(&dp.encode_inputs_online(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            let (x, y) = (ins[0].value(), ins[1].value());
            assert_eq!(dp.decode_output(0, &bits), x - y);
            assert_eq!(dp.decode_output(1, &bits), y - x);
        }
    }

    #[test]
    fn mixed_format_graphs_elaborate_with_matching_bookkeeping() {
        // Different MSD positions and widths exercise alignment (tc) and
        // δ-composition shifts (online).
        let mut dfg = Dfg::new();
        let a = dfg.input("a", InputFmt { msd_pos: 0, digits: 4 });
        let b = dfg.input("b", InputFmt { msd_pos: 2, digits: 3 });
        let m = dfg.mul(a, b);
        let s = dfg.add(m, a);
        dfg.mark_output("y", s);

        let dp = elaborate(&dfg, &ElabOptions::new(Style::Conventional));
        let w = dfg.tc_formats();
        let PortShape::Tc { width, frac } = dp.outputs[0].shape else { panic!() };
        assert_eq!((width, frac), w[s.index()]);

        let dp = elaborate(&dfg, &ElabOptions::new(Style::Online));
        let w = dfg.online_windows();
        let PortShape::Online { msd_pos, digits } = dp.outputs[0].shape else { panic!() };
        assert_eq!((msd_pos, digits), w[s.index()]);
    }

    fn mac_filter_dfg(digits: usize) -> Dfg {
        let mut dfg = Dfg::new();
        let fmt = InputFmt { msd_pos: 1, digits };
        let a = dfg.input("a", fmt);
        let b = dfg.input("b", fmt);
        let c = dfg.input("c", fmt);
        let q = dfg.constant(Q::new(1, 2));
        let h = dfg.constant(Q::new(1, 1));
        let y = dfg.mac(&[(a, q), (b, h), (c, q)]);
        dfg.mark_output("y", y);
        dfg
    }

    #[test]
    fn mac_online_elaboration_is_bit_true_against_the_ir_reference() {
        let digits = 4;
        let dfg = mac_filter_dfg(digits);
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Online));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for _ in 0..40 {
            let ins: Vec<BsVector> = (0..3).map(|_| random_operand(&mut rng, digits)).collect();
            let want = dfg.eval_online(&ins, 3);
            let vals = dp.netlist.eval(&dp.encode_inputs_online(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            assert_eq!(dp.decode_output_bs(0, &bits), want[0], "inputs {ins:?}");
        }
    }

    #[test]
    fn mac_online_elaboration_is_settled_exact() {
        // The fused accumulator never digitizes, so the settled value is
        // the exact inner product — not just the online reference.
        let digits = 5;
        let dfg = mac_filter_dfg(digits);
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Online));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        for _ in 0..40 {
            let ins: Vec<BsVector> = (0..3).map(|_| random_operand(&mut rng, digits)).collect();
            let want = dfg.eval_exact(&[ins[0].value(), ins[1].value(), ins[2].value()]);
            let vals = dp.netlist.eval(&dp.encode_inputs_online(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            assert_eq!(dp.decode_output(0, &bits), want[0], "inputs {ins:?}");
        }
    }

    #[test]
    fn mac_conventional_elaboration_is_exact_against_eval_exact() {
        let digits = 4;
        let dfg = mac_filter_dfg(digits);
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Conventional));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for _ in 0..40 {
            let ins: Vec<Q> =
                (0..3).map(|_| Q::new(rng.gen_range(-15i128..=15), digits as u32)).collect();
            let want = dfg.eval_exact(&ins);
            let vals = dp.netlist.eval(&dp.encode_inputs_tc(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            assert_eq!(dp.decode_output(0, &bits), want[0], "inputs {ins:?}");
        }
    }

    #[test]
    fn mac_of_variable_pairs_handles_mixed_formats() {
        // Different MSD positions and widths exercise the accumulation
        // window rule and the conventional alignment fold.
        let mut dfg = Dfg::new();
        let a = dfg.input("a", InputFmt { msd_pos: 0, digits: 4 });
        let b = dfg.input("b", InputFmt { msd_pos: 2, digits: 3 });
        let y = dfg.mac(&[(a, b), (b, b)]);
        dfg.mark_output("y", y);

        let dp = elaborate(&dfg, &ElabOptions::new(Style::Conventional));
        let PortShape::Tc { width, frac } = dp.outputs[0].shape else { panic!() };
        assert_eq!((width, frac), dfg.tc_formats()[y.index()]);
        let wires = dp.output_wires();
        for (av, bv) in [(7i128, 3i128), (-8, -4), (0, 3), (5, -2)] {
            // a: msd 0, 4 digits → frac 3; b: msd 2, 3 digits → frac 4.
            let ins = [Q::new(av, 3), Q::new(bv, 4)];
            let vals = dp.netlist.eval(&dp.encode_inputs_tc(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            assert_eq!(dp.decode_output(0, &bits), ins[0] * ins[1] + ins[1] * ins[1]);
        }

        let dp = elaborate(&dfg, &ElabOptions::new(Style::Online));
        let PortShape::Online { msd_pos, digits } = dp.outputs[0].shape else { panic!() };
        assert_eq!((msd_pos, digits), dfg.online_windows()[y.index()]);
    }

    #[test]
    fn pruning_preserves_input_order_and_values() {
        let dfg = filter_dfg(3);
        let pruned = elaborate(&dfg, &ElabOptions::new(Style::Online));
        let unpruned = elaborate(&dfg, &ElabOptions::new(Style::Online).with_prune(false));
        assert!(pruned.netlist.len() < unpruned.netlist.len(), "pruning removes dead logic");
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let ins: Vec<BsVector> = (0..3).map(|_| random_operand(&mut rng, 3)).collect();
        let bits_in = pruned.encode_inputs_online(&ins);
        let pv = pruned.netlist.eval(&bits_in);
        let uv = unpruned.netlist.eval(&bits_in);
        let pw = pruned.output_wires();
        let uw = unpruned.output_wires();
        let pbits: Vec<bool> = pw.iter().map(|w| pv[w.index()]).collect();
        let ubits: Vec<bool> = uw.iter().map(|w| uv[w.index()]).collect();
        assert_eq!(pbits, ubits);
    }

    #[test]
    fn digit_groups_cover_every_output_wire() {
        let dfg = filter_dfg(3);
        for style in [Style::Online, Style::Conventional] {
            let dp = elaborate(&dfg, &ElabOptions::new(style));
            let groups = dp.output_digit_groups();
            let flat: usize = groups.iter().map(Vec::len).sum();
            assert_eq!(flat, dp.output_wires().len());
        }
    }
}
