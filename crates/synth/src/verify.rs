//! Prove-after-rewrite: formal equivalence gates for the compiler.
//!
//! Every semantics-preserving pass claims it leaves the exact value of
//! every output untouched. This module turns that claim into a theorem
//! on demand: elaborate the graph before and after the rewrite in the
//! *conventional* style (which is exact against [`Dfg::eval_exact`] by
//! construction), align the output buses to a common two's-complement
//! format (pure wiring — zero LSB padding and sign extension), and hand
//! the pair to the netlist-level equivalence checker
//! ([`ola_netlist::equiv`]). Bit-level equivalence of the aligned buses
//! is then exactly value-level equivalence of the IR outputs.
//!
//! The gates are off by default (a BDD proof per pass invocation is not
//! free) and enabled by setting [`PROVE_REWRITES`] (`OLA_PROVE_REWRITES`)
//! to anything non-empty except `0` — CI's `verify` job and the `repro
//! equiv` experiment run with it on. A failed proof panics with the
//! replayable counterexample: a pass that miscompiles must never limp
//! on.
//!
//! Outcomes land in deterministic `ola.verify.*` counters:
//! `ola.verify.rewrites_proved`, `ola.verify.rewrite_mismatches`, and
//! `ola.verify.prove_skipped` (graphs whose widths exceed the
//! conventional lowering caps — e.g. a 40-digit multiplier operand —
//! cannot take this route and are counted, not silently dropped).

use crate::elab::{elaborate, ElabOptions, PortShape, Style};
use crate::ir::{Dfg, Op};
use ola_netlist::{check_equiv, EquivVerdict, Netlist};

/// Environment variable enabling the prove-after-rewrite gates
/// (non-empty and not `"0"` = on).
pub const PROVE_REWRITES: &str = "OLA_PROVE_REWRITES";

/// True when [`PROVE_REWRITES`] requests prove-after-rewrite gates.
#[must_use]
pub fn prove_gate_enabled() -> bool {
    std::env::var(PROVE_REWRITES).is_ok_and(|v| !v.is_empty() && v != "0")
}

/// True when `dfg` fits the conventional lowering's width caps
/// (multiplier operands ≤ 31 bits, constants ≤ 63 bits) — the
/// precondition for the equivalence-proof route.
#[must_use]
pub fn conventional_caps_ok(dfg: &Dfg) -> bool {
    let formats = dfg.tc_formats();
    dfg.nodes().all(|(_, op)| match op {
        Op::Const(c) => crate::ir::const_tc_format(*c).0 <= 63,
        Op::Mul(a, b) => formats[a.index()].0.max(formats[b.index()].0) <= 31,
        Op::ConstMul(c, a) => {
            let (wc, _) = crate::ir::const_tc_format(*c);
            wc <= 63 && wc.max(formats[a.index()].0) <= 31
        }
        Op::Mac(terms) => {
            terms.iter().all(|&(a, b)| formats[a.index()].0.max(formats[b.index()].0) <= 31)
        }
        _ => true,
    })
}

/// Elaborates `before` and `after` conventionally and aligns every
/// output bus pair to a common `(width, frac)` by zero-padding LSBs and
/// sign-extending MSBs — pure wiring, so bit-level equivalence of the
/// aligned netlists is value-level equivalence of the graphs.
///
/// Returns [`None`] when either graph exceeds the conventional width
/// caps (the route is unavailable, not failed).
#[must_use]
pub fn aligned_conventional_pair(before: &Dfg, after: &Dfg) -> Option<(Netlist, Netlist)> {
    if !conventional_caps_ok(before) || !conventional_caps_ok(after) {
        return None;
    }
    let opts = ElabOptions::new(Style::Conventional);
    let mut a = elaborate(before, &opts);
    let mut b = elaborate(after, &opts);
    for (pa, pb) in a.outputs.clone().iter().zip(b.outputs.clone().iter()) {
        debug_assert_eq!(pa.name, pb.name, "passes preserve output order");
        let (PortShape::Tc { width: wa, frac: fa }, PortShape::Tc { width: wb, frac: fb }) =
            (pa.shape, pb.shape)
        else {
            unreachable!("conventional datapaths have tc ports");
        };
        let frac = fa.max(fb);
        let width = (wa + (frac - fa) as usize).max(wb + (frac - fb) as usize);
        align_bus(&mut a.netlist, &pa.name, frac - fa, width);
        align_bus(&mut b.netlist, &pb.name, frac - fb, width);
    }
    Some((a.netlist, b.netlist))
}

/// Re-registers output bus `name` with `pad` constant-zero LSBs and sign
/// extension up to `width` bits.
fn align_bus(nl: &mut Netlist, name: &str, pad: i32, width: usize) {
    let old = nl.output(name).to_vec();
    let sign = *old.last().expect("elaborated buses are non-empty");
    let mut bits = Vec::with_capacity(width);
    for _ in 0..pad {
        bits.push(nl.constant(false));
    }
    bits.extend_from_slice(&old);
    while bits.len() < width {
        bits.push(sign);
    }
    nl.set_output(name, bits);
}

/// Proves that `after` computes the same exact value as `before` on
/// every output, via conventional elaboration and the staged netlist
/// equivalence checker. Returns the verdict, or [`None`] when the
/// conventional route is unavailable (width caps).
///
/// # Panics
///
/// Panics if the graphs' interfaces drifted (passes must keep inputs and
/// output order stable) — that is a compiler bug, not an input error.
#[must_use]
pub fn prove_pass_equivalence(before: &Dfg, after: &Dfg) -> Option<EquivVerdict> {
    let (a, b) = aligned_conventional_pair(before, after)?;
    match check_equiv(&a, &b) {
        Ok(verdict) => Some(verdict),
        Err(e) => panic!("rewrite changed the datapath interface: {e}"),
    }
}

/// The debug gate the passes call: no-op unless [`prove_gate_enabled`],
/// otherwise prove and panic on MISMATCH with the replayable
/// counterexample.
pub(crate) fn debug_prove_rewrite(pass: &str, before: &Dfg, after: &Dfg) {
    if !prove_gate_enabled() {
        return;
    }
    let reg = ola_core::obs::registry();
    match prove_pass_equivalence(before, after) {
        None => reg.counter("ola.verify.prove_skipped").add(1),
        Some(v) if v.is_equivalent() => {
            reg.counter("ola.verify.rewrites_proved").add(1);
        }
        Some(EquivVerdict::Mismatch { method, counterexample }) => {
            reg.counter("ola.verify.rewrite_mismatches").add(1);
            panic!(
                "pass {pass:?} miscompiled: outputs differ ({} found by {}): {counterexample}",
                counterexample.bus,
                method.name()
            );
        }
        Some(_) => unreachable!("non-mismatch verdicts are equivalent"),
    }
}

/// The debug gate for netlist-level rewrites (today: `prune_dead` inside
/// elaboration): both netlists share interfaces, so no alignment is
/// needed. No-op unless [`prove_gate_enabled`].
pub(crate) fn debug_prove_netlist_rewrite(pass: &str, before: &Netlist, after: &Netlist) {
    if !prove_gate_enabled() {
        return;
    }
    let reg = ola_core::obs::registry();
    match check_equiv(before, after) {
        Ok(v) if v.is_equivalent() => {
            reg.counter("ola.verify.rewrites_proved").add(1);
        }
        Ok(EquivVerdict::Mismatch { method, counterexample }) => {
            reg.counter("ola.verify.rewrite_mismatches").add(1);
            panic!(
                "netlist pass {pass:?} miscompiled ({} found by {}): {counterexample}",
                counterexample.bus,
                method.name()
            );
        }
        Ok(_) => unreachable!("non-mismatch verdicts are equivalent"),
        Err(e) => panic!("netlist pass {pass:?} changed the interface: {e}"),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::ir::InputFmt;
    use crate::parser::parse_dfg;
    use crate::passes::{constant_fold, cse, eliminate_dead, optimize, AdderStructure};
    use ola_redundant::Q;

    fn fmt(n: usize) -> InputFmt {
        InputFmt { msd_pos: 1, digits: n }
    }

    #[test]
    fn every_pass_is_provably_equivalent() {
        let d = parse_dfg("y = a * 0.25 + b * 0.5 + a * 0.25 + (0.5 - 0.25)", fmt(4)).unwrap();
        let stages: Vec<(&str, Dfg)> = vec![
            ("const-fold", constant_fold(&d)),
            ("cse", cse(&constant_fold(&d))),
            ("dce", eliminate_dead(&cse(&constant_fold(&d)))),
            ("chain", optimize(&d, AdderStructure::LinearChain)),
            ("tree", optimize(&d, AdderStructure::BalancedTree)),
            ("online-chain", optimize(&d, AdderStructure::OnlineChained)),
        ];
        for (pass, after) in &stages {
            let v = prove_pass_equivalence(&d, after).expect("within conventional caps");
            assert!(v.is_equivalent(), "{pass}: {v:?}");
            assert!(v.is_proof(), "{pass}: pass proofs must not be probabilistic");
        }
    }

    #[test]
    fn a_broken_rewrite_is_caught_with_a_replayable_counterexample() {
        // A deliberately wrong "rewrite": y = a + b  ↛  y = a - b.
        let before = parse_dfg("y = a + b", fmt(3)).unwrap();
        let after = parse_dfg("y = a - b", fmt(3)).unwrap();
        let v = prove_pass_equivalence(&before, &after).expect("within caps");
        let EquivVerdict::Mismatch { counterexample, .. } = v else {
            panic!("expected mismatch, got {v:?}");
        };
        // Replay through the aligned netlists.
        let (a, b) = aligned_conventional_pair(&before, &after).unwrap();
        let av = a.eval(&counterexample.inputs);
        let bv = b.eval(&counterexample.inputs);
        let abit = a.output(&counterexample.bus)[counterexample.bit];
        let bbit = b.output(&counterexample.bus)[counterexample.bit];
        assert_ne!(av[abit.index()], bv[bbit.index()]);
    }

    #[test]
    fn alignment_reconciles_diverging_output_formats() {
        // Constant folding changes the output's tc width/frac drastically.
        let before = parse_dfg("y = a * 0.5 + (0.25 * 0.5)", fmt(4)).unwrap();
        let after = eliminate_dead(&constant_fold(&before));
        assert!(after.len() < before.len());
        let v = prove_pass_equivalence(&before, &after).expect("within caps");
        assert!(v.is_equivalent(), "{v:?}");
    }

    #[test]
    fn width_capped_graphs_are_skipped_not_failed() {
        // 40-digit operands exceed the 31-bit conventional multiplier cap.
        let d = parse_dfg("y = a * b", fmt(40)).unwrap();
        assert!(!conventional_caps_ok(&d));
        assert!(prove_pass_equivalence(&d, &d).is_none());
    }

    #[test]
    fn whole_graph_constant_folds_still_prove() {
        let before = parse_dfg("y = 0.5 * 0.5 + 0.25", fmt(4)).unwrap();
        let after = eliminate_dead(&constant_fold(&before));
        let v = prove_pass_equivalence(&before, &after).expect("within caps");
        assert!(v.is_equivalent(), "{v:?}");
    }

    #[test]
    fn gate_env_parsing() {
        // Uses the raw parser logic rather than mutating process env in
        // parallel tests.
        let on = |v: &str| !v.is_empty() && v != "0";
        assert!(on("1"));
        assert!(on("true"));
        assert!(!on("0"));
        assert!(!on(""));
    }

    #[test]
    fn multi_output_graphs_align_every_bus() {
        let before = parse_dfg("t = a + b\ny = t * 0.5\nz = t - 0.25", fmt(3)).unwrap();
        // `t` is read by later statements, so the outputs are y and z.
        assert_eq!(before.eval_exact(&[Q::ZERO, Q::ZERO]).len(), 2);
        let after = optimize(&before, AdderStructure::BalancedTree);
        let v = prove_pass_equivalence(&before, &after).expect("within caps");
        assert!(v.is_equivalent(), "{v:?}");
        assert!(v.is_proof());
    }
}
