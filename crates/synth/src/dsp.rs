//! DSP workload generators over the IR: FIR banks, separable 2-D
//! convolution, and small matrix-vector kernels.
//!
//! Every generator is deterministic (fixed dyadic coefficient schedules,
//! no RNG) and comes in two flavours selected by [`MacFusion`]:
//!
//! * [`MacFusion::Fused`] — inner products are single [`Op::Mac`] nodes,
//!   lowering to the fused online MAC (redundant accumulation, no
//!   per-product digitization) or the conventional balanced product
//!   tree.
//! * [`MacFusion::Unfused`] — the paper-style baseline: one [`Op::Mul`]
//!   per product feeding a balanced [`Op::Add`] tree, so the online
//!   elaboration pays one selection CPA and one truncation per product.
//!
//! The two flavours of the same kernel are *exactly* equivalent in the
//! conventional domain (both lower to exact arithmetic), which is what
//! the staged equivalence checker proves in `repro equiv` and the
//! proptest suite. In the online domain the fused flavour is settled
//! exact while the unfused one carries per-product truncation — the
//! latency/accuracy contrast the `repro dsp` experiment measures.
//!
//! [`Op::Mac`]: crate::ir::Op::Mac
//! [`Op::Mul`]: crate::ir::Op::Mul
//! [`Op::Add`]: crate::ir::Op::Add

use crate::ir::{Dfg, InputFmt, NodeId};
use ola_redundant::Q;

/// Whether inner products fuse into a single MAC node or stay a
/// multiply/add tree.
#[derive(Clone, Copy, Debug, Eq, PartialEq, Hash)]
pub enum MacFusion {
    /// One [`Op::Mac`](crate::ir::Op::Mac) node per inner product.
    Fused,
    /// One multiplier per product, balanced adder tree to sum.
    Unfused,
}

impl MacFusion {
    /// Stable lower-case name for labels and CSV cells.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            MacFusion::Fused => "fused",
            MacFusion::Unfused => "unfused",
        }
    }
}

/// The deterministic dyadic coefficient schedule shared by every
/// generator: `c_i = ±2^{−(1 + i mod 3)}`, sign alternating. Exactly
/// representable at any operand width, so kernels stay width-sweepable.
#[must_use]
pub fn dyadic_coeff(i: usize) -> Q {
    let mag = Q::pow2_neg(1 + (i % 3) as u32);
    if i.is_multiple_of(2) {
        mag
    } else {
        -mag
    }
}

/// Balanced pairwise sum of `terms` (the `chunks(2)` fold the passes and
/// lowerings use everywhere).
fn sum_tree(dfg: &mut Dfg, mut terms: Vec<NodeId>) -> NodeId {
    assert!(!terms.is_empty(), "sum of no terms");
    while terms.len() > 1 {
        let mut next = Vec::with_capacity(terms.len().div_ceil(2));
        let mut it = terms.into_iter();
        while let Some(a) = it.next() {
            match it.next() {
                Some(b) => next.push(dfg.add(a, b)),
                None => next.push(a),
            }
        }
        terms = next;
    }
    terms[0]
}

/// One inner product `Σ c_k·x_k` in the requested flavour.
fn inner_product(dfg: &mut Dfg, xs: &[NodeId], cs: &[Q], fusion: MacFusion) -> NodeId {
    assert_eq!(xs.len(), cs.len(), "one coefficient per operand");
    match fusion {
        MacFusion::Fused => {
            let mut pairs = Vec::with_capacity(xs.len());
            for (&x, &c) in xs.iter().zip(cs) {
                let cn = dfg.constant(c);
                pairs.push((x, cn));
            }
            dfg.mac(&pairs)
        }
        MacFusion::Unfused => {
            let mut prods = Vec::with_capacity(xs.len());
            for (&x, &c) in xs.iter().zip(cs) {
                let cn = dfg.constant(c);
                prods.push(dfg.mul(x, cn));
            }
            sum_tree(dfg, prods)
        }
    }
}

/// A `taps`-tap FIR inner product `y = Σ_k c_k·x_k` over parallel delay
/// line inputs `x0..x{taps−1}` (the combinational datapath of one output
/// sample).
///
/// # Panics
///
/// Panics if `taps == 0`.
#[must_use]
pub fn fir_bank(taps: usize, fusion: MacFusion, fmt: InputFmt) -> Dfg {
    assert!(taps > 0, "FIR needs at least one tap");
    let mut dfg = Dfg::new();
    let xs: Vec<NodeId> = (0..taps).map(|k| dfg.input(&format!("x{k}"), fmt)).collect();
    let cs: Vec<Q> = (0..taps).map(dyadic_coeff).collect();
    let y = inner_product(&mut dfg, &xs, &cs, fusion);
    dfg.mark_output("y", y);
    let reg = ola_core::obs::registry();
    reg.counter("ola.dsp.fir_graphs").add(1);
    reg.counter("ola.dsp.inner_products").add(1);
    dfg
}

/// A separable `k×k` 2-D convolution patch: horizontal kernel `h_c =
/// dyadic_coeff(c)` inside each row, vertical kernel `v_r =
/// dyadic_coeff(r+1)` across row results — `y = Σ_r v_r·(Σ_c
/// h_c·x{r}_{c})`. In the fused flavour this is a MAC of MACs,
/// exercising accumulation-window composition through two levels.
///
/// # Panics
///
/// Panics if `k == 0`.
#[must_use]
pub fn conv2d_separable(k: usize, fusion: MacFusion, fmt: InputFmt) -> Dfg {
    assert!(k > 0, "convolution needs a nonzero kernel");
    let mut dfg = Dfg::new();
    let h: Vec<Q> = (0..k).map(dyadic_coeff).collect();
    let v: Vec<Q> = (0..k).map(|r| dyadic_coeff(r + 1)).collect();
    let mut rows = Vec::with_capacity(k);
    for r in 0..k {
        let xs: Vec<NodeId> = (0..k).map(|c| dfg.input(&format!("x{r}_{c}"), fmt)).collect();
        rows.push(inner_product(&mut dfg, &xs, &h, fusion));
    }
    let y = inner_product(&mut dfg, &rows, &v, fusion);
    dfg.mark_output("y", y);
    let reg = ola_core::obs::registry();
    reg.counter("ola.dsp.conv2d_graphs").add(1);
    reg.counter("ola.dsp.inner_products").add(1 + k as u64);
    dfg
}

/// A small `rows×cols` constant-matrix mat-vec `y_r = Σ_k
/// dyadic_coeff(r·cols + k)·x_k`, one output port per row.
///
/// # Panics
///
/// Panics if `rows == 0` or `cols == 0`.
#[must_use]
pub fn matvec(rows: usize, cols: usize, fusion: MacFusion, fmt: InputFmt) -> Dfg {
    assert!(rows > 0 && cols > 0, "mat-vec needs a nonempty matrix");
    let mut dfg = Dfg::new();
    let xs: Vec<NodeId> = (0..cols).map(|k| dfg.input(&format!("x{k}"), fmt)).collect();
    for r in 0..rows {
        let cs: Vec<Q> = (0..cols).map(|k| dyadic_coeff(r * cols + k)).collect();
        let y = inner_product(&mut dfg, &xs, &cs, fusion);
        dfg.mark_output(&format!("y{r}"), y);
    }
    let reg = ola_core::obs::registry();
    reg.counter("ola.dsp.matvec_graphs").add(1);
    reg.counter("ola.dsp.inner_products").add(rows as u64);
    dfg
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use ola_redundant::{BsVector, SdNumber};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn fmt(digits: usize) -> InputFmt {
        InputFmt { msd_pos: 1, digits }
    }

    fn random_inputs(rng: &mut ChaCha8Rng, n: usize, digits: usize) -> Vec<Q> {
        let m = (1i128 << digits) - 1;
        (0..n).map(|_| Q::new(rng.gen_range(-m..=m), digits as u32)).collect()
    }

    #[test]
    fn fused_and_unfused_flavours_agree_exactly() {
        let digits = 4;
        let cases: Vec<(Dfg, Dfg, usize)> = vec![
            (
                fir_bank(7, MacFusion::Fused, fmt(digits)),
                fir_bank(7, MacFusion::Unfused, fmt(digits)),
                7,
            ),
            (
                conv2d_separable(3, MacFusion::Fused, fmt(digits)),
                conv2d_separable(3, MacFusion::Unfused, fmt(digits)),
                9,
            ),
            (
                matvec(2, 4, MacFusion::Fused, fmt(digits)),
                matvec(2, 4, MacFusion::Unfused, fmt(digits)),
                4,
            ),
        ];
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        for (fused, unfused, n_in) in &cases {
            for _ in 0..30 {
                let ins = random_inputs(&mut rng, *n_in, 4);
                assert_eq!(fused.eval_exact(&ins), unfused.eval_exact(&ins));
            }
        }
    }

    #[test]
    fn fused_online_evaluation_is_settled_exact() {
        let digits = 5;
        let dfg = conv2d_separable(2, MacFusion::Fused, fmt(digits));
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        for _ in 0..30 {
            let qs = random_inputs(&mut rng, 4, digits);
            let bs: Vec<BsVector> = qs
                .iter()
                .map(|&q| BsVector::from_sd(&SdNumber::from_value(q, digits).unwrap()))
                .collect();
            let exact = dfg.eval_exact(&qs);
            let online: Vec<Q> = dfg.eval_online(&bs, 3).iter().map(BsVector::value).collect();
            assert_eq!(online, exact, "fused MACs never digitize between terms");
        }
    }

    #[test]
    fn coefficient_schedule_is_dyadic_and_alternating() {
        assert_eq!(dyadic_coeff(0), Q::pow2_neg(1));
        assert_eq!(dyadic_coeff(1), -Q::pow2_neg(2));
        assert_eq!(dyadic_coeff(2), Q::pow2_neg(3));
        assert_eq!(dyadic_coeff(3), -Q::pow2_neg(1));
    }

    #[test]
    fn matvec_has_one_output_per_row() {
        let dfg = matvec(3, 2, MacFusion::Fused, fmt(3));
        assert_eq!(dfg.outputs().len(), 3);
        let ins = vec![Q::new(1, 3), Q::new(-2, 3)];
        assert_eq!(dfg.eval_exact(&ins).len(), 3);
    }
}
