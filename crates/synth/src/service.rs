//! Typed query entry points for the `ola-serve` analysis service.
//!
//! A [`Query`] is the service's unit of work: a datapath written in the
//! expression language plus the analysis to run on it. Six analyses are
//! served, mirroring the CLI surfaces:
//!
//! * **pareto** — the full design-space exploration ([`explore`]):
//!   style × allocation × width with the Pareto frontier marked;
//! * **sweep** — the empirical latency–accuracy error curve of *one*
//!   variant ([`variant_error_curve`]), sharing the explorer's exact
//!   sampling discipline;
//! * **sta** — static timing + the per-digit certification report
//!   ([`ola_netlist::sta::certify`]);
//! * **lint** — the netlist lint catalogue
//!   ([`ola_netlist::sta::lint`]);
//! * **verify** — the formal story for one variant: the optimizer
//!   pipeline is *proved* value-preserving via the staged equivalence
//!   checker ([`crate::verify`]), and the abstract interpreter
//!   ([`crate::absint`]) reports sound settled and per-`Ts` sampling
//!   error bounds;
//! * **dsp** — a named DSP kernel ([`crate::dsp`]: FIR bank, separable
//!   conv2d, mat-vec) compiled in *both* MAC fusion flavours, reporting
//!   area and rated timing for each plus the overclocking error curve of
//!   the requested flavour. Takes no `expr` — the kernel is generated.
//!
//! Queries are **canonicalizable**: [`Query::canonical`] renders a fully
//! defaulted, field-ordered JSON form, and [`Query::cache_key`] is the
//! SHA-256 of exactly those bytes — the content address under which the
//! result is deduplicated by [`ola_core::cache::ContentCache`]. Two
//! requests that differ only in field order or omitted defaults share a
//! key; anything that changes the answer changes the key.
//!
//! Every analysis is deterministic (seeded sampling, fixed grids), which
//! is what makes content-addressed caching *sound*: a cached body is
//! bit-identical to what a recompute would produce.
//!
//! Request limits ([`Limits`]) bound the work a single query may ask for;
//! violations surface as [`QueryError::BadRequest`] before any compute
//! runs.

use crate::dsp::MacFusion;
use crate::elab::{elaborate, ElabOptions, Style, SynthesizedDatapath};
use crate::explore::{explore, variant_error_curve, ExploreConfig};
use crate::parser::parse_dfg;
use crate::passes::{optimize, AdderStructure};
use crate::InputFmt;
use ola_core::obs::json::JsonValue;
use ola_core::{CacheKey, SimBackend};
use ola_netlist::sta::lint;
use ola_netlist::{analyze, FpgaDelay};

/// Default online selection granularity for service queries.
pub const DEFAULT_FRAC_DIGITS: i32 = 3;
/// Default Ts-grid size for sweep/STA queries.
pub const DEFAULT_TS_POINTS: usize = 12;
/// Default Monte-Carlo samples per (variant, Ts).
pub const DEFAULT_SAMPLES: usize = 48;
/// Default RNG seed.
pub const DEFAULT_SEED: u64 = 2024;

/// Hard per-query work bounds, enforced before any compute runs.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Longest accepted expression, bytes.
    pub max_expr_len: usize,
    /// Largest accepted digit width.
    pub max_width: usize,
    /// Most widths one pareto query may enumerate.
    pub max_widths: usize,
    /// Largest accepted Ts-grid size.
    pub max_ts_points: usize,
    /// Largest accepted sample count.
    pub max_samples: usize,
    /// Largest accepted DSP kernel dimension (FIR taps, conv2d edge,
    /// mat-vec rows/columns).
    pub max_kernel: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_expr_len: 4096,
            max_width: 16,
            max_widths: 4,
            max_ts_points: 64,
            max_samples: 4096,
            max_kernel: 32,
        }
    }
}

/// A query rejection: the request was malformed or over the limits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The request is invalid as stated; re-sending it will fail again.
    BadRequest(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::BadRequest(m) => write!(f, "bad request: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

fn bad(msg: impl Into<String>) -> QueryError {
    QueryError::BadRequest(msg.into())
}

/// One concrete datapath variant: the expression plus every knob that
/// selects a single compiled netlist.
#[derive(Clone, Debug, PartialEq)]
pub struct VariantSpec {
    /// Expression-language source (`"y = a * 0.25 + b"`).
    pub expr: String,
    /// Most significant digit position of the inputs.
    pub msd_pos: i32,
    /// Input digit width.
    pub width: usize,
    /// Arithmetic style.
    pub style: Style,
    /// Adder allocation.
    pub allocation: AdderStructure,
    /// Online selection granularity `t` (≥ 3).
    pub frac_digits: i32,
}

impl VariantSpec {
    fn compile(&self) -> Result<SynthesizedDatapath, QueryError> {
        let fmt = InputFmt { msd_pos: self.msd_pos, digits: self.width };
        let dfg = parse_dfg(&self.expr, fmt).map_err(|e| bad(format!("expression: {e}")))?;
        let opt = optimize(&dfg, self.allocation);
        let opts = ElabOptions::new(self.style).with_frac_digits(self.frac_digits);
        Ok(elaborate(&opt, &opts))
    }

    fn canonical_fields(&self) -> Vec<(String, JsonValue)> {
        vec![
            ("expr".into(), JsonValue::str(&self.expr)),
            ("msd_pos".into(), JsonValue::int(i64::from(self.msd_pos))),
            ("width".into(), JsonValue::U64(self.width as u64)),
            ("style".into(), JsonValue::str(self.style.name())),
            ("allocation".into(), JsonValue::str(self.allocation.name())),
            ("frac_digits".into(), JsonValue::int(i64::from(self.frac_digits))),
        ]
    }
}

/// A parsed, validated service query.
#[derive(Clone, Debug, PartialEq)]
pub enum Query {
    /// Full design-space exploration with Pareto marking.
    Pareto {
        /// Expression-language source.
        expr: String,
        /// Most significant digit position of the inputs.
        msd_pos: i32,
        /// Digit widths to enumerate.
        widths: Vec<usize>,
        /// Online selection granularity.
        frac_digits: i32,
        /// Ts-grid size.
        ts_points: usize,
        /// Samples per (variant, Ts).
        samples: usize,
        /// Base RNG seed.
        seed: u64,
        /// Simulation backend.
        backend: SimBackend,
    },
    /// Error curve of a single variant over its own Ts grid.
    Sweep {
        /// The variant to sweep.
        spec: VariantSpec,
        /// Ts-grid size.
        ts_points: usize,
        /// Samples per Ts point.
        samples: usize,
        /// RNG seed.
        seed: u64,
        /// Simulation backend.
        backend: SimBackend,
    },
    /// Static timing + per-digit certification of a single variant.
    Sta {
        /// The variant to analyze.
        spec: VariantSpec,
        /// Ts-grid size for the certification sweep.
        ts_points: usize,
    },
    /// Lint verdicts for a single variant's netlist.
    Lint {
        /// The variant to lint.
        spec: VariantSpec,
    },
    /// Formal verification of a single variant: optimizer-pipeline
    /// equivalence proof plus abstract-interpretation error bounds.
    Verify {
        /// The variant to verify.
        spec: VariantSpec,
        /// Ts-grid size for the sampling-bound sweep.
        ts_points: usize,
    },
    /// DSP kernel analysis: a generated kernel compiled in both MAC
    /// fusion flavours, with the requested flavour's error curve.
    Dsp {
        /// Kernel family: `fir`, `conv2d`, or `matvec`.
        kernel: String,
        /// Kernel size: FIR taps / conv2d kernel edge / mat-vec columns.
        size: usize,
        /// Mat-vec row count (ignored by `fir` and `conv2d`).
        rows: usize,
        /// Fusion flavour whose overclocking curve is swept.
        fusion: MacFusion,
        /// Most significant digit position of the inputs.
        msd_pos: i32,
        /// Input digit width.
        width: usize,
        /// Arithmetic style.
        style: Style,
        /// Adder allocation.
        allocation: AdderStructure,
        /// Online selection granularity.
        frac_digits: i32,
        /// Ts-grid size.
        ts_points: usize,
        /// Samples per Ts point.
        samples: usize,
        /// RNG seed.
        seed: u64,
        /// Simulation backend.
        backend: SimBackend,
    },
}

fn field_u64(obj: &JsonValue, key: &str, default: u64) -> Result<u64, QueryError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => {
            v.as_u64().ok_or_else(|| bad(format!("field {key:?} must be a non-negative integer")))
        }
    }
}

fn field_i64(obj: &JsonValue, key: &str, default: i64) -> Result<i64, QueryError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_i64().ok_or_else(|| bad(format!("field {key:?} must be an integer"))),
    }
}

fn field_str<'a>(obj: &'a JsonValue, key: &str, default: &'a str) -> Result<&'a str, QueryError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v.as_str().ok_or_else(|| bad(format!("field {key:?} must be a string"))),
    }
}

fn parse_style(name: &str) -> Result<Style, QueryError> {
    match name {
        "online" => Ok(Style::Online),
        "conventional" => Ok(Style::Conventional),
        other => Err(bad(format!("unknown style {other:?} (want online|conventional)"))),
    }
}

fn parse_allocation(name: &str) -> Result<AdderStructure, QueryError> {
    match name {
        "chain" => Ok(AdderStructure::LinearChain),
        "tree" => Ok(AdderStructure::BalancedTree),
        "online-chain" => Ok(AdderStructure::OnlineChained),
        other => Err(bad(format!("unknown allocation {other:?} (want chain|tree|online-chain)"))),
    }
}

fn parse_backend(name: &str) -> Result<SimBackend, QueryError> {
    SimBackend::parse(name)
        .ok_or_else(|| bad(format!("unknown backend {name:?} (want auto|event|batch)")))
}

fn parse_fusion(name: &str) -> Result<MacFusion, QueryError> {
    match name {
        "fused" => Ok(MacFusion::Fused),
        "unfused" => Ok(MacFusion::Unfused),
        other => Err(bad(format!("unknown fusion {other:?} (want fused|unfused)"))),
    }
}

impl Query {
    /// Parses and validates a wire-format JSON request body under
    /// `limits`. Unknown `kind`s, malformed fields, and limit violations
    /// are all [`QueryError::BadRequest`].
    ///
    /// # Errors
    ///
    /// [`QueryError::BadRequest`] with an operator-readable reason.
    pub fn from_json(body: &JsonValue, limits: &Limits) -> Result<Query, QueryError> {
        if body.as_object().is_none() {
            return Err(bad("request body must be a JSON object"));
        }
        let kind = body
            .get("kind")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| bad("missing string field \"kind\""))?;
        // The dsp kind generates its datapath; every other kind states one.
        let expr = match body.get("expr") {
            None if kind == "dsp" => "",
            None => return Err(bad("missing string field \"expr\"")),
            Some(v) => v.as_str().ok_or_else(|| bad("field \"expr\" must be a string"))?,
        };
        if expr.len() > limits.max_expr_len {
            return Err(bad(format!(
                "expr too long ({} > {} bytes)",
                expr.len(),
                limits.max_expr_len
            )));
        }
        let msd_pos = i32::try_from(field_i64(body, "msd_pos", 1)?)
            .map_err(|_| bad("msd_pos out of range"))?;
        let frac_digits =
            i32::try_from(field_i64(body, "frac_digits", i64::from(DEFAULT_FRAC_DIGITS))?)
                .map_err(|_| bad("frac_digits out of range"))?;
        if frac_digits < 3 {
            return Err(bad("frac_digits must be ≥ 3"));
        }
        let ts_points = usize::try_from(field_u64(body, "ts_points", DEFAULT_TS_POINTS as u64)?)
            .map_err(|_| bad("ts_points out of range"))?;
        if ts_points == 0 || ts_points > limits.max_ts_points {
            return Err(bad(format!("ts_points must be in 1..={}", limits.max_ts_points)));
        }
        let samples = usize::try_from(field_u64(body, "samples", DEFAULT_SAMPLES as u64)?)
            .map_err(|_| bad("samples out of range"))?;
        if samples == 0 || samples > limits.max_samples {
            return Err(bad(format!("samples must be in 1..={}", limits.max_samples)));
        }
        let seed = field_u64(body, "seed", DEFAULT_SEED)?;
        let backend = parse_backend(field_str(body, "backend", "auto")?)?;

        let width_field = |default: u64| -> Result<usize, QueryError> {
            let w = usize::try_from(field_u64(body, "width", default)?)
                .map_err(|_| bad("width out of range"))?;
            if w == 0 || w > limits.max_width {
                return Err(bad(format!("width must be in 1..={}", limits.max_width)));
            }
            Ok(w)
        };
        let spec = |body: &JsonValue| -> Result<VariantSpec, QueryError> {
            Ok(VariantSpec {
                expr: expr.to_owned(),
                msd_pos,
                width: width_field(4)?,
                style: parse_style(field_str(body, "style", "online")?)?,
                allocation: parse_allocation(field_str(body, "allocation", "tree")?)?,
                frac_digits,
            })
        };

        match kind {
            "pareto" => {
                let widths = match body.get("widths") {
                    None => vec![4, 8],
                    Some(v) => {
                        let arr = v.as_array().ok_or_else(|| bad("widths must be an array"))?;
                        arr.iter()
                            .map(|w| {
                                w.as_u64()
                                    .and_then(|w| usize::try_from(w).ok())
                                    .filter(|&w| w > 0 && w <= limits.max_width)
                                    .ok_or_else(|| {
                                        bad(format!(
                                            "each width must be in 1..={}",
                                            limits.max_width
                                        ))
                                    })
                            })
                            .collect::<Result<Vec<_>, _>>()?
                    }
                };
                if widths.is_empty() || widths.len() > limits.max_widths {
                    return Err(bad(format!("widths must list 1..={} entries", limits.max_widths)));
                }
                Ok(Query::Pareto {
                    expr: expr.to_owned(),
                    msd_pos,
                    widths,
                    frac_digits,
                    ts_points,
                    samples,
                    seed,
                    backend,
                })
            }
            "sweep" => Ok(Query::Sweep { spec: spec(body)?, ts_points, samples, seed, backend }),
            "sta" => Ok(Query::Sta { spec: spec(body)?, ts_points }),
            "lint" => Ok(Query::Lint { spec: spec(body)? }),
            "verify" => Ok(Query::Verify { spec: spec(body)?, ts_points }),
            "dsp" => {
                let kernel = field_str(body, "kernel", "fir")?;
                if !matches!(kernel, "fir" | "conv2d" | "matvec") {
                    return Err(bad(format!("unknown kernel {kernel:?} (want fir|conv2d|matvec)")));
                }
                let dim = |key: &str, default: u64| -> Result<usize, QueryError> {
                    let v = usize::try_from(field_u64(body, key, default)?)
                        .map_err(|_| bad(format!("{key} out of range")))?;
                    if v == 0 || v > limits.max_kernel {
                        return Err(bad(format!("{key} must be in 1..={}", limits.max_kernel)));
                    }
                    Ok(v)
                };
                Ok(Query::Dsp {
                    kernel: kernel.to_owned(),
                    size: dim("size", 4)?,
                    rows: dim("rows", 2)?,
                    fusion: parse_fusion(field_str(body, "fusion", "fused")?)?,
                    msd_pos,
                    width: width_field(4)?,
                    style: parse_style(field_str(body, "style", "online")?)?,
                    allocation: parse_allocation(field_str(body, "allocation", "tree")?)?,
                    frac_digits,
                    ts_points,
                    samples,
                    seed,
                    backend,
                })
            }
            other => {
                Err(bad(format!("unknown kind {other:?} (want pareto|sweep|sta|lint|verify|dsp)")))
            }
        }
    }

    /// Stable lowercase query-kind label.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Query::Pareto { .. } => "pareto",
            Query::Sweep { .. } => "sweep",
            Query::Sta { .. } => "sta",
            Query::Lint { .. } => "lint",
            Query::Verify { .. } => "verify",
            Query::Dsp { .. } => "dsp",
        }
    }

    /// The canonical JSON form: every field present (defaults filled in),
    /// in one fixed order. Semantically identical requests render to
    /// byte-identical canonical forms — the property the cache key rests
    /// on.
    #[must_use]
    pub fn canonical(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> =
            vec![("kind".into(), JsonValue::str(self.kind()))];
        match self {
            Query::Pareto {
                expr,
                msd_pos,
                widths,
                frac_digits,
                ts_points,
                samples,
                seed,
                backend,
            } => {
                fields.push(("expr".into(), JsonValue::str(expr)));
                fields.push(("msd_pos".into(), JsonValue::int(i64::from(*msd_pos))));
                fields.push((
                    "widths".into(),
                    JsonValue::Array(widths.iter().map(|&w| JsonValue::U64(w as u64)).collect()),
                ));
                fields.push(("frac_digits".into(), JsonValue::int(i64::from(*frac_digits))));
                fields.push(("ts_points".into(), JsonValue::U64(*ts_points as u64)));
                fields.push(("samples".into(), JsonValue::U64(*samples as u64)));
                fields.push(("seed".into(), JsonValue::U64(*seed)));
                fields.push(("backend".into(), JsonValue::str(backend.label())));
            }
            Query::Sweep { spec, ts_points, samples, seed, backend } => {
                fields.extend(spec.canonical_fields());
                fields.push(("ts_points".into(), JsonValue::U64(*ts_points as u64)));
                fields.push(("samples".into(), JsonValue::U64(*samples as u64)));
                fields.push(("seed".into(), JsonValue::U64(*seed)));
                fields.push(("backend".into(), JsonValue::str(backend.label())));
            }
            Query::Sta { spec, ts_points } => {
                fields.extend(spec.canonical_fields());
                fields.push(("ts_points".into(), JsonValue::U64(*ts_points as u64)));
            }
            Query::Lint { spec } => {
                fields.extend(spec.canonical_fields());
            }
            Query::Verify { spec, ts_points } => {
                fields.extend(spec.canonical_fields());
                fields.push(("ts_points".into(), JsonValue::U64(*ts_points as u64)));
            }
            Query::Dsp {
                kernel,
                size,
                rows,
                fusion,
                msd_pos,
                width,
                style,
                allocation,
                frac_digits,
                ts_points,
                samples,
                seed,
                backend,
            } => {
                fields.push(("kernel".into(), JsonValue::str(kernel)));
                fields.push(("size".into(), JsonValue::U64(*size as u64)));
                fields.push(("rows".into(), JsonValue::U64(*rows as u64)));
                fields.push(("fusion".into(), JsonValue::str(fusion.name())));
                fields.push(("msd_pos".into(), JsonValue::int(i64::from(*msd_pos))));
                fields.push(("width".into(), JsonValue::U64(*width as u64)));
                fields.push(("style".into(), JsonValue::str(style.name())));
                fields.push(("allocation".into(), JsonValue::str(allocation.name())));
                fields.push(("frac_digits".into(), JsonValue::int(i64::from(*frac_digits))));
                fields.push(("ts_points".into(), JsonValue::U64(*ts_points as u64)));
                fields.push(("samples".into(), JsonValue::U64(*samples as u64)));
                fields.push(("seed".into(), JsonValue::U64(*seed)));
                fields.push(("backend".into(), JsonValue::str(backend.label())));
            }
        }
        JsonValue::Object(fields)
    }

    /// The content address of this query: SHA-256 of the canonical JSON
    /// bytes.
    #[must_use]
    pub fn cache_key(&self) -> CacheKey {
        CacheKey::of(self.canonical().render().as_bytes())
    }

    /// Executes the query and returns its result document. Deterministic:
    /// the same query always produces byte-identical rendered JSON.
    ///
    /// # Errors
    ///
    /// [`QueryError::BadRequest`] when the expression fails to parse or
    /// names an impossible variant.
    pub fn run(&self) -> Result<JsonValue, QueryError> {
        let _span = ola_core::obs::span("serve.query");
        match self {
            Query::Pareto {
                expr,
                msd_pos,
                widths,
                frac_digits,
                ts_points,
                samples,
                seed,
                backend,
            } => {
                let fmt = InputFmt { msd_pos: *msd_pos, digits: widths[0] };
                let dfg = parse_dfg(expr, fmt).map_err(|e| bad(format!("expression: {e}")))?;
                let cfg = ExploreConfig {
                    widths: widths.clone(),
                    frac_digits: *frac_digits,
                    ts_points: *ts_points,
                    samples: *samples,
                    seed: *seed,
                    backend: *backend,
                    ..ExploreConfig::default()
                };
                let res = explore(&dfg, &cfg);
                let points: Vec<JsonValue> = res
                    .points
                    .iter()
                    .map(|p| {
                        JsonValue::Object(vec![
                            ("label".into(), JsonValue::str(p.label())),
                            ("style".into(), JsonValue::str(p.style.name())),
                            ("allocation".into(), JsonValue::str(p.allocation.name())),
                            ("width".into(), JsonValue::U64(p.width as u64)),
                            ("luts".into(), JsonValue::U64(p.area.luts as u64)),
                            (
                                "rated_period".into(),
                                p.rated_period.map_or(JsonValue::Null, JsonValue::U64),
                            ),
                            (
                                "rated_mhz".into(),
                                p.rated_mhz.map_or(JsonValue::Null, JsonValue::F64),
                            ),
                            ("mean_error".into(), JsonValue::F64(p.mean_error)),
                            ("worst_violation_rate".into(), JsonValue::F64(p.worst_violation_rate)),
                            ("certified_skipped".into(), JsonValue::U64(p.certified_skipped)),
                            ("pareto".into(), JsonValue::Bool(p.pareto)),
                        ])
                    })
                    .collect();
                Ok(JsonValue::Object(vec![
                    ("kind".into(), JsonValue::str("pareto")),
                    (
                        "ts_grid".into(),
                        JsonValue::Array(res.ts_grid.iter().map(|&t| JsonValue::U64(t)).collect()),
                    ),
                    ("points".into(), JsonValue::Array(points)),
                    ("frontier_size".into(), JsonValue::U64(res.frontier().len() as u64)),
                ]))
            }
            Query::Sweep { spec, ts_points, samples, seed, backend } => {
                let dp = spec.compile()?;
                let delay = FpgaDelay::default();
                if dp.netlist.logic_gate_count() == 0 {
                    return Ok(JsonValue::Object(vec![
                        ("kind".into(), JsonValue::str("sweep")),
                        ("untimed".into(), JsonValue::Bool(true)),
                        ("critical_path".into(), JsonValue::U64(0)),
                        ("ts".into(), JsonValue::Array(Vec::new())),
                        ("mean_abs_error".into(), JsonValue::Array(Vec::new())),
                        ("violation_rate".into(), JsonValue::Array(Vec::new())),
                    ]));
                }
                let critical = analyze(&dp.netlist, &delay).critical_path().max(1);
                let ts_grid = crate::explore::ts_grid(critical, *ts_points);
                let (curve, stats) =
                    variant_error_curve(&dp, &delay, &ts_grid, *samples, *seed, *backend);
                Ok(JsonValue::Object(vec![
                    ("kind".into(), JsonValue::str("sweep")),
                    ("untimed".into(), JsonValue::Bool(false)),
                    ("critical_path".into(), JsonValue::U64(curve.critical_path)),
                    ("max_settle".into(), JsonValue::U64(curve.max_settle)),
                    ("samples".into(), JsonValue::U64(curve.samples as u64)),
                    (
                        "ts".into(),
                        JsonValue::Array(curve.ts.iter().map(|&t| JsonValue::U64(t)).collect()),
                    ),
                    (
                        "mean_abs_error".into(),
                        JsonValue::Array(
                            curve.mean_abs_error.iter().map(|&e| JsonValue::F64(e)).collect(),
                        ),
                    ),
                    (
                        "violation_rate".into(),
                        JsonValue::Array(
                            curve.violation_rate.iter().map(|&v| JsonValue::F64(v)).collect(),
                        ),
                    ),
                    ("sta_skipped_points".into(), JsonValue::U64(stats.sta_skipped_points)),
                ]))
            }
            Query::Sta { spec, ts_points } => {
                let dp = spec.compile()?;
                let delay = FpgaDelay::default();
                let report = analyze(&dp.netlist, &delay);
                let critical = report.critical_path();
                let grid_span = critical.max(1);
                let ts_grid = crate::explore::ts_grid(grid_span, *ts_points);
                let digits = dp.output_digit_groups();
                let cert = ola_core::memo::certification(&dp.netlist, &delay, &digits, &ts_grid)
                    .map_err(|e| bad(format!("certification: {e}")))?;
                let rows: Vec<JsonValue> = ts_grid
                    .iter()
                    .enumerate()
                    .map(|(i, &ts)| {
                        JsonValue::Object(vec![
                            ("ts".into(), JsonValue::U64(ts)),
                            ("certified".into(), JsonValue::U64(cert.certified_count(i) as u64)),
                            ("all_certified".into(), JsonValue::Bool(cert.all_certified(i))),
                            (
                                "at_risk".into(),
                                JsonValue::Array(
                                    cert.at_risk(i)
                                        .iter()
                                        .map(|&k| JsonValue::U64(k as u64))
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect();
                Ok(JsonValue::Object(vec![
                    ("kind".into(), JsonValue::str("sta")),
                    ("critical_path".into(), JsonValue::U64(critical)),
                    (
                        "rated_mhz".into(),
                        report.rated_frequency().map_or(JsonValue::Null, JsonValue::F64),
                    ),
                    ("digits".into(), JsonValue::U64(cert.digits() as u64)),
                    ("certification".into(), JsonValue::Array(rows)),
                ]))
            }
            Query::Lint { spec } => {
                let dp = spec.compile()?;
                let issues: Vec<JsonValue> = lint::check(&dp.netlist)
                    .iter()
                    .map(|issue| {
                        JsonValue::Object(vec![
                            ("code".into(), JsonValue::str(issue.code())),
                            ("message".into(), JsonValue::str(issue.to_string())),
                        ])
                    })
                    .collect();
                Ok(JsonValue::Object(vec![
                    ("kind".into(), JsonValue::str("lint")),
                    ("clean".into(), JsonValue::Bool(issues.is_empty())),
                    ("issues".into(), JsonValue::Array(issues)),
                ]))
            }
            Query::Verify { spec, ts_points } => {
                let fmt = InputFmt { msd_pos: spec.msd_pos, digits: spec.width };
                let dfg =
                    parse_dfg(&spec.expr, fmt).map_err(|e| bad(format!("expression: {e}")))?;
                let opt = optimize(&dfg, spec.allocation);

                // Pipeline proof: the optimized graph computes exactly the
                // source graph's outputs. A mismatch is a compiler bug; the
                // service reports it rather than panicking.
                let proof = crate::verify::prove_pass_equivalence(&dfg, &opt);
                let (verdict, method, cex) = match &proof {
                    None => ("skipped", JsonValue::Null, JsonValue::Null),
                    Some(v) => (
                        match v {
                            v if v.is_proof() && v.is_equivalent() => "equivalent",
                            v if v.is_equivalent() => "probably-equivalent",
                            _ => "mismatch",
                        },
                        JsonValue::str(v.method().name()),
                        match v {
                            ola_netlist::EquivVerdict::Mismatch { counterexample, .. } => {
                                JsonValue::str(counterexample.to_string())
                            }
                            _ => JsonValue::Null,
                        },
                    ),
                };

                // Abstract interpretation: settled bounds on the IR plus
                // per-Ts sampling bounds on the elaborated netlist.
                let report = crate::absint::interpret(&opt, spec.style);
                let settled: Vec<JsonValue> = report
                    .settled_error_bounds()
                    .iter()
                    .map(|q| JsonValue::F64(q.to_f64()))
                    .collect();
                let elab_opts = ElabOptions::new(spec.style).with_frac_digits(spec.frac_digits);
                let dp = elaborate(&opt, &elab_opts);
                let delay = FpgaDelay::default();
                let (ts_grid, per_ts) = if dp.netlist.logic_gate_count() == 0 {
                    (Vec::new(), Vec::new())
                } else {
                    let critical = analyze(&dp.netlist, &delay).critical_path().max(1);
                    let grid = crate::explore::ts_grid(critical, *ts_points);
                    let bounds = crate::absint::sampling_bounds(&dp, &delay, &grid)
                        .map_err(|e| bad(format!("sta: {e}")))?;
                    let rows: Vec<JsonValue> =
                        (0..grid.len()).map(|i| JsonValue::F64(bounds.total_f64(i))).collect();
                    (grid, rows)
                };
                ola_core::obs::registry().counter("ola.verify.service_queries").add(1);
                Ok(JsonValue::Object(vec![
                    ("kind".into(), JsonValue::str("verify")),
                    ("passes_verdict".into(), JsonValue::str(verdict)),
                    ("method".into(), method),
                    ("counterexample".into(), cex),
                    ("settled_exact".into(), JsonValue::Bool(report.settled_exact())),
                    ("settled_error_bounds".into(), JsonValue::Array(settled)),
                    (
                        "ts".into(),
                        JsonValue::Array(ts_grid.iter().map(|&t| JsonValue::U64(t)).collect()),
                    ),
                    ("error_bound".into(), JsonValue::Array(per_ts)),
                ]))
            }
            Query::Dsp {
                kernel,
                size,
                rows,
                fusion,
                msd_pos,
                width,
                style,
                allocation,
                frac_digits,
                ts_points,
                samples,
                seed,
                backend,
            } => {
                let fmt = InputFmt { msd_pos: *msd_pos, digits: *width };
                let build = |f: MacFusion| match kernel.as_str() {
                    "fir" => crate::dsp::fir_bank(*size, f, fmt),
                    "conv2d" => crate::dsp::conv2d_separable(*size, f, fmt),
                    "matvec" => crate::dsp::matvec(*rows, *size, f, fmt),
                    other => unreachable!("kernel {other:?} validated at parse"),
                };
                let delay = FpgaDelay::default();
                let compile = |f: MacFusion| {
                    let opt = optimize(&build(f), *allocation);
                    let opts = ElabOptions::new(*style).with_frac_digits(*frac_digits);
                    elaborate(&opt, &opts)
                };
                // Both flavours are reported so the fused-vs-unfused
                // contrast is one query away; the curve runs on the
                // requested flavour only.
                let flavour_doc = |dp: &SynthesizedDatapath| {
                    let report = analyze(&dp.netlist, &delay);
                    JsonValue::Object(vec![
                        (
                            "luts".into(),
                            JsonValue::U64(ola_netlist::area::estimate(&dp.netlist, 4).luts as u64),
                        ),
                        ("critical_path".into(), JsonValue::U64(report.critical_path())),
                        (
                            "rated_mhz".into(),
                            report.rated_frequency().map_or(JsonValue::Null, JsonValue::F64),
                        ),
                    ])
                };
                let fused_dp = compile(MacFusion::Fused);
                let unfused_dp = compile(MacFusion::Unfused);
                let swept = match fusion {
                    MacFusion::Fused => &fused_dp,
                    MacFusion::Unfused => &unfused_dp,
                };
                let critical = analyze(&swept.netlist, &delay).critical_path().max(1);
                let ts_grid = crate::explore::ts_grid(critical, *ts_points);
                let (curve, stats) =
                    variant_error_curve(swept, &delay, &ts_grid, *samples, *seed, *backend);
                ola_core::obs::registry().counter("ola.dsp.service_queries").add(1);
                Ok(JsonValue::Object(vec![
                    ("kind".into(), JsonValue::str("dsp")),
                    ("kernel".into(), JsonValue::str(kernel)),
                    ("size".into(), JsonValue::U64(*size as u64)),
                    ("fusion".into(), JsonValue::str(fusion.name())),
                    ("fused".into(), flavour_doc(&fused_dp)),
                    ("unfused".into(), flavour_doc(&unfused_dp)),
                    (
                        "ts".into(),
                        JsonValue::Array(curve.ts.iter().map(|&t| JsonValue::U64(t)).collect()),
                    ),
                    (
                        "mean_abs_error".into(),
                        JsonValue::Array(
                            curve.mean_abs_error.iter().map(|&e| JsonValue::F64(e)).collect(),
                        ),
                    ),
                    (
                        "violation_rate".into(),
                        JsonValue::Array(
                            curve.violation_rate.iter().map(|&v| JsonValue::F64(v)).collect(),
                        ),
                    ),
                    ("sta_skipped_points".into(), JsonValue::U64(stats.sta_skipped_points)),
                ]))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_core::obs::json;

    fn parse_query(body: &str) -> Result<Query, QueryError> {
        Query::from_json(&json::parse(body).expect("valid JSON"), &Limits::default())
    }

    const EXPR: &str = "y = a * 0.25 + b * 0.5";

    #[test]
    fn defaults_fill_in_and_canonicalization_is_order_insensitive() {
        let sparse = parse_query(&format!(r#"{{"kind":"sweep","expr":"{EXPR}"}}"#)).unwrap();
        let explicit = parse_query(&format!(
            r#"{{"seed":2024,"samples":48,"expr":"{EXPR}","style":"online","allocation":"tree",
               "ts_points":12,"kind":"sweep","width":4,"msd_pos":1,"frac_digits":3,"backend":"auto"}}"#
        ))
        .unwrap();
        assert_eq!(sparse, explicit);
        assert_eq!(sparse.cache_key(), explicit.cache_key());
        // Any semantic change moves the key.
        let other =
            parse_query(&format!(r#"{{"kind":"sweep","expr":"{EXPR}","width":5}}"#)).unwrap();
        assert_ne!(sparse.cache_key(), other.cache_key());
        // Canonical form round-trips through the JSON layer byte-exactly.
        let c = sparse.canonical().render();
        assert_eq!(json::parse(&c).unwrap().render(), c);
    }

    #[test]
    fn validation_rejects_malformed_and_oversized_requests() {
        for (body, why) in [
            (r#"[1,2]"#.to_owned(), "not an object"),
            (r#"{"expr":"y = a"}"#.to_owned(), "missing kind"),
            (r#"{"kind":"sweep"}"#.to_owned(), "missing expr"),
            (r#"{"kind":"mystery","expr":"y = a"}"#.to_owned(), "unknown kind"),
            (r#"{"kind":"sweep","expr":"y = a","style":"octal"}"#.to_owned(), "unknown style"),
            (
                r#"{"kind":"sweep","expr":"y = a","allocation":"star"}"#.to_owned(),
                "unknown allocation",
            ),
            (r#"{"kind":"sweep","expr":"y = a","backend":"gpu"}"#.to_owned(), "unknown backend"),
            (r#"{"kind":"sweep","expr":"y = a","width":99}"#.to_owned(), "width over limit"),
            (r#"{"kind":"sweep","expr":"y = a","samples":0}"#.to_owned(), "zero samples"),
            (
                r#"{"kind":"sweep","expr":"y = a","ts_points":1000}"#.to_owned(),
                "ts_points over limit",
            ),
            (
                r#"{"kind":"sweep","expr":"y = a","frac_digits":1}"#.to_owned(),
                "frac_digits too small",
            ),
            (r#"{"kind":"pareto","expr":"y = a","widths":[]}"#.to_owned(), "empty widths"),
            (r#"{"kind":"pareto","expr":"y = a","widths":[2,0]}"#.to_owned(), "zero width"),
            (format!(r#"{{"kind":"sweep","expr":"{}"}}"#, "a".repeat(5000)), "expr too long"),
        ] {
            assert!(parse_query(&body).is_err(), "must reject: {why}");
        }
    }

    #[test]
    fn sweep_runs_and_is_deterministic() {
        let q = parse_query(&format!(
            r#"{{"kind":"sweep","expr":"{EXPR}","width":2,"ts_points":4,"samples":6}}"#
        ))
        .unwrap();
        let a = q.run().unwrap().render();
        let b = q.run().unwrap().render();
        assert_eq!(a, b, "sweep results are bit-identical across runs");
        let doc = json::parse(&a).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("sweep"));
        assert_eq!(doc.get("ts").unwrap().as_array().unwrap().len(), 4);
        assert!(doc.get("critical_path").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn sta_and_lint_answer_without_simulation() {
        let q =
            parse_query(&format!(r#"{{"kind":"sta","expr":"{EXPR}","width":3,"ts_points":5}}"#))
                .unwrap();
        let doc = q.run().unwrap();
        assert!(doc.get("digits").unwrap().as_u64().unwrap() > 0);
        let rows = doc.get("certification").unwrap().as_array().unwrap();
        assert_eq!(rows.len(), 5);
        // The last grid point is the critical path: everything certifies.
        assert_eq!(rows.last().unwrap().get("all_certified"), Some(&JsonValue::Bool(true)));

        let q = parse_query(&format!(r#"{{"kind":"lint","expr":"{EXPR}","width":3}}"#)).unwrap();
        let doc = q.run().unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("lint"));
        assert!(doc.get("clean").is_some());
    }

    #[test]
    fn pareto_query_matches_explorer_shape() {
        let q = parse_query(&format!(
            r#"{{"kind":"pareto","expr":"{EXPR}","widths":[2,3],"ts_points":4,"samples":6}}"#
        ))
        .unwrap();
        let doc = q.run().unwrap();
        let points = doc.get("points").unwrap().as_array().unwrap();
        assert_eq!(points.len(), 2 * 3 * 2, "styles × allocations × widths");
        assert!(doc.get("frontier_size").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn verify_query_proves_the_pipeline_and_bounds_the_error() {
        let q =
            parse_query(&format!(r#"{{"kind":"verify","expr":"{EXPR}","width":3,"ts_points":4}}"#))
                .unwrap();
        let a = q.run().unwrap().render();
        assert_eq!(a, q.run().unwrap().render(), "verify results are deterministic");
        let doc = json::parse(&a).unwrap();
        assert_eq!(doc.get("passes_verdict").unwrap().as_str(), Some("equivalent"));
        assert_eq!(doc.get("counterexample"), Some(&JsonValue::Null));
        let ts = doc.get("ts").unwrap().as_array().unwrap();
        let bounds = doc.get("error_bound").unwrap().as_array().unwrap();
        assert_eq!(ts.len(), 4);
        assert_eq!(bounds.len(), 4);
        // Bounds shrink (weakly) as Ts approaches the critical path.
        let b: Vec<f64> = bounds
            .iter()
            .map(|v| match v {
                JsonValue::F64(f) => *f,
                other => panic!("bound must be a float, got {other:?}"),
            })
            .collect();
        assert!(b.windows(2).all(|w| w[1] <= w[0]), "monotone bounds: {b:?}");
        // Distinct kind ⇒ distinct cache key versus an identical sta query.
        let sta =
            parse_query(&format!(r#"{{"kind":"sta","expr":"{EXPR}","width":3,"ts_points":4}}"#))
                .unwrap();
        assert_ne!(q.cache_key(), sta.cache_key());
    }

    #[test]
    fn dsp_query_needs_no_expr_and_reports_both_fusion_flavours() {
        let q = parse_query(
            r#"{"kind":"dsp","kernel":"fir","size":4,"width":3,"ts_points":4,"samples":6}"#,
        )
        .unwrap();
        let a = q.run().unwrap().render();
        assert_eq!(a, q.run().unwrap().render(), "dsp results are deterministic");
        let doc = json::parse(&a).unwrap();
        assert_eq!(doc.get("kind").unwrap().as_str(), Some("dsp"));
        let fused = doc.get("fused").unwrap();
        let unfused = doc.get("unfused").unwrap();
        let cp = |d: &JsonValue| d.get("critical_path").unwrap().as_u64().unwrap();
        assert!(cp(fused) > 0 && cp(unfused) > 0);
        // The fused online accumulator has no selection chains: shorter
        // settled latency than the tree of online multipliers.
        assert!(cp(fused) < cp(unfused), "fused {} vs unfused {}", cp(fused), cp(unfused));
        assert_eq!(doc.get("ts").unwrap().as_array().unwrap().len(), 4);

        // Fusion selection changes the cache key.
        let uq = parse_query(
            r#"{"kind":"dsp","kernel":"fir","size":4,"width":3,"ts_points":4,"samples":6,
               "fusion":"unfused"}"#,
        )
        .unwrap();
        assert_ne!(q.cache_key(), uq.cache_key());
    }

    #[test]
    fn dsp_query_validates_kernel_and_dimensions() {
        for (body, why) in [
            (r#"{"kind":"dsp","kernel":"fft"}"#, "unknown kernel"),
            (r#"{"kind":"dsp","size":0}"#, "zero size"),
            (r#"{"kind":"dsp","size":4096}"#, "size over limit"),
            (r#"{"kind":"dsp","kernel":"matvec","rows":0}"#, "zero rows"),
            (r#"{"kind":"dsp","fusion":"partial"}"#, "unknown fusion"),
            (r#"{"kind":"sweep"}"#, "non-dsp kinds still require expr"),
        ] {
            assert!(parse_query(body).is_err(), "must reject: {why}");
        }
        // All three kernels parse and run at small sizes.
        for kernel in ["fir", "conv2d", "matvec"] {
            let q = parse_query(&format!(
                r#"{{"kind":"dsp","kernel":"{kernel}","size":2,"width":2,"ts_points":3,"samples":4}}"#
            ))
            .unwrap();
            assert_eq!(q.kind(), "dsp");
            assert!(q.run().is_ok(), "{kernel} runs");
        }
    }

    #[test]
    fn bad_expression_is_a_bad_request_not_a_panic() {
        let q = parse_query(r#"{"kind":"lint","expr":"y = = ("}"#).unwrap();
        let err = q.run().expect_err("parse failure surfaces as BadRequest");
        assert!(matches!(err, QueryError::BadRequest(_)));
        assert!(err.to_string().contains("bad request"));
    }
}
