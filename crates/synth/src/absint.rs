//! Abstract interpretation of dataflow graphs: interval value ranges,
//! affine error forms, and certified overclocking error bounds.
//!
//! The explorer's accuracy axis is empirical — sample, simulate, decode,
//! compare. This module is the *static* counterpart, grounding the same
//! quantities in proofs (ROADMAP item 5, after Kedem & Muntimadugu's
//! generalized inaccurate-adder model, arXiv 1606.01753):
//!
//! * **Interval ranges** ([`interpret`]): every IR node gets an exact
//!   rational interval `[lo, hi]` containing its settled value for all
//!   in-range inputs, by standard interval arithmetic over the exact
//!   semantics ([`Dfg::eval_exact`]).
//! * **Settled error forms** ([`interpret`]): every node also gets a
//!   bound `err` on |online settled value − exact value|. Online adds,
//!   subtracts and negates are exact on represented values, so errors
//!   propagate additively; each online multiplier contributes its local
//!   truncation bound `(3/2)·2^-(n+1)` (the Algorithm-1 residual bound
//!   with the hardware selection estimate), denormalized through the
//!   δ-composition shifts, plus the affine cross terms
//!   `max|a|·err(b) + max|b|·err(a) + err(a)·err(b)`. The per-output
//!   bound is the analytically-certified tolerance for "online ≡
//!   conventional at settled Ts" — exactly zero for multiplier-free
//!   graphs. Conventional elaboration is exact, so its forms carry
//!   `err = 0`.
//! * **Sampling bounds** ([`sampling_bounds`]): per (variant, Ts), a
//!   certified upper bound on the decoded sampled-vs-settled output
//!   error — the very quantity [`variant_error_curve`]'s judge measures.
//!   Per output port the bound is the *minimum* of two sound bounds:
//!   the flat per-wire STA bound `Σ_{arrival > Ts} w_k` (an output bit
//!   whose worst-case arrival meets the period provably equals its
//!   settled value — the [`certify`](ola_netlist::sta::certify) theorem,
//!   at single-wire granularity), and the interval clamp `hi − lo` of
//!   the port's decodable range (any bit pattern decodes into the bus
//!   range, so no sampling accident can escape it). No simulation runs.
//!
//! Both halves are cross-checked in tests and in the `repro equiv`
//! experiment: sampling bounds must dominate every measured empirical
//! error point, settled forms must dominate the observed
//! online-vs-exact discrepancy, and the flat half must never exceed the
//! coarser per-digit certification bound.
//!
//! [`variant_error_curve`]: crate::explore::variant_error_curve

use crate::elab::{PortShape, Style, SynthesizedDatapath};
use crate::ir::{Dfg, NodeId, Op};
use ola_netlist::{try_analyze, DelayModel, StaError};
use ola_redundant::Q;

/// The abstract value of one IR node: an exact-semantics interval plus a
/// bound on the online settled-value deviation from exact.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ValueForm {
    /// Lower bound of the node's exact settled value.
    pub lo: Q,
    /// Upper bound of the node's exact settled value.
    pub hi: Q,
    /// Bound on |online settled value − exact value| (0 when the style
    /// is exact, i.e. conventional, or the cone is multiplier-free).
    pub err: Q,
}

impl ValueForm {
    /// Largest absolute exact value the node can take.
    #[must_use]
    pub fn mag(&self) -> Q {
        qmax(self.lo.abs(), self.hi.abs())
    }

    /// Largest absolute value of the *computed* (online) node value:
    /// the exact magnitude inflated by the settled error bound.
    #[must_use]
    pub fn computed_mag(&self) -> Q {
        self.mag() + self.err
    }
}

/// The result of abstractly interpreting a [`Dfg`].
#[derive(Clone, Debug)]
pub struct AbsintReport {
    style: Style,
    forms: Vec<ValueForm>,
    outputs: Vec<(String, NodeId)>,
}

impl AbsintReport {
    /// The style the interpretation modelled.
    #[must_use]
    pub fn style(&self) -> Style {
        self.style
    }

    /// The abstract form of node `id`.
    #[must_use]
    pub fn form(&self, id: NodeId) -> &ValueForm {
        &self.forms[id.index()]
    }

    /// Per-output settled-error bounds, in [`Dfg::outputs`] order: the
    /// certified tolerance within which the style's settled outputs match
    /// the exact semantics. Zero everywhere for conventional datapaths
    /// and for multiplier-free online datapaths.
    #[must_use]
    pub fn settled_error_bounds(&self) -> Vec<Q> {
        self.outputs.iter().map(|&(_, node)| self.forms[node.index()].err).collect()
    }

    /// True when every output is settled-exact (so "online ≡
    /// conventional at settled Ts" must hold *bit-for-value*, tolerance
    /// zero).
    #[must_use]
    pub fn settled_exact(&self) -> bool {
        self.outputs.iter().all(|&(_, node)| self.forms[node.index()].err.is_zero())
    }
}

/// Abstractly interprets `dfg` under `style`, producing interval ranges
/// and settled error forms for every node.
///
/// Input nodes range over their full representable window `[−R, R]`
/// (which coincides for the two styles: an online window of `d` digits
/// starting at `msd_pos = m` and the conventional `(d+1)`-bit port at
/// `frac = m + d − 1` both represent exactly `[−R, R]` with
/// `R = 2^{1−m} − 2^{1−m−d}`).
#[must_use]
pub fn interpret(dfg: &Dfg, style: Style) -> AbsintReport {
    let windows = dfg.online_windows();
    let mut forms: Vec<ValueForm> = Vec::with_capacity(dfg.len());
    for (id, op) in dfg.nodes() {
        let f = match *op {
            Op::Input { fmt, .. } => {
                let r = window_range(fmt.msd_pos, fmt.digits);
                ValueForm { lo: -r, hi: r, err: Q::ZERO }
            }
            Op::Const(c) => ValueForm { lo: c, hi: c, err: Q::ZERO },
            Op::Add(a, b) => {
                let (fa, fb) = (&forms[a.index()], &forms[b.index()]);
                ValueForm { lo: fa.lo + fb.lo, hi: fa.hi + fb.hi, err: fa.err + fb.err }
            }
            Op::Sub(a, b) => {
                let (fa, fb) = (&forms[a.index()], &forms[b.index()]);
                ValueForm { lo: fa.lo - fb.hi, hi: fa.hi - fb.lo, err: fa.err + fb.err }
            }
            Op::Neg(a) => {
                let fa = &forms[a.index()];
                ValueForm { lo: -fa.hi, hi: -fa.lo, err: fa.err }
            }
            Op::Mul(a, b) => {
                let (fa, fb) = (forms[a.index()], forms[b.index()]);
                let (lo, hi) = interval_mul(&fa, &fb);
                let err = match style {
                    Style::Conventional => Q::ZERO,
                    Style::Online => {
                        mul_affine_err(&fa, &fb)
                            + mul_truncation(windows[a.index()], windows[b.index()])
                    }
                };
                ValueForm { lo, hi, err }
            }
            Op::ConstMul(c, a) => {
                let fa = forms[a.index()];
                let fc = ValueForm { lo: c, hi: c, err: Q::ZERO };
                let (lo, hi) = interval_mul(&fc, &fa);
                let err = match style {
                    Style::Conventional => Q::ZERO,
                    Style::Online => {
                        let (sd, k) = crate::ir::const_sd(c);
                        mul_affine_err(&fc, &fa)
                            + mul_truncation((1 - k, sd.len()), windows[a.index()])
                    }
                };
                ValueForm { lo, hi, err }
            }
            Op::Mac(ref terms) => {
                // Fused accumulation never digitizes between terms: no
                // per-product truncation, only the operands' affine cross
                // terms, summed in accumulation order.
                let mut lo = Q::ZERO;
                let mut hi = Q::ZERO;
                let mut err = Q::ZERO;
                for &(a, b) in terms {
                    let (fa, fb) = (forms[a.index()], forms[b.index()]);
                    let (l, h) = interval_mul(&fa, &fb);
                    lo += l;
                    hi += h;
                    if let Style::Online = style {
                        err += mul_affine_err(&fa, &fb);
                    }
                }
                ValueForm { lo, hi, err }
            }
        };
        debug_assert!(f.lo <= f.hi, "interval inverted at node {}", id.index());
        debug_assert!(f.err >= Q::ZERO, "negative error bound at node {}", id.index());
        forms.push(f);
    }
    ola_core::obs::registry().counter("ola.verify.absint_runs").add(1);
    AbsintReport { style, forms, outputs: dfg.outputs().to_vec() }
}

/// `R = Σ_{i=0}^{d−1} 2^{−(m+i)}`: the magnitude bound of a signed-digit
/// window (and of the matching conventional port's sampled range).
fn window_range(msd_pos: i32, digits: usize) -> Q {
    let mut r = Q::ZERO;
    for i in 0..digits {
        r += pow2(-(msd_pos + i as i32));
    }
    r
}

/// `2^e` as an exact rational (either sign of `e`).
fn pow2(e: i32) -> Q {
    if e >= 0 {
        Q::ONE << e as u32
    } else {
        Q::pow2_neg((-e) as u32)
    }
}

fn qmax(a: Q, b: Q) -> Q {
    if a < b {
        b
    } else {
        a
    }
}

fn qmin(a: Q, b: Q) -> Q {
    if b < a {
        b
    } else {
        a
    }
}

/// Standard interval multiplication: extremes among the four corner
/// products.
fn interval_mul(a: &ValueForm, b: &ValueForm) -> (Q, Q) {
    let c = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi];
    let mut lo = c[0];
    let mut hi = c[0];
    for &x in &c[1..] {
        lo = qmin(lo, x);
        hi = qmax(hi, x);
    }
    (lo, hi)
}

/// Affine cross terms for a product of two inexact operands: with
/// `x̂ = x + e_x`, `ŷ = y + e_y`, `|x̂·ŷ − x·y| ≤ max|x|·E_y +
/// max|y|·E_x + E_x·E_y`.
fn mul_affine_err(a: &ValueForm, b: &ValueForm) -> Q {
    a.mag() * b.err + b.mag() * a.err + a.err * b.err
}

/// Local truncation bound of one online multiplier over operand windows
/// `(ma, la)` and `(mb, lb)`: the Algorithm-1 residual bound with the
/// hardware selection estimate is `|x·y − Z| ≤ (3/2)·2^{−(n+1)}` on
/// MSD-position-1 operands padded to `n = max(la, lb, 1)` digits;
/// denormalizing through the δ-composition shifts `sx = ma − 1`,
/// `sy = mb − 1` scales it by `2^{−(sx+sy)}` — i.e. `3·2^{−(n+2+sx+sy)}`.
fn mul_truncation(a: (i32, usize), b: (i32, usize)) -> Q {
    let (ma, la) = a;
    let (mb, lb) = b;
    let n = la.max(lb).max(1) as i32;
    let e = n + 2 + (ma - 1) + (mb - 1);
    Q::new(3, 0) * pow2(-e)
}

/// Certified sampling-error bounds for one synthesized datapath over a
/// `Ts` grid.
///
/// Produced by [`sampling_bounds`]; rows are grid points, columns output
/// ports.
#[derive(Clone, Debug)]
pub struct SamplingBounds {
    ts: Vec<u64>,
    /// `per_port[port][ts_index]`, exact.
    per_port: Vec<Vec<Q>>,
}

impl SamplingBounds {
    /// The `Ts` grid the bounds were computed against, in caller order.
    #[must_use]
    pub fn ts_grid(&self) -> &[u64] {
        &self.ts
    }

    /// The certified bound for output `port` at grid point `ts_index`.
    #[must_use]
    pub fn port_bound(&self, port: usize, ts_index: usize) -> Q {
        self.per_port[port][ts_index]
    }

    /// The certified bound on the total decoded error
    /// `Σ_ports |sampled − settled|` at grid point `ts_index` — the
    /// quantity the explorer's empirical judge measures, so every
    /// measured error at this period must be `≤ total(ts_index)`.
    #[must_use]
    pub fn total(&self, ts_index: usize) -> Q {
        let mut t = Q::ZERO;
        for port in &self.per_port {
            t += port[ts_index];
        }
        t
    }

    /// [`SamplingBounds::total`] as `f64` (for comparison against the
    /// `f64` empirical curves; the conversion rounds once, at the end).
    #[must_use]
    pub fn total_f64(&self, ts_index: usize) -> f64 {
        self.total(ts_index).to_f64()
    }
}

/// Computes certified sampling-error bounds for `dp` against `ts_grid`
/// under worst-case structural arrivals of `delay` — no simulation.
///
/// Per port and period the bound is
/// `min(Σ_{output wires with arrival > Ts} weight, port range width)`:
/// the first term is the single-wire refinement of the per-digit
/// certification bound (sound because a wire that meets the period
/// provably carries its settled value), the second is sound because any
/// sampled bit pattern still decodes into the port's representable
/// range.
///
/// # Errors
///
/// [`StaError::NotTopological`] if the netlist was rewired out of
/// topological order (structural arrivals would be untrustworthy).
pub fn sampling_bounds<M: DelayModel + ?Sized>(
    dp: &SynthesizedDatapath,
    delay: &M,
    ts_grid: &[u64],
) -> Result<SamplingBounds, StaError> {
    let report = try_analyze(&dp.netlist, delay)?;
    let mut per_port = Vec::with_capacity(dp.outputs.len());
    for port in &dp.outputs {
        // (arrival, weight) of every wire of this port.
        let wires: Vec<(u64, Q)> = match port.shape {
            PortShape::Online { msd_pos, digits } => {
                let p = dp.netlist.output(&format!("{}p", port.name));
                let n = dp.netlist.output(&format!("{}n", port.name));
                p.iter()
                    .chain(n)
                    .enumerate()
                    .map(|(i, &w)| (report.arrival(w), pow2(-(msd_pos + (i % digits) as i32))))
                    .collect()
            }
            PortShape::Tc { frac, .. } => dp
                .netlist
                .output(&port.name)
                .iter()
                .enumerate()
                .map(|(i, &w)| (report.arrival(w), pow2(i as i32 - frac)))
                .collect(),
        };
        let clamp = match port.shape {
            // Any online bit pattern decodes into [−R, R].
            PortShape::Online { msd_pos, digits } => window_range(msd_pos, digits) * Q::new(2, 0),
            // Any `w`-bit pattern decodes into [−2^{w−1}, 2^{w−1}−1]·ulp.
            PortShape::Tc { width, frac } => (pow2(width as i32) - Q::ONE) * pow2(-frac),
        };
        let bounds: Vec<Q> = ts_grid
            .iter()
            .map(|&ts| {
                let mut flat = Q::ZERO;
                for &(arrival, weight) in &wires {
                    if arrival > ts {
                        flat += weight;
                    }
                }
                qmin(flat, clamp)
            })
            .collect();
        per_port.push(bounds);
    }
    ola_core::obs::registry().counter("ola.verify.sampling_bounds").add(1);
    Ok(SamplingBounds { ts: ts_grid.to_vec(), per_port })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::elab::{elaborate, ElabOptions};
    use crate::explore::variant_error_curve;
    use crate::ir::InputFmt;
    use crate::parser::parse_dfg;
    use ola_core::SimBackend;
    use ola_netlist::sta::certify;
    use ola_netlist::{analyze, FpgaDelay};
    use ola_redundant::{BsVector, SdNumber};
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn filter(digits: usize) -> Dfg {
        parse_dfg("y = a * 0.25 + b * 0.5 + c * 0.25", InputFmt { msd_pos: 1, digits })
            .expect("valid program")
    }

    #[test]
    fn add_only_graphs_are_settled_exact_in_both_styles() {
        let dfg = parse_dfg("y = a + b - c", InputFmt { msd_pos: 1, digits: 4 }).unwrap();
        for style in [Style::Online, Style::Conventional] {
            let rep = interpret(&dfg, style);
            assert!(rep.settled_exact(), "{style:?} adds are exact");
            assert_eq!(rep.settled_error_bounds(), vec![Q::ZERO]);
        }
    }

    #[test]
    fn conventional_is_always_settled_exact() {
        let rep = interpret(&filter(6), Style::Conventional);
        assert!(rep.settled_exact());
    }

    #[test]
    fn intervals_contain_every_exact_evaluation() {
        let digits = 4;
        let dfg = filter(digits);
        let rep = interpret(&dfg, Style::Online);
        let out = dfg.outputs()[0].1;
        let f = rep.form(out);
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let bound = (1i128 << digits) - 1;
        for _ in 0..200 {
            let ins: Vec<Q> =
                (0..3).map(|_| Q::new(rng.gen_range(-bound..=bound), digits as u32)).collect();
            let v = dfg.eval_exact(&ins)[0];
            assert!(f.lo <= v && v <= f.hi, "{v:?} outside [{:?}, {:?}]", f.lo, f.hi);
        }
    }

    #[test]
    fn settled_error_bound_dominates_the_online_reference() {
        // |eval_online − eval_exact| ≤ the affine settled bound, across
        // random in-range inputs and several widths.
        for digits in [3usize, 4, 6] {
            let dfg = filter(digits);
            let rep = interpret(&dfg, Style::Online);
            let bound = rep.settled_error_bounds()[0];
            let mut rng = ChaCha8Rng::seed_from_u64(97 + digits as u64);
            let m = (1i128 << digits) - 1;
            for _ in 0..100 {
                let qs: Vec<Q> =
                    (0..3).map(|_| Q::new(rng.gen_range(-m..=m), digits as u32)).collect();
                let bs: Vec<BsVector> = qs
                    .iter()
                    .map(|&q| BsVector::from_sd(&SdNumber::from_value(q, digits).unwrap()))
                    .collect();
                let exact = dfg.eval_exact(&qs)[0];
                let online = dfg.eval_online(&bs, 3)[0].value();
                let err = (online - exact).abs();
                assert!(
                    err <= bound,
                    "w={digits}: |{online:?} − {exact:?}| = {err:?} > bound {bound:?}"
                );
            }
        }
    }

    #[test]
    fn sampling_bounds_dominate_measured_error_curves() {
        let delay = FpgaDelay::default();
        for style in [Style::Online, Style::Conventional] {
            let dp = elaborate(&filter(4), &ElabOptions::new(style));
            let critical = analyze(&dp.netlist, &delay).critical_path();
            let ts_grid: Vec<u64> = (1..=8u64).map(|i| (critical * i).div_ceil(8)).collect();
            let bounds = sampling_bounds(&dp, &delay, &ts_grid).unwrap();
            let (curve, _) =
                variant_error_curve(&dp, &delay, &ts_grid, 24, 0xAB5, SimBackend::Auto);
            for (k, &measured) in curve.mean_abs_error.iter().enumerate() {
                let b = bounds.total_f64(k);
                assert!(
                    measured <= b,
                    "{style:?} Ts={}: measured {measured} > certified {b}",
                    ts_grid[k]
                );
            }
            // At the critical path everything settles: the bound is 0.
            assert_eq!(bounds.total(ts_grid.len() - 1), Q::ZERO);
        }
    }

    #[test]
    fn flat_half_never_exceeds_the_per_digit_certification_bound() {
        let delay = FpgaDelay::default();
        let dp = elaborate(&filter(4), &ElabOptions::new(Style::Online));
        let critical = analyze(&dp.netlist, &delay).critical_path();
        let ts_grid: Vec<u64> = (1..=6u64).map(|i| (critical * i).div_ceil(6)).collect();
        let bounds = sampling_bounds(&dp, &delay, &ts_grid).unwrap();

        // Per-digit certification: digit k of the (single) online output
        // bus weighs 2·2^{−(m+k)} (a redundant digit can swing its full
        // range).
        let groups = dp.output_digit_groups();
        let rep = certify(&dp.netlist, &delay, &groups, &ts_grid).unwrap();
        let PortShape::Online { msd_pos, digits } = dp.outputs[0].shape else {
            panic!("online datapath has an online port");
        };
        let weights: Vec<f64> =
            (0..digits).map(|k| 2.0 * pow2(-(msd_pos + k as i32)).to_f64()).collect();
        for (k, &ts) in ts_grid.iter().enumerate() {
            let fine = bounds.total_f64(k);
            let coarse = rep.error_bound(k, &weights);
            assert!(
                fine <= coarse + 1e-12,
                "Ts={ts}: single-wire bound {fine} exceeds per-digit bound {coarse}"
            );
        }
    }

    fn mac_filter(digits: usize) -> Dfg {
        let mut dfg = Dfg::new();
        let fmt = InputFmt { msd_pos: 1, digits };
        let a = dfg.input("a", fmt);
        let b = dfg.input("b", fmt);
        let c = dfg.input("c", fmt);
        let q = dfg.constant(Q::new(1, 2));
        let h = dfg.constant(Q::new(1, 1));
        let y = dfg.mac(&[(a, q), (b, h), (c, q)]);
        dfg.mark_output("y", y);
        dfg
    }

    #[test]
    fn fused_mac_graphs_are_settled_exact_with_exact_operands() {
        // The fused accumulator never digitizes between terms, so a MAC
        // over exact operands carries err = 0 in *both* styles — unlike
        // the Mul/Add tree, which pays one truncation per product online.
        for style in [Style::Online, Style::Conventional] {
            let rep = interpret(&mac_filter(5), style);
            assert!(rep.settled_exact(), "{style:?}");
        }
        let tree = filter(5);
        assert!(!interpret(&tree, Style::Online).settled_exact(), "unfused tree truncates");
    }

    #[test]
    fn mac_intervals_contain_every_exact_evaluation() {
        let digits = 4;
        let dfg = mac_filter(digits);
        let rep = interpret(&dfg, Style::Online);
        let f = rep.form(dfg.outputs()[0].1);
        let mut rng = ChaCha8Rng::seed_from_u64(43);
        let bound = (1i128 << digits) - 1;
        for _ in 0..200 {
            let ins: Vec<Q> =
                (0..3).map(|_| Q::new(rng.gen_range(-bound..=bound), digits as u32)).collect();
            let v = dfg.eval_exact(&ins)[0];
            assert!(f.lo <= v && v <= f.hi, "{v:?} outside [{:?}, {:?}]", f.lo, f.hi);
        }
    }

    #[test]
    fn mac_sampling_bounds_dominate_measured_error_curves() {
        let delay = FpgaDelay::default();
        for style in [Style::Online, Style::Conventional] {
            let dp = elaborate(&mac_filter(4), &ElabOptions::new(style));
            let critical = analyze(&dp.netlist, &delay).critical_path();
            let ts_grid: Vec<u64> = (1..=8u64).map(|i| (critical * i).div_ceil(8)).collect();
            let bounds = sampling_bounds(&dp, &delay, &ts_grid).unwrap();
            let (curve, _) =
                variant_error_curve(&dp, &delay, &ts_grid, 24, 0xAB6, SimBackend::Auto);
            for (k, &measured) in curve.mean_abs_error.iter().enumerate() {
                let b = bounds.total_f64(k);
                assert!(
                    measured <= b,
                    "{style:?} Ts={}: measured {measured} > certified {b}",
                    ts_grid[k]
                );
            }
            assert_eq!(bounds.total(ts_grid.len() - 1), Q::ZERO);
        }
    }

    #[test]
    fn mac_settled_error_bound_dominates_the_online_reference() {
        for digits in [3usize, 4, 6] {
            let dfg = mac_filter(digits);
            let rep = interpret(&dfg, Style::Online);
            let bound = rep.settled_error_bounds()[0];
            let mut rng = ChaCha8Rng::seed_from_u64(131 + digits as u64);
            let m = (1i128 << digits) - 1;
            for _ in 0..100 {
                let qs: Vec<Q> =
                    (0..3).map(|_| Q::new(rng.gen_range(-m..=m), digits as u32)).collect();
                let bs: Vec<BsVector> = qs
                    .iter()
                    .map(|&q| BsVector::from_sd(&SdNumber::from_value(q, digits).unwrap()))
                    .collect();
                let exact = dfg.eval_exact(&qs)[0];
                let online = dfg.eval_online(&bs, 3)[0].value();
                let err = (online - exact).abs();
                assert!(err <= bound, "w={digits}: err {err:?} > bound {bound:?}");
            }
        }
    }

    #[test]
    fn truncation_bound_matches_the_residual_theorem_shape() {
        // Canonical fractional operands (msd 1): τ = 3·2^{−(n+2)}.
        assert_eq!(mul_truncation((1, 4), (1, 4)), Q::new(3, 6));
        // Padding to the longer operand.
        assert_eq!(mul_truncation((1, 2), (1, 6)), Q::new(3, 8));
        // Denormalization shifts scale the bound.
        assert_eq!(mul_truncation((0, 4), (1, 4)), Q::new(3, 5));
        assert_eq!(mul_truncation((2, 4), (2, 4)), Q::new(3, 8));
    }

    #[test]
    fn window_range_is_the_geometric_sum() {
        // m=1, d=3: 1/2 + 1/4 + 1/8 = 7/8.
        assert_eq!(window_range(1, 3), Q::new(7, 3));
        // m=0, d=2: 1 + 1/2 = 3/2.
        assert_eq!(window_range(0, 2), Q::new(3, 1));
    }

    #[test]
    fn interpretation_is_deterministic() {
        let dfg = filter(5);
        let a = interpret(&dfg, Style::Online);
        let b = interpret(&dfg, Style::Online);
        assert_eq!(a.settled_error_bounds(), b.settled_error_bounds());
        for (id, _) in dfg.nodes() {
            assert_eq!(a.form(id), b.form(id));
        }
    }
}
