//! A tiny expression language for stating datapaths as strings.
//!
//! ```text
//! acc = a*0.25 + b*0.5;
//! y   = acc + c*0.25
//! ```
//!
//! * Statements are `name = expr`, separated by newlines or `;`.
//! * `expr` supports `+ − * ( )` and unary minus with the usual
//!   precedence; `*` binds tighter than `+`/`−`.
//! * Free identifiers become primary inputs (in first-appearance order)
//!   with the caller's default [`InputFmt`].
//! * Bound names that no later statement reads become the graph outputs,
//!   in binding order.
//! * Numeric literals must be exact dyadic rationals (`0.25`, `2`,
//!   `1.5`); `0.1` is rejected rather than silently rounded.
//! * `#` starts a comment running to end of line.

use crate::ir::{Dfg, InputFmt, NodeId};
use ola_redundant::Q;
use std::collections::HashMap;
use std::fmt;

/// A parse failure: message plus byte offset into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset of the offending token.
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Num(Q),
    Plus,
    Minus,
    Star,
    LParen,
    RParen,
    Eq,
    Sep,
}

fn err<T>(msg: impl Into<String>, pos: usize) -> Result<T, ParseError> {
    Err(ParseError { msg: msg.into(), pos })
}

fn tokenize(src: &str) -> Result<Vec<(Tok, usize)>, ParseError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '\n' | ';' => {
                toks.push((Tok::Sep, i));
                i += 1;
            }
            '+' => {
                toks.push((Tok::Plus, i));
                i += 1;
            }
            '-' => {
                toks.push((Tok::Minus, i));
                i += 1;
            }
            '*' => {
                toks.push((Tok::Star, i));
                i += 1;
            }
            '(' => {
                toks.push((Tok::LParen, i));
                i += 1;
            }
            ')' => {
                toks.push((Tok::RParen, i));
                i += 1;
            }
            '=' => {
                toks.push((Tok::Eq, i));
                i += 1;
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                toks.push((Tok::Ident(src[start..i].to_owned()), start));
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let mut frac_digits = 0u32;
                if i < bytes.len() && bytes[i] == b'.' {
                    i += 1;
                    let fs = i;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    frac_digits = (i - fs) as u32;
                    if frac_digits == 0 {
                        return err("expected digits after decimal point", start);
                    }
                }
                toks.push((Tok::Num(parse_number(&src[start..i], frac_digits, start)?), start));
            }
            _ => return err(format!("unexpected character {c:?}"), i),
        }
    }
    Ok(toks)
}

/// Parses a decimal literal into an exact dyadic `Q`, rejecting values
/// (like `0.1`) that are not representable.
fn parse_number(text: &str, frac_digits: u32, pos: usize) -> Result<Q, ParseError> {
    let digits: String = text.chars().filter(char::is_ascii_digit).collect();
    let Ok(num) = digits.parse::<i128>() else {
        return err(format!("literal {text} out of range"), pos);
    };
    // value = num / 10^k = (num / 5^k) / 2^k: dyadic iff 5^k divides num.
    let mut five = 1i128;
    for _ in 0..frac_digits {
        five = five.checked_mul(5).ok_or(ParseError {
            msg: format!("literal {text} has too many fractional digits"),
            pos,
        })?;
    }
    if num % five != 0 {
        return err(
            format!("literal {text} is not an exact dyadic rational (try a power-of-two fraction)"),
            pos,
        );
    }
    if frac_digits > 120 {
        return err(format!("literal {text} has too many fractional digits"), pos);
    }
    Ok(Q::new(num / five, frac_digits))
}

struct Parser<'a> {
    toks: &'a [(Tok, usize)],
    i: usize,
    dfg: Dfg,
    default_fmt: InputFmt,
    bound: HashMap<String, NodeId>,
    bound_order: Vec<String>,
    inputs: HashMap<String, NodeId>,
    used: HashMap<String, bool>,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i).map(|(t, _)| t)
    }

    fn pos(&self) -> usize {
        match self.toks.get(self.i) {
            Some(&(_, p)) => p,
            // Past the end: point just after the last token.
            None => self.toks.last().map_or(0, |&(_, p)| p + 1),
        }
    }

    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).map(|(t, _)| t.clone());
        self.i += 1;
        t
    }

    fn expr(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Tok::Plus) => {
                    self.i += 1;
                    let rhs = self.term()?;
                    lhs = self.dfg.add(lhs, rhs);
                }
                Some(Tok::Minus) => {
                    self.i += 1;
                    let rhs = self.term()?;
                    lhs = self.dfg.sub(lhs, rhs);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<NodeId, ParseError> {
        let mut lhs = self.factor()?;
        while matches!(self.peek(), Some(Tok::Star)) {
            self.i += 1;
            let rhs = self.factor()?;
            lhs = self.dfg.mul(lhs, rhs);
        }
        Ok(lhs)
    }

    fn factor(&mut self) -> Result<NodeId, ParseError> {
        let pos = self.pos();
        match self.bump() {
            Some(Tok::Minus) => {
                let inner = self.factor()?;
                Ok(self.dfg.neg(inner))
            }
            Some(Tok::LParen) => {
                let inner = self.expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => err("expected ')'", pos),
                }
            }
            Some(Tok::Num(q)) => Ok(self.dfg.constant(q)),
            Some(Tok::Ident(name)) => Ok(self.resolve(&name)),
            _ => err("expected an operand", pos),
        }
    }

    fn resolve(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.bound.get(name) {
            self.used.insert(name.to_owned(), true);
            return id;
        }
        if let Some(&id) = self.inputs.get(name) {
            return id;
        }
        let id = self.dfg.input(name, self.default_fmt);
        self.inputs.insert(name.to_owned(), id);
        id
    }
}

/// Parses a datapath description into a [`Dfg`]. Free identifiers become
/// inputs with `default_fmt`; bound names never read by a later statement
/// become the outputs.
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors, non-dyadic literals,
/// rebinding a name, shadowing an input, or a program with no statements.
pub fn parse_dfg(src: &str, default_fmt: InputFmt) -> Result<Dfg, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks: &toks,
        i: 0,
        dfg: Dfg::new(),
        default_fmt,
        bound: HashMap::new(),
        bound_order: Vec::new(),
        inputs: HashMap::new(),
        used: HashMap::new(),
    };
    loop {
        while matches!(p.peek(), Some(Tok::Sep)) {
            p.i += 1;
        }
        if p.peek().is_none() {
            break;
        }
        let pos = p.pos();
        let Some(Tok::Ident(name)) = p.bump() else {
            return err("expected `name = expr`", pos);
        };
        if p.bound.contains_key(&name) {
            return err(format!("{name:?} is bound twice"), pos);
        }
        if p.inputs.contains_key(&name) {
            return err(format!("{name:?} is already an input and cannot be rebound"), pos);
        }
        let eq_pos = p.pos();
        if !matches!(p.bump(), Some(Tok::Eq)) {
            return err("expected '='", eq_pos);
        }
        let node = p.expr()?;
        match p.peek() {
            None | Some(Tok::Sep) => {}
            _ => return err("expected end of statement", p.pos()),
        }
        p.bound.insert(name.clone(), node);
        p.bound_order.push(name);
    }
    if p.bound_order.is_empty() {
        return err("program has no statements", 0);
    }
    let mut dfg = p.dfg;
    for name in &p.bound_order {
        if !p.used.get(name).copied().unwrap_or(false) {
            dfg.mark_output(name, p.bound[name]);
        }
    }
    Ok(dfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Op;
    use ola_redundant::{BsVector, SdNumber};

    fn fmt4() -> InputFmt {
        InputFmt { msd_pos: 1, digits: 4 }
    }

    #[test]
    fn convolution_parses_to_expected_structure() {
        let d = parse_dfg("y = (a*g0 + b*g1 + c*g2)", fmt4()).unwrap();
        let names: Vec<&str> = d.inputs().iter().map(|&(_, n, _)| n).collect();
        assert_eq!(names, ["a", "g0", "b", "g1", "c", "g2"], "first-appearance order");
        assert_eq!(d.outputs().len(), 1);
        assert_eq!(d.outputs()[0].0, "y");
        let muls = d.nodes().filter(|(_, op)| matches!(op, Op::Mul(..))).count();
        let adds = d.nodes().filter(|(_, op)| matches!(op, Op::Add(..))).count();
        assert_eq!((muls, adds), (3, 2));
    }

    #[test]
    fn intermediate_bindings_are_not_outputs() {
        let d = parse_dfg("t = a + b; u = t + c; y = u + d", fmt4()).unwrap();
        assert_eq!(d.outputs().len(), 1);
        assert_eq!(d.outputs()[0].0, "y");
    }

    #[test]
    fn multiple_outputs_in_binding_order() {
        let d = parse_dfg("s = a + b\nd = a - b", fmt4()).unwrap();
        let names: Vec<&str> = d.outputs().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["s", "d"]);
    }

    #[test]
    fn literals_and_precedence() {
        // 0.5 + a·(−0.25) — '*' binds tighter, unary minus works.
        let d = parse_dfg("y = 0.5 + a * -0.25", fmt4()).unwrap();
        let q = Q::new(3, 2); // a = 3/4
        let sd = SdNumber::from_value(q, 4).unwrap();
        let _ = BsVector::from_sd(&sd);
        let got = d.eval_exact(&[q]);
        assert_eq!(got, vec![Q::new(1, 1) - q * Q::new(1, 2)]);
    }

    #[test]
    fn non_dyadic_literal_is_rejected() {
        let e = parse_dfg("y = 0.1 * a", fmt4()).unwrap_err();
        assert!(e.msg.contains("dyadic"), "{e}");
    }

    #[test]
    fn rebinding_is_rejected() {
        assert!(parse_dfg("y = a; y = b", fmt4()).is_err());
        assert!(parse_dfg("y = a + b; a = c", fmt4()).is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let d = parse_dfg("# gaussian\n\ny = a + b # tail\n", fmt4()).unwrap();
        assert_eq!(d.outputs().len(), 1);
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let e = parse_dfg("y = a +", fmt4()).unwrap_err();
        assert!(e.pos <= 7);
        assert!(parse_dfg("= a", fmt4()).is_err());
        assert!(parse_dfg("y = (a", fmt4()).is_err());
        assert!(parse_dfg("", fmt4()).is_err());
    }
}
