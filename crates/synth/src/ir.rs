//! The dataflow-graph IR: nodes, formats, builder, reference evaluators.
//!
//! A [`Dfg`] is a topologically ordered vector of [`Op`] nodes plus named
//! outputs. Every edge carries an implicit fixed-point format — a
//! signed-digit *window* for the online style ([`Dfg::online_windows`])
//! and a two's-complement `(width, frac)` pair for the conventional style
//! ([`Dfg::tc_formats`]) — derived deterministically from the input
//! formats by the same rules the elaborator uses, so format bookkeeping
//! and hardware can never drift apart.
//!
//! Two reference evaluators pin down the semantics:
//!
//! * [`Dfg::eval_exact`] — exact rational (`Q`) evaluation; conventional
//!   elaboration is bit-true against this (it is exact by construction).
//! * [`Dfg::eval_online`] — the *bit-level* online reference: borrow-save
//!   vectors through [`bs_add`]/[`bittrue_mult_bits`], mirroring the
//!   elaborated netlist signal for signal, including the truncation error
//!   of each online multiplier and non-canonical digit encodings.

use ola_arith::online::{bittrue_mult_bits, bs_add, fused_mac_bits, fused_mac_window, DELTA};
use ola_redundant::{BsVector, SdNumber, Q};

/// Handle to a node inside one [`Dfg`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(usize);

impl NodeId {
    /// The node's position in the graph's topological node order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }

    /// Construct a `NodeId` from a raw index (crate-internal: passes use
    /// this for placeholder slots and tests for fixed references).
    pub(crate) fn from_raw(i: usize) -> NodeId {
        NodeId(i)
    }
}

/// Fixed-point format of a primary input: a signed-digit window
/// `msd_pos ..= msd_pos + digits − 1` where position `p` has weight
/// `2^-p` (so `msd_pos = 1, digits = n` is the canonical fractional
/// operand of the online operators).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InputFmt {
    /// Most significant digit position (weight `2^-msd_pos`).
    pub msd_pos: i32,
    /// Number of digit positions.
    pub digits: usize,
}

impl Default for InputFmt {
    fn default() -> Self {
        InputFmt { msd_pos: 1, digits: 8 }
    }
}

/// One dataflow node. Operands always refer to earlier nodes, so the node
/// vector is topologically ordered by construction.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// A named primary input with its fixed-point format.
    Input {
        /// Unique input name.
        name: String,
        /// Fixed-point format of the input bus.
        fmt: InputFmt,
    },
    /// An exact dyadic constant.
    Const(Q),
    /// Addition.
    Add(NodeId, NodeId),
    /// Subtraction (`lhs − rhs`).
    Sub(NodeId, NodeId),
    /// Negation.
    Neg(NodeId),
    /// Multiplication of two variables.
    Mul(NodeId, NodeId),
    /// Multiplication by an exact dyadic constant (canonical form for
    /// `Const × x`, produced by constant folding).
    ConstMul(Q, NodeId),
    /// Fused multiply-accumulate: the inner product `Σ xₖ · yₖ` over the
    /// term pairs, accumulated in redundant form (online style: no
    /// per-product digitization, so the node is *exact*; conventional
    /// style: per-term array multipliers into one signed adder tree).
    Mac(Vec<(NodeId, NodeId)>),
}

impl Op {
    /// The operand nodes, in argument order.
    #[must_use]
    pub fn operands(&self) -> Vec<NodeId> {
        match self {
            Op::Input { .. } | Op::Const(_) => Vec::new(),
            Op::Neg(a) | Op::ConstMul(_, a) => vec![*a],
            Op::Add(a, b) | Op::Sub(a, b) | Op::Mul(a, b) => vec![*a, *b],
            Op::Mac(terms) => terms.iter().flat_map(|&(a, b)| [a, b]).collect(),
        }
    }
}

/// A fixed-point dataflow graph with named outputs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Dfg {
    nodes: Vec<Op>,
    outputs: Vec<(String, NodeId)>,
}

impl Dfg {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        Dfg::default()
    }

    fn push(&mut self, op: Op) -> NodeId {
        for o in op.operands() {
            assert!(o.0 < self.nodes.len(), "operand {o:?} does not exist");
        }
        self.nodes.push(op);
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a named primary input.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name or a zero-digit format.
    pub fn input(&mut self, name: &str, fmt: InputFmt) -> NodeId {
        assert!(fmt.digits > 0, "input {name:?} needs at least one digit");
        assert!(!self.inputs().iter().any(|(_, n, _)| *n == name), "duplicate input name {name:?}");
        self.push(Op::Input { name: name.to_owned(), fmt })
    }

    /// Adds an exact dyadic constant.
    pub fn constant(&mut self, value: Q) -> NodeId {
        self.push(Op::Const(value))
    }

    /// Adds `a + b`.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Add(a, b))
    }

    /// Adds `a − b`.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Sub(a, b))
    }

    /// Adds `−a`.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        self.push(Op::Neg(a))
    }

    /// Adds `a · b`.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Op::Mul(a, b))
    }

    /// Adds `c · a` for a dyadic constant `c`.
    pub fn const_mul(&mut self, c: Q, a: NodeId) -> NodeId {
        self.push(Op::ConstMul(c, a))
    }

    /// Adds the fused inner product `Σ xₖ · yₖ` over `terms`.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn mac(&mut self, terms: &[(NodeId, NodeId)]) -> NodeId {
        assert!(!terms.is_empty(), "fused MAC needs at least one term");
        self.push(Op::Mac(terms.to_vec()))
    }

    /// Names `node` as an output.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate output name or an unknown node.
    pub fn mark_output(&mut self, name: &str, node: NodeId) {
        assert!(node.0 < self.nodes.len(), "output node {node:?} does not exist");
        assert!(!self.outputs.iter().any(|(n, _)| n == name), "duplicate output name {name:?}");
        self.outputs.push((name.to_owned(), node));
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node's operation.
    #[must_use]
    pub fn op(&self, id: NodeId) -> &Op {
        &self.nodes[id.0]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Op)> {
        self.nodes.iter().enumerate().map(|(i, op)| (NodeId(i), op))
    }

    /// The named outputs, in marking order.
    #[must_use]
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// The primary inputs `(node, name, fmt)`, in node order — the order
    /// input values are supplied to the evaluators and the elaborated
    /// netlist's input buses.
    #[must_use]
    pub fn inputs(&self) -> Vec<(NodeId, &str, InputFmt)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, op)| match op {
                Op::Input { name, fmt } => Some((NodeId(i), name.as_str(), *fmt)),
                _ => None,
            })
            .collect()
    }

    /// A copy of the graph with every input resized to `digits` digit
    /// positions (same MSD positions) — the width axis of the explorer.
    ///
    /// # Panics
    ///
    /// Panics if `digits == 0`.
    #[must_use]
    pub fn with_input_digits(&self, digits: usize) -> Dfg {
        assert!(digits > 0, "need at least one digit");
        let mut out = self.clone();
        for op in &mut out.nodes {
            if let Op::Input { fmt, .. } = op {
                fmt.digits = digits;
            }
        }
        out
    }

    /// Evaluates every output exactly (rational semantics). `inputs` are
    /// given in [`Dfg::inputs`] order. This is the reference the
    /// conventional elaboration is bit-true against and the passes must
    /// preserve.
    ///
    /// # Panics
    ///
    /// Panics if the input count does not match.
    #[must_use]
    pub fn eval_exact(&self, inputs: &[Q]) -> Vec<Q> {
        let mut vals: Vec<Q> = Vec::with_capacity(self.nodes.len());
        let mut next_input = 0usize;
        for op in &self.nodes {
            let v = match *op {
                Op::Input { .. } => {
                    let v = inputs[next_input];
                    next_input += 1;
                    v
                }
                Op::Const(c) => c,
                Op::Add(a, b) => vals[a.0] + vals[b.0],
                Op::Sub(a, b) => vals[a.0] - vals[b.0],
                Op::Neg(a) => -vals[a.0],
                Op::Mul(a, b) => vals[a.0] * vals[b.0],
                Op::ConstMul(c, a) => c * vals[a.0],
                Op::Mac(ref terms) => {
                    terms.iter().fold(Q::ZERO, |acc, &(a, b)| acc + vals[a.0] * vals[b.0])
                }
            };
            vals.push(v);
        }
        assert_eq!(next_input, inputs.len(), "input count mismatch");
        self.outputs.iter().map(|&(_, n)| vals[n.0]).collect()
    }

    /// Evaluates every output through the *bit-level online reference*:
    /// borrow-save adders ([`bs_add`]) and the unrolled online multiplier
    /// ([`bittrue_mult_bits`]) with selection granularity `frac_digits`.
    /// The result vectors are bit-exact against the settled outputs of the
    /// online-elaborated netlist — including multiplier truncation and
    /// non-canonical `(1, 1)` digit encodings.
    ///
    /// `inputs` are [`BsVector`]s matching each input's declared window.
    ///
    /// # Panics
    ///
    /// Panics if the input count, a window, or `frac_digits < 3` mismatch.
    #[must_use]
    pub fn eval_online(&self, inputs: &[BsVector], frac_digits: i32) -> Vec<BsVector> {
        assert!(frac_digits >= 3, "selection estimate must cover ≥ 3 fractional digits");
        let mut vals: Vec<BsVector> = Vec::with_capacity(self.nodes.len());
        let mut next_input = 0usize;
        for op in &self.nodes {
            let v = match *op {
                Op::Input { fmt, .. } => {
                    let v = inputs[next_input].clone();
                    next_input += 1;
                    assert_eq!(v.msd_pos(), fmt.msd_pos, "input window MSD mismatch");
                    assert_eq!(v.len(), fmt.digits, "input window length mismatch");
                    v
                }
                Op::Const(c) => const_bs(c),
                Op::Add(a, b) => bs_add(&vals[a.0], &vals[b.0]),
                Op::Sub(a, b) => bs_add(&vals[a.0], &vals[b.0].negated()),
                Op::Neg(a) => vals[a.0].negated(),
                Op::Mul(a, b) => mul_online(&vals[a.0], &vals[b.0], frac_digits),
                Op::ConstMul(c, a) => mul_online(&const_bs(c), &vals[a.0], frac_digits),
                Op::Mac(ref terms) => {
                    // Fused: redundant accumulation, no per-product
                    // digitization — exact against `eval_exact`.
                    let pairs: Vec<(BsVector, BsVector)> = terms
                        .iter()
                        .map(|&(a, b)| (vals[a.0].clone(), vals[b.0].clone()))
                        .collect();
                    fused_mac_bits(&pairs)
                }
            };
            vals.push(v);
        }
        assert_eq!(next_input, inputs.len(), "input count mismatch");
        self.outputs.iter().map(|&(_, n)| vals[n.0].clone()).collect()
    }

    /// The online signed-digit window `(msd_pos, digits)` of every node —
    /// the per-edge format bookkeeping of the online style, mirroring the
    /// elaborator's bus shapes exactly.
    #[must_use]
    pub fn online_windows(&self) -> Vec<(i32, usize)> {
        let delta = DELTA as i32;
        let mut w: Vec<(i32, usize)> = Vec::with_capacity(self.nodes.len());
        for op in &self.nodes {
            let win = match *op {
                Op::Input { fmt, .. } => (fmt.msd_pos, fmt.digits),
                Op::Const(c) => {
                    let (sd, k) = const_sd(c);
                    (1 - k, sd.len())
                }
                Op::Add(a, b) | Op::Sub(a, b) => {
                    let (ma, la) = w[a.0];
                    let (mb, lb) = w[b.0];
                    let msd = ma.min(mb) - 1;
                    let end = (ma + la as i32).max(mb + lb as i32);
                    (msd, (end - msd) as usize)
                }
                Op::Neg(a) => w[a.0],
                Op::Mul(a, b) => mul_window(w[a.0], w[b.0], delta),
                Op::ConstMul(c, a) => {
                    let (sd, k) = const_sd(c);
                    mul_window((1 - k, sd.len()), w[a.0], delta)
                }
                Op::Mac(ref terms) => {
                    // δ-composition under accumulation: replay the fused
                    // row/fold window algebra structurally.
                    let pairs: Vec<((i32, usize), (i32, usize))> =
                        terms.iter().map(|&(a, b)| (w[a.0], w[b.0])).collect();
                    fused_mac_window(&pairs)
                }
            };
            w.push(win);
        }
        w
    }

    /// The two's-complement format `(width, frac)` of every node — the
    /// per-edge format bookkeeping of the conventional style (LSB weight
    /// `2^-frac`), mirroring the elaborator's bus shapes exactly.
    #[must_use]
    pub fn tc_formats(&self) -> Vec<(usize, i32)> {
        let mut f: Vec<(usize, i32)> = Vec::with_capacity(self.nodes.len());
        for op in &self.nodes {
            let fmt = match *op {
                Op::Input { fmt, .. } => (fmt.digits + 1, fmt.msd_pos + fmt.digits as i32 - 1),
                Op::Const(c) => const_tc_format(c),
                Op::Add(a, b) | Op::Sub(a, b) => {
                    let (wa, fa) = f[a.0];
                    let (wb, fb) = f[b.0];
                    let frac = fa.max(fb);
                    let wa = wa + (frac - fa) as usize;
                    let wb = wb + (frac - fb) as usize;
                    (wa.max(wb) + 1, frac)
                }
                Op::Neg(a) => (f[a.0].0 + 1, f[a.0].1),
                Op::Mul(a, b) => {
                    let (wa, fa) = f[a.0];
                    let (wb, fb) = f[b.0];
                    (2 * wa.max(wb), fa + fb)
                }
                Op::ConstMul(c, a) => {
                    let (wc, fc) = const_tc_format(c);
                    let (wa, fa) = f[a.0];
                    (2 * wc.max(wa), fc + fa)
                }
                Op::Mac(ref terms) => {
                    // Per-term array-multiplier products folded by the
                    // same balanced signed adder tree the conventional
                    // lowering builds.
                    let prods: Vec<(usize, i32)> = terms
                        .iter()
                        .map(|&(a, b)| {
                            let (wa, fa) = f[a.0];
                            let (wb, fb) = f[b.0];
                            (2 * wa.max(wb), fa + fb)
                        })
                        .collect();
                    mac_tc_fold(&prods)
                }
            };
            f.push(fmt);
        }
        f
    }
}

/// The two's-complement format of a balanced `chunks(2)` signed adder
/// tree over per-term product formats — the conventional MAC's format
/// rule, applying the Add alignment (`frac = max`, aligned widths,
/// `+1` carry bit) at every combine in exact tree order.
pub(crate) fn mac_tc_fold(prods: &[(usize, i32)]) -> (usize, i32) {
    let mut level = prods.to_vec();
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|c| {
                if c.len() == 2 {
                    let (wa, fa) = c[0];
                    let (wb, fb) = c[1];
                    let frac = fa.max(fb);
                    let wa = wa + (frac - fa) as usize;
                    let wb = wb + (frac - fb) as usize;
                    (wa.max(wb) + 1, frac)
                } else {
                    c[0]
                }
            })
            .collect();
    }
    level[0]
}

/// The window of a (normalized, padded) online multiplication of two
/// operand windows: operands are shifted to MSD position 1, padded to a
/// common length `n`, multiplied (result window `1 − δ`, length `n + δ`),
/// and shifted back.
fn mul_window(a: (i32, usize), b: (i32, usize), delta: i32) -> (i32, usize) {
    let (ma, la) = a;
    let (mb, lb) = b;
    let n = la.max(lb).max(1);
    let (sx, sy) = (ma - 1, mb - 1);
    (1 - delta + sx + sy, n + delta as usize)
}

/// Canonical signed-digit encoding of a dyadic constant: the normalized
/// numerator as an `b`-digit SD fraction (positions `1..=b`), plus the
/// power-of-two shift `k` such that the constant equals the fraction
/// multiplied by `2^k` (i.e. the encoded window starts at `1 − k`). Zero
/// encodes as one zero digit with no shift.
pub(crate) fn const_sd(c: Q) -> (SdNumber, i32) {
    if c.is_zero() {
        return (SdNumber::zero(1), 0);
    }
    let num = c.numerator();
    let b = (128 - num.unsigned_abs().leading_zeros()) as usize;
    let sd = SdNumber::from_value(Q::new(num, b as u32), b)
        .expect("|num| < 2^bitlen(num) by construction");
    (sd, b as i32 - c.scale() as i32)
}

/// The borrow-save encoding of a dyadic constant (the bit pattern the
/// online elaborator materializes).
pub(crate) fn const_bs(c: Q) -> BsVector {
    let (sd, k) = const_sd(c);
    BsVector::from_sd(&sd).shifted(k)
}

/// Two's-complement format of a dyadic constant: smallest signed width
/// holding the normalized numerator, at `frac = scale`.
pub(crate) fn const_tc_format(c: Q) -> (usize, i32) {
    if c.is_zero() {
        return (1, 0);
    }
    let b = (128 - c.numerator().unsigned_abs().leading_zeros()) as usize;
    (b + 1, c.scale() as i32)
}

/// Bit-level online multiplication of two arbitrary borrow-save windows:
/// normalize each operand to MSD position 1 (a pure shift), zero-pad to a
/// common length, run the unrolled-multiplier reference, and shift the
/// product window back. This is the δ-composition rule: the product window
/// starts at `1 − δ + (ma − 1) + (mb − 1)` and the multiplier's online
/// delay shows up as `δ` extra digits, never as a value error larger than
/// the single-operator truncation bound.
pub(crate) fn mul_online(x: &BsVector, y: &BsVector, frac_digits: i32) -> BsVector {
    let delta = DELTA as i32;
    let (sx, sy) = (x.msd_pos() - 1, y.msd_pos() - 1);
    let n = x.len().max(y.len()).max(1);
    let xs = x.shifted(sx).rewindowed(1, n);
    let ys = y.shifted(sy).rewindowed(1, n);
    let digits = bittrue_mult_bits(&xs, &ys, frac_digits);
    let mut prod = BsVector::zero(1 - delta, digits.len());
    for (i, &d) in digits.iter().enumerate() {
        prod.set_digit(1 - delta + i as i32, d);
    }
    prod.shifted(-(sx + sy))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_dfg() -> Dfg {
        // y = a·g0 + b·g1 + c·g2 over canonical 4-digit inputs.
        let mut d = Dfg::new();
        let fmt = InputFmt { msd_pos: 1, digits: 4 };
        let a = d.input("a", fmt);
        let b = d.input("b", fmt);
        let c = d.input("c", fmt);
        let g0 = d.constant(Q::new(1, 2));
        let g1 = d.constant(Q::new(1, 1));
        let g2 = d.constant(Q::new(1, 2));
        let p0 = d.mul(a, g0);
        let p1 = d.mul(b, g1);
        let p2 = d.mul(c, g2);
        let s = d.add(p0, p1);
        let y = d.add(s, p2);
        d.mark_output("y", y);
        d
    }

    #[test]
    fn exact_evaluation_matches_hand_computation() {
        let d = filter_dfg();
        let q = |n: i128| Q::new(n, 4);
        let out = d.eval_exact(&[q(3), q(-5), q(7)]);
        assert_eq!(out, vec![q(3) * Q::new(1, 2) + q(-5) * Q::new(1, 1) + q(7) * Q::new(1, 2)]);
    }

    #[test]
    fn online_windows_follow_delta_composition() {
        let mut d = Dfg::new();
        let a = d.input("a", InputFmt { msd_pos: 1, digits: 4 });
        let b = d.input("b", InputFmt { msd_pos: 1, digits: 4 });
        let m = d.mul(a, b);
        let s = d.add(m, a);
        d.mark_output("y", s);
        let w = d.online_windows();
        assert_eq!(w[m.index()], (1 - 3, 7), "product window starts δ early");
        // Add: msd = min(−2, 1) − 1 = −3; end = max(−2+7, 1+4) = 5.
        assert_eq!(w[s.index()], (-3, 8));
    }

    #[test]
    fn online_eval_matches_exact_value_within_truncation_bound() {
        let d = filter_dfg();
        let windows = d.online_windows();
        let out_node = d.outputs()[0].1;
        let q = |n: i128| Q::new(n, 4);
        let ins: Vec<BsVector> = [q(3), q(-5), q(7)]
            .iter()
            .map(|&v| BsVector::from_sd(&SdNumber::from_value(v, 4).unwrap()))
            .collect();
        let got = d.eval_online(&ins, 3);
        assert_eq!(got[0].msd_pos(), windows[out_node.index()].0);
        assert_eq!(got[0].len(), windows[out_node.index()].1);
        let exact = d.eval_exact(&[q(3), q(-5), q(7)])[0];
        // Three truncating multiplies, each |err| ≤ 3·2^-(n+1) on the
        // normalized scale; the adds are exact.
        let bound = (Q::new(3, 5) + Q::new(3, 5) + Q::new(3, 5)) << 1;
        assert!((got[0].value() - exact).abs() <= bound, "got {:?}", got[0].value());
    }

    #[test]
    fn const_encoding_is_exact_for_awkward_constants() {
        for c in [Q::ZERO, Q::ONE, Q::new(3, 2), Q::new(-7, 5), Q::from_int(6), Q::new(-1, 7)] {
            assert_eq!(const_bs(c).value(), c, "constant {c:?}");
            let (w, f) = const_tc_format(c);
            let units = if f >= 0 {
                c.scaled_to(f as u32).expect("fits own scale")
            } else {
                c.numerator() << (-f) as u32
            };
            assert!(units >= -(1i128 << (w - 1)) && units < (1i128 << (w - 1)));
        }
    }

    #[test]
    fn tc_formats_track_width_growth() {
        let mut d = Dfg::new();
        let a = d.input("a", InputFmt { msd_pos: 1, digits: 4 }); // (5, 4)
        let b = d.input("b", InputFmt { msd_pos: 0, digits: 3 }); // (4, 2)
        let s = d.add(a, b);
        let m = d.mul(s, a);
        d.mark_output("y", m);
        let f = d.tc_formats();
        assert_eq!(f[a.index()], (5, 4));
        assert_eq!(f[b.index()], (4, 2));
        // Align to frac 4: widths 5 and 6 → add = 7 bits.
        assert_eq!(f[s.index()], (7, 4));
        assert_eq!(f[m.index()], (14, 8));
    }

    #[test]
    fn with_input_digits_rewrites_every_input() {
        let d = filter_dfg().with_input_digits(9);
        for (_, _, fmt) in d.inputs() {
            assert_eq!(fmt.digits, 9);
            assert_eq!(fmt.msd_pos, 1);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate input name")]
    fn duplicate_inputs_are_rejected() {
        let mut d = Dfg::new();
        let _ = d.input("a", InputFmt::default());
        let _ = d.input("a", InputFmt::default());
    }

    fn mac_dfg(n: usize) -> Dfg {
        // y = mac((a, g0), (b, g1), (c, g2)) — the fused 1×3 filter.
        let mut d = Dfg::new();
        let fmt = InputFmt { msd_pos: 1, digits: n };
        let a = d.input("a", fmt);
        let b = d.input("b", fmt);
        let c = d.input("c", fmt);
        let g0 = d.constant(Q::new(1, 2));
        let g1 = d.constant(Q::new(1, 1));
        let g2 = d.constant(Q::new(1, 2));
        let y = d.mac(&[(a, g0), (b, g1), (c, g2)]);
        d.mark_output("y", y);
        d
    }

    #[test]
    fn mac_eval_online_is_exact_against_eval_exact() {
        // The fused node never digitizes, so unlike Mul the online
        // reference carries zero truncation error.
        let d = mac_dfg(4);
        let windows = d.online_windows();
        let out_node = d.outputs()[0].1;
        let q = |v: i128| Q::new(v, 4);
        for ins in [[q(3), q(-5), q(7)], [q(15), q(15), q(-15)], [q(0), q(1), q(-1)]] {
            let bs: Vec<BsVector> = ins
                .iter()
                .map(|&v| BsVector::from_sd(&SdNumber::from_value(v, 4).unwrap()))
                .collect();
            let got = d.eval_online(&bs, 3);
            let exact = d.eval_exact(&ins);
            assert_eq!(got[0].value(), exact[0], "ins={ins:?}");
            assert_eq!((got[0].msd_pos(), got[0].len()), windows[out_node.index()]);
        }
    }

    #[test]
    fn mac_formats_cover_the_value_range() {
        let d = mac_dfg(4);
        let y = d.outputs()[0].1;
        let (w, frac) = d.tc_formats()[y.index()];
        // |y| ≤ 3 · 1 · 1/2... conservatively the format must hold the
        // exact value of any input assignment; spot-check the extremes.
        let q = |v: i128| Q::new(v, 4);
        let ext = d.eval_exact(&[q(15), q(-15), q(15)])[0];
        let units = (ext << frac as u32).scaled_to(0).expect("integral at frac scale");
        assert!(units >= -(1i128 << (w - 1)) && units < (1i128 << (w - 1)));
    }

    #[test]
    fn mac_operands_flatten_in_term_order() {
        let d = mac_dfg(4);
        let y = d.outputs()[0].1;
        let ops = d.op(y).operands();
        assert_eq!(ops.len(), 6);
        assert_eq!(ops[0].index(), 0);
        assert_eq!(ops[1].index(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one term")]
    fn empty_mac_is_rejected() {
        let mut d = Dfg::new();
        let _ = d.mac(&[]);
    }
}
