//! Dataflow-graph datapath synthesis for online/overclocked arithmetic.
//!
//! The paper's subject is datapath *synthesis*: given a fixed-point
//! computation, compile it to gates in either the online (MSD-first
//! signed-digit) or the conventional (two's-complement) style and explore
//! the latency–accuracy–area trade-off under overclocking. This crate is
//! that compiler layer, sitting between the per-operator generators in
//! [`ola_arith::synth`] and the experiment harnesses:
//!
//! 1. **IR** ([`ir`]): a small dataflow graph — input / const / add / sub /
//!    neg / mul / const-mul / output nodes with per-edge fixed-point format
//!    bookkeeping — built through a typed builder API, plus two reference
//!    evaluators: exact rational semantics ([`Dfg::eval_exact`]) and the
//!    bit-level online reference ([`Dfg::eval_online`]) that mirrors the
//!    elaborated netlist signal for signal.
//! 2. **Parser** ([`parser`]): a tiny expression language
//!    (`"y = a*g0 + b*g1 + c*g2"`) so experiments and tests can state
//!    datapaths as strings.
//! 3. **Passes** ([`passes`]): constant folding, common-subexpression
//!    elimination, dead-node elimination, and pluggable adder-structure
//!    allocation (linear chain / balanced tree / online-chained — the
//!    chains-of-additions allocation decision). Each pass preserves the
//!    exact semantics of every output.
//! 4. **Elaborator** ([`elab`]): lowers the IR to one flat gate-level
//!    [`Netlist`](ola_netlist::Netlist) in both styles, composing the
//!    operator cores from [`ola_arith::synth`] with correct online-delay
//!    (δ) bookkeeping across operator boundaries.
//! 5. **Explorer** ([`mod@explore`]): enumerates style × adder allocation ×
//!    width variants (plus accumulation length for fused-MAC sweeps) and
//!    evaluates each with STA rated frequency, LUT area, and empirical
//!    overclocking-error curves, emitting a Pareto frontier.
//! 6. **Verifier** ([`mod@verify`], [`absint`]): prove-after-rewrite
//!    equivalence gates over every semantics-preserving pass (backed by
//!    [`ola_netlist::equiv`]) and an abstract interpreter deriving sound
//!    per-`Ts` error bounds that bracket the explorer's measured curves.
//! 7. **DSP workloads** ([`dsp`]): deterministic FIR / separable-conv2d /
//!    mat-vec kernel generators in fused-MAC and unfused multiply/add-tree
//!    flavours, feeding the `repro dsp` experiment.

pub mod absint;
pub mod dsp;
pub mod elab;
pub mod explore;
pub mod ir;
pub mod parser;
pub mod passes;
pub mod service;
pub mod verify;

pub use absint::{interpret, sampling_bounds, AbsintReport, SamplingBounds, ValueForm};
pub use dsp::{conv2d_separable, dyadic_coeff, fir_bank, matvec, MacFusion};
pub use elab::{elaborate, ElabOptions, Port, PortShape, Style, SynthesizedDatapath};
pub use explore::{
    explore, explore_mac, ts_grid, variant_error_curve, DesignPoint, ExploreConfig, ExploreResult,
};
pub use ir::{Dfg, InputFmt, NodeId, Op};
pub use parser::{parse_dfg, ParseError};
pub use passes::{allocate_adders, constant_fold, cse, eliminate_dead, optimize, AdderStructure};
pub use service::{Limits, Query, QueryError, VariantSpec};
pub use verify::{aligned_conventional_pair, conventional_caps_ok, prove_pass_equivalence};
