//! The design-space explorer: style × adder allocation × width, with a
//! Pareto frontier over (LUT area, rated period, mean overclocking
//! error).
//!
//! For every variant the explorer runs the full compilation pipeline
//! ([`optimize`] → [`elaborate`]), then evaluates three axes:
//!
//! * **Latency**: STA rated period/frequency under [`FpgaDelay`]. A
//!   variant that folds to pure constants has no timed logic — its rated
//!   frequency is [`None`] and it is excluded from the frontier rather
//!   than unwrapped into a panic.
//! * **Area**: [`area::estimate`] with K = 4 LUTs.
//! * **Accuracy under overclocking**: empirical mean error over a shared
//!   absolute Ts grid via the `ola-core` engine
//!   ([`datapath_gate_level_curve_with`]), with STA-certified points
//!   skipped (counted, not simulated).
//!
//! Everything is deterministic: one seeded RNG per variant, and the
//! shared Ts grid is derived from the worst critical path across all
//! variants so the error axis is comparable between them.

use crate::elab::{elaborate, ElabOptions, PortShape, Style, SynthesizedDatapath};
use crate::ir::Dfg;
use crate::passes::{optimize, AdderStructure};
use ola_core::empirical::datapath_gate_level_curve_with;
use ola_core::{BackendStats, SimBackend, StaGate};
use ola_netlist::area::{self, AreaReport};
use ola_netlist::{analyze, FpgaDelay};
use ola_redundant::{SdNumber, Q};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Explorer configuration: the enumeration axes and the evaluation
/// budget.
#[derive(Clone, Debug)]
pub struct ExploreConfig {
    /// Input digit widths to sweep (the `n` axis).
    pub widths: Vec<usize>,
    /// Arithmetic styles to compare.
    pub styles: Vec<Style>,
    /// Adder-structure allocations to compare.
    pub allocations: Vec<AdderStructure>,
    /// Online selection granularity `t` (≥ 3).
    pub frac_digits: i32,
    /// Number of clock periods in the shared Ts grid.
    pub ts_points: usize,
    /// Monte-Carlo samples per (variant, Ts).
    pub samples: usize,
    /// Base RNG seed (each variant derives its own stream).
    pub seed: u64,
    /// Simulation backend selection.
    pub backend: SimBackend,
}

impl Default for ExploreConfig {
    fn default() -> Self {
        ExploreConfig {
            widths: vec![4, 8],
            styles: vec![Style::Online, Style::Conventional],
            allocations: vec![
                AdderStructure::LinearChain,
                AdderStructure::BalancedTree,
                AdderStructure::OnlineChained,
            ],
            frac_digits: 3,
            ts_points: 12,
            samples: 48,
            seed: 2024,
            backend: SimBackend::Auto,
        }
    }
}

/// One evaluated variant of the design space.
#[derive(Clone, Debug)]
pub struct DesignPoint {
    /// Arithmetic style.
    pub style: Style,
    /// Adder allocation used by [`optimize`].
    pub allocation: AdderStructure,
    /// Input digit width.
    pub width: usize,
    /// LUT/slice area estimate.
    pub area: AreaReport,
    /// STA critical path (time units), or [`None`] when the variant has
    /// no timed logic (e.g. it folded to constants).
    pub rated_period: Option<u64>,
    /// STA rated frequency (operations per megaunit), propagated as-is
    /// from [`TimingReport::rated_frequency`](ola_netlist::TimingReport).
    pub rated_mhz: Option<f64>,
    /// Mean of the per-Ts mean absolute output errors over the shared
    /// grid (0 for untimed variants — they are always settled).
    pub mean_error: f64,
    /// Worst per-Ts violation rate over the shared grid.
    pub worst_violation_rate: f64,
    /// `(bus, Ts)` sample points the engine skipped because settlement
    /// was STA-certified.
    pub certified_skipped: u64,
    /// True if the point is on the Pareto frontier of
    /// (LUT area, rated period, mean error).
    pub pareto: bool,
    /// Accumulation length (tap count) for fused-MAC sweeps
    /// ([`explore_mac`]); [`None`] for plain [`explore`] rows.
    pub mac_len: Option<usize>,
}

impl DesignPoint {
    /// Stable variant label for logs and CSV rows, e.g.
    /// `online/tree/w8`, or `online/tree/w8/k16` for MAC sweeps.
    #[must_use]
    pub fn label(&self) -> String {
        let base = format!("{}/{}/w{}", self.style.name(), self.allocation.name(), self.width);
        match self.mac_len {
            Some(len) => format!("{base}/k{len}"),
            None => base,
        }
    }
}

/// The explorer's output: every evaluated point plus the shared Ts grid.
#[derive(Clone, Debug)]
pub struct ExploreResult {
    /// All evaluated design points, in enumeration order
    /// (style-major, then allocation, then width).
    pub points: Vec<DesignPoint>,
    /// The shared absolute clock-period grid used for the error axis.
    pub ts_grid: Vec<u64>,
}

impl ExploreResult {
    /// The Pareto-frontier points, in enumeration order.
    #[must_use]
    pub fn frontier(&self) -> Vec<&DesignPoint> {
        self.points.iter().filter(|p| p.pareto).collect()
    }
}

/// Builds the canonical `points`-point absolute `Ts` grid over
/// `[1, span]` and deduplicates it.
///
/// The raw grid is `(span * i).div_ceil(points)` for `i = 1..=points`,
/// clamped to at least 1. When `span < points` the integer division
/// repeats values; a sweep over such a grid would silently double-count
/// those periods, and the batch sampler's
/// [`try_sweep`](ola_netlist::batch::TsSweep::try_sweep) rejects them
/// with [`DuplicateTs`](ola_netlist::BatchError::DuplicateTs). Every
/// grid producer in this crate routes through this helper so the
/// duplicates never reach the engine.
#[must_use]
pub fn ts_grid(span: u64, points: usize) -> Vec<u64> {
    let n = points.max(1) as u64;
    let mut grid: Vec<u64> = (1..=n).map(|i| (span * i).div_ceil(n).max(1)).collect();
    grid.dedup();
    grid
}

struct Variant {
    style: Style,
    allocation: AdderStructure,
    width: usize,
    mac_len: Option<usize>,
    datapath: SynthesizedDatapath,
    area: AreaReport,
    critical: u64,
    rated_mhz: Option<f64>,
}

/// Compiles one variant: [`optimize`] at `width` digits, elaborate in
/// `style`, then STA and area.
fn compile_variant(
    dfg: &Dfg,
    style: Style,
    allocation: AdderStructure,
    width: usize,
    mac_len: Option<usize>,
    frac_digits: i32,
    delay: &FpgaDelay,
) -> Variant {
    let opt = optimize(&dfg.with_input_digits(width), allocation);
    let opts = ElabOptions::new(style).with_frac_digits(frac_digits);
    let datapath = elaborate(&opt, &opts);
    let report = analyze(&datapath.netlist, delay);
    let area = area::estimate(&datapath.netlist, 4);
    Variant {
        style,
        allocation,
        width,
        mac_len,
        area,
        critical: report.critical_path(),
        rated_mhz: report.rated_frequency(),
        datapath,
    }
}

fn check_axes(cfg: &ExploreConfig) {
    assert!(!cfg.widths.is_empty(), "need at least one width");
    assert!(!cfg.styles.is_empty(), "need at least one style");
    assert!(!cfg.allocations.is_empty(), "need at least one allocation");
    assert!(cfg.ts_points > 0, "need at least one Ts point");
    assert!(cfg.samples > 0, "need at least one sample");
}

/// Phases 2–3 of the explorer: one shared absolute Ts grid spanning the
/// worst rated period across *all* variants (so error curves are
/// comparable), empirical overclocking error per variant, and Pareto
/// marking.
fn evaluate_variants(variants: &[Variant], cfg: &ExploreConfig) -> ExploreResult {
    let delay = FpgaDelay::default();
    let worst = variants.iter().map(|v| v.critical).max().unwrap_or(0).max(1);
    let grid = ts_grid(worst, cfg.ts_points);

    let mut points = Vec::with_capacity(variants.len());
    for (k, v) in variants.iter().enumerate() {
        let (mean_error, worst_violation_rate, certified_skipped) =
            if v.datapath.netlist.logic_gate_count() == 0 {
                // Untimed variant (typically folded to constants): its
                // outputs are always settled — nothing to simulate, and
                // its rated frequency stays `None` instead of panicking.
                (0.0, 0.0, 0)
            } else {
                let (curve, stats) = variant_error_curve(
                    &v.datapath,
                    &delay,
                    &grid,
                    cfg.samples,
                    cfg.seed.wrapping_add(k as u64),
                    cfg.backend,
                );
                let mean =
                    curve.mean_abs_error.iter().sum::<f64>() / curve.mean_abs_error.len() as f64;
                let worst_v = curve.violation_rate.iter().copied().fold(0.0f64, f64::max);
                (mean, worst_v, stats.sta_skipped_points)
            };
        points.push(DesignPoint {
            style: v.style,
            allocation: v.allocation,
            width: v.width,
            area: v.area,
            rated_period: (v.critical > 0).then_some(v.critical),
            rated_mhz: v.rated_mhz,
            mean_error,
            worst_violation_rate,
            certified_skipped,
            pareto: false,
            mac_len: v.mac_len,
        });
    }

    mark_pareto(&mut points);

    let reg = ola_core::obs::registry();
    reg.counter("ola.synth.variants_explored").add(points.len() as u64);
    reg.counter("ola.synth.pareto_points").add(points.iter().filter(|p| p.pareto).count() as u64);
    reg.counter("ola.synth.certified_points_skipped")
        .add(points.iter().map(|p| p.certified_skipped).sum());

    ExploreResult { points, ts_grid: grid }
}

/// Enumerates and evaluates the design space of `dfg`.
///
/// # Panics
///
/// Panics if any axis of `cfg` is empty, `cfg.frac_digits < 3`,
/// `cfg.ts_points == 0`, or `cfg.samples == 0`.
#[must_use]
pub fn explore(dfg: &Dfg, cfg: &ExploreConfig) -> ExploreResult {
    check_axes(cfg);
    let _span = ola_core::obs::span("synth.explore");
    let delay = FpgaDelay::default();

    // Phase 1: compile every variant, collect STA + area.
    let mut variants = Vec::new();
    for &style in &cfg.styles {
        for &allocation in &cfg.allocations {
            for &width in &cfg.widths {
                variants.push(compile_variant(
                    dfg,
                    style,
                    allocation,
                    width,
                    None,
                    cfg.frac_digits,
                    &delay,
                ));
            }
        }
    }
    evaluate_variants(&variants, cfg)
}

/// Explores the fused-MAC design space: style × adder allocation × width
/// × accumulation length, over the canonical FIR inner product
/// ([`crate::dsp::fir_bank`], fused flavour) at each length in `lens`.
///
/// All lengths share one absolute Ts grid (spanning the worst rated
/// period across the whole sweep), so the error axis is comparable both
/// across widths *and* across accumulation depths — which is what makes
/// the length axis an actual trade-off dimension rather than a family of
/// incomparable frontiers. Rows carry
/// [`mac_len`](DesignPoint::mac_len)` = Some(len)` and labels like
/// `online/tree/w8/k16`.
///
/// # Panics
///
/// Panics if `lens` is empty or any axis of `cfg` is empty (as
/// [`explore`]).
#[must_use]
pub fn explore_mac(cfg: &ExploreConfig, lens: &[usize]) -> ExploreResult {
    check_axes(cfg);
    assert!(!lens.is_empty(), "need at least one accumulation length");
    let _span = ola_core::obs::span("synth.explore_mac");
    let delay = FpgaDelay::default();

    let mut variants = Vec::new();
    for &len in lens {
        let dfg = crate::dsp::fir_bank(
            len,
            crate::dsp::MacFusion::Fused,
            crate::ir::InputFmt { msd_pos: 1, digits: cfg.widths[0] },
        );
        for &style in &cfg.styles {
            for &allocation in &cfg.allocations {
                for &width in &cfg.widths {
                    variants.push(compile_variant(
                        &dfg,
                        style,
                        allocation,
                        width,
                        Some(len),
                        cfg.frac_digits,
                        &delay,
                    ));
                }
            }
        }
    }
    ola_core::obs::registry().counter("ola.synth.mac.explored").add(variants.len() as u64);
    evaluate_variants(&variants, cfg)
}

/// Runs the shared-engine empirical sweep for one synthesized variant:
/// random in-range port values in, per-port exact value comparison out.
///
/// Public so single-variant consumers (the `ola-serve` sweep query) share
/// the explorer's exact sampling discipline — same draw encoding, same
/// judge — and therefore produce curves comparable to explorer rows.
///
/// # Panics
///
/// Panics if the datapath has no timed logic (callers check
/// `logic_gate_count() > 0` first, as [`explore`] does).
#[must_use]
pub fn variant_error_curve(
    dp: &SynthesizedDatapath,
    delay: &FpgaDelay,
    ts_grid: &[u64],
    samples: usize,
    seed: u64,
    backend: SimBackend,
) -> (ola_core::empirical::GateLevelCurve, BackendStats) {
    let wires = dp.output_wires();
    let in_shapes: Vec<PortShape> = dp.inputs.iter().map(|p| p.shape).collect();
    let draw = move |rng: &mut ChaCha8Rng| -> Vec<bool> {
        let mut bits = Vec::new();
        for &shape in &in_shapes {
            match shape {
                PortShape::Online { digits, .. } => {
                    let bound = (1i128 << digits) - 1;
                    let v = Q::new(rng.gen_range(-bound..=bound), digits as u32);
                    let sd = SdNumber::from_value(v, digits).expect("in range");
                    for d in &sd {
                        bits.push(d.to_bits().0);
                    }
                    for d in &sd {
                        bits.push(d.to_bits().1);
                    }
                }
                PortShape::Tc { width, .. } => {
                    let bound = (1i128 << (width - 1)) - 1;
                    let units = rng.gen_range(-bound..=bound);
                    for i in 0..width {
                        bits.push(units >> i & 1 == 1);
                    }
                }
            }
        }
        bits
    };
    let ports = dp.outputs.len();
    let judge = |sampled: &[bool], settled: &[bool]| -> (bool, f64) {
        let mut err = Q::ZERO;
        for port in 0..ports {
            err += (dp.decode_output(port, sampled) - dp.decode_output(port, settled)).abs();
        }
        (!err.is_zero(), err.to_f64().abs())
    };
    datapath_gate_level_curve_with(
        &dp.netlist,
        &wires,
        delay,
        ts_grid,
        samples,
        seed,
        backend,
        StaGate::On,
        draw,
        judge,
    )
}

/// Marks the non-dominated points in (LUT area, rated period, mean
/// error), all minimized. Untimed points (no rated period) are kept as
/// rows but never enter the frontier.
fn mark_pareto(points: &mut [DesignPoint]) {
    let n = points.len();
    for i in 0..n {
        let Some(pi) = points[i].rated_period else { continue };
        let dominated = (0..n).any(|j| {
            if i == j {
                return false;
            }
            let Some(pj) = points[j].rated_period else { return false };
            let le = points[j].area.luts <= points[i].area.luts
                && pj <= pi
                && points[j].mean_error <= points[i].mean_error;
            let lt = points[j].area.luts < points[i].area.luts
                || pj < pi
                || points[j].mean_error < points[i].mean_error;
            le && lt
        });
        points[i].pareto = !dominated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::InputFmt;
    use crate::parser::parse_dfg;

    fn small_cfg() -> ExploreConfig {
        ExploreConfig { widths: vec![2, 3], ts_points: 4, samples: 6, ..ExploreConfig::default() }
    }

    #[test]
    fn ts_grid_spans_evenly_without_duplicates() {
        assert_eq!(ts_grid(100, 4), vec![25, 50, 75, 100]);
        assert_eq!(ts_grid(12, 12), (1..=12).collect::<Vec<u64>>());
    }

    #[test]
    fn ts_grid_dedupes_when_span_is_below_point_count() {
        // span=3, points=8: the raw div_ceil grid repeats 1, 2, and 3.
        assert_eq!(ts_grid(3, 8), vec![1, 2, 3]);
        assert_eq!(ts_grid(1, 5), vec![1]);
        for span in 1..40u64 {
            for points in 1..20usize {
                let g = ts_grid(span, points);
                assert!(g.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
                assert_eq!(*g.last().expect("nonempty"), span.max(1));
            }
        }
    }

    #[test]
    fn explorer_produces_a_nonempty_frontier() {
        let dfg = parse_dfg("y = a * g + b", InputFmt { msd_pos: 1, digits: 2 }).expect("valid");
        let res = explore(&dfg, &small_cfg());
        assert_eq!(res.points.len(), 2 * 3 * 2);
        assert!(!res.frontier().is_empty(), "at least one non-dominated point");
        for p in &res.points {
            assert!(p.rated_period.is_some(), "timed variants have a rated period");
            assert!(p.area.luts > 0);
        }
    }

    #[test]
    fn constant_folded_datapath_yields_untimed_points_without_panicking() {
        // The whole program folds to constants: no timed logic anywhere.
        let dfg = parse_dfg("y = 0.5 * 0.25 + 0.125", InputFmt::default()).expect("valid");
        let res = explore(
            &dfg,
            &ExploreConfig { widths: vec![4], ts_points: 3, samples: 4, ..Default::default() },
        );
        assert!(!res.points.is_empty());
        for p in &res.points {
            assert_eq!(p.rated_period, None, "constants have no critical path");
            assert_eq!(p.rated_mhz, None, "rated frequency propagates as None");
            assert_eq!(p.mean_error, 0.0);
            assert!(!p.pareto, "untimed points stay off the frontier");
        }
    }

    #[test]
    fn pareto_marking_rejects_dominated_points() {
        let mk = |luts: usize, period: u64, err: f64| DesignPoint {
            style: Style::Online,
            allocation: AdderStructure::BalancedTree,
            width: 4,
            area: AreaReport { luts, slices: luts.div_ceil(4), gates: luts, inputs: 1 },
            rated_period: Some(period),
            rated_mhz: Some(1.0e6 / period as f64),
            mean_error: err,
            worst_violation_rate: 0.0,
            certified_skipped: 0,
            pareto: false,
            mac_len: None,
        };
        let mut pts = vec![mk(10, 100, 0.5), mk(20, 200, 0.6), mk(5, 300, 0.1)];
        mark_pareto(&mut pts);
        assert!(pts[0].pareto);
        assert!(!pts[1].pareto, "dominated by the first point");
        assert!(pts[2].pareto);
    }

    #[test]
    fn mac_exploration_sweeps_the_accumulation_axis() {
        let cfg = ExploreConfig {
            widths: vec![3],
            allocations: vec![AdderStructure::BalancedTree],
            ts_points: 4,
            samples: 6,
            ..ExploreConfig::default()
        };
        let res = explore_mac(&cfg, &[2, 4]);
        // 2 lens × 2 styles × 1 allocation × 1 width.
        assert_eq!(res.points.len(), 4);
        for p in &res.points {
            assert!(p.mac_len.is_some());
            assert!(p.label().contains("/k"), "label {} carries the length", p.label());
            assert!(p.rated_period.is_some());
        }
        // Deeper accumulation means strictly more logic at equal width.
        let luts = |len: usize, style: Style| {
            res.points
                .iter()
                .find(|p| p.mac_len == Some(len) && p.style == style)
                .expect("row exists")
                .area
                .luts
        };
        for style in [Style::Online, Style::Conventional] {
            assert!(luts(4, style) > luts(2, style));
        }
        assert!(!res.frontier().is_empty());
    }

    #[test]
    fn exploration_is_deterministic() {
        let dfg = parse_dfg("y = a * g + b", InputFmt { msd_pos: 1, digits: 2 }).expect("valid");
        let cfg = small_cfg();
        let a = explore(&dfg, &cfg);
        let b = explore(&dfg, &cfg);
        for (x, y) in a.points.iter().zip(&b.points) {
            assert_eq!(x.mean_error.to_bits(), y.mean_error.to_bits());
            assert_eq!(x.certified_skipped, y.certified_skipped);
        }
    }
}
