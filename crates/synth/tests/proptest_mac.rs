//! Property-based tests for the fused online MAC subsystem: random
//! inner-product DAGs (random accumulation lengths, operand widths, and
//! fixed-point positions, including MACs of MACs) must survive every
//! pass and both elaborations bit-true against the reference evaluators,
//! and the fused MAC netlist must be provably equivalent to the
//! tree-of-multiplies netlist at settlement via the staged equivalence
//! checker.

use ola_redundant::{BsVector, Q};
use ola_synth::{
    allocate_adders, constant_fold, cse, elaborate, eliminate_dead, optimize,
    prove_pass_equivalence, AdderStructure, Dfg, ElabOptions, InputFmt, NodeId, Style,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A bounded random inner-product DAG: input formats, raw operand draws
/// for each MAC term (taken modulo the pool size, so every spec is valid
/// by construction), an optional second accumulation level, and the
/// value-draw seed.
#[derive(Clone, Debug)]
struct MacSpec {
    inputs: Vec<InputFmt>,
    terms: Vec<(usize, usize)>,
    outer_terms: Vec<(usize, usize)>,
    consts: Vec<(i128, u32)>,
    seed: u64,
    frac: i32,
}

fn fmt_strategy() -> impl Strategy<Value = InputFmt> {
    (-1i32..=2, 2usize..=4).prop_map(|(msd_pos, digits)| InputFmt { msd_pos, digits })
}

fn mac_strategy() -> impl Strategy<Value = MacSpec> {
    (
        prop::collection::vec(fmt_strategy(), 1..=3),
        prop::collection::vec((0usize..64, 0usize..64), 1..=5),
        prop::collection::vec((0usize..64, 0usize..64), 0..=2),
        prop::collection::vec((-9i128..=9, 0u32..=3), 0..=2),
        any::<u64>(),
        3i32..=5,
    )
        .prop_map(|(inputs, terms, outer_terms, consts, seed, frac)| MacSpec {
            inputs,
            terms,
            outer_terms,
            consts,
            seed,
            frac,
        })
}

fn tc_width(d: &Dfg, id: NodeId) -> usize {
    d.tc_formats()[id.index()].0
}

/// Builds the fused graph: a MAC over a random operand pool (inputs plus
/// a few constants), optionally accumulated again by a second MAC level
/// when the widths leave room under the conventional array cap.
fn build_fused(spec: &MacSpec) -> Dfg {
    let mut d = Dfg::new();
    let mut pool: Vec<NodeId> =
        spec.inputs.iter().enumerate().map(|(i, &fmt)| d.input(&format!("x{i}"), fmt)).collect();
    for &(num, scale) in &spec.consts {
        pool.push(d.constant(Q::new(num, scale)));
    }
    let pick =
        |pool: &[NodeId], raw: (usize, usize)| (pool[raw.0 % pool.len()], pool[raw.1 % pool.len()]);
    let terms: Vec<(NodeId, NodeId)> = spec.terms.iter().map(|&t| pick(&pool, t)).collect();
    let m = d.mac(&terms);
    let out = if spec.outer_terms.is_empty() {
        m
    } else {
        pool.push(m);
        let outer: Vec<(NodeId, NodeId)> = spec
            .outer_terms
            .iter()
            .map(|&t| pick(&pool, t))
            .filter(|&(a, b)| tc_width(&d, a).max(tc_width(&d, b)) <= 14)
            .collect();
        if outer.is_empty() {
            m
        } else {
            let m2 = d.mac(&outer);
            d.add(m, m2)
        }
    };
    d.mark_output("y", out);
    d
}

/// Builds the *unfused* counterpart of the same computation: every MAC
/// term becomes one `Mul` node and the products fold through a balanced
/// `Add` tree, in the same accumulation order.
fn build_unfused(spec: &MacSpec) -> Dfg {
    let mut d = Dfg::new();
    let mut pool: Vec<NodeId> =
        spec.inputs.iter().enumerate().map(|(i, &fmt)| d.input(&format!("x{i}"), fmt)).collect();
    for &(num, scale) in &spec.consts {
        pool.push(d.constant(Q::new(num, scale)));
    }
    let pick =
        |pool: &[NodeId], raw: (usize, usize)| (pool[raw.0 % pool.len()], pool[raw.1 % pool.len()]);
    let tree = |d: &mut Dfg, mut terms: Vec<NodeId>| -> NodeId {
        while terms.len() > 1 {
            let mut next = Vec::with_capacity(terms.len().div_ceil(2));
            let mut it = terms.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(d.add(a, b)),
                    None => next.push(a),
                }
            }
            terms = next;
        }
        terms[0]
    };
    let prods: Vec<NodeId> = spec
        .terms
        .iter()
        .map(|&t| {
            let (a, b) = pick(&pool, t);
            d.mul(a, b)
        })
        .collect();
    let m = tree(&mut d, prods);
    let out = if spec.outer_terms.is_empty() {
        m
    } else {
        pool.push(m);
        // Mirror build_fused's width guard against the same pool widths.
        let outer: Vec<(NodeId, NodeId)> = spec
            .outer_terms
            .iter()
            .map(|&t| pick(&pool, t))
            .filter(|&(a, b)| tc_width(&d, a).max(tc_width(&d, b)) <= 14)
            .collect();
        if outer.is_empty() {
            m
        } else {
            let prods2: Vec<NodeId> = outer.iter().map(|&(a, b)| d.mul(a, b)).collect();
            let m2 = tree(&mut d, prods2);
            d.add(m, m2)
        }
    };
    d.mark_output("y", out);
    d
}

fn random_tc_inputs(d: &Dfg, rng: &mut ChaCha8Rng) -> Vec<Q> {
    d.inputs()
        .iter()
        .map(|&(_, _, fmt)| {
            let frac = fmt.msd_pos + fmt.digits as i32 - 1;
            let bound = 1i128 << fmt.digits;
            let units = rng.gen_range(-bound..bound);
            if frac >= 0 {
                Q::new(units, frac as u32)
            } else {
                Q::new(units, 0) << (-frac) as u32
            }
        })
        .collect()
}

/// Raw `(p, n)` digit draws, so non-canonical encodings (including the
/// `(1, 1)` zero) flow through every prefix window of the fused MAC.
fn random_online_inputs(d: &Dfg, rng: &mut ChaCha8Rng) -> Vec<BsVector> {
    d.inputs()
        .iter()
        .map(|&(_, _, fmt)| {
            let mut v = BsVector::zero(fmt.msd_pos, fmt.digits);
            for i in 0..fmt.digits {
                v.set_bits(fmt.msd_pos + i as i32, rng.gen(), rng.gen());
            }
            v
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random inner-product DAGs lower conventionally to exactly the
    /// IR's rational semantics.
    #[test]
    fn mac_dags_lower_conventionally_to_exact_semantics(spec in mac_strategy()) {
        let dfg = build_fused(&spec);
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Conventional));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        for _ in 0..4 {
            let ins = random_tc_inputs(&dfg, &mut rng);
            let want = dfg.eval_exact(&ins);
            let vals = dp.netlist.eval(&dp.encode_inputs_tc(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            prop_assert_eq!(&dp.decode_output(0, &bits), &want[0], "inputs {:?}", ins);
        }
    }

    /// Random inner-product DAGs lower online bit-true against
    /// `eval_online`, digit plane for digit plane — and, because the
    /// fused accumulator never digitizes, the settled *value* equals the
    /// exact semantics too.
    #[test]
    fn mac_dags_lower_online_bit_true_and_settled_exact(spec in mac_strategy()) {
        let dfg = build_fused(&spec);
        let dp = elaborate(&dfg, &ElabOptions::new(Style::Online).with_frac_digits(spec.frac));
        let wires = dp.output_wires();
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x9e37_79b9);
        for _ in 0..4 {
            let ins = random_online_inputs(&dfg, &mut rng);
            let want = dfg.eval_online(&ins, spec.frac);
            let vals = dp.netlist.eval(&dp.encode_inputs_online(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            let got = dp.decode_output_bs(0, &bits);
            prop_assert_eq!(&got, &want[0], "inputs {:?}", ins);
            let exact = dfg.eval_exact(&ins.iter().map(BsVector::value).collect::<Vec<_>>());
            prop_assert_eq!(got.value(), exact[0], "fused MACs are settled exact");
        }
    }

    /// Every pass — individually and composed through `optimize` —
    /// preserves the exact semantics of MAC graphs.
    #[test]
    fn passes_preserve_mac_semantics(spec in mac_strategy()) {
        let dfg = build_fused(&spec);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x51f1);
        let variants: Vec<(&str, Dfg)> = vec![
            ("constant_fold", constant_fold(&dfg)),
            ("cse", cse(&dfg)),
            ("eliminate_dead", eliminate_dead(&dfg)),
            ("alloc/tree", allocate_adders(&dfg, AdderStructure::BalancedTree)),
            ("optimize/chain", optimize(&dfg, AdderStructure::LinearChain)),
            ("optimize/tree", optimize(&dfg, AdderStructure::BalancedTree)),
            ("optimize/online-chain", optimize(&dfg, AdderStructure::OnlineChained)),
        ];
        for _ in 0..4 {
            let ins = random_tc_inputs(&dfg, &mut rng);
            let want = dfg.eval_exact(&ins);
            for (name, v) in &variants {
                prop_assert_eq!(&v.eval_exact(&ins), &want, "pass {} inputs {:?}", name, ins);
            }
        }
    }

    /// The headline equivalence: the fused-MAC netlist computes the same
    /// settled values as the tree-of-multiplies netlist, *proved* by the
    /// staged equivalence checker (both lowered in the conventional
    /// domain, where both are exact).
    #[test]
    fn fused_mac_provably_equals_tree_of_multiplies_at_settlement(spec in mac_strategy()) {
        let fused = build_fused(&spec);
        let unfused = build_unfused(&spec);
        let verdict = prove_pass_equivalence(&fused, &unfused)
            .expect("mac widths stay under the conventional caps");
        prop_assert!(verdict.is_equivalent(), "{:?}", verdict);
    }

    /// Optimized MAC graphs still elaborate bit-true in both styles.
    #[test]
    fn optimized_mac_dags_still_elaborate_bit_true(spec in mac_strategy()) {
        let dfg = build_fused(&spec);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0xabcd);
        let opt = optimize(&dfg, AdderStructure::BalancedTree);
        // Conventional: against the original graph's exact semantics.
        let dp = elaborate(&opt, &ElabOptions::new(Style::Conventional));
        let wires = dp.output_wires();
        for _ in 0..2 {
            let ins = random_tc_inputs(&dfg, &mut rng);
            let want = dfg.eval_exact(&ins);
            let vals = dp.netlist.eval(&dp.encode_inputs_tc(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            prop_assert_eq!(&dp.decode_output(0, &bits), &want[0], "inputs {:?}", ins);
        }
        // Online: against the optimized graph's own bit-level reference.
        let dp = elaborate(&opt, &ElabOptions::new(Style::Online).with_frac_digits(spec.frac));
        let wires = dp.output_wires();
        for _ in 0..2 {
            let ins = random_online_inputs(&opt, &mut rng);
            let want = opt.eval_online(&ins, spec.frac);
            let vals = dp.netlist.eval(&dp.encode_inputs_online(&ins));
            let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
            prop_assert_eq!(&dp.decode_output_bs(0, &bits), &want[0], "inputs {:?}", ins);
        }
    }
}
