//! Property-based soundness of the abstract interpreter
//! ([`ola_synth::absint`]): on random dataflow programs, the certified
//! sampling bounds must dominate the error the gate-level batch engine
//! actually measures, at every point of the Ts grid, for both
//! implementation styles. This is the blanket version of the hand-picked
//! kernels in the unit tests — any random DAG whose bound is ever beaten
//! by a measurement is an unsoundness in the inaccurate-adder model.

// Integration-test helpers sit outside `#[test]` fns, so clippy's
// `allow-unwrap-in-tests` doesn't reach them; a loud panic is still the
// right failure mode here.
#![allow(clippy::unwrap_used)]

use ola_netlist::{analyze, FpgaDelay};
use ola_redundant::{BsVector, SdNumber, Q};
use ola_synth::{
    elaborate, interpret, optimize, parse_dfg, sampling_bounds, variant_error_curve,
    AdderStructure, ElabOptions, InputFmt, PortShape, Style, SynthesizedDatapath,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};

/// Renders a random dyadic coefficient `k/8` as an exact literal the
/// parser accepts (`0.1`-style inexact literals are rejected by design).
fn coeff(k: i32) -> String {
    format!("({})", f64::from(k) / 8.0)
}

/// A recipe for one random expression node: (op selector, two operand
/// selectors, coefficient selector).
type ExprRecipe = (u8, u8, u8, i8);

/// Folds recipes over the leaves `a`, `b`, `c` into a random expression
/// DAG (rendered as text, so shared subexpressions duplicate — the
/// parser rebuilds the sharing via the bound intermediate in the test's
/// program). The operator set — adds, subs, constant multiplications —
/// is what every style elaborates at small widths; the recipe count stays
/// low enough that conventional operand widths clear the Baugh–Wooley
/// 31-bit cap.
fn build_expr(recipes: &[ExprRecipe]) -> String {
    let mut exprs: Vec<String> = vec!["a".to_string(), "b".to_string(), "c".to_string()];
    for &(op, x, y, k) in recipes {
        let pick = |s: u8| exprs[s as usize % exprs.len()].clone();
        let k = i32::from(k).rem_euclid(7) + 1; // 1..=7, never zero
        let e = match op % 3 {
            0 => format!("({} + {})", pick(x), pick(y)),
            1 => format!("({} - {})", pick(x), pick(y)),
            _ => format!("({} * {})", pick(x), coeff(k)),
        };
        exprs.push(e);
    }
    exprs.last().expect("leaves are nonempty").clone()
}

fn expr() -> impl Strategy<Value = String> {
    prop::collection::vec((any::<u8>(), any::<u8>(), any::<u8>(), any::<i8>()), 1..5)
        .prop_map(|rs| build_expr(&rs))
}

proptest! {
    // Each case elaborates and simulates two gate-level datapaths, so
    // the case count stays deliberately small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For a random two-output program (sharing a common subexpression,
    /// so the graph is a DAG rather than a tree), the certified sampling
    /// bound dominates the measured mean error at every Ts for both
    /// styles, and collapses to zero at the critical path.
    #[test]
    fn sampling_bounds_dominate_measured_error(
        e1 in expr(),
        e2 in expr(),
        digits in 3usize..5,
    ) {
        let src = format!("t = {e1}\ny = t + {e2}\nz = t - ({e2})");
        let dfg = parse_dfg(&src, InputFmt { msd_pos: 1, digits }).unwrap();
        let opt = optimize(&dfg, AdderStructure::BalancedTree);
        let delay = FpgaDelay::default();
        for style in [Style::Online, Style::Conventional] {
            let dp = elaborate(&opt, &ElabOptions::new(style));
            // An all-constant draw folds to zero gates: nothing to time.
            if dp.netlist.logic_gate_count() == 0 {
                continue;
            }
            let critical = analyze(&dp.netlist, &delay).critical_path().max(1);
            let points = 6u64;
            let ts_grid: Vec<u64> =
                (1..=points).map(|i| (critical * i).div_ceil(points).max(1)).collect();
            let bounds = sampling_bounds(&dp, &delay, &ts_grid).unwrap();
            let (curve, _) = variant_error_curve(
                &dp,
                &delay,
                &ts_grid,
                16,
                0xAB5_1147 ^ digits as u64,
                ola_core::SimBackend::Auto,
            );
            for (k, &measured) in curve.mean_abs_error.iter().enumerate() {
                let bound = bounds.total_f64(k);
                prop_assert!(
                    measured <= bound + 1e-12,
                    "{} Ts={}: measured {measured} > certified {bound} ({src})",
                    style.name(),
                    ts_grid[k],
                );
            }
            // The last grid point is the critical path: fully settled,
            // so the certified bound must be exactly zero.
            prop_assert!(
                bounds.total_f64(ts_grid.len() - 1) == 0.0,
                "{}: nonzero bound at the critical path ({src})",
                style.name(),
            );
        }
    }

    /// The interpreter's *settled* bound dominates the real thing: a
    /// fully settled gate-level evaluation of either style decodes to
    /// within `settled_error_bounds()[0]` of the IR-level exact value,
    /// on random input values.
    #[test]
    fn settled_bounds_cover_decoded_settled_outputs(
        e1 in expr(),
        digits in 3usize..5,
        seed in any::<u64>(),
    ) {
        // `+ a` guarantees at least one primary input survives folding.
        let src = format!("y = {e1} + a");
        let dfg = parse_dfg(&src, InputFmt { msd_pos: 1, digits }).unwrap();
        let opt = optimize(&dfg, AdderStructure::BalancedTree);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let limit = (1i128 << digits) - 1;
        for _ in 0..4 {
            let values: Vec<Q> = opt
                .inputs()
                .iter()
                .map(|_| Q::new(rng.gen_range(-limit..=limit), digits as u32))
                .collect();
            let exact = opt.eval_exact(&values)[0];
            for style in [Style::Online, Style::Conventional] {
                let bound = interpret(&opt, style).settled_error_bounds()[0];
                let dp = elaborate(&opt, &ElabOptions::new(style));
                let decoded = settle(&dp, &values, digits);
                let err = (decoded - exact).abs();
                prop_assert!(
                    err <= bound,
                    "{}: |{decoded:?} − {exact:?}| = {err:?} > settled bound {bound:?} ({src})",
                    style.name(),
                );
            }
        }
    }
}

/// Encodes `values` for the datapath's input discipline, evaluates the
/// netlist to settlement, and decodes output port 0.
fn settle(dp: &SynthesizedDatapath, values: &[Q], digits: usize) -> Q {
    let bits = match dp.inputs[0].shape {
        PortShape::Online { .. } => {
            let windows: Vec<BsVector> = values
                .iter()
                .map(|&v| BsVector::from_sd(&SdNumber::from_value(v, digits).unwrap()))
                .collect();
            dp.encode_inputs_online(&windows)
        }
        PortShape::Tc { .. } => dp.encode_inputs_tc(values),
    };
    let vals = dp.netlist.eval(&bits);
    let sampled: Vec<bool> = dp.output_wires().iter().map(|w| vals[w.index()]).collect();
    dp.decode_output(0, &sampled)
}
