//! Property-based tests for the datapath synthesis compiler: random
//! bounded-depth DAGs must elaborate to netlists that are bit-true
//! against the IR's reference evaluators in both styles, and every
//! optimization pass must preserve the exact semantics of every output.

use ola_redundant::{BsVector, Q};
use ola_synth::{
    allocate_adders, constant_fold, cse, elaborate, eliminate_dead, optimize, AdderStructure, Dfg,
    ElabOptions, InputFmt, NodeId, Style,
};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One random operation in a DAG spec. Operand slots are raw draws taken
/// modulo the number of already-built nodes, so every spec is a valid
/// DAG by construction.
#[derive(Clone, Debug)]
struct OpSpec {
    kind: u8,
    a: usize,
    b: usize,
    num: i128,
    scale: u32,
}

/// A bounded random DAG: input formats, a topologically ordered op list,
/// one extra output pick, plus the value-draw seed.
#[derive(Clone, Debug)]
struct DagSpec {
    inputs: Vec<InputFmt>,
    ops: Vec<OpSpec>,
    extra_output: usize,
    seed: u64,
    frac: i32,
}

fn fmt_strategy() -> impl Strategy<Value = InputFmt> {
    (-1i32..=2, 2usize..=4).prop_map(|(msd_pos, digits)| InputFmt { msd_pos, digits })
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    (0u8..6, 0usize..64, 0usize..64, -9i128..=9, 0u32..=3)
        .prop_map(|(kind, a, b, num, scale)| OpSpec { kind, a, b, num, scale })
}

fn dag_strategy() -> impl Strategy<Value = DagSpec> {
    (
        prop::collection::vec(fmt_strategy(), 1..=3),
        prop::collection::vec(op_strategy(), 1..=7),
        0usize..64,
        any::<u64>(),
        3i32..=5,
    )
        .prop_map(|(inputs, ops, extra_output, seed, frac)| DagSpec {
            inputs,
            ops,
            extra_output,
            seed,
            frac,
        })
}

/// Conventional operand width of `id` in the graph built so far; used to
/// keep random multiplies inside the Baugh–Wooley array's width cap.
fn tc_width(d: &Dfg, id: NodeId) -> usize {
    d.tc_formats()[id.index()].0
}

fn build(spec: &DagSpec) -> Dfg {
    let mut d = Dfg::new();
    let mut nodes: Vec<NodeId> =
        spec.inputs.iter().enumerate().map(|(i, &fmt)| d.input(&format!("x{i}"), fmt)).collect();
    for op in &spec.ops {
        let a = nodes[op.a % nodes.len()];
        let b = nodes[op.b % nodes.len()];
        let c = Q::new(op.num, op.scale);
        let node = match op.kind {
            0 => d.add(a, b),
            1 => d.sub(a, b),
            2 => d.neg(a),
            3 if tc_width(&d, a).max(tc_width(&d, b)) <= 20 => d.mul(a, b),
            3 => d.add(a, b), // too wide for the array cap: degrade to add
            4 => d.const_mul(c, a),
            _ => d.constant(c),
        };
        nodes.push(node);
    }
    let last = *nodes.last().expect("ops is non-empty");
    d.mark_output("y", last);
    let extra = nodes[spec.extra_output % nodes.len()];
    if extra != last {
        d.mark_output("z", extra);
    }
    d
}

/// Random exact input values, one per input port, inside each port's
/// two's-complement format.
fn random_tc_inputs(d: &Dfg, rng: &mut ChaCha8Rng) -> Vec<Q> {
    d.inputs()
        .iter()
        .map(|&(_, _, fmt)| {
            let frac = fmt.msd_pos + fmt.digits as i32 - 1;
            let bound = 1i128 << fmt.digits;
            let units = rng.gen_range(-bound..bound);
            if frac >= 0 {
                Q::new(units, frac as u32)
            } else {
                Q::new(units, 0) << (-frac) as u32
            }
        })
        .collect()
}

/// Random borrow-save input vectors, one per input port, matching each
/// port's window. Digits are raw `(p, n)` bit pairs, so non-canonical
/// encodings (including the `(1, 1)` zero) are exercised.
fn random_online_inputs(d: &Dfg, rng: &mut ChaCha8Rng) -> Vec<BsVector> {
    d.inputs()
        .iter()
        .map(|&(_, _, fmt)| {
            let mut v = BsVector::zero(fmt.msd_pos, fmt.digits);
            for i in 0..fmt.digits {
                v.set_bits(fmt.msd_pos + i as i32, rng.gen(), rng.gen());
            }
            v
        })
        .collect()
}

/// Asserts that `dp` (a conventional elaboration of `dfg`) computes
/// exactly `reference.eval_exact` on `trials` random input draws.
fn check_conventional(
    dfg: &Dfg,
    reference: &Dfg,
    rng: &mut ChaCha8Rng,
    trials: usize,
) -> Result<(), TestCaseError> {
    let dp = elaborate(dfg, &ElabOptions::new(Style::Conventional));
    let wires = dp.output_wires();
    for _ in 0..trials {
        let ins = random_tc_inputs(dfg, rng);
        let want = reference.eval_exact(&ins);
        let vals = dp.netlist.eval(&dp.encode_inputs_tc(&ins));
        let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
        for (pi, w) in want.iter().enumerate() {
            prop_assert_eq!(&dp.decode_output(pi, &bits), w, "port {} inputs {:?}", pi, ins);
        }
    }
    Ok(())
}

/// Asserts that the online elaboration of `dfg` is bit-identical to
/// `dfg.eval_online` — digit plane for digit plane, truncation included —
/// on `trials` random input draws.
fn check_online(
    dfg: &Dfg,
    frac: i32,
    rng: &mut ChaCha8Rng,
    trials: usize,
) -> Result<(), TestCaseError> {
    let dp = elaborate(dfg, &ElabOptions::new(Style::Online).with_frac_digits(frac));
    let wires = dp.output_wires();
    for _ in 0..trials {
        let ins = random_online_inputs(dfg, rng);
        let want = dfg.eval_online(&ins, frac);
        let vals = dp.netlist.eval(&dp.encode_inputs_online(&ins));
        let bits: Vec<bool> = wires.iter().map(|w| vals[w.index()]).collect();
        for (pi, w) in want.iter().enumerate() {
            prop_assert_eq!(&dp.decode_output_bs(pi, &bits), w, "port {} inputs {:?}", pi, ins);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Satellite (b), conventional half: random DAGs lower to
    /// two's-complement netlists that settle to the exact rational
    /// semantics of the IR.
    #[test]
    fn conventional_netlists_are_exact_on_random_dags(spec in dag_strategy()) {
        let dfg = build(&spec);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);
        check_conventional(&dfg, &dfg, &mut rng, 4)?;
    }

    /// Satellite (b), online half: random DAGs lower to borrow-save
    /// netlists bit-true against the IR's online reference evaluator —
    /// multiplier truncation and non-canonical digits included.
    #[test]
    fn online_netlists_are_bit_true_on_random_dags(spec in dag_strategy()) {
        let dfg = build(&spec);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x9e37_79b9);
        check_online(&dfg, spec.frac, &mut rng, 4)?;
    }

    /// Every pass — individually and composed through `optimize` with
    /// each adder structure — preserves `eval_exact` on every output.
    #[test]
    fn passes_preserve_exact_semantics(spec in dag_strategy()) {
        let dfg = build(&spec);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0x51f1);
        let variants: Vec<(&str, Dfg)> = vec![
            ("constant_fold", constant_fold(&dfg)),
            ("cse", cse(&dfg)),
            ("eliminate_dead", eliminate_dead(&dfg)),
            ("alloc/chain", allocate_adders(&dfg, AdderStructure::LinearChain)),
            ("alloc/tree", allocate_adders(&dfg, AdderStructure::BalancedTree)),
            ("optimize/chain", optimize(&dfg, AdderStructure::LinearChain)),
            ("optimize/tree", optimize(&dfg, AdderStructure::BalancedTree)),
            ("optimize/online-chain", optimize(&dfg, AdderStructure::OnlineChained)),
        ];
        for _ in 0..4 {
            let ins = random_tc_inputs(&dfg, &mut rng);
            let want = dfg.eval_exact(&ins);
            for (name, v) in &variants {
                prop_assert_eq!(&v.eval_exact(&ins), &want, "pass {} inputs {:?}", name, ins);
            }
        }
    }

    /// The composition theorem the explorer relies on: graphs that went
    /// through the full `optimize` pipeline still elaborate bit-true in
    /// both styles (conventional against the *original* graph's exact
    /// semantics; online against the optimized graph's own bit-level
    /// reference, since restructuring changes digit windows but not
    /// values).
    #[test]
    fn optimized_dags_still_elaborate_bit_true(spec in dag_strategy()) {
        let dfg = build(&spec);
        let mut rng = ChaCha8Rng::seed_from_u64(spec.seed ^ 0xabcd);
        for s in [AdderStructure::LinearChain, AdderStructure::BalancedTree] {
            let opt = optimize(&dfg, s);
            check_conventional(&opt, &dfg, &mut rng, 2)?;
            check_online(&opt, spec.frac, &mut rng, 2)?;
        }
    }
}
