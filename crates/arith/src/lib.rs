//! # ola-arith — online and conventional arithmetic operators
//!
//! The arithmetic layer of the `ola` workspace (reproduction of *"Datapath
//! Synthesis for Overclocking: Online Arithmetic for Latency-Accuracy
//! Trade-offs"*, DAC 2014):
//!
//! * [`online`] — MSD-first operators over the redundant signed-digit
//!   system: the digit-parallel online adder (Fig 2), the online multiplier
//!   recurrence (Algorithm 1) as golden / bit-true / stage-wave-timed
//!   models, and the digit-serial original.
//! * [`conventional`] — the two's-complement baselines the paper compares
//!   against: ripple-carry addition and array multiplication, whose
//!   LSB-first carry chains make overclocking errors land in the MSBs.
//! * [`synth`] — netlist generators for all of the above, ready for
//!   [`ola_netlist`]'s event-driven timing simulation, STA and area
//!   estimation.
//!
//! # Example
//!
//! ```
//! use ola_arith::online::{online_mult, Selection};
//! use ola_redundant::{Q, SdNumber};
//!
//! let x = SdNumber::from_value(Q::new(93, 8), 8)?;   //  93/256
//! let y = SdNumber::from_value(Q::new(-47, 8), 8)?;  // -47/256
//! let product = online_mult(&x, &y, Selection::default());
//! // Accurate to 3·2^-(N+2):
//! let err = (x.value() * y.value() - product.value()).abs();
//! assert!(err <= Q::new(3, 10));
//! # Ok::<(), ola_redundant::RangeError>(())
//! ```

pub mod conventional;
pub mod online;
pub mod synth;
