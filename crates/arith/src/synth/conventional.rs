//! Netlist generators for the conventional two's-complement baselines.
//!
//! These stand in for the Xilinx Core Generator operators of the paper's
//! "traditional arithmetic" design: a ripple-carry adder and a
//! (Baugh-Wooley) array multiplier. Both have LSB-first carry propagation,
//! so overclocking errors strike the most significant bits.

use crate::synth::bits::ripple_add;
use ola_netlist::cells::full_adder;
use ola_netlist::sta::prune_dead;
use ola_netlist::{NetId, Netlist};

/// A synthesized ripple-carry adder.
#[derive(Clone, Debug)]
pub struct RippleAdderCircuit {
    /// Netlist. Inputs: `a`, `b` (LSB-first). Outputs: `sum` (LSB-first,
    /// same width) and `cout`.
    pub netlist: Netlist,
    /// Operand bit width.
    pub width: usize,
}

/// Synthesizes a `width`-bit ripple-carry adder.
///
/// # Panics
///
/// Panics if `width == 0`.
#[must_use]
pub fn ripple_carry_adder(width: usize) -> RippleAdderCircuit {
    assert!(width > 0, "adder width must be positive");
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let zero = nl.constant(false);
    let (sum, cout) = ripple_add(&mut nl, &a, &b, zero);
    nl.set_output("sum", sum);
    nl.set_output("cout", vec![cout]);
    let nl = prune_dead(&nl).expect("generated netlists are DAGs");
    RippleAdderCircuit { netlist: nl, width }
}

/// A synthesized two's-complement array multiplier.
#[derive(Clone, Debug)]
pub struct ArrayMultiplierCircuit {
    /// Netlist. Inputs: `a`, `b` (LSB-first two's complement). Output:
    /// `product` (`2·width` bits, LSB-first two's complement).
    pub netlist: Netlist,
    /// Operand bit width.
    pub width: usize,
}

impl ArrayMultiplierCircuit {
    /// Encodes an operand pair as the simulator input vector.
    ///
    /// # Panics
    ///
    /// Panics if an operand does not fit `width` bits.
    #[must_use]
    pub fn encode_inputs(&self, a: i64, b: i64) -> Vec<bool> {
        let w = self.width;
        let lim = 1i64 << (w - 1);
        assert!(a >= -lim && a < lim && b >= -lim && b < lim, "operand out of range");
        let mut bits = Vec::with_capacity(2 * w);
        for i in 0..w {
            bits.push(a >> i & 1 == 1);
        }
        for i in 0..w {
            bits.push(b >> i & 1 == 1);
        }
        bits
    }

    /// Decodes a sampled product bus into a signed integer.
    #[must_use]
    pub fn decode_product(&self, bits: &[bool]) -> i64 {
        crate::synth::bits::decode_signed(bits)
    }
}

/// Synthesizes a `width × width → 2·width` two's-complement array
/// multiplier (modified Baugh-Wooley partial products, carry-save rows,
/// ripple column merge).
///
/// # Panics
///
/// Panics if `width == 0` or `width > 31`.
#[must_use]
pub fn array_multiplier(width: usize) -> ArrayMultiplierCircuit {
    assert!(width > 0 && width <= 31, "unsupported multiplier width");
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let product = array_multiplier_core(&mut nl, &a, &b);
    nl.set_output("product", product);
    let nl = prune_dead(&nl).expect("generated netlists are DAGs");
    ArrayMultiplierCircuit { netlist: nl, width }
}

/// Emits the Baugh-Wooley array for arbitrary operand nets (inputs or
/// constants); returns the `2·width` product bits, LSB first. Used by
/// [`array_multiplier`], the constant-coefficient MAC builder, and the
/// `ola-synth` elaborator.
///
/// # Panics
///
/// Panics if the operand widths differ.
pub fn array_multiplier_core(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    assert_eq!(a.len(), b.len(), "operand widths must match");
    let n = a.len();

    // Column bit lists for the 2n-bit product.
    let mut cols: Vec<Vec<NetId>> = vec![Vec::new(); 2 * n];

    // Modified Baugh-Wooley partial products:
    //   a_i b_j           for i, j < n−1 and for (n−1, n−1)
    //   NOT(a_i b_j)      when exactly one index is n−1
    //   +1 at columns n and 2n−1.
    for i in 0..n {
        for j in 0..n {
            let raw = nl.and(a[i], b[j]);
            let invert = (i == n - 1) ^ (j == n - 1);
            let pp = if invert { nl.not(raw) } else { raw };
            cols[i + j].push(pp);
        }
    }
    if n > 1 {
        let one = nl.constant(true);
        cols[n].push(one);
        cols[2 * n - 1].push(one);
    } else {
        // 1×1: a·b = a0 b0 with both correction ones landing at column 1.
        let one = nl.constant(true);
        cols[1].push(one);
        cols[1].push(one);
    }

    // Column-serial reduction, LSB first: full adders compress each column,
    // pushing carries into the next — the ripple behaviour of a real array.
    let zero = nl.constant(false);
    let mut product = Vec::with_capacity(2 * n);
    for c in 0..2 * n {
        while cols[c].len() > 1 {
            if cols[c].len() >= 3 {
                let x = cols[c].pop().expect("len ≥ 3");
                let y = cols[c].pop().expect("len ≥ 2");
                let z = cols[c].pop().expect("len ≥ 1");
                let (s, carry) = full_adder(nl, x, y, z);
                cols[c].push(s);
                if c + 1 < 2 * n {
                    cols[c + 1].push(carry);
                }
            } else {
                let x = cols[c].pop().expect("len ≥ 2");
                let y = cols[c].pop().expect("len ≥ 1");
                let s = nl.xor(x, y);
                let carry = nl.and(x, y);
                cols[c].push(s);
                if c + 1 < 2 * n {
                    cols[c + 1].push(carry);
                }
            }
        }
        product.push(cols[c].pop().unwrap_or(zero));
    }
    product
}

/// A synthesized carry-select adder.
#[derive(Clone, Debug)]
pub struct CarrySelectAdderCircuit {
    /// Netlist. Inputs: `a`, `b` (LSB-first). Outputs: `sum`, `cout`.
    pub netlist: Netlist,
    /// Operand bit width.
    pub width: usize,
    /// Select-block size.
    pub block: usize,
}

/// Synthesizes a `width`-bit carry-select adder with `block`-bit blocks:
/// each block computes both carry-in hypotheses with ripple adders and a
/// mux chain selects — the classic speed/area trade the vendor tools make.
/// Still LSB-first: overclocking it still breaks MSBs, just later.
///
/// # Panics
///
/// Panics if `width == 0` or `block == 0`.
#[must_use]
pub fn carry_select_adder(width: usize, block: usize) -> CarrySelectAdderCircuit {
    assert!(width > 0 && block > 0, "width and block must be positive");
    let mut nl = Netlist::new();
    let a = nl.input_bus("a", width);
    let b = nl.input_bus("b", width);
    let zero = nl.constant(false);
    let one = nl.constant(true);

    let mut sum = Vec::with_capacity(width);
    let mut carry = zero;
    let mut lo = 0usize;
    let mut first = true;
    while lo < width {
        let hi = (lo + block).min(width);
        if first {
            // First block: carry-in is known (0); plain ripple.
            let (s, c) = ripple_add(&mut nl, &a[lo..hi], &b[lo..hi], zero);
            sum.extend(s);
            carry = c;
            first = false;
        } else {
            let (s0, c0) = ripple_add(&mut nl, &a[lo..hi], &b[lo..hi], zero);
            let (s1, c1) = ripple_add(&mut nl, &a[lo..hi], &b[lo..hi], one);
            for (x0, x1) in s0.iter().zip(&s1) {
                let m = nl.mux(carry, *x1, *x0);
                sum.push(m);
            }
            carry = nl.mux(carry, c1, c0);
        }
        lo = hi;
    }
    nl.set_output("sum", sum);
    nl.set_output("cout", vec![carry]);
    let nl = prune_dead(&nl).expect("generated netlists are DAGs");
    CarrySelectAdderCircuit { netlist: nl, width, block }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_netlist::{analyze, simulate_from_zero, UnitDelay};

    #[test]
    fn ripple_adder_is_exact() {
        let circuit = ripple_carry_adder(5);
        for a in 0..32u64 {
            for b in 0..32u64 {
                let mut inputs = Vec::new();
                for i in 0..5 {
                    inputs.push(a >> i & 1 == 1);
                }
                for i in 0..5 {
                    inputs.push(b >> i & 1 == 1);
                }
                let vals = circuit.netlist.eval(&inputs);
                let mut sum = 0u64;
                for (i, net) in circuit.netlist.output("sum").iter().enumerate() {
                    if vals[net.index()] {
                        sum |= 1 << i;
                    }
                }
                if vals[circuit.netlist.output("cout")[0].index()] {
                    sum |= 1 << 5;
                }
                assert_eq!(sum, a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn adder_critical_path_grows_with_width() {
        let d4 = analyze(&ripple_carry_adder(4).netlist, &UnitDelay).critical_path();
        let d16 = analyze(&ripple_carry_adder(16).netlist, &UnitDelay).critical_path();
        assert!(d16 > 2 * d4, "ripple delay must grow linearly: {d4} vs {d16}");
    }

    #[test]
    fn array_multiplier_exhaustive_small_widths() {
        for width in 1..=4usize {
            let circuit = array_multiplier(width);
            let lim = 1i64 << (width - 1);
            for a in -lim..lim {
                for b in -lim..lim {
                    let inputs = circuit.encode_inputs(a, b);
                    let vals = circuit.netlist.eval(&inputs);
                    let bits: Vec<bool> =
                        circuit.netlist.output("product").iter().map(|n| vals[n.index()]).collect();
                    assert_eq!(circuit.decode_product(&bits), a * b, "width={width} a={a} b={b}");
                }
            }
        }
    }

    #[test]
    fn array_multiplier_random_width_8() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        let circuit = array_multiplier(8);
        for _ in 0..300 {
            let a = rng.gen_range(-128i64..128);
            let b = rng.gen_range(-128i64..128);
            let inputs = circuit.encode_inputs(a, b);
            let vals = circuit.netlist.eval(&inputs);
            let bits: Vec<bool> =
                circuit.netlist.output("product").iter().map(|n| vals[n.index()]).collect();
            assert_eq!(circuit.decode_product(&bits), a * b, "a={a} b={b}");
        }
    }

    #[test]
    fn overclocked_array_multiplier_errs_in_high_bits() {
        // Sample the multiplier mid-settling: the stale bits should include
        // high-significance positions (the salt-and-pepper mechanism).
        let circuit = array_multiplier(8);
        let inputs = circuit.encode_inputs(127, 127);
        let res = simulate_from_zero(&circuit.netlist, &UnitDelay, &inputs);
        let out = circuit.netlist.output("product");
        let settle = res.settle_time_of(out);
        assert!(settle > 0);
        let early: Vec<bool> = res.sample_bus(out, settle / 3);
        let correct: Vec<bool> = res.final_bus(out);
        let e = circuit.decode_product(&early);
        let c = circuit.decode_product(&correct);
        assert_eq!(c, 127 * 127);
        assert_ne!(e, c, "mid-settling sample must be wrong for worst case");
    }

    #[test]
    fn multiplier_settling_exceeds_adder_settling() {
        let add = analyze(&ripple_carry_adder(8).netlist, &UnitDelay).critical_path();
        let mul = analyze(&array_multiplier(8).netlist, &UnitDelay).critical_path();
        assert!(mul > add);
    }

    #[test]
    fn carry_select_adder_is_exact() {
        for (width, block) in [(8usize, 3usize), (10, 4), (6, 6), (7, 2)] {
            let circuit = carry_select_adder(width, block);
            use rand::{Rng, SeedableRng};
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
            for _ in 0..200 {
                let a: u64 = rng.gen_range(0..1u64 << width);
                let b: u64 = rng.gen_range(0..1u64 << width);
                let mut inputs = Vec::new();
                for i in 0..width {
                    inputs.push(a >> i & 1 == 1);
                }
                for i in 0..width {
                    inputs.push(b >> i & 1 == 1);
                }
                let vals = circuit.netlist.eval(&inputs);
                let mut sum = 0u64;
                for (i, net) in circuit.netlist.output("sum").iter().enumerate() {
                    if vals[net.index()] {
                        sum |= 1 << i;
                    }
                }
                if vals[circuit.netlist.output("cout")[0].index()] {
                    sum |= 1 << width;
                }
                assert_eq!(sum, a + b, "w={width} blk={block} a={a} b={b}");
            }
        }
    }

    #[test]
    fn carry_select_is_faster_than_ripple() {
        let ripple = analyze(&ripple_carry_adder(32).netlist, &UnitDelay).critical_path();
        let select = analyze(&carry_select_adder(32, 4).netlist, &UnitDelay).critical_path();
        assert!(select < ripple, "carry-select {select} should beat ripple {ripple}");
    }
}
