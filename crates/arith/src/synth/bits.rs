//! Little-endian two's-complement bit-vector gadgets over a [`Netlist`].
//!
//! Used for the short carry-propagate adders inside the online multiplier's
//! selection function and for the conventional baselines. All vectors are
//! LSB-first; the last bit is the sign.

use ola_netlist::cells::full_adder;
use ola_netlist::{NetId, Netlist};

/// Encodes the signed constant `k` as `width` bits.
///
/// # Panics
///
/// Panics if `k` does not fit `width` bits in two's complement.
pub fn encode_const(nl: &mut Netlist, k: i64, width: usize) -> Vec<NetId> {
    assert!((1..=63).contains(&width), "unsupported constant width {width}");
    assert!(
        k >= -(1 << (width - 1)) && k < (1 << (width - 1)),
        "constant {k} does not fit {width} bits"
    );
    (0..width).map(|i| nl.constant(k >> i & 1 == 1)).collect()
}

/// Sign-extends (or truncates) a vector to `width` bits.
pub fn sign_extend(nl: &mut Netlist, a: &[NetId], width: usize) -> Vec<NetId> {
    let sign = match a.last() {
        Some(&s) => s,
        None => nl.constant(false),
    };
    (0..width).map(|i| a.get(i).copied().unwrap_or(sign)).collect()
}

/// Ripple-carry addition of two equal-width vectors; returns
/// `(sum_bits, carry_out)`.
///
/// # Panics
///
/// Panics if the widths differ.
pub fn ripple_add(nl: &mut Netlist, a: &[NetId], b: &[NetId], cin: NetId) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), b.len(), "ripple_add operand widths differ");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&x, &y) in a.iter().zip(b) {
        let (s, c) = full_adder(nl, x, y, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Full-precision signed addition: result width `max(|a|, |b|) + 1`, never
/// wraps.
pub fn add_signed(nl: &mut Netlist, a: &[NetId], b: &[NetId]) -> Vec<NetId> {
    let width = a.len().max(b.len()) + 1;
    let ax = sign_extend(nl, a, width);
    let bx = sign_extend(nl, b, width);
    let zero = nl.constant(false);
    ripple_add(nl, &ax, &bx, zero).0
}

/// Signed addition of a constant: result width `|a| + 1`.
pub fn add_const(nl: &mut Netlist, a: &[NetId], k: i64) -> Vec<NetId> {
    let width = a.len() + 1;
    let kb = encode_const(nl, k, width);
    let ax = sign_extend(nl, a, width);
    let zero = nl.constant(false);
    ripple_add(nl, &ax, &kb, zero).0
}

/// `a ≥ k` for a signed vector and constant: the sign of `a − k` negated.
pub fn is_ge_const(nl: &mut Netlist, a: &[NetId], k: i64) -> NetId {
    let d = add_const(nl, a, -k);
    let sign = *d.last().expect("non-empty");
    nl.not(sign)
}

/// `a ≤ k` for a signed vector and constant: the sign of `a − (k+1)`.
pub fn is_le_const(nl: &mut Netlist, a: &[NetId], k: i64) -> NetId {
    let d = add_const(nl, a, -(k + 1));
    *d.last().expect("non-empty")
}

/// Per-bit three-way select: `sel_p ? a : (sel_n ? b : c)`, sign-extending
/// all operands to a common width.
pub fn mux3(
    nl: &mut Netlist,
    sel_p: NetId,
    a: &[NetId],
    sel_n: NetId,
    b: &[NetId],
    c: &[NetId],
) -> Vec<NetId> {
    let width = a.len().max(b.len()).max(c.len());
    let ax = sign_extend(nl, a, width);
    let bx = sign_extend(nl, b, width);
    let cx = sign_extend(nl, c, width);
    (0..width)
        .map(|i| {
            let inner = nl.mux(sel_n, bx[i], cx[i]);
            nl.mux(sel_p, ax[i], inner)
        })
        .collect()
}

/// Decodes a signed vector from simulated values (test/debug helper).
#[must_use]
pub fn decode_signed(bits: &[bool]) -> i64 {
    let mut v: i64 = 0;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            v |= 1 << i;
        }
    }
    if let Some(true) = bits.last() {
        v -= 1 << bits.len();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_vec(nl: &Netlist, inputs: &[bool], bits: &[NetId]) -> i64 {
        let vals = nl.eval(inputs);
        decode_signed(&bits.iter().map(|b| vals[b.index()]).collect::<Vec<_>>())
    }

    #[test]
    fn constants_encode_correctly() {
        for k in -8i64..8 {
            let mut nl = Netlist::new();
            let bits = encode_const(&mut nl, k, 4);
            assert_eq!(eval_vec(&nl, &[], &bits), k, "k={k}");
        }
    }

    #[test]
    fn add_signed_is_exact_over_small_ranges() {
        for a in -4i64..4 {
            for b in -4i64..4 {
                let mut nl = Netlist::new();
                let av = nl.input_bus("a", 3);
                let bv = nl.input_bus("b", 3);
                let s = add_signed(&mut nl, &av, &bv);
                let mut inputs = Vec::new();
                for i in 0..3 {
                    inputs.push(a >> i & 1 == 1);
                }
                for i in 0..3 {
                    inputs.push(b >> i & 1 == 1);
                }
                assert_eq!(eval_vec(&nl, &inputs, &s), a + b, "a={a} b={b}");
            }
        }
    }

    #[test]
    fn add_const_and_comparators() {
        for a in -8i64..8 {
            for k in -6i64..7 {
                let mut nl = Netlist::new();
                let av = nl.input_bus("a", 4);
                let s = add_const(&mut nl, &av, k);
                let ge = is_ge_const(&mut nl, &av, k);
                let le = is_le_const(&mut nl, &av, k);
                let inputs: Vec<bool> = (0..4).map(|i| a >> i & 1 == 1).collect();
                let vals = nl.eval(&inputs);
                assert_eq!(eval_vec(&nl, &inputs, &s), a + k);
                assert_eq!(vals[ge.index()], a >= k, "a={a} k={k}");
                assert_eq!(vals[le.index()], a <= k, "a={a} k={k}");
            }
        }
    }

    #[test]
    fn mux3_selects_with_priority() {
        for code in 0..3u8 {
            let mut nl = Netlist::new();
            let sp = nl.input("sp");
            let sn = nl.input("sn");
            let a = encode_const(&mut nl, 3, 4);
            let b = encode_const(&mut nl, -3, 4);
            let c = encode_const(&mut nl, 0, 4);
            let m = mux3(&mut nl, sp, &a, sn, &b, &c);
            let (spv, snv) = match code {
                0 => (true, false),
                1 => (false, true),
                _ => (false, false),
            };
            let expect = match code {
                0 => 3,
                1 => -3,
                _ => 0,
            };
            assert_eq!(eval_vec(&nl, &[spv, snv], &m), expect);
        }
    }

    #[test]
    fn sign_extension_preserves_value() {
        for a in -4i64..4 {
            let mut nl = Netlist::new();
            let av = nl.input_bus("a", 3);
            let wide = sign_extend(&mut nl, &av, 8);
            let inputs: Vec<bool> = (0..3).map(|i| a >> i & 1 == 1).collect();
            assert_eq!(eval_vec(&nl, &inputs, &wide), a);
        }
    }

    #[test]
    fn decode_signed_handles_negatives() {
        assert_eq!(decode_signed(&[true, false, false]), 1);
        assert_eq!(decode_signed(&[false, false, true]), -4);
        assert_eq!(decode_signed(&[true, true, true]), -1);
        assert_eq!(decode_signed(&[]), 0);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_constant_panics() {
        let mut nl = Netlist::new();
        let _ = encode_const(&mut nl, 8, 4);
    }
}
