//! Netlist generators for the online operators.
//!
//! [`online_multiplier`] synthesizes Algorithm 1 into the digit-parallel
//! structure of Figure 3, stage by stage, gate for gate matching the
//! bit-true model in [`crate::online`]. The settled netlist output equals
//! [`bittrue_mult`](crate::online::bittrue_mult)'s digits exactly — the
//! equivalence tests below are the proof that the "hardware" and the model
//! compute the same function.

use crate::online::DELTA;
use crate::synth::bits::{add_signed, ripple_add, sign_extend};
use crate::synth::bsnets::{bs_add_gates, sdvm_gates, BsSignals};
use ola_netlist::cells::{and_tree, or_tree};
use ola_netlist::sta::prune_dead;
use ola_netlist::{NetId, Netlist};
use ola_redundant::{Digit, SdNumber};

/// A synthesized digit-parallel online adder with its I/O bookkeeping.
#[derive(Clone, Debug)]
pub struct OnlineAdderCircuit {
    /// The netlist. Inputs: `xp, xn, yp, yn` (MSD-first, `n` bits each).
    /// Outputs: buses `zp`, `zn` (`n + 1` digits, MSD first, MSD at weight
    /// `2^0`).
    pub netlist: Netlist,
    /// Operand digit count.
    pub n: usize,
}

/// Synthesizes the `n`-digit radix-2 unrolled online adder (Figure 2).
#[must_use]
pub fn online_adder(n: usize) -> OnlineAdderCircuit {
    assert!(n > 0, "adder width must be positive");
    let mut nl = Netlist::new();
    let xp = nl.input_bus("xp", n);
    let xn = nl.input_bus("xn", n);
    let yp = nl.input_bus("yp", n);
    let yn = nl.input_bus("yn", n);
    let x = BsSignals::from_nets(1, xp, xn);
    let y = BsSignals::from_nets(1, yp, yn);
    let z = bs_add_gates(&mut nl, &x, &y);
    let (p, nneg) = z.flat_nets();
    nl.set_output("zp", p);
    nl.set_output("zn", nneg);
    let nl = prune_dead(&nl).expect("generated netlists are DAGs");
    OnlineAdderCircuit { netlist: nl, n }
}

/// A synthesized digit-parallel online multiplier.
#[derive(Clone, Debug)]
pub struct OnlineMultiplierCircuit {
    /// The netlist. Inputs: `xp, xn, yp, yn` (MSD-first, `n` bits each).
    /// Outputs: buses `zp`, `zn` — the `n + δ` result digits
    /// `z_{−δ} ..= z_{n−1}`, MSD first.
    pub netlist: Netlist,
    /// Operand digit count `N`.
    pub n: usize,
    /// Selection-estimate granularity (fractional positions).
    pub frac_digits: i32,
}

impl OnlineMultiplierCircuit {
    /// Encodes a pair of operands as the simulator input vector.
    ///
    /// # Panics
    ///
    /// Panics if an operand length differs from `n`.
    #[must_use]
    pub fn encode_inputs(&self, x: &SdNumber, y: &SdNumber) -> Vec<bool> {
        assert_eq!(x.len(), self.n);
        assert_eq!(y.len(), self.n);
        let mut bits = Vec::with_capacity(4 * self.n);
        for op in [x, y] {
            for d in op {
                bits.push(d.to_bits().0);
            }
        }
        // Input bus order is xp, xn, yp, yn — regroup.
        let mut out = Vec::with_capacity(4 * self.n);
        let (xp, yp) = bits.split_at(self.n);
        out.extend_from_slice(xp);
        out.extend(x.iter().map(|d| d.to_bits().1));
        out.extend_from_slice(yp);
        out.extend(y.iter().map(|d| d.to_bits().1));
        out
    }

    /// Decodes sampled `zp`/`zn` bus values into result digits
    /// `z_{−δ} ..= z_{n−1}`.
    #[must_use]
    pub fn decode_digits(&self, zp: &[bool], zn: &[bool]) -> Vec<Digit> {
        zp.iter().zip(zn).map(|(&p, &n)| Digit::from_bits(p, n)).collect()
    }
}

/// Synthesizes the `n`-digit unrolled online multiplier with a selection
/// estimate of `frac_digits` fractional positions.
///
/// # Panics
///
/// Panics if `n == 0` or `frac_digits < 3` (the recurrence does not
/// converge with a narrower estimate; see [`crate::online::Selection`]).
#[must_use]
pub fn online_multiplier(n: usize, frac_digits: i32) -> OnlineMultiplierCircuit {
    assert!(n > 0, "multiplier width must be positive");
    let mut nl = Netlist::new();
    let xp = nl.input_bus("xp", n);
    let xn = nl.input_bus("xn", n);
    let yp = nl.input_bus("yp", n);
    let yn = nl.input_bus("yn", n);
    let x = BsSignals::from_nets(1, xp, xn);
    let y = BsSignals::from_nets(1, yp, yn);
    let (zp_out, zn_out) = online_multiplier_core(&mut nl, &x, &y, n, frac_digits);
    nl.set_output("zp", zp_out);
    nl.set_output("zn", zn_out);
    // The unrolled recurrence leaves dead logic behind (the last stage's
    // residual update is never read): prune it so the shipped circuit is
    // lint-clean and simulation does no unobservable work.
    let nl = prune_dead(&nl).expect("generated netlists are DAGs");
    OnlineMultiplierCircuit { netlist: nl, n, frac_digits }
}

/// Emits the unrolled multiplier datapath for arbitrary operand signals
/// (inputs, constants, or internal nets); returns the result digit planes
/// `z_{−δ} ..= z_{n−1}` (MSD first; digit `z_j` has weight `2^{−(j+1)}`).
/// Operands must occupy positions `1..=n`. Used by [`online_multiplier`],
/// the constant-coefficient MAC builder, and the `ola-synth` elaborator.
///
/// The settled outputs are bit-exact against
/// [`bittrue_mult_bits`](crate::online::bittrue_mult_bits) for *any*
/// borrow-save operand encoding, canonical or not.
///
/// # Panics
///
/// Panics if `frac_digits < 3`.
pub fn online_multiplier_core(
    nl: &mut Netlist,
    x: &BsSignals,
    y: &BsSignals,
    n: usize,
    frac_digits: i32,
) -> (Vec<NetId>, Vec<NetId>) {
    assert!(frac_digits >= 3, "selection estimate must cover ≥ 3 fractional digits");
    let t = frac_digits;
    let delta = DELTA as i32;
    let mut p_res = BsSignals::zero(nl, 0, 0);
    let mut zp_out = Vec::with_capacity(n + DELTA);
    let mut zn_out = Vec::with_capacity(n + DELTA);

    for j in -delta..=(n as i32 - 1) {
        let idx = j + delta + 1; // index of the digit appended this stage
        let (xd_p, xd_n) = x.bits(nl, idx);
        let (yd_p, yd_n) = y.bits(nl, idx);

        // Appending logic: operand windows (wires only).
        let y_j1 = window(nl, y, idx.min(n as i32));
        let x_j = window(nl, x, (idx - 1).min(n as i32));

        // SDVM + online adder → H = 2^-δ (A + B).
        let a = sdvm_gates(nl, xd_p, xd_n, &y_j1);
        let b = sdvm_gates(nl, yd_p, yd_n, &x_j);
        let h = bs_add_gates(nl, &a, &b).shifted(-delta);

        // W = P + H.
        let w = bs_add_gates(nl, &p_res, &h);

        // Selection: E = Ŵ · 2^t. The estimate digits sit at distinct
        // powers of two, so E is a single borrow subtraction of two *wired*
        // bit vectors — the short selection CPA of the paper.
        let e = accumulate_estimate(nl, &w, t);
        let zp = ge_pow2(nl, &e, (t - 1) as usize);
        let zn = lt_neg_pow2(nl, &e, (t - 1) as usize);
        zp_out.push(zp);
        zn_out.push(zn);

        // E' = E − 2^t·z: subtract the selected digit directly (−z is the
        // swapped digit pair) — one short adder, no speculative variants.
        let mut rem = sub_digit_multiple(nl, &e, zp, zn, t);
        let w_bits = t as usize + 2; // |values| ≤ 2^t − 1 throughout
        rem = sign_extend(nl, &rem, w_bits);

        let tail_end = (w.end_pos() - 1).max(t);
        let mut pp = Vec::with_capacity(tail_end as usize);
        let mut pn = Vec::with_capacity(tail_end as usize);
        for pos in 0..t {
            let m = (t - 1 - pos).max(0) as usize; // digit weight 2^m
            let k = m.saturating_sub(1); // threshold 2^(m-1), or 1 when m = 0
            let dp = ge_pow2(nl, &rem, k);
            let dn = le_neg_pow2(nl, &rem, k);
            pp.push(dp);
            pn.push(dn);
            rem = sub_digit_multiple(nl, &rem, dp, dn, t - 1 - pos);
            rem = sign_extend(nl, &rem, w_bits);
        }
        // Tail: wires from W (shifted up by one position).
        for pos in t..tail_end {
            let (wp, wn) = w.bits(nl, pos + 1);
            pp.push(wp);
            pn.push(wn);
        }
        p_res = BsSignals::from_nets(0, pp, pn);
    }

    (zp_out, zn_out)
}

/// The operand prefix window `positions 1..=k` (appending logic: wires).
fn window(nl: &mut Netlist, v: &BsSignals, k: i32) -> BsSignals {
    let len = k.max(0) as usize;
    let mut p = Vec::with_capacity(len);
    let mut n = Vec::with_capacity(len);
    for pos in 1..=k {
        let (bp, bn) = v.bits(nl, pos);
        p.push(bp);
        n.push(bn);
    }
    BsSignals::from_nets(1, p, n)
}

/// Computes `E = Ŵ·2^t = Σ_{pos ≤ t} digit(pos)·2^{t−pos}`. The digit
/// weights are distinct powers of two, so the positive and negative bit
/// planes need no summation — `E = P − N` is one two's-complement
/// subtraction of two wired vectors.
fn accumulate_estimate(nl: &mut Netlist, w: &BsSignals, t: i32) -> Vec<NetId> {
    let zero = nl.constant(false);
    let one = nl.constant(true);
    let width = (t - w.msd_pos() + 2).max(2) as usize;
    let mut pbits = vec![zero; width];
    let mut nbits = vec![zero; width];
    for pos in w.msd_pos()..=t {
        let (p, n) = w.bits(nl, pos);
        let k = (t - pos) as usize;
        pbits[k] = p;
        nbits[k] = n;
    }
    // E = P + ¬N + 1; |E| < 2^(width−1), so the two's-complement result is
    // exact with no overflow.
    let ninv: Vec<NetId> = nbits.iter().map(|&b| nl.not(b)).collect();
    ripple_add(nl, &pbits, &ninv, one).0
}

/// `E ≥ 2^k` for an LSB-first two's-complement vector: non-negative and any
/// bit at or above `k` set.
fn ge_pow2(nl: &mut Netlist, e: &[NetId], k: usize) -> NetId {
    let sign = *e.last().expect("non-empty");
    let hi = or_tree(nl, &e[k..e.len() - 1]);
    let nsign = nl.not(sign);
    nl.and(nsign, hi)
}

/// `E < −2^k`: negative and not all bits `k..` set (the all-ones suffix is
/// exactly the range `[−2^k, −1]`).
fn lt_neg_pow2(nl: &mut Netlist, e: &[NetId], k: usize) -> NetId {
    let sign = *e.last().expect("non-empty");
    let hi = and_tree(nl, &e[k..e.len() - 1]);
    let nhi = nl.not(hi);
    nl.and(sign, nhi)
}

/// `E ≤ −2^k`: strictly below, or exactly `−2^k` (all high bits set, all
/// low bits clear).
fn le_neg_pow2(nl: &mut Netlist, e: &[NetId], k: usize) -> NetId {
    let sign = *e.last().expect("non-empty");
    let hi = and_tree(nl, &e[k..e.len() - 1]);
    let nhi = nl.not(hi);
    let lo = or_tree(nl, &e[..k]);
    let nlo = nl.not(lo);
    let eq_or_lt = nl.or(nhi, nlo);
    nl.and(sign, eq_or_lt)
}

/// `a − d·2^shift` for a signed-digit `d` given as its `(p, n)` bit pair:
/// `−d` is the swapped pair, encoded as a 2-bit signed addend.
fn sub_digit_multiple(
    nl: &mut Netlist,
    a: &[NetId],
    dp: NetId,
    dn: NetId,
    shift: i32,
) -> Vec<NetId> {
    let zero = nl.constant(false);
    // −d = (n − p): low bit p ⊕ n, sign bit p ∧ ¬n.
    let low = nl.xor(dp, dn);
    let notn = nl.not(dn);
    let sign = nl.and(dp, notn);
    let mut addend = vec![zero; shift.max(0) as usize];
    addend.push(low);
    addend.push(sign);
    add_signed(nl, a, &addend)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{bittrue_mult, bs_add, Selection};
    use ola_netlist::{analyze, simulate_from_zero, UnitDelay};
    use ola_redundant::{random, BsVector, Q};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn adder_netlist_matches_behavioral() {
        let circuit = online_adder(4);
        let nl = &circuit.netlist;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..200 {
            let x = random::uniform_digits(&mut rng, 4);
            let y = random::uniform_digits(&mut rng, 4);
            let mut inputs: Vec<bool> = Vec::new();
            inputs.extend(x.iter().map(|d| d.to_bits().0));
            inputs.extend(x.iter().map(|d| d.to_bits().1));
            inputs.extend(y.iter().map(|d| d.to_bits().0));
            inputs.extend(y.iter().map(|d| d.to_bits().1));
            let vals = nl.eval(&inputs);
            let zp = nl.output("zp");
            let zn = nl.output("zn");
            let mut got = BsVector::zero(0, zp.len());
            for i in 0..zp.len() {
                got.set_bits(i as i32, vals[zp[i].index()], vals[zn[i].index()]);
            }
            let want = bs_add(&BsVector::from_sd(&x), &BsVector::from_sd(&y));
            assert_eq!(got.value(), want.value(), "x={x:?} y={y:?}");
        }
    }

    #[test]
    fn adder_critical_path_is_constant_in_width() {
        let d4 = analyze(&online_adder(4).netlist, &UnitDelay).critical_path();
        let d16 = analyze(&online_adder(16).netlist, &UnitDelay).critical_path();
        let d64 = analyze(&online_adder(64).netlist, &UnitDelay).critical_path();
        assert_eq!(d4, d16, "online adder delay must not grow with width");
        assert_eq!(d16, d64);
    }

    #[test]
    fn multiplier_netlist_matches_bittrue_exhaustively_small() {
        let n = 2;
        let circuit = online_multiplier(n, 3);
        let limit = (1i128 << n) - 1;
        for xv in -limit..=limit {
            for yv in -limit..=limit {
                let x = SdNumber::from_value(Q::new(xv, n as u32), n).unwrap();
                let y = SdNumber::from_value(Q::new(yv, n as u32), n).unwrap();
                check_equivalence(&circuit, &x, &y);
            }
        }
    }

    #[test]
    fn multiplier_netlist_matches_bittrue_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [4usize, 8] {
            let circuit = online_multiplier(n, 3);
            for _ in 0..60 {
                let x = random::uniform_digits(&mut rng, n);
                let y = random::uniform_digits(&mut rng, n);
                check_equivalence(&circuit, &x, &y);
            }
        }
    }

    fn check_equivalence(circuit: &OnlineMultiplierCircuit, x: &SdNumber, y: &SdNumber) {
        let inputs = circuit.encode_inputs(x, y);
        let vals = circuit.netlist.eval(&inputs);
        let zp: Vec<bool> = circuit.netlist.output("zp").iter().map(|b| vals[b.index()]).collect();
        let zn: Vec<bool> = circuit.netlist.output("zn").iter().map(|b| vals[b.index()]).collect();
        let got = circuit.decode_digits(&zp, &zn);
        let want = bittrue_mult(x, y, Selection::Estimate { frac_digits: circuit.frac_digits });
        assert_eq!(got, want.digits, "x={x:?} y={y:?}");
    }

    #[test]
    fn multiplier_settled_timing_simulation_agrees() {
        // Event-driven simulation must settle to the functional values.
        let circuit = online_multiplier(6, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..10 {
            let x = random::uniform_digits(&mut rng, 6);
            let y = random::uniform_digits(&mut rng, 6);
            let inputs = circuit.encode_inputs(&x, &y);
            let res = simulate_from_zero(&circuit.netlist, &UnitDelay, &inputs);
            let zp: Vec<bool> =
                circuit.netlist.output("zp").iter().map(|&b| res.final_value(b)).collect();
            let zn: Vec<bool> =
                circuit.netlist.output("zn").iter().map(|&b| res.final_value(b)).collect();
            let got = circuit.decode_digits(&zp, &zn);
            let want = bittrue_mult(&x, &y, Selection::default());
            assert_eq!(got, want.digits);
        }
    }

    #[test]
    fn multiplier_core_matches_bits_model_on_arbitrary_encodings() {
        // Feed the raw digit planes: every (p, n) combination, including
        // the non-canonical (1, 1) zero, must match the bit-level reference
        // model digit for digit. This is the contract ola-synth relies on.
        use crate::online::bittrue_mult_bits;
        use rand::Rng;
        for n in [2usize, 5] {
            let mut nl = Netlist::new();
            let xp = nl.input_bus("xp", n);
            let xn = nl.input_bus("xn", n);
            let yp = nl.input_bus("yp", n);
            let yn = nl.input_bus("yn", n);
            let x = BsSignals::from_nets(1, xp, xn);
            let y = BsSignals::from_nets(1, yp, yn);
            let (zp, zn) = online_multiplier_core(&mut nl, &x, &y, n, 3);
            nl.set_output("zp", zp);
            nl.set_output("zn", zn);
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            for _ in 0..120 {
                let inputs: Vec<bool> = (0..4 * n).map(|_| rng.gen()).collect();
                let mut xv = BsVector::zero(1, n);
                let mut yv = BsVector::zero(1, n);
                for i in 0..n {
                    xv.set_bits(1 + i as i32, inputs[i], inputs[n + i]);
                    yv.set_bits(1 + i as i32, inputs[2 * n + i], inputs[3 * n + i]);
                }
                let vals = nl.eval(&inputs);
                let got: Vec<Digit> = nl
                    .output("zp")
                    .iter()
                    .zip(nl.output("zn"))
                    .map(|(&p, &m)| Digit::from_bits(vals[p.index()], vals[m.index()]))
                    .collect();
                let want = bittrue_mult_bits(&xv, &yv, 3);
                assert_eq!(got, want, "n={n} x={xv:?} y={yv:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "≥ 3 fractional digits")]
    fn narrow_estimate_is_rejected() {
        let _ = online_multiplier(8, 2);
    }
}
