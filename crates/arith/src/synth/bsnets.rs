//! Borrow-save signal bundles: [`BsVector`](ola_redundant::BsVector) with
//! nets instead of bits, plus the gate-level online adder and SDVM.

use ola_netlist::cells::{mmp_cell, ppm_cell};
use ola_netlist::{NetId, Netlist, SimResult};
use ola_redundant::BsVector;

/// A borrow-save bus: one `(p, n)` net pair per weight position, mirroring
/// [`BsVector`] exactly (position `pos` has weight `2^-pos`).
#[derive(Clone, Debug)]
pub struct BsSignals {
    msd_pos: i32,
    p: Vec<NetId>,
    n: Vec<NetId>,
}

impl BsSignals {
    /// An all-zero bus over `msd_pos ..= msd_pos + len − 1`.
    pub fn zero(nl: &mut Netlist, msd_pos: i32, len: usize) -> Self {
        let z = nl.constant(false);
        BsSignals { msd_pos, p: vec![z; len], n: vec![z; len] }
    }

    /// A constant bus encoding a signed-digit operand (positions `1..=N`).
    pub fn constant(nl: &mut Netlist, value: &ola_redundant::SdNumber) -> Self {
        let mut p = Vec::with_capacity(value.len());
        let mut n = Vec::with_capacity(value.len());
        for d in value {
            let (bp, bn) = d.to_bits();
            p.push(nl.constant(bp));
            n.push(nl.constant(bn));
        }
        BsSignals { msd_pos: 1, p, n }
    }

    /// Builds a bus from explicit net pairs (`p[0]` is the MSD).
    ///
    /// # Panics
    ///
    /// Panics if the two planes differ in length.
    #[must_use]
    pub fn from_nets(msd_pos: i32, p: Vec<NetId>, n: Vec<NetId>) -> Self {
        assert_eq!(p.len(), n.len(), "p and n planes must have equal length");
        BsSignals { msd_pos, p, n }
    }

    /// Position of the most significant digit.
    #[must_use]
    pub fn msd_pos(&self) -> i32 {
        self.msd_pos
    }

    /// One past the least significant position.
    #[must_use]
    pub fn end_pos(&self) -> i32 {
        self.msd_pos + self.p.len() as i32
    }

    /// Number of digit positions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True if the bus has no positions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// The `(p, n)` nets at `pos`, or constant zeros outside the window.
    pub fn bits(&self, nl: &mut Netlist, pos: i32) -> (NetId, NetId) {
        let off = pos - self.msd_pos;
        if off >= 0 && (off as usize) < self.len() {
            (self.p[off as usize], self.n[off as usize])
        } else {
            let z = nl.constant(false);
            (z, z)
        }
    }

    /// Multiplies by `2^k` (pure rewiring).
    #[must_use]
    pub fn shifted(&self, k: i32) -> Self {
        BsSignals { msd_pos: self.msd_pos - k, p: self.p.clone(), n: self.n.clone() }
    }

    /// Negation: swaps the planes (pure rewiring).
    #[must_use]
    pub fn negated(&self) -> Self {
        BsSignals { msd_pos: self.msd_pos, p: self.n.clone(), n: self.p.clone() }
    }

    /// All nets, `p` plane then `n` plane, MSD first (for output buses).
    #[must_use]
    pub fn flat_nets(&self) -> (Vec<NetId>, Vec<NetId>) {
        (self.p.clone(), self.n.clone())
    }

    /// Reads the bus out of a simulation at time `t` as a [`BsVector`].
    #[must_use]
    pub fn sample(&self, res: &SimResult, t: u64) -> BsVector {
        let mut v = BsVector::zero(self.msd_pos, self.len());
        for i in 0..self.len() {
            let pos = self.msd_pos + i as i32;
            v.set_bits(pos, res.value_at(self.p[i], t), res.value_at(self.n[i], t));
        }
        v
    }

    /// Reads the settled bus out of a simulation as a [`BsVector`].
    #[must_use]
    pub fn sample_settled(&self, res: &SimResult) -> BsVector {
        let mut v = BsVector::zero(self.msd_pos, self.len());
        for i in 0..self.len() {
            let pos = self.msd_pos + i as i32;
            v.set_bits(pos, res.final_value(self.p[i]), res.final_value(self.n[i]));
        }
        v
    }

    /// Reads the bus from a functional evaluation.
    #[must_use]
    pub fn eval(&self, vals: &[bool]) -> BsVector {
        let mut v = BsVector::zero(self.msd_pos, self.len());
        for i in 0..self.len() {
            let pos = self.msd_pos + i as i32;
            v.set_bits(pos, vals[self.p[i].index()], vals[self.n[i].index()]);
        }
        v
    }
}

/// Gate-level digit-parallel online adder (Figure 2): two FA levels per
/// digit, mirroring [`bs_add`](crate::online::bs_add) cell for cell.
pub fn bs_add_gates(nl: &mut Netlist, x: &BsSignals, y: &BsSignals) -> BsSignals {
    let msd = x.msd_pos().min(y.msd_pos()) - 1;
    let end = x.end_pos().max(y.end_pos());
    let len = (end - msd) as usize;

    let mut c1 = Vec::with_capacity(len + 1);
    let mut s1 = Vec::with_capacity(len + 1);
    for pos in msd..=end {
        let (xp, xn) = x.bits(nl, pos);
        let (yp, _) = y.bits(nl, pos);
        let (c, s) = ppm_cell(nl, xp, yp, xn);
        c1.push(c);
        s1.push(s);
    }
    let mut zp = Vec::with_capacity(len);
    let mut carry_neg = Vec::with_capacity(len);
    for (slot, pos) in (msd..end).enumerate() {
        let (_, yn) = y.bits(nl, pos);
        let (cn, sp) = mmp_cell(nl, c1[slot + 1], s1[slot], yn);
        zp.push(sp);
        carry_neg.push(cn);
    }
    let zero = nl.constant(false);
    let zn: Vec<NetId> =
        (0..len).map(|slot| carry_neg.get(slot + 1).copied().unwrap_or(zero)).collect();
    BsSignals { msd_pos: msd, p: zp, n: zn }
}

/// Gate-level signed-digit vector multiple: `d · v` where the digit `d` is
/// given as its borrow-save net pair. Two AND-OR pairs per digit.
pub fn sdvm_gates(nl: &mut Netlist, dp: NetId, dn: NetId, v: &BsSignals) -> BsSignals {
    let mut p = Vec::with_capacity(v.len());
    let mut n = Vec::with_capacity(v.len());
    for i in 0..v.len() {
        let pos = v.msd_pos() + i as i32;
        let (vp, vn) = v.bits(nl, pos);
        let pp = nl.and(dp, vp);
        let pn = nl.and(dn, vn);
        p.push(nl.or(pp, pn));
        let np = nl.and(dp, vn);
        let nn = nl.and(dn, vp);
        n.push(nl.or(np, nn));
    }
    BsSignals { msd_pos: v.msd_pos(), p, n }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_redundant::{Digit, SdNumber, Q};

    /// Builds input buses for an SD operand and returns (signals, encoder).
    fn operand_inputs(nl: &mut Netlist, name: &str, n: usize) -> BsSignals {
        let p = nl.input_bus(&format!("{name}p"), n);
        let nn = nl.input_bus(&format!("{name}n"), n);
        BsSignals::from_nets(1, p, nn)
    }

    fn encode(x: &SdNumber) -> Vec<bool> {
        let mut bits = Vec::new();
        for d in x {
            bits.push(d.to_bits().0);
        }
        for d in x {
            bits.push(d.to_bits().1);
        }
        bits
    }

    #[test]
    fn gate_adder_matches_behavioral_exhaustively() {
        use crate::online::bs_add;
        let n = 3;
        let mut nl = Netlist::new();
        let x = operand_inputs(&mut nl, "x", n);
        let y = operand_inputs(&mut nl, "y", n);
        let z = bs_add_gates(&mut nl, &x, &y);
        for xv in 0..3usize.pow(n as u32) {
            for yv in 0..3usize.pow(n as u32) {
                let xd = decode_trits(xv, n);
                let yd = decode_trits(yv, n);
                let mut inputs = encode(&xd);
                inputs.extend(encode(&yd));
                let vals = nl.eval(&inputs);
                let got = z.eval(&vals);
                let want = bs_add(
                    &ola_redundant::BsVector::from_sd(&xd),
                    &ola_redundant::BsVector::from_sd(&yd),
                );
                assert_eq!(got, want, "x={xd:?} y={yd:?}");
            }
        }
    }

    fn decode_trits(mut k: usize, n: usize) -> SdNumber {
        (0..n)
            .map(|_| {
                let d = Digit::try_from((k % 3) as i8 - 1).unwrap();
                k /= 3;
                d
            })
            .collect()
    }

    #[test]
    fn sdvm_gates_select_sign() {
        let n = 4;
        for (dig, factor) in [(Digit::One, 1i64), (Digit::NegOne, -1), (Digit::Zero, 0)] {
            let mut nl = Netlist::new();
            let dp = nl.input("dp");
            let dn = nl.input("dn");
            let v = operand_inputs(&mut nl, "v", n);
            let out = sdvm_gates(&mut nl, dp, dn, &v);
            let x = SdNumber::from_value(Q::new(5, 4), n).unwrap();
            let (bp, bn) = dig.to_bits();
            let mut inputs = vec![bp, bn];
            inputs.extend(encode(&x));
            let vals = nl.eval(&inputs);
            assert_eq!(out.eval(&vals).value(), x.value() * factor, "digit {dig:?}");
        }
    }

    #[test]
    fn shifting_and_negation_are_rewiring() {
        let mut nl = Netlist::new();
        let v = operand_inputs(&mut nl, "v", 3);
        let before = nl.len();
        let s = v.shifted(2);
        let m = v.negated();
        assert_eq!(nl.len(), before, "no gates added");
        assert_eq!(s.msd_pos(), -1);
        assert_eq!(m.msd_pos(), 1);
    }

    #[test]
    fn out_of_window_bits_are_constant_zero() {
        let mut nl = Netlist::new();
        let v = operand_inputs(&mut nl, "v", 2);
        let (p, n) = v.bits(&mut nl, 99);
        let vals = nl.eval(&[true, true, true, true]);
        assert!(!vals[p.index()] && !vals[n.index()]);
    }
}
