//! Gate-level fused online multiply-accumulate (inner product).
//!
//! Mirrors [`fused_mac_bits`](crate::online::fused_mac_bits) signal for
//! signal: per term the operands are normalized to msd position 1 (pure
//! wiring) and padded to a common digit count `n`, each digit pair
//! `(x_j, y_j)` drives two [`sdvm_gates`] muxes against the opposite
//! operand's prefix window, one [`bs_add_gates`] forms the row
//! `H_j = x_j·Y[j] + y_j·X[j−1]`, and every row of every term feeds one
//! balanced [`bs_add_gates`] reduction tree. Nothing in the datapath
//! digitizes: there is no selection CPA and no residual recode, so the
//! settled output is the *exact* borrow-save inner product and the
//! critical path is `⌈log2(rows)⌉ + 1` two-FA adder levels instead of the
//! unfused `n + δ` selection stages per product.

use crate::online::fused_mac_window;
use crate::synth::bsnets::{bs_add_gates, sdvm_gates, BsSignals};
use ola_netlist::sta::prune_dead;
use ola_netlist::{NetId, Netlist};
use ola_redundant::{SdNumber, Q};

/// Operand planes padded to positions `1..=n` (constant zeros where the
/// source window ends early).
fn pad_to(nl: &mut Netlist, v: &BsSignals, n: usize) -> (Vec<NetId>, Vec<NetId>) {
    let mut p = Vec::with_capacity(n);
    let mut nn = Vec::with_capacity(n);
    for pos in 1..=n as i32 {
        let (bp, bn) = v.bits(nl, pos);
        p.push(bp);
        nn.push(bn);
    }
    (p, nn)
}

/// Builds the fused online MAC datapath over borrow-save operand pairs
/// and returns the redundant accumulator bus. The output window obeys
/// [`fused_mac_window`](crate::online::fused_mac_window) — the
/// δ-composition-under-accumulation rule the `ola-synth` IR replays.
///
/// # Panics
///
/// Panics if `terms` is empty.
#[must_use]
pub fn fused_mac_gates(nl: &mut Netlist, terms: &[(BsSignals, BsSignals)]) -> BsSignals {
    assert!(!terms.is_empty(), "fused MAC needs at least one term");
    let mut rows = Vec::new();
    for (x, y) in terms {
        let sx = x.msd_pos() - 1;
        let sy = y.msd_pos() - 1;
        let n = x.len().max(y.len()).max(1);
        let (xp, xn) = pad_to(nl, &x.shifted(sx), n);
        let (yp, yn) = pad_to(nl, &y.shifted(sy), n);
        for j in 1..=n {
            let yw = BsSignals::from_nets(1, yp[..j].to_vec(), yn[..j].to_vec());
            let xw = BsSignals::from_nets(1, xp[..j - 1].to_vec(), xn[..j - 1].to_vec());
            let a = sdvm_gates(nl, xp[j - 1], xn[j - 1], &yw);
            let b = sdvm_gates(nl, yp[j - 1], yn[j - 1], &xw);
            rows.push(bs_add_gates(nl, &a, &b).shifted(-(j as i32 + sx + sy)));
        }
    }
    let mut level = rows;
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    bs_add_gates(nl, &pair[0], &pair[1])
                } else {
                    pair[0].clone()
                }
            })
            .collect();
    }
    let sum = level.pop().expect("non-empty");
    debug_assert_eq!(
        (sum.msd_pos(), sum.len()),
        fused_mac_window(
            &terms
                .iter()
                .map(|(x, y)| ((x.msd_pos(), x.len()), (y.msd_pos(), y.len())))
                .collect::<Vec<_>>()
        ),
        "gate-level window drifted from the accumulation rule"
    );
    sum
}

/// A synthesized *fused* online constant-coefficient dot product — the
/// redundant-accumulation counterpart of
/// [`online_mac`](crate::synth::online_mac).
#[derive(Clone, Debug)]
pub struct FusedMacCircuit {
    /// Netlist. Inputs: per tap `k`, buses `x{k}p`, `x{k}n` (MSD first,
    /// `n` digits). Outputs: `sump`, `sumn` — the borrow-save sum digits.
    pub netlist: Netlist,
    /// Operand digit count `N`.
    pub n: usize,
    /// The coefficients, in tap order.
    pub coefficients: Vec<SdNumber>,
    /// Weight position of the sum's most significant digit.
    pub sum_msd_pos: i32,
}

impl FusedMacCircuit {
    /// Encodes one operand per tap as the simulator input vector.
    ///
    /// # Panics
    ///
    /// Panics if the operand count or any length mismatches.
    #[must_use]
    pub fn encode_inputs(&self, xs: &[SdNumber]) -> Vec<bool> {
        assert_eq!(xs.len(), self.coefficients.len(), "one operand per tap");
        let mut bits = Vec::with_capacity(2 * self.n * xs.len());
        for x in xs {
            assert_eq!(x.len(), self.n);
            for d in x {
                bits.push(d.to_bits().0);
            }
            for d in x {
                bits.push(d.to_bits().1);
            }
        }
        bits
    }

    /// Decodes sampled `sump`/`sumn` values into the exact sum value.
    #[must_use]
    pub fn decode_sum(&self, sump: &[bool], sumn: &[bool]) -> Q {
        let mut v = ola_redundant::BsVector::zero(self.sum_msd_pos, sump.len());
        for (i, (&p, &n)) in sump.iter().zip(sumn).enumerate() {
            v.set_bits(self.sum_msd_pos + i as i32, p, n);
        }
        v.value()
    }
}

/// Synthesizes a fused online dot product `Σ c_k · x_k` with fixed
/// coefficients. The accumulator never leaves redundant form, so the
/// settled sum is exact (no per-product online truncation) and no
/// selection-estimate parameter exists to pick.
///
/// # Panics
///
/// Panics if `coefficients` is empty or lengths differ.
#[must_use]
pub fn fused_online_mac(coefficients: &[SdNumber]) -> FusedMacCircuit {
    assert!(!coefficients.is_empty(), "at least one tap");
    let n = coefficients[0].len();
    assert!(coefficients.iter().all(|c| c.len() == n), "equal coefficient widths");
    let mut nl = Netlist::new();
    let mut terms = Vec::with_capacity(coefficients.len());
    for (k, coeff) in coefficients.iter().enumerate() {
        let xp = nl.input_bus(&format!("x{k}p"), n);
        let xn = nl.input_bus(&format!("x{k}n"), n);
        let x = BsSignals::from_nets(1, xp, xn);
        let c = BsSignals::constant(&mut nl, coeff);
        terms.push((x, c));
    }
    let sum = fused_mac_gates(&mut nl, &terms);
    let sum_msd_pos = sum.msd_pos();
    let (p, nneg) = sum.flat_nets();
    nl.set_output("sump", p);
    nl.set_output("sumn", nneg);
    let nl = prune_dead(&nl).expect("generated netlists are DAGs");
    FusedMacCircuit { netlist: nl, n, coefficients: coefficients.to_vec(), sum_msd_pos }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::online::fused_mac_bits;
    use crate::synth::online_mac;
    use ola_netlist::{analyze, UnitDelay};
    use ola_redundant::{random, BsVector};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn coeffs(n: usize) -> Vec<SdNumber> {
        [5i128, -3, 7]
            .iter()
            .map(|&v| SdNumber::from_value(Q::new(v, n as u32), n).expect("fits"))
            .collect()
    }

    fn settled_sum(mac: &FusedMacCircuit, xs: &[SdNumber]) -> Q {
        let inputs = mac.encode_inputs(xs);
        let vals = mac.netlist.eval(&inputs);
        let sump: Vec<bool> = mac.netlist.output("sump").iter().map(|b| vals[b.index()]).collect();
        let sumn: Vec<bool> = mac.netlist.output("sumn").iter().map(|b| vals[b.index()]).collect();
        mac.decode_sum(&sump, &sumn)
    }

    #[test]
    fn fused_mac_is_exact_at_settlement() {
        let n = 8;
        let cs = coeffs(n);
        let mac = fused_online_mac(&cs);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..60 {
            let xs: Vec<SdNumber> = (0..3).map(|_| random::uniform_digits(&mut rng, n)).collect();
            let want: Q =
                xs.iter().zip(&cs).map(|(x, c)| x.value() * c.value()).fold(Q::ZERO, |a, v| a + v);
            assert_eq!(settled_sum(&mac, &xs), want, "xs={xs:?}");
        }
    }

    #[test]
    fn netlist_matches_the_bit_true_model_digit_for_digit() {
        let n = 6;
        let cs = coeffs(n);
        let mac = fused_online_mac(&cs);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for _ in 0..40 {
            let xs: Vec<SdNumber> = (0..3).map(|_| random::uniform_digits(&mut rng, n)).collect();
            let inputs = mac.encode_inputs(&xs);
            let vals = mac.netlist.eval(&inputs);
            let sump: Vec<bool> =
                mac.netlist.output("sump").iter().map(|b| vals[b.index()]).collect();
            let sumn: Vec<bool> =
                mac.netlist.output("sumn").iter().map(|b| vals[b.index()]).collect();
            let terms: Vec<(BsVector, BsVector)> = xs
                .iter()
                .zip(&cs)
                .map(|(x, c)| (BsVector::from_sd(x), BsVector::from_sd(c)))
                .collect();
            let want = fused_mac_bits(&terms);
            assert_eq!(mac.sum_msd_pos, want.msd_pos());
            assert_eq!(sump.len(), want.len());
            for (i, (&p, &n_)) in sump.iter().zip(&sumn).enumerate() {
                let pos = want.msd_pos() + i as i32;
                assert_eq!((p, n_), want.bits(pos), "pos {pos} xs={xs:?}");
            }
        }
    }

    #[test]
    fn fused_beats_unfused_on_settled_latency() {
        // The acceptance criterion at the operator level: no selection
        // chains means the fused critical path is strictly shorter.
        for n in [4usize, 8, 16] {
            let cs = coeffs(n);
            let fused = fused_online_mac(&cs);
            let unfused = online_mac(&cs, 3);
            let f = analyze(&fused.netlist, &UnitDelay).critical_path();
            let u = analyze(&unfused.netlist, &UnitDelay).critical_path();
            assert!(f < u, "n={n}: fused {f} vs unfused {u}");
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_fused_mac_rejected() {
        let _ = fused_online_mac(&[]);
    }
}
