//! Netlist synthesis of every operator in this crate.
//!
//! Generators return small structs bundling the [`Netlist`] with its I/O
//! bookkeeping; feed them to [`ola_netlist::simulate`] for overclocked
//! timing experiments, [`ola_netlist::analyze`] for rated frequencies, and
//! [`ola_netlist::area::estimate`] for Table-4-style area comparisons.
//!
//! [`Netlist`]: ola_netlist::Netlist

pub mod bits;
mod bsnets;
mod conventional;
mod fused_mac;
mod mac;
mod online;

pub use bsnets::{bs_add_gates, sdvm_gates, BsSignals};
pub use conventional::{
    array_multiplier, array_multiplier_core, carry_select_adder, ripple_carry_adder,
    ArrayMultiplierCircuit, CarrySelectAdderCircuit, RippleAdderCircuit,
};
pub use fused_mac::{fused_mac_gates, fused_online_mac, FusedMacCircuit};
pub use mac::{
    decode_digit_planes, online_mac, traditional_mac, OnlineMacCircuit, TraditionalMacCircuit,
};
pub use online::{
    online_adder, online_multiplier, online_multiplier_core, OnlineAdderCircuit,
    OnlineMultiplierCircuit,
};
