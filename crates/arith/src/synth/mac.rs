//! Constant-coefficient multiply-accumulate (dot-product) datapaths —
//! "datapath synthesis" in the paper's title sense.
//!
//! Given fixed coefficients, each multiplier's coefficient operand is tied
//! to constants; the builder's constant folding then *specializes* the
//! hardware per tap (an SDVM against a zero digit vanishes, Baugh-Wooley
//! rows against zero bits vanish), exactly as a synthesis tool would. The
//! products feed an adder tree of the same arithmetic family:
//!
//! * [`online_mac`] — online multipliers + signed-digit adder tree
//!   (constant-depth accumulation, MSD-first end to end);
//! * [`traditional_mac`] — Baugh-Wooley arrays + ripple-carry adder tree
//!   (the conventional Core-Generator-style equivalent).

use crate::online::DELTA;
use crate::synth::bits::add_signed;
use crate::synth::bsnets::{bs_add_gates, BsSignals};
use crate::synth::conventional::array_multiplier_core;
use crate::synth::online::online_multiplier_core;
use ola_netlist::sta::prune_dead;
use ola_netlist::{NetId, Netlist};
use ola_redundant::{Digit, SdNumber, Q};

/// A synthesized online (signed-digit) constant-coefficient dot product.
#[derive(Clone, Debug)]
pub struct OnlineMacCircuit {
    /// Netlist. Inputs: per tap `k`, buses `x{k}p`, `x{k}n` (MSD first,
    /// `n` digits). Outputs: `sump`, `sumn` — the borrow-save sum digits.
    pub netlist: Netlist,
    /// Operand digit count `N`.
    pub n: usize,
    /// The coefficients, in tap order.
    pub coefficients: Vec<SdNumber>,
    /// Weight position of the sum's most significant digit.
    pub sum_msd_pos: i32,
}

impl OnlineMacCircuit {
    /// Encodes one operand per tap as the simulator input vector.
    ///
    /// # Panics
    ///
    /// Panics if the operand count or any length mismatches.
    #[must_use]
    pub fn encode_inputs(&self, xs: &[SdNumber]) -> Vec<bool> {
        assert_eq!(xs.len(), self.coefficients.len(), "one operand per tap");
        let mut bits = Vec::with_capacity(2 * self.n * xs.len());
        for x in xs {
            assert_eq!(x.len(), self.n);
            for d in x {
                bits.push(d.to_bits().0);
            }
            for d in x {
                bits.push(d.to_bits().1);
            }
        }
        bits
    }

    /// Decodes sampled `sump`/`sumn` values into the exact sum value.
    #[must_use]
    pub fn decode_sum(&self, sump: &[bool], sumn: &[bool]) -> Q {
        let mut v = ola_redundant::BsVector::zero(self.sum_msd_pos, sump.len());
        for (i, (&p, &n)) in sump.iter().zip(sumn).enumerate() {
            v.set_bits(self.sum_msd_pos + i as i32, p, n);
        }
        v.value()
    }
}

/// Synthesizes an online dot product `Σ c_k · x_k` with fixed coefficients.
///
/// # Panics
///
/// Panics if `coefficients` is empty, lengths differ, or
/// `frac_digits < 3`.
#[must_use]
pub fn online_mac(coefficients: &[SdNumber], frac_digits: i32) -> OnlineMacCircuit {
    assert!(!coefficients.is_empty(), "at least one tap");
    let n = coefficients[0].len();
    assert!(coefficients.iter().all(|c| c.len() == n), "equal coefficient widths");
    let mut nl = Netlist::new();

    let mut products = Vec::with_capacity(coefficients.len());
    for (k, coeff) in coefficients.iter().enumerate() {
        let xp = nl.input_bus(&format!("x{k}p"), n);
        let xn = nl.input_bus(&format!("x{k}n"), n);
        let x = BsSignals::from_nets(1, xp, xn);
        let c = BsSignals::constant(&mut nl, coeff);
        let (zp, zn) = online_multiplier_core(&mut nl, &x, &c, n, frac_digits);
        // Product digit k has weight 2^-(k-δ+1): MSD position 1−δ.
        products.push(BsSignals::from_nets(1 - DELTA as i32, zp, zn));
    }
    let mut level = products;
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    bs_add_gates(&mut nl, &pair[0], &pair[1])
                } else {
                    pair[0].clone()
                }
            })
            .collect();
    }
    let sum = level.pop().expect("non-empty");
    let sum_msd_pos = sum.msd_pos();
    let (p, nneg) = sum.flat_nets();
    nl.set_output("sump", p);
    nl.set_output("sumn", nneg);
    let nl = prune_dead(&nl).expect("generated netlists are DAGs");
    OnlineMacCircuit { netlist: nl, n, coefficients: coefficients.to_vec(), sum_msd_pos }
}

/// A synthesized conventional constant-coefficient dot product.
#[derive(Clone, Debug)]
pub struct TraditionalMacCircuit {
    /// Netlist. Inputs: per tap `k`, bus `x{k}` (LSB-first two's
    /// complement, `width` bits). Output: `sum` (LSB-first signed, at the
    /// adder tree's natural width — every bus position distinctly driven).
    pub netlist: Netlist,
    /// Operand bit width.
    pub width: usize,
    /// The raw coefficient values, in tap order.
    pub coefficients: Vec<i64>,
}

impl TraditionalMacCircuit {
    /// Encodes one raw operand per tap.
    ///
    /// # Panics
    ///
    /// Panics if the operand count mismatches or a value is out of range.
    #[must_use]
    pub fn encode_inputs(&self, xs: &[i64]) -> Vec<bool> {
        assert_eq!(xs.len(), self.coefficients.len(), "one operand per tap");
        let lim = 1i64 << (self.width - 1);
        let mut bits = Vec::with_capacity(self.width * xs.len());
        for &x in xs {
            assert!(x >= -lim && x < lim, "operand out of range");
            for i in 0..self.width {
                bits.push(x >> i & 1 == 1);
            }
        }
        bits
    }

    /// Decodes the sampled `sum` bus into a raw signed integer (scale
    /// `2^(2·(width−1))` relative to fraction semantics).
    #[must_use]
    pub fn decode_sum(&self, bits: &[bool]) -> i64 {
        crate::synth::bits::decode_signed(bits)
    }
}

/// Synthesizes a conventional dot product `Σ c_k · x_k` with fixed
/// coefficients.
///
/// # Panics
///
/// Panics if `coefficients` is empty, `width` unsupported, or a coefficient
/// does not fit `width` bits.
#[must_use]
pub fn traditional_mac(coefficients: &[i64], width: usize) -> TraditionalMacCircuit {
    assert!(!coefficients.is_empty(), "at least one tap");
    assert!(width > 0 && width <= 31, "unsupported width");
    let lim = 1i64 << (width - 1);
    let mut nl = Netlist::new();
    let mut products: Vec<Vec<NetId>> = Vec::with_capacity(coefficients.len());
    for (k, &c) in coefficients.iter().enumerate() {
        assert!(c >= -lim && c < lim, "coefficient out of range");
        let x = nl.input_bus(&format!("x{k}"), width);
        let cbits: Vec<NetId> = (0..width).map(|i| nl.constant(c >> i & 1 == 1)).collect();
        products.push(array_multiplier_core(&mut nl, &x, &cbits));
    }
    let mut level = products;
    while level.len() > 1 {
        level = level
            .chunks(2)
            .map(|pair| {
                if pair.len() == 2 {
                    add_signed(&mut nl, &pair[0], &pair[1])
                } else {
                    pair[0].clone()
                }
            })
            .collect();
    }
    let mut sum = level.pop().expect("non-empty");
    // Cap the output at the normalized width, but never *extend*: the
    // adder tree's natural width already covers the full dot-product
    // range, and padding the port by repeating the sign net would leave
    // a bus position without a distinct driver (the exact defect
    // `LintIssue::OutputWidthMismatch` exists to catch). Decoding is
    // width-agnostic either way (`decode_signed` sign-extends).
    let out_w = 2 * width + coefficients.len().next_power_of_two().trailing_zeros() as usize + 1;
    sum.truncate(out_w);
    nl.set_output("sum", sum);
    let nl = prune_dead(&nl).expect("generated netlists are DAGs");
    TraditionalMacCircuit { netlist: nl, width, coefficients: coefficients.to_vec() }
}

/// Decodes a sampled online-MAC digit plane pair into digits (helper for
/// callers that want the digit view rather than the value).
#[must_use]
pub fn decode_digit_planes(sump: &[bool], sumn: &[bool]) -> Vec<Digit> {
    sump.iter().zip(sumn).map(|(&p, &n)| Digit::from_bits(p, n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::{bittrue_mult, Selection};
    use crate::synth::{array_multiplier, online_multiplier};
    use ola_netlist::{analyze, UnitDelay};
    use ola_redundant::random;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn coeffs(n: usize) -> Vec<SdNumber> {
        [19i128, -45, 77]
            .iter()
            .map(|&v| SdNumber::from_value(Q::new(v, n as u32), n).expect("fits"))
            .collect()
    }

    #[test]
    fn online_mac_matches_sum_of_bittrue_products() {
        let n = 8;
        let cs = coeffs(n);
        let mac = online_mac(&cs, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..40 {
            let xs: Vec<SdNumber> = (0..3).map(|_| random::uniform_digits(&mut rng, n)).collect();
            let inputs = mac.encode_inputs(&xs);
            let vals = mac.netlist.eval(&inputs);
            let sump: Vec<bool> =
                mac.netlist.output("sump").iter().map(|b| vals[b.index()]).collect();
            let sumn: Vec<bool> =
                mac.netlist.output("sumn").iter().map(|b| vals[b.index()]).collect();
            let got = mac.decode_sum(&sump, &sumn);
            let want: Q = xs
                .iter()
                .zip(&cs)
                .map(|(x, c)| bittrue_mult(x, c, Selection::default()).value())
                .fold(Q::ZERO, |a, v| a + v);
            assert_eq!(got, want, "xs={xs:?}");
        }
    }

    #[test]
    fn traditional_mac_is_exact() {
        let w = 9;
        let cs = [19i64, -45, 77];
        let mac = traditional_mac(&cs, w);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..100 {
            let xs: Vec<i64> = (0..3).map(|_| rng.gen_range(-256..256)).collect();
            let inputs = mac.encode_inputs(&xs);
            let vals = mac.netlist.eval(&inputs);
            let bits: Vec<bool> =
                mac.netlist.output("sum").iter().map(|b| vals[b.index()]).collect();
            let want: i64 = xs.iter().zip(&cs).map(|(x, c)| x * c).sum();
            assert_eq!(mac.decode_sum(&bits), want, "xs={xs:?}");
        }
    }

    #[test]
    fn constant_folding_shrinks_the_datapath() {
        // A constant-coefficient multiplier must be smaller than the generic
        // one for both arithmetic families.
        let n = 8;
        let c = coeffs(n);
        let online = online_mac(&c[..1], 3);
        let generic = online_multiplier(n, 3);
        assert!(
            online.netlist.logic_gate_count() < generic.netlist.logic_gate_count(),
            "online: {} vs generic {}",
            online.netlist.logic_gate_count(),
            generic.netlist.logic_gate_count()
        );
        let trad = traditional_mac(&[77], 9);
        let generic_t = array_multiplier(9);
        assert!(
            trad.netlist.logic_gate_count() < generic_t.netlist.logic_gate_count(),
            "traditional: {} vs generic {}",
            trad.netlist.logic_gate_count(),
            generic_t.netlist.logic_gate_count()
        );
    }

    #[test]
    fn online_mac_critical_path_below_taps_times_multiplier() {
        // The tree adds only constant depth per level.
        let n = 8;
        let mac = online_mac(&coeffs(n), 3);
        let single = online_multiplier(n, 3);
        let mac_cp = analyze(&mac.netlist, &UnitDelay).critical_path();
        let single_cp = analyze(&single.netlist, &UnitDelay).critical_path();
        assert!(
            mac_cp < single_cp + 3000,
            "tree depth must be constant-ish: {mac_cp} vs {single_cp}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_mac_rejected() {
        let _ = online_mac(&[], 3);
    }
}
