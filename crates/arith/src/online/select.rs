//! The result-digit selection function of the online multiplier (Eq. (3)).

use ola_redundant::{BsVector, Digit, Q};

/// How a multiplier stage selects its output digit from the residual `W`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Selection {
    /// Compare the *exact* value of `W` against ±1/2 (Eq. (3) literally).
    /// This is the golden-model behaviour; hardware cannot afford it because
    /// an exact comparison needs a full-width carry-propagate adder.
    Exact,
    /// Compare a truncated estimate `Ŵ` of `W` — the value of its digits
    /// down to fractional position `frac_digits` — against ±1/2. Hardware
    /// selection: only a short carry-propagate adder over the top digits.
    ///
    /// `frac_digits = 3` is the narrowest estimate for which the recurrence
    /// provably converges with online delay δ = 3 (residual bound
    /// `|P| ≤ 3/2`); the paper's "1 integer and 1 fractional bit" wording
    /// refers to the non-redundant estimate after that short adder.
    Estimate {
        /// Least significant fractional position included in the estimate.
        frac_digits: i32,
    },
}

impl Default for Selection {
    fn default() -> Self {
        Selection::Estimate { frac_digits: 3 }
    }
}

/// Eq. (3): `z = 1` if `w ≥ 1/2`; `z = 0` if `−1/2 ≤ w < 1/2`; `z = −1`
/// otherwise.
///
/// # Examples
///
/// ```
/// use ola_arith::online::select_exact;
/// use ola_redundant::{Digit, Q};
///
/// assert_eq!(select_exact(Q::new(1, 1)), Digit::One);      // 1/2
/// assert_eq!(select_exact(Q::new(-1, 1)), Digit::Zero);    // -1/2 (inclusive)
/// assert_eq!(select_exact(Q::new(-3, 2)), Digit::NegOne);  // -3/4
/// ```
#[must_use]
pub fn select_exact(w: Q) -> Digit {
    if w.cmp_frac(1, 1).is_ge() {
        Digit::One
    } else if w.cmp_frac(-1, 1).is_ge() {
        Digit::Zero
    } else {
        Digit::NegOne
    }
}

/// The truncated estimate `Ŵ`: the exact value of `w`'s digits from its MSD
/// down to fractional position `frac_digits` inclusive.
#[must_use]
pub fn estimate(w: &BsVector, frac_digits: i32) -> Q {
    let mut acc = Q::ZERO;
    for (pos, d) in w.iter_digits() {
        if pos > frac_digits {
            break;
        }
        acc += match pos.cmp(&0) {
            std::cmp::Ordering::Less => d.weighted(0) << (-pos) as u32,
            _ => d.weighted(pos as u32),
        };
    }
    acc
}

/// Applies a [`Selection`] policy to a residual.
#[must_use]
pub fn select(w: &BsVector, policy: Selection) -> Digit {
    match policy {
        Selection::Exact => select_exact(w.value()),
        Selection::Estimate { frac_digits } => select_exact(estimate(w, frac_digits)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_redundant::SdNumber;

    #[test]
    fn exact_selection_thresholds() {
        assert_eq!(select_exact(Q::ONE), Digit::One);
        assert_eq!(select_exact(Q::new(1, 1)), Digit::One);
        assert_eq!(select_exact(Q::new(7, 4)), Digit::Zero); // 7/16 < 1/2
        assert_eq!(select_exact(Q::ZERO), Digit::Zero);
        assert_eq!(select_exact(Q::new(-1, 1)), Digit::Zero);
        assert_eq!(select_exact(Q::new(-9, 4)), Digit::NegOne); // -9/16
        assert_eq!(select_exact(-Q::ONE), Digit::NegOne);
    }

    #[test]
    fn estimate_truncates_low_digits() {
        // Canonical 7/16 = 0.1 0 1̄ 1; truncating to 2 fractional digits keeps
        // 0.1 0 = 1/2, and matches the prefix value.
        let canon = SdNumber::from_value(Q::new(7, 4), 4).unwrap();
        let w = BsVector::from_sd(&canon);
        assert_eq!(estimate(&w, 2), Q::new(1, 1));
        let est = estimate(&BsVector::from_sd(&canon), 2);
        assert_eq!(est, canon.prefix_value(2));
    }

    #[test]
    fn estimate_includes_integer_positions() {
        let mut w = BsVector::zero(-1, 6); // positions -1..=4
        w.set_digit(-1, Digit::One); // +2
        w.set_digit(1, Digit::NegOne); // -1/2
        w.set_digit(4, Digit::One); // +1/16, beyond estimate
        assert_eq!(estimate(&w, 3), Q::new(3, 1));
        assert_eq!(w.value(), Q::new(3, 1) + Q::new(1, 4));
    }

    #[test]
    fn estimate_equals_value_when_window_covered() {
        let w = BsVector::from_sd(&SdNumber::from_value(Q::new(-5, 4), 4).unwrap());
        assert_eq!(estimate(&w, 4), w.value());
        assert_eq!(select(&w, Selection::Estimate { frac_digits: 4 }), select_exact(w.value()));
    }

    #[test]
    fn default_policy_is_hardware_estimate() {
        assert_eq!(Selection::default(), Selection::Estimate { frac_digits: 3 });
    }
}
