//! Online (digit-serial, MSD-first) division.
//!
//! The paper's background motivates online arithmetic with the observation
//! that conventional operators disagree on computing direction — addition
//! and multiplication are LSD-first while division and square root are
//! *inherently* MSD-first — and that a uniform MSD-first discipline lets
//! operations overlap. This module supplies the division half of that
//! story: a radix-2 online divider with online delay δ = 4.
//!
//! Recurrence (residual `w[j] = 2^j (X[j] − Y[j]·Q[j])`):
//!
//! ```text
//! w̃[j] = 2·w[j−1] + 2^-δ (x_{j+δ} − y_{j+δ}·Q[j−1])
//! q_j  = sel(w̃[j])            (thresholds ±1/4)
//! w[j] = w̃[j] − q_j·Y[j]
//! ```
//!
//! With the divisor normalized to `y ∈ [1/2, 1)` and `|x| ≤ y/2`, the
//! residual obeys `|w[j]| ≤ (3/4)·y` (checked in tests), giving
//! `|x/y − Q| ≤ (3/4)·2^-N`.

use crate::online::select::Selection;
use ola_redundant::{Digit, OnTheFlyConverter, SdNumber, Q};

/// The online delay δ of the radix-2 online divider.
pub const DELTA_DIV: usize = 4;

/// Result of an online division.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnlineQuotient {
    digits: Vec<Digit>,
    residual: Q,
    n: usize,
}

impl OnlineQuotient {
    /// Quotient digits `q_1 ..= q_N`, MSD first (digit `j` has weight
    /// `2^-j`).
    #[must_use]
    pub fn digits(&self) -> &[Digit] {
        &self.digits
    }

    /// The exact quotient value `Q = Σ q_j 2^-j`.
    #[must_use]
    pub fn value(&self) -> Q {
        let mut c = OnTheFlyConverter::new();
        for &d in &self.digits {
            c.push(d);
        }
        c.value()
    }

    /// The final scaled residual `w[N] = 2^N (x − y·Q)` (exact).
    #[must_use]
    pub fn residual(&self) -> Q {
        self.residual
    }

    /// The exact error `x − y·Q` implied by the residual.
    #[must_use]
    pub fn remainder(&self) -> Q {
        self.residual >> self.n as u32
    }
}

/// Error returned when the operands violate the divider's input contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DivideDomainError {
    /// The dividend.
    pub x: Q,
    /// The divisor.
    pub y: Q,
}

impl std::fmt::Display for DivideDomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "online division requires y in [1/2, 1) and |x| <= y/2; got x = {}, y = {}",
            self.x, self.y
        )
    }
}

impl std::error::Error for DivideDomainError {}

/// Divides `x` by `y` with the radix-2 online recurrence.
///
/// Both operands are `N`-digit signed-digit fractions. The quotient has `N`
/// digits and satisfies `|x/y − Q| ≤ (3/4)·2^-N`.
///
/// The `policy` selects how the residual estimate is compared: hardware
/// would use a truncated estimate; [`Selection::Exact`] compares the exact
/// residual (both converge; the tests exercise both).
///
/// # Errors
///
/// Returns [`DivideDomainError`] unless `y ∈ [1/2, 1)` and `|x| ≤ y/2`.
///
/// # Panics
///
/// Panics if the operands differ in length or are empty.
pub fn online_div(
    x: &SdNumber,
    y: &SdNumber,
    policy: Selection,
) -> Result<OnlineQuotient, DivideDomainError> {
    let n = x.len();
    assert_eq!(n, y.len(), "operands must have equal digit counts");
    assert!(n > 0, "operands must be non-empty");
    let (xv, yv) = (x.value(), y.value());
    let domain_ok =
        yv.cmp_frac(1, 1).is_ge() && yv.cmp_frac(1, 0).is_lt() && (xv.abs() + xv.abs()) <= yv;
    if !domain_ok {
        return Err(DivideDomainError { x: xv, y: yv });
    }

    let delta = DELTA_DIV;
    let mut w = x.prefix_value(delta); // w[0] = X[0]
    let mut q_prefix = Q::ZERO; // Q[j-1]
    let mut digits = Vec::with_capacity(n);
    for j in 1..=n {
        let idx = j + delta;
        let xd = x.digit(idx);
        let yd = y.digit(idx);
        let w_tilde = (w << 1)
            + ((Q::from_int(i64::from(xd.value())) - q_prefix * i64::from(yd.value()))
                >> delta as u32);
        let qj = select_quarter(w_tilde, policy);
        let y_j = y.prefix_value(idx);
        w = w_tilde - y_j * i64::from(qj.value());
        q_prefix += qj.weighted(j as u32);
        digits.push(qj);
    }
    Ok(OnlineQuotient { digits, residual: w, n })
}

/// Selection with thresholds ±1/4 (division needs tighter thresholds than
/// the multiplier because the subtracted divisor multiple is ≥ 1/2).
fn select_quarter(w: Q, policy: Selection) -> Digit {
    let v = match policy {
        Selection::Exact => w,
        Selection::Estimate { frac_digits } => truncate(w, frac_digits as u32),
    };
    if v.cmp_frac(1, 2).is_ge() {
        Digit::One
    } else if v.cmp_frac(-1, 2).is_ge() {
        Digit::Zero
    } else {
        Digit::NegOne
    }
}

fn truncate(w: Q, frac_bits: u32) -> Q {
    let shifted = w << frac_bits;
    Q::new(shifted.numerator() >> shifted.scale(), 0) >> frac_bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_redundant::random;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn draw_domain(rng: &mut ChaCha8Rng, n: usize) -> (SdNumber, SdNumber) {
        // y uniform in [1/2, 1), x uniform with |x| ≤ y/2.
        let scale = 1i128 << n;
        let y_raw = rng.gen_range(scale / 2..scale);
        let half = y_raw / 2;
        let x_raw = rng.gen_range(-half..=half);
        (
            SdNumber::from_value(Q::new(x_raw, n as u32), n).expect("x fits"),
            SdNumber::from_value(Q::new(y_raw, n as u32), n).expect("y fits"),
        )
    }

    #[test]
    fn quotient_accuracy_random() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [6usize, 8, 12, 16, 24] {
            for _ in 0..200 {
                let (x, y) = draw_domain(&mut rng, n);
                for policy in [Selection::Exact, Selection::Estimate { frac_digits: 5 }] {
                    let q = online_div(&x, &y, policy).expect("in domain");
                    // |x − yQ| ≤ (3/4)·y·2^-n ≤ (3/4)·2^-n.
                    let err = (x.value() - y.value() * q.value()).abs();
                    assert!(
                        err <= Q::new(3, 2) >> n as u32,
                        "x={x:?} y={y:?} err={err:?} ({policy:?})"
                    );
                    assert_eq!(x.value() - y.value() * q.value(), q.remainder());
                }
            }
        }
    }

    #[test]
    fn residual_invariant_stays_bounded() {
        // |w[j]| ≤ (3/4)y throughout: exercised by the final residual over a
        // broad sample (the recurrence cannot recover from an interior
        // violation, so a bounded final residual over many runs is strong
        // evidence; interior checks would need exposing internals).
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..500 {
            let (x, y) = draw_domain(&mut rng, 10);
            let q = online_div(&x, &y, Selection::Exact).expect("in domain");
            assert!(
                q.residual().abs() <= (y.value() * 3) >> 2,
                "residual {:?} exceeds (3/4)y for x={x:?} y={y:?}",
                q.residual()
            );
        }
    }

    #[test]
    fn exact_quotients_come_out_exact() {
        // x = y/2 → q = 0.1 exactly (for even y values).
        let n = 8;
        let y = SdNumber::from_value(Q::new(200, 8), n).unwrap();
        let x = SdNumber::from_value(Q::new(100, 8), n).unwrap();
        let q = online_div(&x, &y, Selection::Exact).unwrap();
        assert_eq!(q.value(), Q::new(1, 1));
        assert_eq!(q.remainder(), Q::ZERO);
    }

    #[test]
    fn domain_violations_are_rejected() {
        let n = 8;
        let ok_y = SdNumber::from_value(Q::new(180, 8), n).unwrap();
        let big_x = SdNumber::from_value(Q::new(120, 8), n).unwrap(); // > y/2
        assert!(online_div(&big_x, &ok_y, Selection::Exact).is_err());
        let small_y = SdNumber::from_value(Q::new(100, 8), n).unwrap(); // < 1/2
        let x = SdNumber::from_value(Q::new(30, 8), n).unwrap();
        let e = online_div(&x, &small_y, Selection::Exact).unwrap_err();
        assert!(e.to_string().contains("online division requires"));
    }

    #[test]
    fn digit_uniform_dividends_also_work() {
        // Redundant (non-canonical) encodings in the domain still divide.
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 10;
        let mut tested = 0;
        while tested < 50 {
            let x = random::uniform_digits(&mut rng, n);
            let y = random::uniform_digits(&mut rng, n);
            match online_div(&x, &y, Selection::Exact) {
                Ok(q) => {
                    let err = (x.value() - y.value() * q.value()).abs();
                    assert!(err <= Q::new(3, 2) >> n as u32);
                    tested += 1;
                }
                Err(_) => continue, // outside the contract; fine
            }
        }
    }

    #[test]
    fn online_delay_is_four() {
        assert_eq!(DELTA_DIV, 4);
    }
}
