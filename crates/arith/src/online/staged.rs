//! Stage-wave timing model of the unrolled online multiplier.
//!
//! Section 3 of the paper models "the delay of each stage within an online
//! multiplier to be a constant value μ" and asks what a register sampling
//! the outputs after `b = ⌈Ts/μ⌉` stage delays (Eq. (4)) captures. This
//! module implements that timing semantics exactly: the multiplier is a
//! cascade of `N + δ` stages, every stage is a delay-μ element, all
//! residuals start at zero (the paper's reset assumption), and the cascade
//! is iterated as a synchronous wave — after `k` waves, stage `j`'s outputs
//! reflect residual propagation through at most `k` stages.
//!
//! * wave `k = N + δ` (or a detected fixpoint) ⇒ the settled, correct
//!   product — identical to [`bittrue_mult`](crate::online::bittrue_mult);
//! * wave `k = b < settling` ⇒ the overclocked sample, with exactly the
//!   truncated-chain errors the paper's probabilistic model describes.

use crate::online::{bittrue::digits_value, om_stage, Selection, DELTA};
use ola_redundant::{BsVector, Digit, SdNumber, Q};

/// The unrolled multiplier viewed as a cascade of delay-μ stages.
#[derive(Clone, Debug)]
pub struct StagedMultiplier {
    x: SdNumber,
    y: SdNumber,
    policy: Selection,
}

/// The state of every inter-stage residual and output digit after some
/// number of wave steps.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WaveState {
    /// `p[s]` = residual entering stage `s` (stage 0 is `j = −δ`).
    p: Vec<BsVector>,
    /// `z[s]` = output digit of stage `s` as currently latched.
    z: Vec<Digit>,
}

impl WaveState {
    /// The output digits `z_{−δ} ..= z_{N−1}` currently visible.
    #[must_use]
    pub fn digits(&self) -> &[Digit] {
        &self.z
    }

    /// The value of the currently visible output digits.
    #[must_use]
    pub fn value(&self) -> Q {
        digits_value(&self.z)
    }
}

impl StagedMultiplier {
    /// A staged multiplier for equal-length operands.
    ///
    /// # Panics
    ///
    /// Panics if the operands differ in length or are empty.
    #[must_use]
    pub fn new(x: SdNumber, y: SdNumber, policy: Selection) -> Self {
        assert_eq!(x.len(), y.len(), "operands must have equal digit counts");
        assert!(!x.is_empty(), "operands must be non-empty");
        StagedMultiplier { x, y, policy }
    }

    /// Number of stages, `N + δ`.
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.x.len() + DELTA
    }

    /// The reset state: every residual and output digit is zero.
    #[must_use]
    pub fn initial(&self) -> WaveState {
        WaveState {
            p: vec![BsVector::zero(0, 0); self.stage_count() + 1],
            z: vec![Digit::Zero; self.stage_count()],
        }
    }

    /// One synchronous wave step: every stage recomputes from the residual
    /// its predecessor produced on the *previous* step (each stage is one μ
    /// of delay).
    #[must_use]
    pub fn step(&self, state: &WaveState) -> WaveState {
        let delta = DELTA as i32;
        let count = self.stage_count();
        let mut p = Vec::with_capacity(count + 1);
        let mut z = Vec::with_capacity(count);
        p.push(BsVector::zero(0, 0));
        for s in 0..count {
            let j = s as i32 - delta;
            let io = om_stage(&self.x, &self.y, j, &state.p[s], self.policy);
            p.push(io.p_out);
            z.push(io.z);
        }
        WaveState { p, z }
    }

    /// Runs `ticks` wave steps from reset and returns the sampled state —
    /// what registers clocked at `Ts = ticks · μ` capture.
    #[must_use]
    pub fn sample(&self, ticks: usize) -> WaveState {
        let mut s = self.initial();
        for _ in 0..ticks {
            s = self.step(&s);
        }
        s
    }

    /// Runs to the fixpoint and returns every intermediate state:
    /// `history()[k]` is the state after `k` waves (`history()[0]` is the
    /// reset state, the last entry is settled).
    ///
    /// The fixpoint is always reached within `N + δ + 1` steps.
    #[must_use]
    pub fn history(&self) -> Vec<WaveState> {
        let mut out = vec![self.initial()];
        loop {
            let next = self.step(out.last().expect("non-empty"));
            if *out.last().expect("non-empty") == next {
                return out;
            }
            out.push(next);
            assert!(
                out.len() <= self.stage_count() + 2,
                "wave failed to settle within N + δ + 1 steps"
            );
        }
    }

    /// The settled (timing-violation-free) state.
    #[must_use]
    pub fn settled(&self) -> WaveState {
        self.history().pop().expect("history is never empty")
    }

    /// Number of wave steps until the *output digits* stop changing — the
    /// multiplier's actual settling time in units of μ for these operands.
    /// Sampling with `b ≥ settling_ticks()` is error-free.
    #[must_use]
    pub fn settling_ticks(&self) -> usize {
        let hist = self.history();
        let final_z = hist.last().expect("non-empty").z.clone();
        hist.iter().rposition(|s| s.z != final_z).map_or(0, |k| k + 1)
    }

    /// The per-tick sampled values: entry `b` is the output value when
    /// sampled after `b` waves. The last entry is the correct product.
    #[must_use]
    pub fn sampled_values(&self) -> Vec<Q> {
        self.history().iter().map(WaveState::value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::bittrue_mult;
    use ola_redundant::random;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mk(n: usize, seed: u64) -> (SdNumber, SdNumber) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (random::uniform_digits(&mut rng, n), random::uniform_digits(&mut rng, n))
    }

    #[test]
    fn settled_state_matches_bittrue() {
        for (n, seed) in [(4usize, 1u64), (8, 2), (8, 3), (12, 4), (16, 5)] {
            let (x, y) = mk(n, seed);
            let sm = StagedMultiplier::new(x.clone(), y.clone(), Selection::default());
            let settled = sm.settled();
            let bt = bittrue_mult(&x, &y, Selection::default());
            assert_eq!(settled.digits(), &bt.digits[..], "n={n} seed={seed}");
            assert_eq!(settled.value(), bt.value());
        }
    }

    #[test]
    fn settles_within_stage_count_waves() {
        for (n, seed) in [(4usize, 11u64), (8, 12), (12, 13)] {
            let (x, y) = mk(n, seed);
            let sm = StagedMultiplier::new(x, y, Selection::default());
            assert!(sm.settling_ticks() <= sm.stage_count());
        }
    }

    #[test]
    fn sampling_after_settling_is_error_free() {
        let (x, y) = mk(8, 21);
        let sm = StagedMultiplier::new(x, y, Selection::default());
        let settle = sm.settling_ticks();
        let correct = sm.settled().value();
        for b in settle..=sm.stage_count() {
            assert_eq!(sm.sample(b).value(), correct, "b={b}");
        }
    }

    #[test]
    fn undersampling_errors_are_in_low_digits() {
        // The headline property: a too-early sample differs from the correct
        // product by at most the weight of the digits the truncated chains
        // could not update. With b ≥ δ+1 waves the first output digits are
        // correct, so the error is bounded by ~2^{-(b-δ-1)} — decaying
        // geometrically in b — while remaining nonzero for some b < settle.
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for _ in 0..40 {
            let x = random::uniform_digits(&mut rng, 12);
            let y = random::uniform_digits(&mut rng, 12);
            let sm = StagedMultiplier::new(x, y, Selection::default());
            let vals = sm.sampled_values();
            let correct = *vals.last().unwrap();
            for (b, v) in vals.iter().enumerate().skip(DELTA + 1) {
                let err = (*v - correct).abs();
                // Error bound: digits with weight ≥ 2^{-(b-δ)} have settled…
                // use a loose but meaningful geometric envelope.
                let envelope = Q::new(4, 0) >> (b as u32).saturating_sub(DELTA as u32 + 1);
                assert!(
                    err <= envelope,
                    "b={b}: error {} exceeds envelope {}",
                    err.to_f64(),
                    envelope.to_f64()
                );
            }
        }
    }

    #[test]
    fn initial_state_is_all_zero() {
        let (x, y) = mk(6, 41);
        let sm = StagedMultiplier::new(x, y, Selection::default());
        let s0 = sm.initial();
        assert_eq!(s0.value(), Q::ZERO);
        assert!(s0.digits().iter().all(|d| d.is_zero()));
        assert_eq!(sm.sample(0), s0);
    }

    #[test]
    fn zero_operands_settle_instantly() {
        let sm = StagedMultiplier::new(SdNumber::zero(8), SdNumber::zero(8), Selection::default());
        assert_eq!(sm.settling_ticks(), 0);
        assert_eq!(sm.settled().value(), Q::ZERO);
    }

    #[test]
    fn history_is_consistent_with_sample() {
        let (x, y) = mk(8, 51);
        let sm = StagedMultiplier::new(x, y, Selection::default());
        let hist = sm.history();
        for (k, state) in hist.iter().enumerate() {
            assert_eq!(sm.sample(k), *state, "tick {k}");
        }
    }

    #[test]
    fn exact_selection_also_settles() {
        let (x, y) = mk(8, 61);
        let sm = StagedMultiplier::new(x.clone(), y.clone(), Selection::Exact);
        let bt = bittrue_mult(&x, &y, Selection::Exact);
        assert_eq!(sm.settled().digits(), &bt.digits[..]);
    }
}
