//! Bit-true model of the digit-parallel (unrolled) online multiplier.
//!
//! [`om_stage`] reproduces, signal for signal, one stage of Figure 3(b):
//!
//! ```text
//!            x_{j+δ+1}   Y[j+1]      y_{j+δ+1}   X[j]
//!                 └─ SDVM ─┘              └─ SDVM ─┘
//!                     A                        B
//!                     └───── online adder ─────┘        (2 FA levels)
//!                                H = 2^-δ (A + B)
//!     P[j] ───────────── online adder ──────────┘        (2 FA levels)
//!                                W
//!                     ┌── selection (short CPA) ──→ z_j
//!                     └── P[j+1] = 2(W − z_j)     (top-digit recode + wires)
//! ```
//!
//! All vectors are borrow-save ([`BsVector`]); the residual update is the
//! *top-digit recode*: only the digits covered by the selection estimate are
//! rewritten, the tail passes through as wires. This is what makes the
//! residual path two FA delays per stage — the `μ` of the paper's timing
//! model — and it is why residual chains propagate MSD→LSD.

use crate::online::{bs_add, estimate, select_exact, Selection, DELTA};
use ola_redundant::{BsVector, Digit, SdNumber, Q};

/// All signals produced by one multiplier stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageIo {
    /// The residual `W[j] = P[j] + H[j]` (borrow-save).
    pub w: BsVector,
    /// The next residual `P[j+1] = 2(W[j] − z_j)` (borrow-save).
    pub p_out: BsVector,
    /// The selected output digit `z_j`.
    pub z: Digit,
    /// True if the top-digit recode saturated (impossible for estimate
    /// granularities ≥ 3; possible in under-provisioned ablations).
    pub saturated: bool,
}

/// Granularity (fractional positions) used for the residual top-digit
/// recode under a policy. The recode must at least cover the provably
/// convergent estimate width.
fn recode_granularity(policy: Selection) -> i32 {
    match policy {
        Selection::Exact => 3,
        Selection::Estimate { frac_digits } => frac_digits,
    }
}

/// Evaluates stage `j ∈ −δ ..= n−1` of an `n`-digit unrolled multiplier.
///
/// `p_in` is the incoming residual `P[j]` (pass an empty vector for the
/// first stage). Operand digits beyond position `j+δ+1` are not examined —
/// exactly like the hardware's appending logic.
#[must_use]
pub fn om_stage(x: &SdNumber, y: &SdNumber, j: i32, p_in: &BsVector, policy: Selection) -> StageIo {
    let delta = DELTA as i32;
    debug_assert!(j >= -delta && j < x.len() as i32);
    let idx = (j + delta + 1) as usize;
    let xd = x.digit(idx);
    let yd = y.digit(idx);

    // Online input windows (appending logic): Y[j+1] ends at digit j+δ+1,
    // X[j] one earlier. Digits beyond N are zero, so clamp the windows.
    let y_j1 = operand_window(y, idx);
    let x_j = operand_window(x, idx - 1);

    // SDVM: ±operand or zero, selected by the newly appended digit.
    let a = sdvm(xd, &y_j1);
    let b = sdvm(yd, &x_j);

    // H = 2^-δ (A + B); the online adder gives msd position 0, shifting by
    // δ moves it to position δ.
    let h = bs_add(&a, &b).shifted(-(delta));

    // W = P + H.
    let w = bs_add(p_in, &h);

    // Selection.
    let t = recode_granularity(policy);
    let w_hat = estimate(&w, t);
    let z = match policy {
        Selection::Exact => select_exact(w.value()),
        Selection::Estimate { .. } => select_exact(w_hat),
    };

    // P[j+1] = 2(W − z): recode the estimate window, wire the tail through.
    let (p_out, saturated) = residual_update(&w, w_hat, z, t);
    debug_assert!(
        saturated || p_out.value() == (w.value() - z.weighted(0)) << 1,
        "residual update must be exact"
    );
    StageIo { w, p_out, z, saturated }
}

fn operand_window(v: &SdNumber, last_digit: usize) -> BsVector {
    let len = last_digit.min(v.len());
    let mut out = BsVector::zero(1, len);
    for i in 1..=len {
        out.set_digit(i as i32, v.digit(i));
    }
    out
}

/// Signed-digit vector multiple: `d · v` for `d ∈ {−1, 0, 1}` — muxes only.
#[must_use]
pub fn sdvm(d: Digit, v: &BsVector) -> BsVector {
    match d {
        Digit::Zero => BsVector::zero(v.msd_pos(), v.len()),
        Digit::One => v.clone(),
        Digit::NegOne => v.negated(),
    }
}

fn residual_update(w: &BsVector, w_hat: Q, z: Digit, t: i32) -> (BsVector, bool) {
    // E' = (Ŵ − z) · 2^t: the new top of the residual, in units of 2^-t.
    let e_prime = (w_hat - z.weighted(0))
        .scaled_to(t as u32)
        .expect("estimate is a multiple of 2^-t by construction");
    let max = (1i128 << t) - 1;
    let saturated = e_prime.abs() > max;
    let e = e_prime.clamp(-max, max);

    // P' spans positions 0 .. max(t, w.end − 1) − 1 … concretely:
    //  positions 0..=t−1   ← greedy recode of E'
    //  positions t..       ← W's positions t+1.. shifted up by one.
    let tail_end = (w.end_pos() - 1).max(t);
    let mut p = BsVector::zero(0, tail_end as usize);
    let mut rem = e; // remainder in units of 2^-t
    for pos in 0..t {
        let weight = 1i128 << (t - 1 - pos); // 2^{t-1-pos} units
        let d = if 2 * rem >= weight {
            Digit::One
        } else if 2 * rem <= -weight {
            Digit::NegOne
        } else {
            Digit::Zero
        };
        rem -= i128::from(d.value()) * weight;
        p.set_digit(pos, d);
    }
    debug_assert!(saturated || rem == 0, "recode must be exact when in range");
    let _ = rem;
    for pos in t..tail_end {
        let (bp, bn) = w.bits(pos + 1);
        p.set_bits(pos, bp, bn);
    }
    (p, saturated)
}

/// Signed-digit vector multiple at the *bit* level: mirrors
/// [`sdvm_gates`](crate::synth::sdvm_gates) per position —
/// `p_out = dp·vp ∨ dn·vn`, `n_out = dp·vn ∨ dn·vp`.
///
/// For canonical digits this agrees with [`sdvm`]; for the non-canonical
/// `(1, 1)` selector (value 0) it produces `p == n` planes rather than the
/// all-zero encoding, exactly like the hardware. Downstream estimates see
/// different digit patterns for the two encodings, so a reference model of
/// the *netlist* must use this form.
#[must_use]
pub fn sdvm_bits(dp: bool, dn: bool, v: &BsVector) -> BsVector {
    let mut out = BsVector::zero(v.msd_pos(), v.len());
    for i in 0..v.len() {
        let pos = v.msd_pos() + i as i32;
        let (vp, vn) = v.bits(pos);
        out.set_bits(pos, (dp && vp) || (dn && vn), (dp && vn) || (dn && vp));
    }
    out
}

/// The operand prefix window `positions 1..=k`, copied bit for bit
/// (appending logic: wires only).
fn window_bits(v: &BsVector, k: i32) -> BsVector {
    let len = k.max(0) as usize;
    let mut out = BsVector::zero(1, len);
    for pos in 1..=k {
        let (p, n) = v.bits(pos);
        out.set_bits(pos, p, n);
    }
    out
}

/// One stage of the unrolled multiplier, *bit-exact against the netlist*
/// for arbitrary borrow-save operand encodings (including non-canonical
/// `(1, 1)` digit pairs, which [`om_stage`]'s digit-valued operands cannot
/// express). Returns `(P[j+1], z_j)`.
///
/// Mirrors `online_multiplier_core` in `crate::synth`: the selection
/// integer `E = Ŵ·2^t` is accumulated from `W`'s *encoded* digit pairs,
/// the output digit uses thresholds `E ≥ 2^{t−1}` / `E < −2^{t−1}`, and
/// the top-digit recode uses `rem ≥ 2^{max(m−1,0)}` / `rem ≤ −2^{max(m−1,0)}`
/// — note the asymmetric strictness, copied from the gates.
#[must_use]
pub fn om_stage_bits(
    x: &BsVector,
    y: &BsVector,
    n: usize,
    j: i32,
    p_in: &BsVector,
    frac_digits: i32,
) -> (BsVector, Digit) {
    let delta = DELTA as i32;
    let t = frac_digits;
    debug_assert!(t >= 3 && j >= -delta && j < n as i32);
    let idx = j + delta + 1;
    let (xd_p, xd_n) = x.bits(idx);
    let (yd_p, yd_n) = y.bits(idx);

    // Appending logic: operand windows, then SDVM and the two online adders.
    let y_j1 = window_bits(y, idx.min(n as i32));
    let x_j = window_bits(x, (idx - 1).min(n as i32));
    let a = sdvm_bits(xd_p, xd_n, &y_j1);
    let b = sdvm_bits(yd_p, yd_n, &x_j);
    let h = bs_add(&a, &b).shifted(-delta);
    let w = bs_add(p_in, &h);

    // Selection: E = Ŵ·2^t from the *encoded* digits of W.
    let mut e: i128 = 0;
    for pos in w.msd_pos()..=t {
        let (p, n_) = w.bits(pos);
        e += (i128::from(p) - i128::from(n_)) << (t - pos) as u32;
    }
    let half = 1i128 << (t - 1) as u32;
    let z = Digit::from_bits(e >= half, e < -half);
    let mut rem = e - (i128::from(z.value()) << t as u32);

    // P[j+1] = 2(W − z): greedy top-digit recode + tail wires.
    let tail_end = (w.end_pos() - 1).max(t);
    let mut p = BsVector::zero(0, tail_end as usize);
    for pos in 0..t {
        let m = t - 1 - pos;
        let thr = 1i128 << m.max(1) as u32 >> 1; // 2^{max(m−1, 0)}
        let d = Digit::from_bits(rem >= thr, rem <= -thr);
        rem -= i128::from(d.value()) << m as u32;
        p.set_digit(pos, d);
    }
    for pos in t..tail_end {
        let (bp, bn) = w.bits(pos + 1);
        p.set_bits(pos, bp, bn);
    }
    (p, z)
}

/// Runs the full unrolled multiplier bit-true over *borrow-save* operands
/// (positions `1..=n`, any encoding). Bit-exact against the settled
/// outputs of the gate-level `online_multiplier_core` netlist — this is
/// the reference model `ola-synth` verifies elaborated datapaths against.
///
/// # Panics
///
/// Panics if the operands are empty, differ in window, do not start at
/// position 1, or if `frac_digits < 3`.
#[must_use]
pub fn bittrue_mult_bits(x: &BsVector, y: &BsVector, frac_digits: i32) -> Vec<Digit> {
    let n = x.len();
    assert_eq!(n, y.len(), "operands must have equal digit counts");
    assert!(n > 0, "operands must be non-empty");
    assert_eq!(x.msd_pos(), 1, "operands start at position 1");
    assert_eq!(y.msd_pos(), 1, "operands start at position 1");
    assert!(frac_digits >= 3, "selection estimate must cover ≥ 3 fractional digits");
    let delta = DELTA as i32;
    let mut p = BsVector::zero(0, 0);
    let mut digits = Vec::with_capacity(n + DELTA);
    for j in -delta..=(n as i32 - 1) {
        let (p_out, z) = om_stage_bits(x, y, n, j, &p, frac_digits);
        p = p_out;
        digits.push(z);
    }
    digits
}

/// Result of a bit-true digit-parallel multiplication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitTrueProduct {
    /// Output digits `z_j`, `j = −δ ..= n−1`, MSD first.
    pub digits: Vec<Digit>,
    /// Final residual `P[N]` (borrow-save).
    pub residual: BsVector,
    /// Per-stage signals, first stage first.
    pub stages: Vec<StageIo>,
}

impl BitTrueProduct {
    /// The exact value `Z = Σ z_j 2^-(j+1)`.
    #[must_use]
    pub fn value(&self) -> Q {
        digits_value(&self.digits)
    }
}

/// Value of a `z_{−δ} .. z_{n−1}` digit vector (digit `z_j` has weight
/// `2^-(j+1)`; see [`online_mult`](crate::online::online_mult)).
#[must_use]
pub fn digits_value(digits: &[Digit]) -> Q {
    let mut acc = Q::ZERO;
    for (k, &d) in digits.iter().enumerate() {
        let w = k as i32 - DELTA as i32 + 1; // digit weight 2^-w
        acc += match w.cmp(&0) {
            std::cmp::Ordering::Less => d.weighted(0) << (-w) as u32,
            _ => d.weighted(w as u32),
        };
    }
    acc
}

/// Runs the full unrolled multiplier (all `n + δ` stages) bit-true.
///
/// # Panics
///
/// Panics if the operands differ in length or are empty.
#[must_use]
pub fn bittrue_mult(x: &SdNumber, y: &SdNumber, policy: Selection) -> BitTrueProduct {
    let n = x.len();
    assert_eq!(n, y.len(), "operands must have equal digit counts");
    assert!(n > 0, "operands must be non-empty");
    let delta = DELTA as i32;
    let mut p = BsVector::zero(0, 0);
    let mut digits = Vec::with_capacity(n + DELTA);
    let mut stages = Vec::with_capacity(n + DELTA);
    for j in -delta..=(n as i32 - 1) {
        let io = om_stage(x, y, j, &p, policy);
        p = io.p_out.clone();
        digits.push(io.z);
        stages.push(io);
    }
    BitTrueProduct { digits, residual: p, stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_redundant::random;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check(x: &SdNumber, y: &SdNumber, policy: Selection, c_bound: Q) {
        let n = x.len();
        let prod = bittrue_mult(x, y, policy);
        let exact = x.value() * y.value();
        assert!(
            prod.stages.iter().all(|s| !s.saturated),
            "recode saturation at t≥3 must be impossible (x={x:?} y={y:?})"
        );
        // Residual bound |P[j]| ≤ c at every stage.
        for s in &prod.stages {
            assert!(
                s.p_out.value().abs() <= c_bound,
                "|P| = {} exceeds {:?} (x={x:?} y={y:?})",
                s.p_out.value(),
                c_bound
            );
            assert!(
                s.w.value().abs() <= c_bound + Q::new(1, 2),
                "|W| exceeds bound (x={x:?} y={y:?})"
            );
        }
        // Exact invariant: x·y − Z = 2^-(N+1) · P[N].
        assert_eq!(
            exact - prod.value(),
            prod.residual.value() >> (n as u32 + 1),
            "invariant broken (x={x:?} y={y:?})"
        );
    }

    #[test]
    fn exhaustive_three_digit_operands() {
        for n in 1..=3usize {
            let limit = (1i128 << n) - 1;
            for xv in -limit..=limit {
                for yv in -limit..=limit {
                    let x = SdNumber::from_value(Q::new(xv, n as u32), n).unwrap();
                    let y = SdNumber::from_value(Q::new(yv, n as u32), n).unwrap();
                    check(&x, &y, Selection::default(), Q::new(3, 1));
                    check(&x, &y, Selection::Exact, Q::new(3, 1));
                }
            }
        }
    }

    #[test]
    fn random_operands_all_widths() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for n in [4usize, 6, 8, 12, 16, 32] {
            for _ in 0..120 {
                let x = random::uniform_digits(&mut rng, n);
                let y = random::uniform_digits(&mut rng, n);
                check(&x, &y, Selection::default(), Q::new(3, 1));
            }
        }
    }

    #[test]
    fn random_noncanonical_encodings() {
        // Digit-uniform inputs exercise non-canonical encodings; also verify
        // against the golden recurrence *value* within the accuracy bound.
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        for _ in 0..300 {
            let x = random::uniform_digits(&mut rng, 8);
            let y = random::uniform_digits(&mut rng, 8);
            let bt = bittrue_mult(&x, &y, Selection::default());
            let exact = x.value() * y.value();
            let bound = Q::new(3, 1) >> 9;
            assert!((exact - bt.value()).abs() <= bound);
        }
    }

    #[test]
    fn wider_estimates_also_converge() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for t in [3u32, 4, 5, 8] {
            let policy = Selection::Estimate { frac_digits: t as i32 };
            for _ in 0..60 {
                let x = random::uniform_digits(&mut rng, 10);
                let y = random::uniform_digits(&mut rng, 10);
                check(&x, &y, policy, Q::new(3, 1));
            }
        }
    }

    #[test]
    fn sdvm_selects_plus_minus_zero() {
        let v = BsVector::from_sd(&SdNumber::from_value(Q::new(5, 3), 3).unwrap());
        assert_eq!(sdvm(Digit::One, &v).value(), v.value());
        assert_eq!(sdvm(Digit::NegOne, &v).value(), -v.value());
        assert_eq!(sdvm(Digit::Zero, &v).value(), Q::ZERO);
        assert_eq!(sdvm(Digit::Zero, &v).len(), v.len());
    }

    #[test]
    fn first_stage_accepts_empty_residual() {
        let x = SdNumber::from_value(Q::new(3, 3), 3).unwrap();
        let io = om_stage(&x, &x, -(DELTA as i32), &BsVector::zero(0, 0), Selection::default());
        assert_eq!(io.z, Digit::Zero, "first stage can never select ±1");
    }

    #[test]
    fn digits_value_weights_indices_correctly() {
        // z_{-3}..z_{1} = [0,0,0,1,-1]: value = 2^-1 - 2^-2 = 1/4.
        let digits = vec![Digit::Zero, Digit::Zero, Digit::Zero, Digit::One, Digit::NegOne];
        assert_eq!(digits_value(&digits), Q::new(1, 2));
    }

    /// Uniform random borrow-save bit pattern over positions `1..=n`,
    /// including the non-canonical `(1, 1)` encoding of zero.
    fn random_bs(rng: &mut ChaCha8Rng, n: usize) -> BsVector {
        use rand::Rng;
        let mut v = BsVector::zero(1, n);
        for pos in 1..=n as i32 {
            v.set_bits(pos, rng.gen(), rng.gen());
        }
        v
    }

    #[test]
    fn bits_model_matches_digit_model_on_canonical_operands() {
        // On canonical (SD-encoded) operands the two models see identical
        // digit patterns, so their outputs agree digit for digit.
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        for n in [1usize, 2, 4, 7, 12] {
            for t in [3i32, 4, 6] {
                for _ in 0..40 {
                    let x = random::uniform_digits(&mut rng, n);
                    let y = random::uniform_digits(&mut rng, n);
                    let got = bittrue_mult_bits(&BsVector::from_sd(&x), &BsVector::from_sd(&y), t);
                    let want = bittrue_mult(&x, &y, Selection::Estimate { frac_digits: t });
                    assert_eq!(got, want.digits, "n={n} t={t} x={x:?} y={y:?}");
                }
            }
        }
    }

    #[test]
    fn bits_model_converges_on_noncanonical_encodings() {
        // (1, 1) pairs are zeros with a different encoding: the digit-level
        // model cannot express them, but the bit-level recurrence must still
        // converge to the product within the online accuracy bound.
        let mut rng = ChaCha8Rng::seed_from_u64(32);
        for n in [2usize, 4, 8] {
            for _ in 0..150 {
                let x = random_bs(&mut rng, n);
                let y = random_bs(&mut rng, n);
                let z = digits_value(&bittrue_mult_bits(&x, &y, 3));
                let exact = x.value() * y.value();
                let bound = Q::new(3, 1) >> (n as u32 + 1);
                assert!((exact - z).abs() <= bound, "x={x:?} y={y:?} z={z:?} exact={exact:?}");
            }
        }
    }

    #[test]
    fn sdvm_bits_matches_digit_sdvm_on_canonical_selectors() {
        let v = BsVector::from_sd(&SdNumber::from_value(Q::new(5, 3), 3).unwrap());
        for d in [Digit::Zero, Digit::One, Digit::NegOne] {
            let (p, n) = d.to_bits();
            assert_eq!(sdvm_bits(p, n, &v), sdvm(d, &v), "digit {d:?}");
        }
        // The (1, 1) selector ors the planes together: value 0, p == n.
        let s = sdvm_bits(true, true, &v);
        assert_eq!(s.value(), Q::ZERO);
        for pos in 1..=3 {
            let (p, n) = s.bits(pos);
            assert_eq!(p, n, "pos {pos}");
        }
        let (vp, vn) = v.bits(1);
        let (sp, _) = s.bits(1);
        assert_eq!(sp, vp || vn);
    }

    #[test]
    fn residual_tail_passes_through_unchanged() {
        // A deep tail digit of W must appear, shifted, in P'.
        let mut w = BsVector::zero(-1, 10); // positions -1..=8
        w.set_digit(7, Digit::One);
        let (p, sat) = residual_update(&w, Q::ZERO, Digit::Zero, 3);
        assert!(!sat);
        assert_eq!(p.digit(6), Digit::One, "W pos 7 → P pos 6");
        assert_eq!(p.value(), w.value() << 1);
    }
}
