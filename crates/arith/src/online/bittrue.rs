//! Bit-true model of the digit-parallel (unrolled) online multiplier.
//!
//! [`om_stage`] reproduces, signal for signal, one stage of Figure 3(b):
//!
//! ```text
//!            x_{j+δ+1}   Y[j+1]      y_{j+δ+1}   X[j]
//!                 └─ SDVM ─┘              └─ SDVM ─┘
//!                     A                        B
//!                     └───── online adder ─────┘        (2 FA levels)
//!                                H = 2^-δ (A + B)
//!     P[j] ───────────── online adder ──────────┘        (2 FA levels)
//!                                W
//!                     ┌── selection (short CPA) ──→ z_j
//!                     └── P[j+1] = 2(W − z_j)     (top-digit recode + wires)
//! ```
//!
//! All vectors are borrow-save ([`BsVector`]); the residual update is the
//! *top-digit recode*: only the digits covered by the selection estimate are
//! rewritten, the tail passes through as wires. This is what makes the
//! residual path two FA delays per stage — the `μ` of the paper's timing
//! model — and it is why residual chains propagate MSD→LSD.

use crate::online::{bs_add, estimate, select_exact, Selection, DELTA};
use ola_redundant::{BsVector, Digit, SdNumber, Q};

/// All signals produced by one multiplier stage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageIo {
    /// The residual `W[j] = P[j] + H[j]` (borrow-save).
    pub w: BsVector,
    /// The next residual `P[j+1] = 2(W[j] − z_j)` (borrow-save).
    pub p_out: BsVector,
    /// The selected output digit `z_j`.
    pub z: Digit,
    /// True if the top-digit recode saturated (impossible for estimate
    /// granularities ≥ 3; possible in under-provisioned ablations).
    pub saturated: bool,
}

/// Granularity (fractional positions) used for the residual top-digit
/// recode under a policy. The recode must at least cover the provably
/// convergent estimate width.
fn recode_granularity(policy: Selection) -> i32 {
    match policy {
        Selection::Exact => 3,
        Selection::Estimate { frac_digits } => frac_digits,
    }
}

/// Evaluates stage `j ∈ −δ ..= n−1` of an `n`-digit unrolled multiplier.
///
/// `p_in` is the incoming residual `P[j]` (pass an empty vector for the
/// first stage). Operand digits beyond position `j+δ+1` are not examined —
/// exactly like the hardware's appending logic.
#[must_use]
pub fn om_stage(x: &SdNumber, y: &SdNumber, j: i32, p_in: &BsVector, policy: Selection) -> StageIo {
    let delta = DELTA as i32;
    debug_assert!(j >= -delta && j < x.len() as i32);
    let idx = (j + delta + 1) as usize;
    let xd = x.digit(idx);
    let yd = y.digit(idx);

    // Online input windows (appending logic): Y[j+1] ends at digit j+δ+1,
    // X[j] one earlier. Digits beyond N are zero, so clamp the windows.
    let y_j1 = operand_window(y, idx);
    let x_j = operand_window(x, idx - 1);

    // SDVM: ±operand or zero, selected by the newly appended digit.
    let a = sdvm(xd, &y_j1);
    let b = sdvm(yd, &x_j);

    // H = 2^-δ (A + B); the online adder gives msd position 0, shifting by
    // δ moves it to position δ.
    let h = bs_add(&a, &b).shifted(-(delta));

    // W = P + H.
    let w = bs_add(p_in, &h);

    // Selection.
    let t = recode_granularity(policy);
    let w_hat = estimate(&w, t);
    let z = match policy {
        Selection::Exact => select_exact(w.value()),
        Selection::Estimate { .. } => select_exact(w_hat),
    };

    // P[j+1] = 2(W − z): recode the estimate window, wire the tail through.
    let (p_out, saturated) = residual_update(&w, w_hat, z, t);
    debug_assert!(
        saturated || p_out.value() == (w.value() - z.weighted(0)) << 1,
        "residual update must be exact"
    );
    StageIo { w, p_out, z, saturated }
}

fn operand_window(v: &SdNumber, last_digit: usize) -> BsVector {
    let len = last_digit.min(v.len());
    let mut out = BsVector::zero(1, len);
    for i in 1..=len {
        out.set_digit(i as i32, v.digit(i));
    }
    out
}

/// Signed-digit vector multiple: `d · v` for `d ∈ {−1, 0, 1}` — muxes only.
#[must_use]
pub fn sdvm(d: Digit, v: &BsVector) -> BsVector {
    match d {
        Digit::Zero => BsVector::zero(v.msd_pos(), v.len()),
        Digit::One => v.clone(),
        Digit::NegOne => v.negated(),
    }
}

fn residual_update(w: &BsVector, w_hat: Q, z: Digit, t: i32) -> (BsVector, bool) {
    // E' = (Ŵ − z) · 2^t: the new top of the residual, in units of 2^-t.
    let e_prime = (w_hat - z.weighted(0))
        .scaled_to(t as u32)
        .expect("estimate is a multiple of 2^-t by construction");
    let max = (1i128 << t) - 1;
    let saturated = e_prime.abs() > max;
    let e = e_prime.clamp(-max, max);

    // P' spans positions 0 .. max(t, w.end − 1) − 1 … concretely:
    //  positions 0..=t−1   ← greedy recode of E'
    //  positions t..       ← W's positions t+1.. shifted up by one.
    let tail_end = (w.end_pos() - 1).max(t);
    let mut p = BsVector::zero(0, tail_end as usize);
    let mut rem = e; // remainder in units of 2^-t
    for pos in 0..t {
        let weight = 1i128 << (t - 1 - pos); // 2^{t-1-pos} units
        let d = if 2 * rem >= weight {
            Digit::One
        } else if 2 * rem <= -weight {
            Digit::NegOne
        } else {
            Digit::Zero
        };
        rem -= i128::from(d.value()) * weight;
        p.set_digit(pos, d);
    }
    debug_assert!(saturated || rem == 0, "recode must be exact when in range");
    let _ = rem;
    for pos in t..tail_end {
        let (bp, bn) = w.bits(pos + 1);
        p.set_bits(pos, bp, bn);
    }
    (p, saturated)
}

/// Result of a bit-true digit-parallel multiplication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitTrueProduct {
    /// Output digits `z_j`, `j = −δ ..= n−1`, MSD first.
    pub digits: Vec<Digit>,
    /// Final residual `P[N]` (borrow-save).
    pub residual: BsVector,
    /// Per-stage signals, first stage first.
    pub stages: Vec<StageIo>,
}

impl BitTrueProduct {
    /// The exact value `Z = Σ z_j 2^-(j+1)`.
    #[must_use]
    pub fn value(&self) -> Q {
        digits_value(&self.digits)
    }
}

/// Value of a `z_{−δ} .. z_{n−1}` digit vector (digit `z_j` has weight
/// `2^-(j+1)`; see [`online_mult`](crate::online::online_mult)).
#[must_use]
pub fn digits_value(digits: &[Digit]) -> Q {
    let mut acc = Q::ZERO;
    for (k, &d) in digits.iter().enumerate() {
        let w = k as i32 - DELTA as i32 + 1; // digit weight 2^-w
        acc += match w.cmp(&0) {
            std::cmp::Ordering::Less => d.weighted(0) << (-w) as u32,
            _ => d.weighted(w as u32),
        };
    }
    acc
}

/// Runs the full unrolled multiplier (all `n + δ` stages) bit-true.
///
/// # Panics
///
/// Panics if the operands differ in length or are empty.
#[must_use]
pub fn bittrue_mult(x: &SdNumber, y: &SdNumber, policy: Selection) -> BitTrueProduct {
    let n = x.len();
    assert_eq!(n, y.len(), "operands must have equal digit counts");
    assert!(n > 0, "operands must be non-empty");
    let delta = DELTA as i32;
    let mut p = BsVector::zero(0, 0);
    let mut digits = Vec::with_capacity(n + DELTA);
    let mut stages = Vec::with_capacity(n + DELTA);
    for j in -delta..=(n as i32 - 1) {
        let io = om_stage(x, y, j, &p, policy);
        p = io.p_out.clone();
        digits.push(io.z);
        stages.push(io);
    }
    BitTrueProduct { digits, residual: p, stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_redundant::random;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check(x: &SdNumber, y: &SdNumber, policy: Selection, c_bound: Q) {
        let n = x.len();
        let prod = bittrue_mult(x, y, policy);
        let exact = x.value() * y.value();
        assert!(
            prod.stages.iter().all(|s| !s.saturated),
            "recode saturation at t≥3 must be impossible (x={x:?} y={y:?})"
        );
        // Residual bound |P[j]| ≤ c at every stage.
        for s in &prod.stages {
            assert!(
                s.p_out.value().abs() <= c_bound,
                "|P| = {} exceeds {:?} (x={x:?} y={y:?})",
                s.p_out.value(),
                c_bound
            );
            assert!(
                s.w.value().abs() <= c_bound + Q::new(1, 2),
                "|W| exceeds bound (x={x:?} y={y:?})"
            );
        }
        // Exact invariant: x·y − Z = 2^-(N+1) · P[N].
        assert_eq!(
            exact - prod.value(),
            prod.residual.value() >> (n as u32 + 1),
            "invariant broken (x={x:?} y={y:?})"
        );
    }

    #[test]
    fn exhaustive_three_digit_operands() {
        for n in 1..=3usize {
            let limit = (1i128 << n) - 1;
            for xv in -limit..=limit {
                for yv in -limit..=limit {
                    let x = SdNumber::from_value(Q::new(xv, n as u32), n).unwrap();
                    let y = SdNumber::from_value(Q::new(yv, n as u32), n).unwrap();
                    check(&x, &y, Selection::default(), Q::new(3, 1));
                    check(&x, &y, Selection::Exact, Q::new(3, 1));
                }
            }
        }
    }

    #[test]
    fn random_operands_all_widths() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for n in [4usize, 6, 8, 12, 16, 32] {
            for _ in 0..120 {
                let x = random::uniform_digits(&mut rng, n);
                let y = random::uniform_digits(&mut rng, n);
                check(&x, &y, Selection::default(), Q::new(3, 1));
            }
        }
    }

    #[test]
    fn random_noncanonical_encodings() {
        // Digit-uniform inputs exercise non-canonical encodings; also verify
        // against the golden recurrence *value* within the accuracy bound.
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        for _ in 0..300 {
            let x = random::uniform_digits(&mut rng, 8);
            let y = random::uniform_digits(&mut rng, 8);
            let bt = bittrue_mult(&x, &y, Selection::default());
            let exact = x.value() * y.value();
            let bound = Q::new(3, 1) >> 9;
            assert!((exact - bt.value()).abs() <= bound);
        }
    }

    #[test]
    fn wider_estimates_also_converge() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        for t in [3u32, 4, 5, 8] {
            let policy = Selection::Estimate { frac_digits: t as i32 };
            for _ in 0..60 {
                let x = random::uniform_digits(&mut rng, 10);
                let y = random::uniform_digits(&mut rng, 10);
                check(&x, &y, policy, Q::new(3, 1));
            }
        }
    }

    #[test]
    fn sdvm_selects_plus_minus_zero() {
        let v = BsVector::from_sd(&SdNumber::from_value(Q::new(5, 3), 3).unwrap());
        assert_eq!(sdvm(Digit::One, &v).value(), v.value());
        assert_eq!(sdvm(Digit::NegOne, &v).value(), -v.value());
        assert_eq!(sdvm(Digit::Zero, &v).value(), Q::ZERO);
        assert_eq!(sdvm(Digit::Zero, &v).len(), v.len());
    }

    #[test]
    fn first_stage_accepts_empty_residual() {
        let x = SdNumber::from_value(Q::new(3, 3), 3).unwrap();
        let io = om_stage(&x, &x, -(DELTA as i32), &BsVector::zero(0, 0), Selection::default());
        assert_eq!(io.z, Digit::Zero, "first stage can never select ±1");
    }

    #[test]
    fn digits_value_weights_indices_correctly() {
        // z_{-3}..z_{1} = [0,0,0,1,-1]: value = 2^-1 - 2^-2 = 1/4.
        let digits = vec![Digit::Zero, Digit::Zero, Digit::Zero, Digit::One, Digit::NegOne];
        assert_eq!(digits_value(&digits), Q::new(1, 2));
    }

    #[test]
    fn residual_tail_passes_through_unchanged() {
        // A deep tail digit of W must appear, shifted, in P'.
        let mut w = BsVector::zero(-1, 10); // positions -1..=8
        w.set_digit(7, Digit::One);
        let (p, sat) = residual_update(&w, Q::ZERO, Digit::Zero, 3);
        assert!(!sat);
        assert_eq!(p.digit(6), Digit::One, "W pos 7 → P pos 6");
        assert_eq!(p.value(), w.value() << 1);
    }
}
