//! Online (MSD-first) arithmetic over the radix-2 signed-digit system.
//!
//! Three models of the same operators, each serving a different purpose:
//!
//! | model | module | purpose |
//! |---|---|---|
//! | golden (exact `Q` recurrence) | [`online_mult`] | mathematical reference |
//! | bit-true (borrow-save signals) | [`bittrue_mult`] | mirrors the netlist signal-for-signal |
//! | stage-wave (delay-μ stages) | [`StagedMultiplier`] | the paper's overclocking timing model |
//!
//! The digit-parallel online **adder** is [`bs_add`]; its constant two-FA
//! depth is why the paper treats adders as timing-violation-free.

mod adder;
mod bittrue;
mod div;
mod mac;
mod mult;
mod select;
mod staged;

pub use adder::{bs_add, mmp, ppm, SerialAdder};
pub use bittrue::{
    bittrue_mult, bittrue_mult_bits, digits_value, om_stage, om_stage_bits, sdvm, sdvm_bits,
    BitTrueProduct, StageIo,
};
pub use div::{online_div, DivideDomainError, OnlineQuotient, DELTA_DIV};
pub use mac::{fused_fold_depth, fused_mac_bits, fused_mac_value, fused_mac_window};
pub use mult::{online_mult, OnlineProduct, SerialMultiplier, DELTA};
pub use select::{estimate, select, select_exact, Selection};
pub use staged::{StagedMultiplier, WaveState};
