//! Online multiplication — Algorithm 1 of the paper, golden model.
//!
//! The recurrence (radix 2, digit set {−1, 0, 1}, online delay δ = 3), for
//! `j = −δ .. N−1`:
//!
//! ```text
//! H[j]   = 2^-δ · (x_{j+δ+1} · Y[j+1]  +  y_{j+δ+1} · X[j])
//! W[j]   = P[j] + H[j]
//! z_j    = sel(W[j])
//! P[j+1] = 2 · (W[j] − z_j)
//! ```
//!
//! This module evaluates it with *exact* dyadic-rational arithmetic — the
//! mathematical reference against which the bit-true datapath and the
//! netlists are verified. The residual invariant (checked in the tests) is
//! `W[j] = 2^{j+1}·(X[j+1]·Y[j+1] − Z[j−1])`, which gives the digit
//! selected at stage `j` the weight `2^-(j+1)` and, after the final
//! iteration, `x·y − Z = 2^-(N+1) · P[N]` with `|P| ≤ 3/2`: the result is
//! accurate to within `3·2^-(N+2)`.

use crate::online::{select_exact, Selection};
use ola_redundant::{Digit, OnTheFlyConverter, SdNumber, Q};

/// The online delay δ for the radix-2 multiplier with digit set {−1, 0, 1}.
pub const DELTA: usize = 3;

/// Result of an online multiplication.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnlineProduct {
    digits: Vec<Digit>,
    n: usize,
    residual: Q,
}

impl OnlineProduct {
    /// Output digits `z_j` for `j = −δ ..= N−1`, MSD first (the digit for
    /// `j` has weight `2^-(j+1)`; the leading digits are zero in practice —
    /// the paper removes their selection logic entirely).
    #[must_use]
    pub fn digits(&self) -> &[Digit] {
        &self.digits
    }

    /// The digit `z_j`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is outside `−δ ..= N−1`.
    #[must_use]
    pub fn digit(&self, j: i32) -> Digit {
        let idx = j + DELTA as i32;
        assert!(idx >= 0 && (idx as usize) < self.digits.len(), "digit index {j} out of range");
        self.digits[idx as usize]
    }

    /// The exact value `Z = Σ z_j 2^-(j+1)`.
    #[must_use]
    pub fn value(&self) -> Q {
        let mut c = OnTheFlyConverter::new();
        for &d in &self.digits {
            c.push(d);
        }
        // The converter weights digit k (0-based) by 2^-(k+1); digit k is
        // z_j with j = k − δ and true weight 2^-(j+1) = 2^δ · 2^-(k+1).
        c.value() << DELTA as u32
    }

    /// The final residual `P[N]`; `x·y − Z = 2^-(N+1) · P[N]`.
    #[must_use]
    pub fn residual(&self) -> Q {
        self.residual
    }

    /// The exact representation error `x·y − Z` implied by the residual.
    #[must_use]
    pub fn error(&self) -> Q {
        self.residual >> (self.n as u32 + 1)
    }
}

/// Multiplies two `N`-digit operands with Algorithm 1 and a choice of
/// selection policy evaluated on the *exact* residual.
///
/// For [`Selection::Exact`] the residual bound is `|P| ≤ 1`; for the
/// hardware estimate (`frac_digits ≥ 3`) it is `|P| ≤ 3/2`. Both yield
/// `|x·y − Z| ≤ |P|·2^-(N+1)`.
///
/// # Panics
///
/// Panics if the operands have different lengths or are empty.
#[must_use]
pub fn online_mult(x: &SdNumber, y: &SdNumber, policy: Selection) -> OnlineProduct {
    let n = x.len();
    assert_eq!(n, y.len(), "operands must have equal digit counts");
    assert!(n > 0, "operands must be non-empty");
    let delta = DELTA as i32;

    let mut p = Q::ZERO;
    let mut digits = Vec::with_capacity(n + DELTA);
    for j in -delta..=(n as i32 - 1) {
        let idx = (j + delta + 1) as usize;
        let xd = x.digit(idx);
        let yd = y.digit(idx);
        let y_j1 = y.prefix_value(idx); // Y[j+1]: digits 1..=j+δ+1
        let x_j = x.prefix_value(idx - 1); // X[j]: digits 1..=j+δ
        let h = (y_j1 * i64::from(xd.value()) + x_j * i64::from(yd.value())) >> DELTA as u32;
        let w = p + h;
        let z = match policy {
            Selection::Exact => select_exact(w),
            Selection::Estimate { frac_digits } => {
                // Truncate the exact W to the estimate granularity the
                // hardware would see. Truncation toward −∞ at 2^-t matches
                // the worst-case tail sign analysis; the bit-true model's
                // borrow-save truncation is validated against this in
                // `bittrue`.
                select_exact(truncate_toward_neg_inf(w, frac_digits as u32))
            }
        };
        digits.push(z);
        p = (w - z.weighted(0)) << 1;
    }
    OnlineProduct { digits, n, residual: p }
}

fn truncate_toward_neg_inf(w: Q, frac_bits: u32) -> Q {
    // floor(w · 2^t) / 2^t
    let shifted = w << frac_bits;
    let num = shifted.numerator();
    let scale = shifted.scale();
    let floored = num >> scale; // arithmetic shift = floor for negatives
    Q::new(floored, 0) >> frac_bits
}

/// A digit-serial online multiplier: push one digit pair per cycle, receive
/// one result digit per cycle after the online delay.
///
/// This is the original (non-unrolled) operating mode of online arithmetic:
/// the data flow of Figure 1. Exactly `N` [`push`](Self::push) calls
/// followed by [`finish`](Self::finish) reproduce
/// [`online_mult`] digit for digit.
///
/// # Examples
///
/// ```
/// use ola_arith::online::{online_mult, SerialMultiplier, Selection};
/// use ola_redundant::{Q, SdNumber};
///
/// let x = SdNumber::from_value(Q::new(5, 4), 4)?;
/// let y = SdNumber::from_value(Q::new(-7, 4), 4)?;
/// let mut serial = SerialMultiplier::new(4, Selection::Exact);
/// for i in 1..=4 {
///     serial.push(x.digit(i), y.digit(i));
/// }
/// let product = serial.finish();
/// assert_eq!(product.value(), online_mult(&x, &y, Selection::Exact).value());
/// # Ok::<(), ola_redundant::RangeError>(())
/// ```
#[derive(Clone, Debug)]
pub struct SerialMultiplier {
    n: usize,
    policy: Selection,
    x: Vec<Digit>,
    y: Vec<Digit>,
    p: Q,
    emitted: Vec<Digit>,
}

impl SerialMultiplier {
    /// A serial multiplier for `n`-digit operands.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: usize, policy: Selection) -> Self {
        assert!(n > 0, "operands must be non-empty");
        SerialMultiplier {
            n,
            policy,
            x: Vec::with_capacity(n),
            y: Vec::with_capacity(n),
            p: Q::ZERO,
            emitted: Vec::new(),
        }
    }

    /// Feeds the next (MSD-first) digit pair and returns the result digit
    /// emitted this cycle (`z_j` for `j = pushes − δ − 1`).
    ///
    /// # Panics
    ///
    /// Panics if more than `n` pairs are pushed.
    pub fn push(&mut self, xd: Digit, yd: Digit) -> Digit {
        assert!(self.x.len() < self.n, "all {} digit pairs already pushed", self.n);
        self.x.push(xd);
        self.y.push(yd);
        self.step(xd, yd)
    }

    /// Flushes the pipeline (δ zero-feed cycles) and returns the product.
    #[must_use]
    pub fn finish(mut self) -> OnlineProduct {
        assert_eq!(self.x.len(), self.n, "push all {} digit pairs before finishing", self.n);
        for _ in 0..DELTA {
            self.x.push(Digit::Zero);
            self.y.push(Digit::Zero);
            self.step(Digit::Zero, Digit::Zero);
        }
        OnlineProduct { digits: self.emitted, n: self.n, residual: self.p }
    }

    fn step(&mut self, xd: Digit, yd: Digit) -> Digit {
        let t = self.x.len(); // digits consumed so far (index j+δ+1)
        let y_j1 = prefix(&self.y, t);
        let x_j = prefix(&self.x, t - 1);
        let h = (y_j1 * i64::from(xd.value()) + x_j * i64::from(yd.value())) >> DELTA as u32;
        let w = self.p + h;
        let z = match self.policy {
            Selection::Exact => select_exact(w),
            Selection::Estimate { frac_digits } => {
                select_exact(truncate_toward_neg_inf(w, frac_digits as u32))
            }
        };
        self.emitted.push(z);
        self.p = (w - z.weighted(0)) << 1;
        z
    }
}

fn prefix(digits: &[Digit], k: usize) -> Q {
    let mut acc: i128 = 0;
    for &d in &digits[..k.min(digits.len())] {
        acc = (acc << 1) + i128::from(d.value());
    }
    Q::new(acc, k.min(digits.len()) as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ola_redundant::random;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_invariants(x: &SdNumber, y: &SdNumber, policy: Selection, p_bound: Q) {
        let prod = online_mult(x, y, policy);
        let exact = x.value() * y.value();
        // Residual bound.
        assert!(
            prod.residual().abs() <= p_bound,
            "residual {:?} exceeds bound {:?} for x={x:?} y={y:?}",
            prod.residual(),
            p_bound,
        );
        // Invariant: x·y − Z = 2^-N · P[N] exactly.
        assert_eq!(exact - prod.value(), prod.error(), "x={x:?} y={y:?}");
        // Accuracy.
        let bound = p_bound >> (x.len() as u32 + 1);
        assert!((exact - prod.value()).abs() <= bound, "error too large for x={x:?} y={y:?}");
    }

    #[test]
    fn exhaustive_small_operands_exact_selection() {
        for n in 1..=3usize {
            let limit = (1i128 << n) - 1;
            for xv in -limit..=limit {
                for yv in -limit..=limit {
                    let x = SdNumber::from_value(Q::new(xv, n as u32), n).unwrap();
                    let y = SdNumber::from_value(Q::new(yv, n as u32), n).unwrap();
                    check_invariants(&x, &y, Selection::Exact, Q::ONE);
                }
            }
        }
    }

    #[test]
    fn exhaustive_small_operands_estimate_selection() {
        let policy = Selection::default();
        for n in 1..=3usize {
            let limit = (1i128 << n) - 1;
            for xv in -limit..=limit {
                for yv in -limit..=limit {
                    let x = SdNumber::from_value(Q::new(xv, n as u32), n).unwrap();
                    let y = SdNumber::from_value(Q::new(yv, n as u32), n).unwrap();
                    check_invariants(&x, &y, policy, Q::new(3, 1));
                }
            }
        }
    }

    #[test]
    fn random_wide_operands_both_selections() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [4usize, 8, 12, 16, 24, 32] {
            for _ in 0..200 {
                let x = random::uniform_digits(&mut rng, n);
                let y = random::uniform_digits(&mut rng, n);
                check_invariants(&x, &y, Selection::Exact, Q::ONE);
                check_invariants(&x, &y, Selection::default(), Q::new(3, 1));
            }
        }
    }

    #[test]
    fn leading_digits_are_zero() {
        // The first δ output digits (j ≤ 0) should always be zero — the
        // paper removes their selection logic. Verified over random inputs.
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        for _ in 0..500 {
            let x = random::uniform_digits(&mut rng, 8);
            let y = random::uniform_digits(&mut rng, 8);
            for policy in [Selection::Exact, Selection::default()] {
                let prod = online_mult(&x, &y, policy);
                // Digits with weight ≥ 1 (selected while |W| is provably
                // below 1/2) are always zero: j = −δ and −δ+1.
                for j in -(DELTA as i32)..=-2 {
                    assert_eq!(prod.digit(j), Digit::Zero, "z_{j} nonzero");
                }
            }
        }
    }

    #[test]
    fn serial_matches_parallel() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for n in [1usize, 2, 5, 8, 13] {
            for _ in 0..50 {
                let x = random::uniform_digits(&mut rng, n);
                let y = random::uniform_digits(&mut rng, n);
                for policy in [Selection::Exact, Selection::default()] {
                    let mut serial = SerialMultiplier::new(n, policy);
                    for i in 1..=n {
                        serial.push(x.digit(i), y.digit(i));
                    }
                    let s = serial.finish();
                    let p = online_mult(&x, &y, policy);
                    assert_eq!(s, p);
                }
            }
        }
    }

    #[test]
    fn digit_indexing() {
        let x = SdNumber::from_value(Q::new(3, 3), 3).unwrap();
        let prod = online_mult(&x, &x, Selection::Exact);
        assert_eq!(prod.digits().len(), 3 + DELTA);
        assert_eq!(prod.digit(-(DELTA as i32)), prod.digits()[0]);
        assert_eq!(prod.digit(2), *prod.digits().last().unwrap());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn digit_out_of_range_panics() {
        let x = SdNumber::from_value(Q::new(1, 2), 2).unwrap();
        let prod = online_mult(&x, &x, Selection::Exact);
        let _ = prod.digit(2);
    }

    #[test]
    #[should_panic(expected = "equal digit counts")]
    fn mismatched_lengths_panic() {
        let x = SdNumber::zero(3);
        let y = SdNumber::zero(4);
        let _ = online_mult(&x, &y, Selection::Exact);
    }

    #[test]
    #[should_panic(expected = "already pushed")]
    fn serial_overflow_panics() {
        let mut s = SerialMultiplier::new(1, Selection::Exact);
        let _ = s.push(Digit::Zero, Digit::Zero);
        let _ = s.push(Digit::Zero, Digit::Zero);
    }

    #[test]
    fn truncation_is_floor_at_granularity() {
        assert_eq!(truncate_toward_neg_inf(Q::new(7, 4), 2), Q::new(1, 2));
        assert_eq!(truncate_toward_neg_inf(Q::new(-7, 4), 2), Q::new(-1, 1));
        assert_eq!(truncate_toward_neg_inf(Q::new(3, 2), 2), Q::new(3, 2));
        assert_eq!(truncate_toward_neg_inf(Q::ZERO, 3), Q::ZERO);
    }
}
